#!/usr/bin/env bash
# Full verification: the tier-1 build + test suite, then an
# AddressSanitizer + UBSan build running the engine determinism /
# batching / pending-tracking tests (tests/test_engine.cpp), the
# failure-path + thread-pool tests (tests/test_failures.cpp), the
# session-durability + journal-fuzz tests (tests/test_journal.cpp), the
# observability tests (tests/test_obs.cpp), and the session / manager /
# async-token / wire-protocol tests (tests/test_session.cpp,
# tests/test_async.cpp, tests/test_wire.cpp), and the daemon
# survivability tests (tests/test_recovery.cpp: cold-start recovery,
# fault-injected disk errors, rid replay, overload shedding, drain), and
# the space-layer property tests (tests/test_space_properties.cpp:
# streamed candidate generation over conditional/constrained spaces,
# pooled-vs-streamed bitwise parity, sentinel round trips, enumerate
# guards), and the SIMD dispatch-parity + streaming top-k tests
# (tests/test_simd.cpp), re-run with HPB_SIMD forced to every tier this
# machine can execute; then a ThreadSanitizer build running the concurrency-sensitive
# subset (engine, thread pool, watchdog, shutdown, metrics hot path,
# session manager, line server, recovery/overload/drain, streamed-sweep
# thread-count invariance); then a fault-injected
# shootout smoke run (HPB_FAIL_RATE=0.2), a CLI crash-resume smoke
# (journal a run, truncate the journal mid-record, resume, and require
# the identical history CSV), a tuning-service storm smoke
# (bench/service_storm --smoke: interleaved sessions with forced
# eviction/resume over a real socket), a chaos smoke (--chaos: SIGKILL
# the daemon mid-storm, restart, require bitwise-identical resumed
# suggest sequences), and the gcov line-coverage gate for src/core +
# src/obs + src/space (tools/coverage.sh).
#
# Usage: tools/check.sh    (from anywhere; builds into build/,
#                           build-asan/, and build-tsan/ at the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier 1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo
echo "== ASan + UBSan: engine + failure-path + journal + observability + service tests =="
cmake -B build-asan -S . -DHPB_SANITIZE=address \
  -DHPB_BUILD_BENCH=OFF -DHPB_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs" \
  -R 'Engine|HiPerBOtPending|EnvParsing|Failure|ThreadPool|EvalStatus|HistoryCsv|FailEnv|Journal|Watchdog|Cancellation|GracefulShutdown|WallClock|AtomicHistory|DurabilityEnv|KillAndResume|Metrics|TraceSink|ObsEngine|RegressionQuality|Acquisition|SuggestPending|Session|Eviction|JsonParser|JsonNumbers|Wire|LineServer|Async|SyncCancel|CrossMode|Recovery|FaultInjection|RidReplay|Overload|Drain|Health|SpaceProperties|StreamedSweep|SentinelRoundTrip|EnumerateGuard|SimdDispatch|StreamingTopk'

echo
echo "== ASan, HPB_SIMD forced: dispatch parity under every runnable tier =="
# Every tier the build + CPU can run: scalar always; avx2 on x86-64 CPUs
# advertising it; neon on aarch64. The strict override makes a wrong guess
# here an error, so the probe mirrors src/core/simd.cpp's detection.
simd_tiers="off"
case "$(uname -m)" in
  x86_64)
    grep -q '\bavx2\b' /proc/cpuinfo 2>/dev/null && simd_tiers="$simd_tiers avx2" ;;
  aarch64|arm64)
    simd_tiers="$simd_tiers neon" ;;
esac
for tier in $simd_tiers; do
  echo "-- HPB_SIMD=$tier --"
  HPB_SIMD="$tier" ctest --test-dir build-asan --output-on-failure -j "$jobs" \
    -R 'SimdDispatch|StreamingTopk|Acquisition|SuggestPending'
done

echo
echo "== TSan: engine / thread-pool / watchdog / shutdown / metrics / service tests =="
cmake -B build-tsan -S . -DHPB_SANITIZE=thread \
  -DHPB_BUILD_BENCH=OFF -DHPB_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
  -R 'Engine|ThreadPool|Watchdog|Cancellation|GracefulShutdown|WallClock|Failure|Metrics|JournalFuzz|RegressionQuality|Acquisition|SessionManager|LineServer|AsyncFuzz|AsyncEvictionResume|Recovery|FaultInjection|Overload|Drain|SpaceProperties|StreamedSweep|SimdDispatch|StreamingTopk'

echo
echo "== TSan, HPB_SIMD forced: threaded sweeps under every runnable tier =="
for tier in $simd_tiers; do
  echo "-- HPB_SIMD=$tier --"
  HPB_SIMD="$tier" ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'SimdDispatch|StreamingTopk'
done

echo
echo "== acquisition sweep micro-bench smoke =="
./build/bench/micro_acquisition --smoke \
  --out build/BENCH_acquisition_smoke.json

echo
echo "== tuning-service storm smoke: interleaved sessions + eviction/resume =="
./build/bench/service_storm --smoke \
  --out build/BENCH_service_smoke.json

echo
echo "== chaos smoke (ASan): SIGKILL the daemon mid-storm, restart, bitwise resume =="
# The sanitized storm is the one worth running: the kill/restart cycle and
# the torn-connection teardown are exactly where lifetime bugs hide.
cmake -B build-asan -S . -DHPB_SANITIZE=address \
  -DHPB_BUILD_BENCH=ON -DHPB_BUILD_EXAMPLES=OFF > /dev/null
cmake --build build-asan -j "$jobs" --target service_storm
./build-asan/bench/service_storm --chaos --smoke \
  --out build-asan/BENCH_service_chaos_smoke.json

echo
echo "== fault-injected shootout smoke (HPB_FAIL_RATE=0.2) =="
HPB_FAIL_RATE=0.2 HPB_CRASH_RATE=0.05 HPB_REPS=1 HPB_BATCH=4 \
  ./build/bench/shootout

echo
echo "== CLI crash-resume smoke: journal, truncate, resume, compare =="
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./build/tools/hiperbot tune --dataset kripke --method random --budget 40 \
  --batch 4 --fail-rate 0.2 --journal "$smoke_dir/full.hpbj" \
  --history-out "$smoke_dir/full.csv" > /dev/null
# Kill the session mid-record: keep a prefix that tears the journal inside
# a round, then resume it to completion.
head -c "$(($(stat -c %s "$smoke_dir/full.hpbj") * 2 / 3))" \
  "$smoke_dir/full.hpbj" > "$smoke_dir/cut.hpbj"
./build/tools/hiperbot tune --dataset kripke --resume "$smoke_dir/cut.hpbj" \
  --history-out "$smoke_dir/resumed.csv" > /dev/null
diff "$smoke_dir/full.csv" "$smoke_dir/resumed.csv" \
  || { echo "resumed history differs from uninterrupted run"; exit 1; }
cmp -s "$smoke_dir/full.hpbj" "$smoke_dir/cut.hpbj" \
  || { echo "healed journal differs from uninterrupted journal"; exit 1; }
echo "crash-resume smoke: identical history and journal"

echo
echo "== coverage gate: src/core + src/obs + src/space line coverage =="
tools/coverage.sh

echo
echo "check.sh: all green"
