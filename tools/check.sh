#!/usr/bin/env bash
# Full verification: the tier-1 build + test suite, then an
# AddressSanitizer + UBSan build running the engine determinism /
# batching / pending-tracking tests (tests/test_engine.cpp).
#
# Usage: tools/check.sh    (from anywhere; builds into build/ and
#                           build-asan/ at the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier 1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo
echo "== ASan + UBSan: engine determinism tests =="
cmake -B build-asan -S . -DHPB_SANITIZE=ON \
  -DHPB_BUILD_BENCH=OFF -DHPB_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs" \
  -R 'Engine|HiPerBOtPending|EnvParsing'

echo
echo "check.sh: all green"
