#!/usr/bin/env bash
# Full verification: the tier-1 build + test suite, then an
# AddressSanitizer + UBSan build running the engine determinism /
# batching / pending-tracking tests (tests/test_engine.cpp) and the
# failure-path + thread-pool tests (tests/test_failures.cpp), then a
# fault-injected shootout smoke run (HPB_FAIL_RATE=0.2).
#
# Usage: tools/check.sh    (from anywhere; builds into build/ and
#                           build-asan/ at the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier 1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo
echo "== ASan + UBSan: engine determinism + failure-path tests =="
cmake -B build-asan -S . -DHPB_SANITIZE=ON \
  -DHPB_BUILD_BENCH=OFF -DHPB_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs" \
  -R 'Engine|HiPerBOtPending|EnvParsing|Failure|ThreadPool|EvalStatus|HistoryCsv|FailEnv'

echo
echo "== fault-injected shootout smoke (HPB_FAIL_RATE=0.2) =="
HPB_FAIL_RATE=0.2 HPB_CRASH_RATE=0.05 HPB_REPS=1 HPB_BATCH=4 \
  ./build/bench/shootout

echo
echo "check.sh: all green"
