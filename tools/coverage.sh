#!/usr/bin/env bash
# Line-coverage gate for the tuning core (src/core), the observability
# layer (src/obs), and the space layer (src/space, including the streamed
# candidate generator): builds an instrumented tree into build-cov/, runs
# the tier-1 test suite (`ctest -L tier1`), aggregates gcov line coverage
# over the .cpp files of all three layers, and fails if the combined
# percentage drops below the floor.
#
# Only .cpp files count: headers are re-reported by gcov once per including
# translation unit, which would double-count their lines.
#
# Usage: tools/coverage.sh            (floor defaults to 90%)
#        HPB_COVERAGE_FLOOR=85 tools/coverage.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
floor="${HPB_COVERAGE_FLOOR:-90}"

echo "== coverage: instrumented build + tier-1 tests =="
cmake -B build-cov -S . -DHPB_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug \
  -DHPB_BUILD_BENCH=OFF -DHPB_BUILD_EXAMPLES=OFF
cmake --build build-cov -j "$jobs"
find build-cov -name '*.gcda' -delete  # stale counters skew reruns
ctest --test-dir build-cov --output-on-failure -j "$jobs" -L tier1

gcda_files=$(find build-cov/src/core build-cov/src/obs build-cov/src/space \
  -name '*.gcda')
if [ -z "$gcda_files" ]; then
  echo "coverage: no .gcda files under build-cov/src/{core,obs,space}" >&2
  exit 1
fi

# gcov -n prints, per object, a "File '<path>'" line followed by a
# "Lines executed:<pct>% of <n>" line; keep only the gated layers' .cpp.
echo
echo "== coverage: per-file line coverage (src/core + src/obs + src/space) =="
# shellcheck disable=SC2086  # word-splitting the .gcda list is intended
gcov -n $gcda_files 2>/dev/null | awk -v floor="$floor" '
  /^File / {
    file = substr($0, 7, length($0) - 7)  # strip the File '...' quoting
    keep = (file ~ /src\/(core|obs|space)\/[^\/]+\.cpp$/)
  }
  keep && /^Lines executed:/ {
    line = $0
    sub(/^Lines executed:/, "", line)
    split(line, parts, /% of /)
    printf "  %-44s %6.2f%% of %d\n", file, parts[1], parts[2]
    covered += parts[1] * parts[2] / 100.0
    total += parts[2]
    keep = 0
  }
  END {
    if (total == 0) {
      print "coverage: no src/{core,obs,space} .cpp files in gcov output" \
        > "/dev/stderr"
      exit 1
    }
    pct = 100.0 * covered / total
    printf "coverage: %.2f%% of %d lines (floor %s%%)\n", pct, total, floor
    if (pct + 1e-9 < floor) {
      printf "coverage: below the %s%% floor\n", floor > "/dev/stderr"
      exit 1
    }
  }
'
echo "coverage: ok"
