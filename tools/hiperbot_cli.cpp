// hiperbot — command-line autotuning over CSV datasets or the built-in
// simulated applications.
//
//   hiperbot info       --csv runs.csv | --dataset kripke
//   hiperbot tune       --csv runs.csv --method hiperbot --budget 100
//                       [--batch 4] [--fail-rate 0.2] [--crash-rate 0.05]
//                       [--journal tune.hpbj] [--eval-timeout 500]
//                       [--max-seconds 60] [--trace tune.trace.jsonl]
//                       [--metrics-out tune.metrics.json]
//   hiperbot tune       --csv runs.csv --resume tune.hpbj
//   hiperbot importance --csv runs.csv [--alpha 0.2]
//   hiperbot compare    --csv runs.csv --methods hiperbot,geist,random
//                       --budget 100 --reps 10 [--ell 5]
//   hiperbot transfer   --source-csv small_scale.csv --csv target.csv
//                       --budget 150 [--weight 2.0]
//   hiperbot serve      --socket /tmp/hpb.sock | --port 7421
//                       [--session-dir sessions] [--max-resident 1000]
//                       [--max-connections 256] [--max-pending 64]
//                       [--trace serve.trace.jsonl] [--metrics-out m.json]
//
// The CSV format is one header row (parameter columns, objective last) and
// one row per measured configuration — the same layout `info --export`
// writes for the built-in datasets.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>

#include "apps/registry.hpp"
#include "common/cli.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "core/importance.hpp"
#include "core/history_io.hpp"
#include "core/journal.hpp"
#include "core/surrogate.hpp"
#include "core/stopping.hpp"
#include "common/fsio.hpp"
#include "core/session_manager.hpp"
#include "eval/experiment.hpp"
#include "eval/methods.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/factory.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "stats/inference.hpp"
#include "tabular/csv.hpp"
#include "tabular/fault_injection.hpp"

namespace {

using hpb::tabular::TabularObjective;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

TabularObjective load_dataset(const hpb::cli::ArgParser& args) {
  const std::string& csv = args.get_string("csv");
  const std::string& dataset = args.get_string("dataset");
  HPB_REQUIRE(csv.empty() != dataset.empty(),
              "provide exactly one of --csv <file> or --dataset <name>");
  if (!csv.empty()) {
    return hpb::tabular::load_csv(csv);
  }
  return hpb::apps::dataset_by_name(dataset).make();
}

int cmd_info(const hpb::cli::ArgParser& args) {
  const TabularObjective ds = load_dataset(args);
  std::cout << "dataset:        " << ds.name() << '\n'
            << "configurations: " << ds.size() << '\n'
            << "parameters:     " << ds.space().num_params() << '\n';
  for (std::size_t p = 0; p < ds.space().num_params(); ++p) {
    const auto& param = ds.space().param(p);
    std::cout << "  " << std::left << std::setw(12) << param.name()
              << param.num_levels() << " levels:";
    for (std::size_t l = 0; l < param.num_levels() && l < 8; ++l) {
      std::cout << ' ' << param.level_label(l);
    }
    if (param.num_levels() > 8) {
      std::cout << " ...";
    }
    std::cout << '\n';
  }
  std::cout << "objective:      best " << ds.best_value() << ", median "
            << ds.percentile_value(50.0) << ", worst " << ds.worst_value()
            << '\n'
            << "best config:    " << ds.space().to_string(ds.best_config())
            << '\n';
  const std::string& export_path = args.get_string("export");
  if (!export_path.empty()) {
    ds.write_csv(export_path);
    std::cout << "exported to:    " << export_path << '\n';
  }
  return 0;
}

// Raised by SIGINT/SIGTERM; the engine checks it between rounds and winds
// the session down with a resumable journal and a partial result. A lock-
// free atomic store is the only async-signal-safe thing the handler does.
std::atomic<bool> g_stop{false};
static_assert(std::atomic<bool>::is_always_lock_free);

void handle_shutdown_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

// `serve` distinguishes the two shutdown signals: SIGTERM requests a
// graceful drain (stop accepting, answer everything already sent,
// checkpoint, exit), SIGINT a prompt stop. Both are only flag stores.
std::atomic<bool> g_drain{false};
static_assert(std::atomic<bool>::is_always_lock_free);

void handle_drain_signal(int) {
  g_drain.store(true, std::memory_order_relaxed);
}

int cmd_tune(const hpb::cli::ArgParser& args) {
  TabularObjective ds = load_dataset(args);

  const std::string& resume_path = args.get_string("resume");
  const std::string journal_path = args.was_set("journal")
                                       ? args.get_string("journal")
                                       : hpb::eval::journal_path_from_env();
  HPB_REQUIRE(resume_path.empty() || journal_path.empty(),
              "tune: --resume continues its own journal; do not also pass "
              "--journal / HPB_JOURNAL");
  std::string trace_path = args.was_set("trace")
                               ? args.get_string("trace")
                               : hpb::eval::trace_path_from_env();
  const std::string& metrics_out = args.get_string("metrics-out");

  // Session parameters: from the flags for a fresh session, from the
  // journal header for a resumed one — a resumed run *is* the same run, so
  // its method/seed/batch/stopping/fault setup is not renegotiable.
  std::string method = args.get_string("method");
  std::uint64_t seed = static_cast<std::uint64_t>(args.get_size("seed"));
  std::size_t batch = args.get_size("batch");
  std::string warm_start = args.get_string("warm-start");
  hpb::core::StopConfig stop;
  stop.max_evaluations = args.get_size("budget");
  stop.stagnation_patience = args.get_size("patience");
  if (args.was_set("target")) {
    stop.target_value = args.get_double("target");
  }
  hpb::tabular::FaultConfig faults{.fail_rate = args.get_double("fail-rate"),
                                   .crash_rate = args.get_double("crash-rate"),
                                   .hang_rate = args.get_double("hang-rate"),
                                   .seed = seed};

  std::optional<hpb::core::JournalContents> resumed;
  if (!resume_path.empty()) {
    resumed = hpb::core::read_journal(resume_path);
    if (resumed->finalized) {
      std::cout << "journal " << resume_path << " is already complete ("
                << resumed->finish_reason << "); nothing to resume\n";
      return 0;
    }
    const hpb::core::JournalHeader& h = resumed->header;
    HPB_REQUIRE(h.dataset == ds.name(),
                "tune --resume: journal was recorded on dataset '" +
                    h.dataset + "' but --csv/--dataset loaded '" + ds.name() +
                    "'");
    method = h.method;
    seed = h.seed;
    batch = h.batch_size;
    warm_start = h.warm_start;
    stop.max_evaluations = h.max_evaluations;
    stop.stagnation_patience = h.stagnation_patience;
    stop.target_value = h.target_value;
    faults = {.fail_rate = h.fail_rate,
              .crash_rate = h.crash_rate,
              .hang_rate = h.hang_rate,
              .seed = h.seed};
    // The trace file is part of the session: a resumed run appends to the
    // journaled trace (span ids continue after the crash point) rather
    // than starting a second file.
    if (!h.trace_path.empty()) {
      HPB_REQUIRE(trace_path.empty() || trace_path == h.trace_path,
                  "tune --resume: journal traces to '" + h.trace_path +
                      "'; do not pass a different --trace / HPB_TRACE");
      trace_path = h.trace_path;
    }
  }
  // Runtime knobs (not session identity): allowed to differ on resume.
  stop.max_wall_time_seconds = args.get_double("max-seconds");
  const std::size_t timeout_ms =
      args.was_set("eval-timeout")
          ? args.get_size("eval-timeout")
          : hpb::eval::eval_timeout_ms_from_env(0);

  auto tuner = hpb::eval::make_named_tuner(method, ds, seed);
  if (!warm_start.empty()) {
    const std::size_t rows =
        hpb::core::warm_start_from_csv(warm_start, ds.space(), *tuner);
    std::cout << "warm start: replayed " << rows << " observations from "
              << warm_start << '\n';
  }

  std::optional<hpb::core::JournalWriter> journal;
  std::vector<hpb::core::Observation> replayed;
  if (resumed) {
    replayed = hpb::core::replay_journal(*tuner, ds.space(), *resumed);
    std::cout << "resume: replayed " << replayed.size()
              << " journaled observations (" << resumed->rounds.size()
              << " rounds) from " << resume_path << '\n';
    journal.emplace(hpb::core::JournalWriter::append(resume_path, *resumed));
  } else if (!journal_path.empty()) {
    hpb::core::JournalHeader h;
    h.method = method;
    h.dataset = ds.name();
    h.warm_start = warm_start;
    h.seed = seed;
    h.batch_size = batch;
    h.num_params = ds.space().num_params();
    h.max_evaluations = stop.max_evaluations;
    h.stagnation_patience = stop.stagnation_patience;
    h.target_value = stop.target_value;
    h.fail_rate = faults.fail_rate;
    h.crash_rate = faults.crash_rate;
    h.hang_rate = faults.hang_rate;
    h.trace_path = trace_path;
    journal.emplace(hpb::core::JournalWriter::create(journal_path, h));
  }

  // Observability sinks; absent flags leave the recorder all-null and the
  // run bitwise identical to an untraced one.
  std::optional<hpb::obs::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink.emplace(resumed
                           ? hpb::obs::JsonlTraceSink::append_to(trace_path)
                           : hpb::obs::JsonlTraceSink::create(trace_path));
  }
  hpb::obs::MetricsRegistry metrics;

  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);

  const hpb::core::TuningEngine engine(
      {.batch_size = batch,
       .eval_deadline = std::chrono::milliseconds(timeout_ms),
       .journal = journal ? &*journal : nullptr,
       .stop_flag = &g_stop,
       .recorder = {.trace = trace_sink ? &*trace_sink : nullptr,
                    .metrics = metrics_out.empty() ? nullptr : &metrics}});
  // Pass-through when all rates are 0 (the default).
  hpb::tabular::FaultInjectingObjective faulty(ds, faults);
  const auto stopped = engine.run_until(*tuner, faulty, stop, replayed);
  const auto& result = stopped.result;
  std::cout << "method:      " << tuner->name() << '\n'
            << "evaluations: " << result.history.size() << " (stopped: ";
  switch (stopped.reason) {
    case hpb::core::StopReason::kBudgetExhausted:
      std::cout << "budget exhausted";
      break;
    case hpb::core::StopReason::kStagnation:
      std::cout << "stagnation";
      break;
    case hpb::core::StopReason::kTargetReached:
      std::cout << "target reached";
      break;
    case hpb::core::StopReason::kWallTime:
      std::cout << "wall-clock limit";
      break;
    case hpb::core::StopReason::kInterrupted:
      std::cout << "interrupted";
      break;
  }
  std::cout << ")\n";
  if (result.num_failed > 0) {
    std::cout << "failed:      " << result.num_failed << " evaluations\n";
  }
  if (result.history.size() == result.num_failed) {
    std::cout << "best value:  n/a (no successful evaluation)\n";
  } else {
    std::cout << "best value:  " << result.best_value << "  (exhaustive best "
              << ds.best_value() << ")\n"
              << "best config: " << ds.space().to_string(result.best_config)
              << '\n';
  }
  if (!result.best_so_far.empty()) {
    std::cout << "trajectory:  ";
    const std::size_t n = result.best_so_far.size();
    for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 8)) {
      std::cout << result.best_so_far[i] << ' ';
    }
    std::cout << result.best_so_far.back() << '\n';
  }
  if (stopped.reason == hpb::core::StopReason::kInterrupted && journal) {
    std::cout << "session interrupted; resume with: hiperbot tune "
              << (args.get_string("csv").empty()
                      ? "--dataset " + args.get_string("dataset")
                      : "--csv " + args.get_string("csv"))
              << " --resume " << journal->path() << '\n';
  }
  const std::string& history_out = args.get_string("history-out");
  if (!history_out.empty()) {
    hpb::core::write_history_csv(history_out, ds.space(), result.history);
    std::cout << "history written to " << history_out << '\n';
  }
  if (trace_sink) {
    trace_sink->flush();
    std::cout << "trace written to " << trace_sink->path() << '\n';
  }
  if (!metrics_out.empty()) {
    metrics.write_json(metrics_out);
    std::cout << "metrics written to " << metrics_out << '\n';
  }
  return 0;
}

int cmd_importance(const hpb::cli::ArgParser& args) {
  const TabularObjective ds = load_dataset(args);
  const auto entries =
      hpb::core::dataset_importance(ds, args.get_double("alpha"));
  std::cout << "parameter importance (JS divergence, alpha="
            << args.get_double("alpha") << "):\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::cout << "  " << std::left << std::setw(4) << (i + 1) << std::setw(16)
              << entries[i].parameter << std::fixed << std::setprecision(4)
              << entries[i].js_divergence << '\n';
  }
  return 0;
}

int cmd_transfer(const hpb::cli::ArgParser& args) {
  // Source: a fully observed small-scale study. Target: the expensive
  // domain to tune. Both must share the parameter structure.
  const std::string& source_path = args.get_string("source-csv");
  HPB_REQUIRE(!source_path.empty(), "transfer: --source-csv is required");
  const TabularObjective source = hpb::tabular::load_csv(source_path);
  TabularObjective target = load_dataset(args);
  HPB_REQUIRE(source.space().num_params() == target.space().num_params(),
              "transfer: source and target parameter counts differ");

  hpb::core::HiPerBOtConfig config;
  config.transfer_weight = args.get_double("weight");
  // The prior is estimated over the *target's* space object so densities
  // and candidates line up; source rows are mapped through their shared
  // parameter structure by re-encoding each configuration's levels.
  std::vector<hpb::space::Configuration> source_configs(
      source.configs().begin(), source.configs().end());
  std::vector<double> source_values(source.values().begin(),
                                    source.values().end());
  hpb::core::HiPerBOt tuner(target.space_ptr(), config,
                            args.get_size("seed"));
  tuner.set_transfer_prior(hpb::core::make_transfer_prior(
      target.space_ptr(), source_configs, source_values, config.quantile));

  const hpb::core::TuningEngine engine({.batch_size = args.get_size("batch")});
  const auto result = engine.run(tuner, target, args.get_size("budget"));
  std::cout << "source:      " << source.name() << " (" << source.size()
            << " observed runs, best " << source.best_value() << ")\n"
            << "target:      " << target.name() << " (" << target.size()
            << " configs)\n"
            << "prior weight w = " << config.transfer_weight << '\n'
            << "evaluations: " << result.history.size() << '\n'
            << "best value:  " << result.best_value << "  (exhaustive best "
            << target.best_value() << ")\n"
            << "best config: " << target.space().to_string(result.best_config)
            << '\n';
  return 0;
}

int cmd_serve(const hpb::cli::ArgParser& args) {
  const std::string& socket_path = args.get_string("socket");
  const bool tcp = args.was_set("port");
  HPB_REQUIRE(!socket_path.empty() || tcp,
              "serve: pass --socket <path>, --port <n> (0 = ephemeral), or "
              "both");
  // Create the session-journal root before binding anything: a typo'd
  // --session-dir fails here with a clear message instead of aborting the
  // first create verb mid-service.
  const std::string& session_dir = args.get_string("session-dir");
  hpb::fs::ensure_dir(session_dir);

  std::optional<hpb::obs::JsonlTraceSink> trace_sink;
  const std::string& trace_path = args.get_string("trace");
  if (!trace_path.empty()) {
    trace_sink.emplace(hpb::obs::JsonlTraceSink::create(trace_path));
  }
  const std::string& metrics_out = args.get_string("metrics-out");
  hpb::obs::MetricsRegistry metrics;

  hpb::core::SessionManagerConfig mconfig;
  mconfig.journal_dir = session_dir;
  mconfig.max_resident = args.get_size("max-resident");
  mconfig.max_pending_per_session = args.get_size("max-pending");
  mconfig.recorder = {.trace = trace_sink ? &*trace_sink : nullptr,
                      .metrics = metrics_out.empty() ? nullptr : &metrics};
  hpb::core::SessionManager manager(hpb::service::dataset_session_factory(),
                                    std::move(mconfig));
  // Cold-start recovery ran in the constructor: every resumable journal
  // in the session dir is already adopted, every unreadable one moved to
  // *.hpbj.corrupt. Say so — after a crash this line is the operator's
  // first confirmation that nothing was lost.
  const hpb::core::RecoveryReport& recovery = manager.recovery();
  if (!recovery.adopted.empty() || !recovery.finished.empty() ||
      !recovery.quarantined.empty()) {
    std::cout << "recovered session dir: " << recovery.adopted.size()
              << " adopted, " << recovery.finished.size() << " finished, "
              << recovery.quarantined.size() << " quarantined\n";
    for (const std::string& name : recovery.quarantined) {
      std::cout << "  quarantined " << name << " -> "
                << manager.journal_path(name) << ".corrupt\n";
    }
  }
  hpb::service::WireService wire(manager);

  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_drain_signal);

  hpb::service::LineServer server(
      [&wire](std::string_view line) { return wire.handle_line(line); },
      {.unix_path = socket_path,
       .tcp_port = tcp ? static_cast<int>(args.get_size("port")) : -1,
       .stop_flag = &g_stop,
       .max_connections = args.get_size("max-connections"),
       .drain_flag = &g_drain});
  if (!socket_path.empty()) {
    std::cout << "listening on unix socket " << socket_path << '\n';
  }
  if (tcp) {
    // The actual port matters with --port 0; clients scrape this line.
    std::cout << "listening on 127.0.0.1:" << server.port() << '\n';
  }
  std::cout << "session dir " << session_dir
            << "; Ctrl-C stops, SIGTERM drains" << std::endl;
  server.serve();
  if (g_drain.load(std::memory_order_relaxed) &&
      !g_stop.load(std::memory_order_relaxed)) {
    // Journals are fsync'd per record; the checkpoint sweep verifies every
    // resident session's durability before the process exits.
    const std::size_t checkpointed = manager.checkpoint_all();
    std::cout << "drained; checkpointed " << checkpointed
              << " resident sessions\n";
  }
  server.stop();
  std::cout << "served " << server.connections_accepted()
            << " connections (" << server.connections_shed()
            << " shed); sessions: " << manager.created_count()
            << " created, " << manager.resumed_count() << " resumed, "
            << manager.evicted_count() << " evicted, "
            << manager.closed_count() << " closed ("
            << manager.resident_count() << " resident, "
            << manager.degraded_count() << " degraded at shutdown)\n";
  if (trace_sink) {
    trace_sink->flush();
    std::cout << "trace written to " << trace_sink->path() << '\n';
  }
  if (!metrics_out.empty()) {
    metrics.write_json(metrics_out);
    std::cout << "metrics written to " << metrics_out << '\n';
  }
  return 0;
}

int cmd_compare(const hpb::cli::ArgParser& args) {
  TabularObjective ds = load_dataset(args);
  const auto methods = split_list(args.get_string("methods"));
  HPB_REQUIRE(!methods.empty(), "compare: --methods must name >= 1 tuner");
  const std::size_t budget = args.get_size("budget");
  const std::size_t reps = args.get_size("reps");
  const double ell = args.get_double("ell");

  // Per method: the per-rep best values and recalls.
  std::vector<std::vector<double>> bests(methods.size());
  std::vector<std::vector<double>> recalls(methods.size());
  const hpb::core::TuningEngine engine({.batch_size = args.get_size("batch")});
  for (std::size_t m = 0; m < methods.size(); ++m) {
    hpb::Rng seeder(args.get_size("seed") + 17 * m);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      auto tuner =
          hpb::eval::make_named_tuner(methods[m], ds, seeder.next_u64());
      const auto result = engine.run(*tuner, ds, budget);
      bests[m].push_back(result.best_value);
      recalls[m].push_back(
          hpb::eval::recall_percentile(ds, result.history, budget, ell));
    }
  }

  std::cout << "dataset " << ds.name() << ", budget " << budget << ", reps "
            << reps << ", recall ell " << ell << "%\n"
            << "exhaustive best: " << ds.best_value() << "\n\n"
            << std::left << std::setw(12) << "method" << std::setw(24)
            << "best (mean, 95% CI)" << std::setw(20) << "recall (mean)"
            << "p vs " << methods[0] << '\n';
  for (std::size_t m = 0; m < methods.size(); ++m) {
    const auto best_stats = hpb::stats::summarize(bests[m]);
    const auto ci = hpb::stats::bootstrap_mean_ci(bests[m]);
    const auto recall_stats = hpb::stats::summarize(recalls[m]);
    std::ostringstream best_cell;
    best_cell << std::fixed << std::setprecision(3) << best_stats.mean()
              << " [" << ci.lo << ", " << ci.hi << "]";
    std::cout << std::left << std::setw(12) << methods[m] << std::setw(24)
              << best_cell.str() << std::setw(20) << recall_stats.mean();
    if (m == 0 || reps < 2) {
      std::cout << "-";
    } else {
      const auto test = hpb::stats::mann_whitney_u(bests[0], bests[m]);
      std::cout << std::setprecision(4) << test.p_value;
    }
    std::cout << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  hpb::cli::ArgParser args(
      "hiperbot",
      "Bayesian-optimization autotuning over CSV datasets or the built-in "
      "simulated applications.\ncommands: info, tune, importance, compare, "
      "transfer, serve");
  args.add_string("csv", "", "CSV dataset (params..., objective)")
      .add_string("dataset", "",
                  "built-in dataset: kripke, kripke_energy, hypre, lulesh, "
                  "openAtom, systolic_small")
      .add_string("method", "hiperbot",
                  "tuner: hiperbot, geist, random, gp, anneal, hillclimb, brt, "
                  "ridge, exhaustive")
      .add_string("methods", "hiperbot,geist,random",
                  "comma list of tuners for `compare`")
      .add_string("export", "", "`info`: write the dataset to this CSV path")
      .add_string("history-out", "",
                  "`tune`: write the evaluated history to this CSV path")
      .add_string("warm-start", "",
                  "`tune`: replay a previous history CSV before tuning")
      .add_string("journal", "",
                  "`tune`: write-ahead observation journal (crash-tolerant; "
                  "default $HPB_JOURNAL)")
      .add_string("resume", "",
                  "`tune`: resume an interrupted session from its journal "
                  "(method/seed/budget come from the journal header)")
      .add_string("trace", "",
                  "`tune`: write JSON-lines spans (rounds, evaluations, "
                  "tuner fits) to this file (default $HPB_TRACE)")
      .add_string("metrics-out", "",
                  "`tune`: write the aggregated metrics registry as JSON to "
                  "this file at session end")
      .add_size("eval-timeout", 0,
                "`tune`: per-evaluation watchdog deadline in ms; overdue "
                "evaluations become timeout failures (0 = off; default "
                "$HPB_EVAL_TIMEOUT_MS)")
      .add_double("max-seconds", 0.0,
                  "`tune`: wall-clock limit for the session, checked between "
                  "rounds (0 = off)")
      .add_double("hang-rate", 0.0,
                  "`tune`: fraction of the space hanging until the watchdog "
                  "cancels it (fault injection)")
      .add_string("source-csv", "",
                  "`transfer`: fully observed source-domain CSV")
      .add_double("weight", 2.0, "`transfer`: prior mixture weight w")
      .add_size("budget", 100, "evaluation budget")
      .add_size("batch", 1,
                "suggest/observe batch size per engine round (1 = serial)")
      .add_size("reps", 10, "`compare`: replications per method")
      .add_size("seed", 42, "random seed")
      .add_size("patience", 0, "`tune`: stop after N evals w/o improvement")
      .add_double("target", 0.0, "`tune`: stop when best <= target")
      .add_double("fail-rate", 0.0,
                  "`tune`: fraction of the space failing permanently "
                  "(deterministic fault injection)")
      .add_double("crash-rate", 0.0,
                  "`tune`: per-attempt transient crash probability")
      .add_double("alpha", 0.2, "good/bad split quantile")
      .add_double("ell", 5.0, "recall percentile")
      .add_string("socket", "", "`serve`: unix-domain socket path")
      .add_size("port", 0,
                "`serve`: TCP port on 127.0.0.1 (0 = ephemeral, printed at "
                "startup)")
      .add_string("session-dir", "hpb_sessions",
                  "`serve`: root directory for per-session write-ahead "
                  "journals (created if missing)")
      .add_size("max-resident", 0,
                "`serve`: max in-memory sessions before LRU eviction to the "
                "journal (0 = unlimited)")
      .add_size("max-connections", 0,
                "`serve`: max simultaneous client connections; beyond it an "
                "accept is answered with an `overloaded` error and closed "
                "(0 = unlimited)")
      .add_size("max-pending", 0,
                "`serve`: per-session cap on outstanding async suggestions; "
                "a suggest beyond it is shed with an `overloaded` error "
                "(0 = unlimited)");

  try {
    args.parse(argc, argv);
    const auto& positional = args.positional();
    if (positional.empty()) {
      std::cerr << args.usage();
      return 2;
    }
    const std::string& command = positional.front();
    if (command == "info") {
      return cmd_info(args);
    }
    if (command == "tune") {
      return cmd_tune(args);
    }
    if (command == "importance") {
      return cmd_importance(args);
    }
    if (command == "compare") {
      return cmd_compare(args);
    }
    if (command == "transfer") {
      return cmd_transfer(args);
    }
    if (command == "serve") {
      return cmd_serve(args);
    }
    std::cerr << "unknown command '" << command << "'\n" << args.usage();
    return 2;
  } catch (const hpb::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
