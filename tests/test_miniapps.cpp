// Tests for the live mini-applications: the Kripke-style transport sweep
// (layout correctness across all six nestings) and the HYPRE-style solver
// suite (convergence, solution agreement, solver-quality ordering).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/minisolver.hpp"
#include "apps/minisweep.hpp"
#include "common/rng.hpp"
#include "core/hiperbot.hpp"
#include "core/loop.hpp"

namespace hpb::apps {
namespace {

using space::Configuration;

// ----------------------------------------------------------------- sweep
MiniSweepWorkload tiny_sweep() {
  MiniSweepWorkload w;
  w.zones = 12;
  w.groups = 4;
  w.directions = 4;
  w.sweeps = 2;
  w.repeats = 1;
  return w;
}

TEST(MiniSweep, SpaceMatchesKripkeStructure) {
  MiniSweepObjective obj(tiny_sweep());
  EXPECT_EQ(obj.space().num_params(), 4u);  // Nesting, Gset, Dset, Threads
  EXPECT_EQ(obj.space().param(0).name(), "Nesting");
  EXPECT_EQ(obj.space().param(0).num_levels(), 6u);
  EXPECT_TRUE(obj.space().is_finite());
}

TEST(MiniSweep, AllSixNestingsComputeIdenticalPhysics) {
  // The Nesting parameter changes memory layout and loop order only: the
  // scalar flux must agree across every layout/blocking combination.
  MiniSweepObjective obj(tiny_sweep());
  const auto configs = obj.space().enumerate();
  ASSERT_FALSE(configs.empty());
  (void)obj.evaluate(configs.front());
  const double reference = obj.last_checksum();
  EXPECT_GT(reference, 0.0);
  for (const auto& c : configs) {
    (void)obj.evaluate(c);
    EXPECT_NEAR(obj.last_checksum(), reference, 1e-9 * reference)
        << obj.space().to_string(c);
  }
}

TEST(MiniSweep, EvaluateReturnsPositiveTimeAndIsRepeatable) {
  MiniSweepObjective obj(tiny_sweep());
  Rng rng(1);
  const auto c = obj.space().sample_uniform(rng);
  EXPECT_GT(obj.evaluate(c), 0.0);
  const double first = obj.last_checksum();
  (void)obj.evaluate(c);
  EXPECT_DOUBLE_EQ(obj.last_checksum(), first);
}

TEST(MiniSweep, FluxIsPhysical) {
  // With positive sources, cross sections, and boundary fluxes, every
  // scalar-flux value is positive — checked via the checksum being at
  // least source/sigma_max per cell-group.
  MiniSweepObjective obj(tiny_sweep());
  const auto c = obj.space().configuration_at(0);
  (void)obj.evaluate(c);
  const double cells = 12.0 * 12.0 * 4.0;  // zones × groups
  EXPECT_GT(obj.last_checksum(), 0.1 * cells);
}

TEST(MiniSweep, RejectsDegenerateWorkloads) {
  MiniSweepWorkload w;
  w.zones = 2;
  EXPECT_THROW(MiniSweepObjective{w}, Error);
  w = {};
  w.sweeps = 0;
  EXPECT_THROW(MiniSweepObjective{w}, Error);
}

TEST(MiniSweep, TunableEndToEnd) {
  MiniSweepObjective obj(tiny_sweep());
  core::HiPerBOtConfig config;
  config.initial_samples = 6;
  core::HiPerBOt tuner(obj.space_ptr(), config, 3);
  const auto result = core::run_tuning(tuner, obj, 18);
  EXPECT_EQ(result.history.size(), 18u);
  EXPECT_GT(result.best_value, 0.0);
}

// ---------------------------------------------------------------- solver
MiniSolverWorkload tiny_solver() {
  MiniSolverWorkload w;
  w.grid = 24;
  w.tolerance = 1e-8;
  w.max_iters = 6000;
  w.repeats = 1;
  return w;
}

TEST(MiniSolver, SpaceMatchesHypreStructure) {
  MiniSolverObjective obj(tiny_solver());
  EXPECT_EQ(obj.space().num_params(), 3u);
  EXPECT_EQ(obj.space().param(0).name(), "Solver");
  EXPECT_EQ(obj.space().param(0).num_levels(), 7u);
  EXPECT_EQ(obj.space().cross_product_size(), 7u * 6u * 3u);
}

TEST(MiniSolver, EveryConvergingSolverFindsTheSameSolution) {
  MiniSolverObjective obj(tiny_solver());
  double reference = 0.0;
  bool have_reference = false;
  std::size_t converged_count = 0;
  // Probe one sensible configuration per solver (ω = 1.2, 1 sweep).
  for (std::size_t solver = 0; solver < 7; ++solver) {
    Configuration c(std::vector<double>{static_cast<double>(solver), 2, 0});
    (void)obj.evaluate(c);
    if (!obj.last_converged()) {
      continue;
    }
    ++converged_count;
    EXPECT_LE(obj.last_residual(), 2e-8);
    if (!have_reference) {
      reference = obj.last_checksum();
      have_reference = true;
    } else {
      EXPECT_NEAR(obj.last_checksum(), reference,
                  1e-5 * std::abs(reference))
          << obj.space().to_string(c);
    }
  }
  EXPECT_GE(converged_count, 5u);  // at least CG variants + GS/SOR/MG
}

TEST(MiniSolver, PreconditioningBeatsPlainCg) {
  MiniSolverObjective obj(tiny_solver());
  Configuration cg(std::vector<double>{3, 2, 0});        // CG
  Configuration pcg_ssor(std::vector<double>{5, 2, 0});  // PCG-SSOR
  (void)obj.evaluate(cg);
  const std::size_t cg_iters = obj.last_iterations();
  ASSERT_TRUE(obj.last_converged());
  (void)obj.evaluate(pcg_ssor);
  ASSERT_TRUE(obj.last_converged());
  EXPECT_LT(obj.last_iterations(), cg_iters);
}

TEST(MiniSolver, SorBeatsJacobiInIterations) {
  MiniSolverObjective obj(tiny_solver());
  Configuration jacobi(std::vector<double>{0, 1, 0});  // Jacobi, ω=1
  Configuration sor(std::vector<double>{2, 4, 0});     // SOR, ω=1.6
  (void)obj.evaluate(jacobi);
  const std::size_t jacobi_iters = obj.last_iterations();
  (void)obj.evaluate(sor);
  ASSERT_TRUE(obj.last_converged());
  EXPECT_LT(obj.last_iterations(), jacobi_iters);
}

TEST(MiniSolver, MultigridConvergesInFewIterations) {
  MiniSolverObjective obj(tiny_solver());
  Configuration mg(std::vector<double>{6, 2, 0});  // MG, ω=1.2, 1 sweep
  (void)obj.evaluate(mg);
  EXPECT_TRUE(obj.last_converged());
  EXPECT_LT(obj.last_iterations(), 100u);
}

TEST(MiniSolver, RejectsDegenerateWorkloads) {
  MiniSolverWorkload w;
  w.grid = 7;  // odd
  EXPECT_THROW(MiniSolverObjective{w}, Error);
  w = {};
  w.tolerance = 0.0;
  EXPECT_THROW(MiniSolverObjective{w}, Error);
}

TEST(MiniSolver, TunableEndToEnd) {
  MiniSolverWorkload w = tiny_solver();
  w.max_iters = 1500;  // cap the worst configurations
  MiniSolverObjective obj(w);
  core::HiPerBOtConfig config;
  config.initial_samples = 8;
  core::HiPerBOt tuner(obj.space_ptr(), config, 4);
  const auto result = core::run_tuning(tuner, obj, 24);
  EXPECT_GT(result.best_value, 0.0);
  // The tuner should end up on one of the fast families (CG/PCG/MG/SOR),
  // never plain Jacobi.
  EXPECT_NE(result.best_config.level(0), 0u);
}

}  // namespace
}  // namespace hpb::apps
