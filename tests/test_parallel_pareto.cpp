// Tests for the thread pool, the parallel experiment runner's determinism,
// the Pareto utilities, and the bi-objective Kripke dataset.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "apps/kripke.hpp"
#include "baselines/random_search.hpp"
#include "common/thread_pool.hpp"
#include "eval/experiment.hpp"
#include "eval/pareto.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

// -------------------------------------------------------------- ThreadPool
TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit({}), Error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for_indexed(&pool, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, NullPoolRunsSeriallyInOrder) {
  std::vector<std::size_t> order;
  parallel_for_indexed(nullptr, 10, [&](std::size_t i) {
    order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_indexed(&pool, 8,
                                    [&](std::size_t i) {
                                      if (i == 3) {
                                        throw Error("boom");
                                      }
                                    }),
               Error);
  // Pool remains usable afterwards.
  std::atomic<int> counter{0};
  parallel_for_indexed(&pool, 4, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 4);
}

TEST(ParallelFor, ExperimentResultsIdenticalToSerial) {
  auto ds = testutil::separable_dataset();
  eval::TunerFactory random = [&](std::uint64_t seed) {
    return std::make_unique<baselines::RandomSearch>(ds.space_ptr(), seed);
  };
  eval::SelectionExperimentConfig config;
  config.sample_sizes = {8, 16, 30};
  config.reps = 6;
  config.seed = 99;

  const auto serial = eval::run_selection_experiment(ds, "r", random, config);
  ThreadPool pool(3);
  config.pool = &pool;
  const auto parallel = eval::run_selection_experiment(ds, "r", random,
                                                       config);
  for (std::size_t k = 0; k < config.sample_sizes.size(); ++k) {
    EXPECT_DOUBLE_EQ(serial.best_value[k].mean(),
                     parallel.best_value[k].mean());
    EXPECT_DOUBLE_EQ(serial.best_value[k].stddev(),
                     parallel.best_value[k].stddev());
    EXPECT_DOUBLE_EQ(serial.recall[k].mean(), parallel.recall[k].mean());
  }
}

// ------------------------------------------------------------------ Pareto
TEST(Pareto, FrontOfStaircase) {
  //      f2
  //  (1,5) (2,3) (3,4) (4,1): (3,4) is dominated by (2,3).
  std::vector<double> f1 = {1, 2, 3, 4};
  std::vector<double> f2 = {5, 3, 4, 1};
  const auto front = eval::pareto_front(f1, f2);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 1u);
  EXPECT_EQ(front[2], 3u);
}

TEST(Pareto, SinglePointAndDominatedDuplicates) {
  std::vector<double> one = {2.0};
  EXPECT_EQ(eval::pareto_front(one, one).size(), 1u);
  std::vector<double> f1 = {1, 1, 2};
  std::vector<double> f2 = {1, 1, 2};
  const auto front = eval::pareto_front(f1, f2);
  EXPECT_EQ(front.size(), 2u);  // both (1,1) duplicates kept, (2,2) out
}

TEST(Pareto, FrontMembersAreMutuallyNonDominated) {
  Rng rng(1);
  std::vector<double> f1(200), f2(200);
  for (std::size_t i = 0; i < 200; ++i) {
    f1[i] = rng.uniform();
    f2[i] = rng.uniform();
  }
  const auto front = eval::pareto_front(f1, f2);
  for (std::size_t a : front) {
    for (std::size_t b : front) {
      if (a == b) {
        continue;
      }
      const bool dominates = f1[a] <= f1[b] && f2[a] <= f2[b] &&
                             (f1[a] < f1[b] || f2[a] < f2[b]);
      EXPECT_FALSE(dominates);
    }
  }
  // Every non-front point is dominated by some front point.
  for (std::size_t i = 0; i < 200; ++i) {
    if (std::find(front.begin(), front.end(), i) != front.end()) {
      continue;
    }
    bool dominated = false;
    for (std::size_t a : front) {
      if (f1[a] <= f1[i] && f2[a] <= f2[i]) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << i;
  }
}

TEST(Pareto, HypervolumeKnownValues) {
  std::vector<double> f1 = {1.0};
  std::vector<double> f2 = {1.0};
  EXPECT_DOUBLE_EQ(eval::hypervolume_2d(f1, f2, 3.0, 3.0), 4.0);
  std::vector<double> g1 = {1.0, 2.0};
  std::vector<double> g2 = {2.0, 1.0};
  EXPECT_DOUBLE_EQ(eval::hypervolume_2d(g1, g2, 3.0, 3.0), 3.0);
  // Points beyond the reference contribute nothing.
  std::vector<double> h1 = {5.0};
  std::vector<double> h2 = {5.0};
  EXPECT_DOUBLE_EQ(eval::hypervolume_2d(h1, h2, 3.0, 3.0), 0.0);
}

TEST(Pareto, HypervolumeMonotoneInPoints) {
  std::vector<double> f1 = {1.0, 2.0};
  std::vector<double> f2 = {2.0, 1.0};
  const double base = eval::hypervolume_2d(f1, f2, 4.0, 4.0);
  f1.push_back(0.5);
  f2.push_back(3.0);  // new non-dominated point
  EXPECT_GT(eval::hypervolume_2d(f1, f2, 4.0, 4.0), base);
}

// ---------------------------------------------------- bi-objective dataset
TEST(KripkeTimeEnergy, ObjectivesShareTheSpaceAndTradeOff) {
  const auto datasets = apps::make_kripke_time_energy();
  EXPECT_EQ(&datasets.time.space(), &datasets.energy.space());
  EXPECT_EQ(datasets.time.size(), datasets.energy.size());

  // The time-optimal and energy-optimal configurations differ (otherwise
  // there is no tradeoff to explore).
  EXPECT_NE(datasets.time.space().ordinal_of(datasets.time.best_config()),
            datasets.energy.space().ordinal_of(datasets.energy.best_config()));

  // The exact front has more than one point and bounded size.
  std::vector<double> t, e;
  for (std::size_t i = 0; i < datasets.time.size(); ++i) {
    t.push_back(datasets.time.value(i));
    e.push_back(datasets.energy.value_of(datasets.time.config(i)));
  }
  const auto front = eval::pareto_front(t, e);
  EXPECT_GT(front.size(), 1u);
  EXPECT_LT(front.size(), 100u);
}

TEST(KripkeTimeEnergy, PowerCapDrivesTheTradeoff) {
  // Mean time decreases and mean energy increases along the PKG_LIMIT
  // axis (higher cap = faster but hungrier).
  const auto datasets = apps::make_kripke_time_energy();
  const auto& sp = datasets.time.space();
  const std::size_t i_pkg = sp.index_of("PKG_LIMIT");
  const std::size_t levels = sp.param(i_pkg).num_levels();
  std::vector<double> mean_t(levels, 0.0), mean_e(levels, 0.0);
  std::vector<std::size_t> count(levels, 0);
  for (std::size_t i = 0; i < datasets.time.size(); ++i) {
    const std::size_t l = datasets.time.config(i).level(i_pkg);
    mean_t[l] += datasets.time.value(i);
    mean_e[l] += datasets.energy.value_of(datasets.time.config(i));
    ++count[l];
  }
  for (std::size_t l = 0; l < levels; ++l) {
    mean_t[l] /= static_cast<double>(count[l]);
    mean_e[l] /= static_cast<double>(count[l]);
  }
  EXPECT_GT(mean_t.front(), mean_t.back());  // 50 W slower than 150 W
  EXPECT_LT(mean_e.front(), mean_e.back());  // ... but cheaper in energy
}

}  // namespace
}  // namespace hpb
