// Tests for the transfer-learning dataset pairs and the PerfNet baseline.
// These exercise the §VII substrate: correlated source/target surfaces,
// priors built from the source, and PerfNet's train-and-select protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "apps/transfer.hpp"
#include "baselines/perfnet.hpp"
#include "common/error.hpp"
#include "eval/metrics.hpp"
#include "surface/surface.hpp"
#include "test_util.hpp"

namespace hpb::apps {
namespace {

/// Spearman-style rank correlation over a subsample of shared indices.
double rank_correlation(const tabular::TabularObjective& a,
                        const tabular::TabularObjective& b,
                        std::size_t stride) {
  std::vector<double> va, vb;
  for (std::size_t i = 0; i < a.size(); i += stride) {
    va.push_back(a.value(i));
    vb.push_back(b.value(i));
  }
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
      r[idx[k]] = static_cast<double>(k);
    }
    return r;
  };
  const auto ra = ranks(va);
  const auto rb = ranks(vb);
  const double n = static_cast<double>(ra.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

/// Small synthetic transfer pair over the 60-config test space, with the
/// same blend construction as the app-scale pairs.
TransferPair tiny_transfer(double correlation, std::uint64_t seed = 99) {
  auto sp = testutil::small_discrete_space();
  auto make_surface = [&](std::uint64_t s) {
    return surface::SurfaceBuilder(sp, s)
        .random_main_effect("A", 0.4)
        .random_main_effect("B", 0.3)
        .random_main_effect("C", 0.3)
        .noise(0.02)
        .build();
  };
  const auto shared = make_surface(seed);
  const auto priv = make_surface(splitmix64(seed));
  tabular::TabularObjective source =
      surface::calibrate_to_range("src", shared, 1.0, 5.0);
  tabular::TabularObjective target = tabular::TabularObjective::from_function(
      "tgt", sp, [&](const space::Configuration& c) {
        return 10.0 * std::exp(correlation * std::log(shared.raw(c)) +
                               (1.0 - correlation) * std::log(priv.raw(c)));
      });
  return {std::move(source), std::move(target)};
}

TEST(TransferPairs, CorrelationOneGivesIdenticalRanking) {
  const TransferPair pair = tiny_transfer(1.0);
  EXPECT_GT(rank_correlation(pair.source, pair.target, 1), 0.999);
}

TEST(TransferPairs, CorrelationZeroDecouplesDomains) {
  const TransferPair pair = tiny_transfer(0.0);
  EXPECT_LT(std::abs(rank_correlation(pair.source, pair.target, 1)), 0.5);
}

TEST(TransferPairs, CorrelationKnobIsMonotone) {
  const double lo = rank_correlation(tiny_transfer(0.3).source,
                                     tiny_transfer(0.3).target, 1);
  const double hi = rank_correlation(tiny_transfer(0.9).source,
                                     tiny_transfer(0.9).target, 1);
  EXPECT_GT(hi, lo);
}

TEST(KripkeTransfer, ShapesAndCorrelation) {
  const TransferPair pair = make_kripke_transfer(0.9);
  EXPECT_EQ(pair.source.size(), pair.target.size());
  EXPECT_GT(pair.source.size(), 10000u);  // paper: 17815 / 17385
  // Same space object → PerfNet/priors can reuse the encoding.
  EXPECT_EQ(&pair.source.space(), &pair.target.space());
  EXPECT_GT(rank_correlation(pair.source, pair.target, 37), 0.6);
  EXPECT_THROW((void)make_kripke_transfer(1.5), Error);
}

TEST(HypreTransfer, ShapesAndCorrelation) {
  const TransferPair pair = make_hypre_transfer(0.9);
  EXPECT_EQ(pair.source.size(), 57600u);  // paper: 57313
  EXPECT_EQ(pair.source.space().num_params(), 7u);
  EXPECT_GT(rank_correlation(pair.source, pair.target, 101), 0.6);
}

// ----------------------------------------------------------------- PerfNet
baselines::PerfNetConfig fast_perfnet() {
  baselines::PerfNetConfig cfg;
  cfg.hidden_sizes = {16};
  // The 60-row toy source needs more epochs than the app-scale defaults to
  // accumulate a comparable number of Adam steps.
  cfg.pretrain.epochs = 300;
  cfg.pretrain.batch_size = 16;
  cfg.pretrain.adam.learning_rate = 3e-3;
  cfg.finetune.epochs = 100;
  cfg.finetune.batch_size = 8;
  cfg.max_source_rows = 500;
  return cfg;
}

TEST(PerfNet, SelectionHasExactlyBudgetDistinctRows) {
  const TransferPair pair = tiny_transfer(0.9);
  baselines::PerfNet net(fast_perfnet(), 7);
  net.train(pair.source, pair.target, 20);
  const auto sel = net.selection();
  EXPECT_EQ(sel.size(), 20u);
  const std::set<std::size_t> unique(sel.begin(), sel.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t idx : sel) {
    EXPECT_LT(idx, pair.target.size());
  }
}

TEST(PerfNet, PredictionsCorrelateWithTargetOnStrongTransfer) {
  const TransferPair pair = tiny_transfer(0.95);
  baselines::PerfNet net(fast_perfnet(), 8);
  net.train(pair.source, pair.target, 20);
  // Count order agreements between prediction and truth on a config pair
  // sample.
  std::size_t agree = 0, total = 0;
  for (std::size_t i = 0; i + 1 < pair.target.size(); i += 2) {
    const double pi = net.predict(pair.target.config(i));
    const double pj = net.predict(pair.target.config(i + 1));
    const double ti = pair.target.value(i);
    const double tj = pair.target.value(i + 1);
    if ((pi < pj) == (ti < tj)) {
      ++agree;
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.7);
}

TEST(PerfNet, SelectionBeatsRandomRecall) {
  const TransferPair pair = tiny_transfer(0.9);
  baselines::PerfNet net(fast_perfnet(), 9);
  constexpr std::size_t kBudget = 12;
  net.train(pair.source, pair.target, kBudget);
  const double recall = eval::recall_tolerance_indices(
      pair.target, net.selection(), 0.20);
  // Random selection of 12/60 rows recalls ~20% in expectation.
  EXPECT_GT(recall, 0.3);
}

TEST(PerfNet, ValidatesArguments) {
  const TransferPair pair = tiny_transfer(0.9);
  baselines::PerfNet net(fast_perfnet(), 10);
  EXPECT_THROW(net.train(pair.source, pair.target, 1), Error);
  EXPECT_THROW(net.train(pair.source, pair.target, pair.target.size() + 1),
               Error);
  EXPECT_THROW((void)net.predict(pair.target.config(0)), Error);  // untrained
}

}  // namespace
}  // namespace hpb::apps
