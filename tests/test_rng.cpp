#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hpb {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(SplitMix64, MixesNearbyInputs) {
  // Consecutive inputs must produce outputs differing in many bits.
  for (std::uint64_t x = 0; x < 64; ++x) {
    const std::uint64_t diff = splitmix64(x) ^ splitmix64(x + 1);
    EXPECT_GE(std::popcount(diff), 10u) << "x=" << x;
  }
}

TEST(HashToUnit, InHalfOpenUnitInterval) {
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double u = hash_to_unit(splitmix64(k));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashToNormal, MatchesStandardNormalMoments) {
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int k = 0; k < kN; ++k) {
    const double z = hash_to_normal(static_cast<std::uint64_t>(k) * 2654435761u);
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng a(7);
  Rng child = a.split();
  // The child stream must not replay the parent's next outputs.
  Rng a2(7);
  (void)a2.split();
  EXPECT_EQ(a.next_u64(), a2.next_u64());  // parent unaffected determinism
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(5.0, 2.0), Error);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t v = rng.index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, IndexZeroThrows) {
  Rng rng(3);
  EXPECT_THROW((void)rng.index(0), Error);
}

TEST(Rng, IntegerInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.integer(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal(3.0, 2.0);
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 3.0, 0.06);
  EXPECT_NEAR(sum2 / kN - mean * mean, 4.0, 0.15);
}

TEST(Rng, NormalNegativeStddevThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), Error);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW((void)rng.categorical({}), Error);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}), Error);
  EXPECT_THROW((void)rng.categorical({1.0, -1.0}), Error);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (std::size_t v : sample) {
      EXPECT_LT(v, 20u);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFullSetIsPermutation) {
  Rng rng(19);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sample[i], i);
  }
}

TEST(Rng, SampleWithoutReplacementRejectsKGreaterThanN) {
  Rng rng(1);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

}  // namespace
}  // namespace hpb
