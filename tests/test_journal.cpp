// Crash-tolerant session durability:
//   - the write-ahead journal round-trips headers and observations bitwise
//     (doubles stored as IEEE-754 bit patterns, NaN objectives included);
//   - a journal killed at ANY byte offset — record boundaries and torn
//     mid-line tails alike — resumes to a final result bitwise identical
//     to the uninterrupted run, for HiPerBOt, GEIST, and random search;
//   - replaying a journal into the wrong session (different seed / space)
//     is detected, not silently diverged;
//   - the wall-clock watchdog converts hung and overdue evaluations into
//     kTimeout failures that flow through the normal failure path while
//     the session completes;
//   - SIGINT-style stop flags end the session between rounds with a
//     resumable journal;
//   - StopConfig.max_wall_time_seconds bounds a session's wall time;
//   - write_history_csv replaces files atomically;
//   - the HPB_EVAL_TIMEOUT_MS / HPB_JOURNAL / HPB_HANG_RATE environment
//     knobs are parsed strictly.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/history_io.hpp"
#include "core/journal.hpp"
#include "core/stopping.hpp"
#include "eval/experiment.hpp"
#include "eval/methods.hpp"
#include "tabular/fault_injection.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using core::JournalContents;
using core::JournalHeader;
using core::JournalWriter;
using core::Observation;
using core::StopConfig;
using core::StopReason;
using core::TuneResult;
using core::TuningEngine;

constexpr std::uint64_t kSeed = 0x10a17e;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "journal_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

/// NaN-safe bitwise comparison (failed observations carry NaN objectives).
void expect_identical(const TuneResult& a, const TuneResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].config.values(), b.history[i].config.values())
        << "history diverges at evaluation " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.history[i].y),
              std::bit_cast<std::uint64_t>(b.history[i].y))
        << "objective diverges at evaluation " << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status);
  }
  ASSERT_EQ(a.best_so_far.size(), b.best_so_far.size());
  for (std::size_t i = 0; i < a.best_so_far.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.best_so_far[i]),
              std::bit_cast<std::uint64_t>(b.best_so_far[i]));
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.best_value),
            std::bit_cast<std::uint64_t>(b.best_value));
  EXPECT_EQ(a.best_config.values(), b.best_config.values());
  EXPECT_EQ(a.num_failed, b.num_failed);
}

JournalHeader make_header(const tabular::TabularObjective& ds,
                          const std::string& method, std::size_t batch,
                          std::size_t budget) {
  JournalHeader h;
  h.method = method;
  h.dataset = ds.name();
  h.seed = kSeed;
  h.batch_size = batch;
  h.num_params = ds.space().num_params();
  h.max_evaluations = budget;
  return h;
}

// ------------------------------------------------------------ round trip

TEST(JournalRoundTrip, HeaderRoundsAndFinalizeSurviveReadBack) {
  auto ds = testutil::separable_dataset();
  const std::string path = temp_path("roundtrip.hpbj");
  JournalHeader header = make_header(ds, "random", 3, 12);
  header.warm_start = "warm start with spaces.csv";
  header.stagnation_patience = 7;
  header.target_value = 1.25;
  header.fail_rate = 0.125;
  header.crash_rate = 0.0625;
  header.hang_rate = 0.03125;
  {
    JournalWriter writer = JournalWriter::create(path, header);
    writer.begin_round(3, 2);
    Observation ok{ds.configs()[5], 17.5, tabular::EvalStatus::kOk};
    Observation bad{ds.configs()[9], std::nan(""),
                    tabular::EvalStatus::kInvalid};
    writer.append_observation(ok);
    writer.append_observation(bad);
    writer.finalize("stagnation");
  }
  const JournalContents contents = core::read_journal(path);
  EXPECT_EQ(contents.header.method, header.method);
  EXPECT_EQ(contents.header.dataset, header.dataset);
  EXPECT_EQ(contents.header.warm_start, header.warm_start);
  EXPECT_EQ(contents.header.seed, header.seed);
  EXPECT_EQ(contents.header.batch_size, header.batch_size);
  EXPECT_EQ(contents.header.num_params, header.num_params);
  EXPECT_EQ(contents.header.max_evaluations, header.max_evaluations);
  EXPECT_EQ(contents.header.stagnation_patience, header.stagnation_patience);
  EXPECT_EQ(contents.header.target_value, header.target_value);
  EXPECT_EQ(contents.header.fail_rate, header.fail_rate);
  EXPECT_EQ(contents.header.crash_rate, header.crash_rate);
  EXPECT_EQ(contents.header.hang_rate, header.hang_rate);
  ASSERT_EQ(contents.rounds.size(), 1u);
  EXPECT_EQ(contents.rounds[0].requested, 3u);
  ASSERT_EQ(contents.rounds[0].observations.size(), 2u);
  EXPECT_EQ(contents.rounds[0].observations[0].config.values(),
            ds.configs()[5].values());
  EXPECT_EQ(contents.rounds[0].observations[0].y, 17.5);
  EXPECT_EQ(contents.rounds[0].observations[0].status,
            tabular::EvalStatus::kOk);
  EXPECT_TRUE(std::isnan(contents.rounds[0].observations[1].y));
  EXPECT_EQ(contents.rounds[0].observations[1].status,
            tabular::EvalStatus::kInvalid);
  EXPECT_TRUE(contents.finalized);
  EXPECT_EQ(contents.finish_reason, "stagnation");
  // The end marker sits beyond the resumable prefix.
  EXPECT_LT(contents.valid_bytes, slurp(path).size());
}

TEST(JournalRoundTrip, ExtremeDoubleBitsRoundTripExactly) {
  auto ds = testutil::separable_dataset();
  const std::string path = temp_path("bits.hpbj");
  JournalHeader header = make_header(ds, "random", 1, 4);
  header.target_value = -std::numeric_limits<double>::infinity();
  const std::vector<double> values = {
      0.0, -0.0, std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::infinity(), 1e308, -1.0 / 3.0};
  {
    JournalWriter writer = JournalWriter::create(path, header);
    for (const double v : values) {
      writer.begin_round(1, 1);
      writer.append_observation({ds.configs()[0], v,
                                 tabular::EvalStatus::kOk});
    }
  }
  const JournalContents contents = core::read_journal(path);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(contents.header.target_value),
            std::bit_cast<std::uint64_t>(header.target_value));
  ASSERT_EQ(contents.rounds.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(contents.rounds[i].observations[0].y),
        std::bit_cast<std::uint64_t>(values[i]))
        << "value " << values[i] << " did not round-trip";
  }
  EXPECT_FALSE(contents.finalized);
}

TEST(JournalRoundTrip, RejectsNonJournalAndMissingFiles) {
  const std::string path = temp_path("garbage.hpbj");
  spill(path, "objective,status\n1.5,ok\n");
  EXPECT_THROW((void)core::read_journal(path), Error);
  EXPECT_THROW((void)core::read_journal(temp_path("no_such.hpbj")), Error);
}

// --------------------------------------------------- kill-and-resume

/// Reference run: journaled, fault-injected session driven to completion.
struct ReferenceRun {
  core::StoppedTuneResult stopped;
  std::string journal_bytes;
};

ReferenceRun run_reference(tabular::TabularObjective& ds,
                           const std::string& method, std::size_t batch,
                           std::size_t budget, const std::string& path) {
  auto tuner = eval::make_named_tuner(method, ds, kSeed);
  tabular::FaultInjectingObjective faulty(
      ds, {.fail_rate = 0.15, .crash_rate = 0.05, .seed = kSeed});
  JournalWriter writer =
      JournalWriter::create(path, make_header(ds, method, batch, budget));
  const TuningEngine engine({.batch_size = batch, .journal = &writer});
  StopConfig stop;
  stop.max_evaluations = budget;
  ReferenceRun ref;
  ref.stopped = engine.run_until(*tuner, faulty, stop);
  ref.journal_bytes = slurp(path);
  return ref;
}

/// Resume from a journal prefix and drive the session to completion.
core::StoppedTuneResult resume_from(tabular::TabularObjective& ds,
                                    const std::string& method,
                                    std::size_t batch, std::size_t budget,
                                    const std::string& path) {
  const JournalContents contents = core::read_journal(path);
  auto tuner = eval::make_named_tuner(method, ds, kSeed);
  const std::vector<Observation> replayed =
      core::replay_journal(*tuner, ds.space(), contents);
  tabular::FaultInjectingObjective faulty(
      ds, {.fail_rate = 0.15, .crash_rate = 0.05, .seed = kSeed});
  JournalWriter writer = JournalWriter::append(path, contents);
  const TuningEngine engine({.batch_size = batch, .journal = &writer});
  StopConfig stop;
  stop.max_evaluations = budget;
  return engine.run_until(*tuner, faulty, stop, replayed);
}

class KillAndResume : public ::testing::TestWithParam<const char*> {};

TEST_P(KillAndResume, EveryTruncationOffsetResumesBitwiseIdentical) {
  const std::string method = GetParam();
  auto ds = testutil::separable_dataset();
  constexpr std::size_t kBatch = 5;
  constexpr std::size_t kBudget = 23;  // deliberately not a batch multiple
  const std::string ref_path = temp_path(method + std::string("_ref.hpbj"));
  const ReferenceRun ref =
      run_reference(ds, method, kBatch, kBudget, ref_path);
  ASSERT_EQ(ref.stopped.result.history.size(), kBudget);
  ASSERT_EQ(ref.stopped.reason, StopReason::kBudgetExhausted);

  // Kill points: after the header, every line boundary and a torn offset
  // three bytes into the following line.
  const std::string& bytes = ref.journal_bytes;
  const std::size_t header_end = bytes.find("\nround");
  ASSERT_NE(header_end, std::string::npos);
  std::vector<std::size_t> kill_points;
  for (std::size_t pos = header_end + 1; pos < bytes.size();
       pos = bytes.find('\n', pos) + 1) {
    kill_points.push_back(pos);
    if (pos + 3 < bytes.size()) {
      kill_points.push_back(pos + 3);  // torn mid-line tail
    }
    if (bytes.find('\n', pos) == std::string::npos) {
      break;
    }
  }
  ASSERT_GT(kill_points.size(), 2 * kBudget);  // every record is covered

  const std::string resume_path = temp_path(method + std::string("_cut.hpbj"));
  for (const std::size_t cut : kill_points) {
    SCOPED_TRACE("killed at byte " + std::to_string(cut) + " of " +
                 std::to_string(bytes.size()));
    spill(resume_path, bytes.substr(0, cut));
    const JournalContents prefix = core::read_journal(resume_path);
    if (prefix.finalized) {
      continue;  // the whole session survived; nothing to resume
    }
    const auto resumed =
        resume_from(ds, method, kBatch, kBudget, resume_path);
    EXPECT_EQ(resumed.reason, ref.stopped.reason);
    expect_identical(ref.stopped.result, resumed.result);
    // The healed journal is byte-for-byte the uninterrupted one.
    EXPECT_EQ(slurp(resume_path), bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Tuners, KillAndResume,
                         ::testing::Values("hiperbot", "geist", "random"));

TEST(JournalReplay, WrongSeedIsDetectedNotSilentlyDiverged) {
  auto ds = testutil::separable_dataset();
  const std::string path = temp_path("wrong_seed.hpbj");
  (void)run_reference(ds, "random", 4, 16, path);
  const JournalContents contents = core::read_journal(path);
  auto wrong = eval::make_named_tuner("random", ds, kSeed + 1);
  EXPECT_THROW((void)core::replay_journal(*wrong, ds.space(), contents),
               Error);
}

TEST(JournalReplay, WrongSpaceIsRejected) {
  auto ds = testutil::separable_dataset();
  const std::string path = temp_path("wrong_space.hpbj");
  (void)run_reference(ds, "random", 4, 16, path);
  JournalContents contents = core::read_journal(path);
  contents.header.num_params = 99;
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  EXPECT_THROW((void)core::replay_journal(*tuner, ds.space(), contents),
               Error);
}

// ------------------------------------------------------------- watchdog

/// Ignores the cancellation token entirely and sleeps through its deadline:
/// the worst-behaved objective the watchdog must still contain.
class OversleepingObjective final : public tabular::Objective {
 public:
  explicit OversleepingObjective(tabular::TabularObjective& inner,
                                 std::chrono::milliseconds nap)
      : inner_(&inner), nap_(nap) {}
  [[nodiscard]] const space::ParameterSpace& space() const override {
    return inner_->space();
  }
  [[nodiscard]] double evaluate(const space::Configuration& c) override {
    std::this_thread::sleep_for(nap_);
    return inner_->evaluate(c);
  }

 private:
  tabular::TabularObjective* inner_;
  std::chrono::milliseconds nap_;
};

TEST(Watchdog, OverdueEvaluationsBecomeTimeoutFailures) {
  auto ds = testutil::separable_dataset();
  OversleepingObjective slow(ds, std::chrono::milliseconds(30));
  const TuningEngine engine(
      {.batch_size = 2, .eval_deadline = std::chrono::milliseconds(5)});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const TuneResult r = engine.run(*tuner, slow, 6);
  EXPECT_EQ(r.history.size(), 6u);
  EXPECT_EQ(r.num_failed, 6u);
  for (const Observation& o : r.history) {
    EXPECT_EQ(o.status, tabular::EvalStatus::kTimeout);
    EXPECT_TRUE(std::isnan(o.y));
  }
}

TEST(Watchdog, InjectedHangsAreCancelledAndTheSessionCompletes) {
  auto ds = testutil::separable_dataset();
  tabular::FaultInjectingObjective faulty(
      ds, {.hang_rate = 0.3, .seed = kSeed});
  const TuningEngine engine(
      {.batch_size = 4, .eval_deadline = std::chrono::milliseconds(25)});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const auto started = std::chrono::steady_clock::now();
  const TuneResult r = engine.run(*tuner, faulty, 40);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_EQ(r.history.size(), 40u);
  std::size_t timeouts = 0;
  for (const Observation& o : r.history) {
    if (faulty.in_hang_region(o.config)) {
      EXPECT_EQ(o.status, tabular::EvalStatus::kTimeout);
      ++timeouts;
    } else {
      EXPECT_EQ(o.status, tabular::EvalStatus::kOk);
    }
  }
  EXPECT_GT(timeouts, 0u) << "hang rate 0.3 over 40 draws never hung";
  EXPECT_EQ(r.num_failed, timeouts);
  // Every hang ends at its deadline, not at some unbounded later point:
  // 40 evaluations with a 25 ms deadline fit comfortably in ten seconds.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

TEST(Watchdog, UncancellableTokenFailsFastInsteadOfHanging) {
  auto ds = testutil::separable_dataset();
  tabular::FaultInjectingObjective faulty(
      ds, {.hang_rate = 0.999, .seed = kSeed});
  // No deadline, no stop flag: the injector must report kTimeout
  // immediately rather than wedging the worker forever.
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    (void)faulty.evaluate_result(ds.configs()[i]);
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
}

TEST(CancellationToken, DefaultNeverCancels) {
  const CancellationToken token;
  EXPECT_FALSE(token.can_cancel());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationToken, StopFlagAndDeadlineBothCancel) {
  std::atomic<bool> flag{false};
  const auto by_flag = CancellationToken::with_stop_flag(&flag);
  EXPECT_TRUE(by_flag.can_cancel());
  EXPECT_FALSE(by_flag.cancelled());
  flag.store(true);
  EXPECT_TRUE(by_flag.cancelled());
  EXPECT_TRUE(by_flag.stop_requested());

  const auto by_deadline = CancellationToken::with_deadline(
      CancellationToken::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(by_deadline.can_cancel());
  EXPECT_TRUE(by_deadline.deadline_passed());
  EXPECT_TRUE(by_deadline.cancelled());

  const auto future = CancellationToken::with_deadline(
      CancellationToken::Clock::now() + std::chrono::hours(1));
  EXPECT_TRUE(future.can_cancel());
  EXPECT_FALSE(future.cancelled());
}

TEST(ThreadPoolDeadline, WaitIdleUntilReportsBusyThenIdle) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  EXPECT_FALSE(pool.wait_idle_until(std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(20)));
  release.store(true);
  EXPECT_TRUE(pool.wait_idle_until(std::chrono::steady_clock::now() +
                                   std::chrono::seconds(30)));
}

// ----------------------------------------------------- graceful shutdown

/// Raises the session stop flag after a fixed number of evaluations —
/// a SIGINT arriving mid-run, deterministically.
class SelfInterruptingObjective final : public tabular::Objective {
 public:
  SelfInterruptingObjective(tabular::TabularObjective& inner,
                            std::size_t after, std::atomic<bool>* flag)
      : inner_(&inner), after_(after), flag_(flag) {}
  [[nodiscard]] const space::ParameterSpace& space() const override {
    return inner_->space();
  }
  [[nodiscard]] double evaluate(const space::Configuration& c) override {
    if (++calls_ >= after_) {
      flag_->store(true);
    }
    return inner_->evaluate(c);
  }

 private:
  tabular::TabularObjective* inner_;
  std::size_t after_;
  std::atomic<bool>* flag_;
  std::size_t calls_ = 0;
};

TEST(GracefulShutdown, StopFlagInterruptsBetweenRoundsAndResumes) {
  auto ds = testutil::separable_dataset();
  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kBudget = 24;
  StopConfig stop;
  stop.max_evaluations = kBudget;

  // Uninterrupted reference (no journal, no flag).
  auto ref_tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
  const TuningEngine plain({.batch_size = kBatch});
  const auto reference = plain.run_until(*ref_tuner, ds, stop);

  // Interrupted run: the "signal" lands during round 3.
  const std::string path = temp_path("interrupt.hpbj");
  std::atomic<bool> flag{false};
  SelfInterruptingObjective interrupting(ds, 10, &flag);
  auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
  JournalWriter writer = JournalWriter::create(
      path, make_header(ds, "hiperbot", kBatch, kBudget));
  const TuningEngine engine(
      {.batch_size = kBatch, .journal = &writer, .stop_flag = &flag});
  const auto interrupted = engine.run_until(*tuner, interrupting, stop);
  EXPECT_EQ(interrupted.reason, StopReason::kInterrupted);
  EXPECT_EQ(interrupted.result.history.size(), 12u);  // 3 full rounds drain

  // The journal is unfinalized (resumable) and holds exactly those rounds.
  const JournalContents contents = core::read_journal(path);
  EXPECT_FALSE(contents.finalized);
  EXPECT_EQ(contents.num_observations(), 12u);

  // Resume completes the session bitwise-identically to the reference.
  auto resumed_tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
  const std::vector<Observation> replayed =
      core::replay_journal(*resumed_tuner, ds.space(), contents);
  JournalWriter appender = JournalWriter::append(path, contents);
  const TuningEngine resumed_engine(
      {.batch_size = kBatch, .journal = &appender});
  const auto resumed = resumed_engine.run_until(*resumed_tuner, ds, stop,
                                                replayed);
  EXPECT_EQ(resumed.reason, StopReason::kBudgetExhausted);
  expect_identical(reference.result, resumed.result);
  EXPECT_TRUE(core::read_journal(path).finalized);
}

TEST(GracefulShutdown, PreRaisedFlagYieldsEmptyInterruptedResult) {
  auto ds = testutil::separable_dataset();
  std::atomic<bool> flag{true};
  const TuningEngine engine({.batch_size = 2, .stop_flag = &flag});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  StopConfig stop;
  stop.max_evaluations = 10;
  const auto stopped = engine.run_until(*tuner, ds, stop);
  EXPECT_EQ(stopped.reason, StopReason::kInterrupted);
  EXPECT_TRUE(stopped.result.history.empty());
}

TEST(WallClock, MaxWallTimeEndsTheSessionWithAFinalizedJournal) {
  auto ds = testutil::separable_dataset();
  OversleepingObjective slow(ds, std::chrono::milliseconds(15));
  const std::string path = temp_path("walltime.hpbj");
  JournalWriter writer =
      JournalWriter::create(path, make_header(ds, "random", 1, 10000));
  const TuningEngine engine({.batch_size = 1, .journal = &writer});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  StopConfig stop;
  stop.max_evaluations = 10000;
  stop.max_wall_time_seconds = 0.05;
  const auto stopped = engine.run_until(*tuner, slow, stop);
  EXPECT_EQ(stopped.reason, StopReason::kWallTime);
  EXPECT_GT(stopped.result.history.size(), 0u);
  EXPECT_LT(stopped.result.history.size(), 10000u);
  const JournalContents contents = core::read_journal(path);
  EXPECT_TRUE(contents.finalized);
  EXPECT_EQ(contents.finish_reason, "wall_time");
}

// ------------------------------------------------------------ atomic CSV

TEST(AtomicHistoryCsv, WritesLeaveNoTempFileAndReplaceWholesale) {
  auto ds = testutil::separable_dataset();
  const std::string path = temp_path("history.csv");
  const std::vector<Observation> first = {
      {ds.configs()[0], 4.0, tabular::EvalStatus::kOk}};
  const std::vector<Observation> second = {
      {ds.configs()[1], 8.0, tabular::EvalStatus::kOk},
      {ds.configs()[2], std::nan(""), tabular::EvalStatus::kTimeout}};
  core::write_history_csv(path, ds.space(), first);
  const std::string once = slurp(path);
  EXPECT_NE(once.find("objective"), std::string::npos);
  core::write_history_csv(path, ds.space(), second);
  const std::string twice = slurp(path);
  EXPECT_NE(twice.find("timeout"), std::string::npos);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "temporary file left behind";
}

TEST(AtomicHistoryCsv, UnwritableDirectoryFailsCleanly) {
  auto ds = testutil::separable_dataset();
  const std::vector<Observation> obs = {
      {ds.configs()[0], 4.0, tabular::EvalStatus::kOk}};
  EXPECT_THROW(core::write_history_csv(
                   temp_path("no_such_dir/history.csv"), ds.space(), obs),
               Error);
}

// -------------------------------------------------------------- env knobs

class DurabilityEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("HPB_EVAL_TIMEOUT_MS");
    unsetenv("HPB_JOURNAL");
    unsetenv("HPB_HANG_RATE");
    unsetenv("HPB_TRACE");
  }
};

TEST_F(DurabilityEnv, UnsetFallsBack) {
  unsetenv("HPB_EVAL_TIMEOUT_MS");
  unsetenv("HPB_JOURNAL");
  unsetenv("HPB_HANG_RATE");
  unsetenv("HPB_TRACE");
  EXPECT_EQ(eval::eval_timeout_ms_from_env(0), 0u);
  EXPECT_EQ(eval::eval_timeout_ms_from_env(250), 250u);
  EXPECT_TRUE(eval::journal_path_from_env().empty());
  EXPECT_TRUE(eval::trace_path_from_env().empty());
  EXPECT_EQ(tabular::hang_rate_from_env(0.25), 0.25);
}

TEST_F(DurabilityEnv, SetValuesParseStrictly) {
  setenv("HPB_EVAL_TIMEOUT_MS", "500", 1);
  EXPECT_EQ(eval::eval_timeout_ms_from_env(0), 500u);
  setenv("HPB_JOURNAL", "runs/session.hpbj", 1);
  EXPECT_EQ(eval::journal_path_from_env(), "runs/session.hpbj");
  setenv("HPB_TRACE", "runs/session.trace.jsonl", 1);
  EXPECT_EQ(eval::trace_path_from_env(), "runs/session.trace.jsonl");
  setenv("HPB_HANG_RATE", "0.125", 1);
  EXPECT_EQ(tabular::hang_rate_from_env(0.0), 0.125);
}

TEST_F(DurabilityEnv, GarbageIsRejected) {
  for (const char* bad : {"", "  ", "abc", "12abc", "1.5", "-3", "0"}) {
    setenv("HPB_EVAL_TIMEOUT_MS", bad, 1);
    EXPECT_THROW((void)eval::eval_timeout_ms_from_env(0), Error)
        << "HPB_EVAL_TIMEOUT_MS=\"" << bad << "\" should be rejected";
  }
  for (const char* bad : {"", "   ", "nope", "1.0", "-0.1"}) {
    setenv("HPB_HANG_RATE", bad, 1);
    EXPECT_THROW((void)tabular::hang_rate_from_env(0.0), Error)
        << "HPB_HANG_RATE=\"" << bad << "\" should be rejected";
  }
  setenv("HPB_JOURNAL", "   ", 1);
  EXPECT_THROW((void)eval::journal_path_from_env(), Error);
  setenv("HPB_TRACE", "   ", 1);
  EXPECT_THROW((void)eval::trace_path_from_env(), Error);
}

// ------------------------------------------------------------------ fuzz

/// The bytes of a real journaled session (mixed ok / failed records) to
/// mutate.
std::string valid_session_bytes() {
  auto ds = testutil::separable_dataset();
  const std::string path = temp_path("fuzz_seed.hpbj");
  {
    JournalWriter journal =
        JournalWriter::create(path, make_header(ds, "hiperbot", 3, 24));
    tabular::FaultInjectingObjective faulty(
        ds, {.fail_rate = 0.15, .seed = 0xfa11});
    const TuningEngine engine({.batch_size = 3, .journal = &journal});
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    (void)engine.run(*tuner, faulty, 24);
  }
  std::string bytes = slurp(path);
  std::remove(path.c_str());
  return bytes;
}

/// Whatever the reader salvages from a mutated file must be internally
/// consistent: a sane header, well-formed observations, and a valid_bytes
/// prefix that re-reads to the same contents and accepts appended rounds.
void expect_valid_salvage(const JournalContents& contents,
                          const std::string& mutated,
                          const std::string& path) {
  EXPECT_FALSE(contents.header.method.empty());
  EXPECT_GT(contents.header.num_params, 0u);
  EXPECT_GT(contents.header.batch_size, 0u);
  ASSERT_LE(contents.valid_bytes, mutated.size());
  for (const core::JournalRound& round : contents.rounds) {
    EXPECT_GT(round.observations.size(), 0u);
    EXPECT_LE(round.observations.size(), round.requested);
    for (const Observation& o : round.observations) {
      EXPECT_EQ(o.config.size(), contents.header.num_params);
      if (o.ok()) {
        EXPECT_FALSE(std::isnan(o.y))
            << "reader accepted an ok record with a NaN objective";
      } else {
        EXPECT_NO_THROW((void)tabular::status_name(o.status));
      }
    }
  }
  // Truncating to the validated prefix must reproduce the salvage exactly —
  // that is the file JournalWriter::append will continue.
  spill(path, mutated.substr(0, contents.valid_bytes));
  const JournalContents again = core::read_journal(path);
  EXPECT_EQ(again.header.method, contents.header.method);
  EXPECT_EQ(again.header.num_params, contents.header.num_params);
  ASSERT_EQ(again.rounds.size(), contents.rounds.size());
  for (std::size_t r = 0; r < again.rounds.size(); ++r) {
    ASSERT_EQ(again.rounds[r].observations.size(),
              contents.rounds[r].observations.size());
    for (std::size_t i = 0; i < again.rounds[r].observations.size(); ++i) {
      const Observation& a = again.rounds[r].observations[i];
      const Observation& b = contents.rounds[r].observations[i];
      EXPECT_EQ(a.config.values(), b.config.values());
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.y),
                std::bit_cast<std::uint64_t>(b.y));
      EXPECT_EQ(a.status, b.status);
    }
  }
  EXPECT_EQ(again.valid_bytes, contents.valid_bytes);
  // And the salvaged prefix accepts a continued session.
  {
    JournalWriter writer = JournalWriter::append(path, again);
    writer.begin_round(1, 1);
    writer.append_observation(
        {space::Configuration(std::vector<double>(
             contents.header.num_params, 0.0)),
         1.0, tabular::EvalStatus::kOk});
  }
  const JournalContents extended = core::read_journal(path);
  EXPECT_EQ(extended.rounds.size(), contents.rounds.size() + 1);
}

TEST(JournalFuzz, RandomByteMutationsNeverCrashOrAcceptCorruptRecords) {
  const std::string pristine = valid_session_bytes();
  ASSERT_GT(pristine.size(), 100u);
  const std::string path = temp_path("fuzz.hpbj");
  Rng rng(0xf022);
  std::size_t salvaged = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string mutated = pristine;
    const std::size_t edits = 1 + rng.index(4);
    for (std::size_t e = 0; e < edits && !mutated.empty(); ++e) {
      const std::size_t at = rng.index(mutated.size());
      switch (rng.index(4)) {
        case 0:  // flip one byte
          mutated[at] = static_cast<char>(rng.next_u64() & 0xff);
          break;
        case 1:  // insert a random byte
          mutated.insert(at, 1, static_cast<char>(rng.next_u64() & 0xff));
          break;
        case 2:  // delete one byte
          mutated.erase(at, 1);
          break;
        case 3:  // tear the tail (crash mid-write)
          mutated.resize(at);
          break;
      }
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    spill(path, mutated);
    JournalContents contents;
    try {
      contents = core::read_journal(path);
    } catch (const Error&) {
      continue;  // rejecting the whole file is always a valid outcome
    }
    ++salvaged;
    expect_valid_salvage(contents, mutated, path);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // Most single-digit mutations land in the body, so the header usually
  // survives and the reader salvages a prefix instead of rejecting.
  EXPECT_GT(salvaged, kTrials / 4) << "fuzzer mostly hit the header; "
                                      "mutation mix needs rebalancing";
  std::remove(path.c_str());
}

TEST(JournalFuzz, OkRecordWithNaNObjectiveIsATornTail) {
  auto ds = testutil::separable_dataset();
  const std::string path = temp_path("nonfinite.hpbj");
  {
    JournalWriter writer =
        JournalWriter::create(path, make_header(ds, "random", 1, 4));
    writer.begin_round(1, 1);
    writer.append_observation({ds.configs()[0], 2.0,
                               tabular::EvalStatus::kOk});
  }
  std::string bytes = slurp(path);
  // Forge a second round whose ok record carries NaN bits.
  std::ostringstream forged;
  forged << "round 1 1 1\nobs ok 7ff8000000000000";
  for (std::size_t p = 0; p < ds.space().num_params(); ++p) {
    forged << " 3ff0000000000000";
  }
  forged << '\n';
  spill(path, bytes + forged.str());
  const JournalContents contents = core::read_journal(path);
  EXPECT_EQ(contents.rounds.size(), 1u) << "NaN-valued ok record was "
                                           "accepted instead of dropped";
  EXPECT_EQ(contents.valid_bytes, bytes.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpb
