// Unit and property tests for Parameter, Configuration, and ParameterSpace:
// ordinal round-trips, constrained enumeration, uniform sampling, and
// one-hot encoding.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/error.hpp"
#include "space/parameter_space.hpp"
#include "test_util.hpp"

namespace hpb::space {
namespace {

TEST(Parameter, CategoricalLabelsAndDefaults) {
  const auto p = Parameter::categorical("layout", {"DGZ", "DZG"});
  EXPECT_EQ(p.name(), "layout");
  EXPECT_EQ(p.kind(), ParamKind::kCategorical);
  EXPECT_TRUE(p.is_discrete());
  EXPECT_EQ(p.num_levels(), 2u);
  EXPECT_EQ(p.level_label(0), "DGZ");
  EXPECT_DOUBLE_EQ(p.level_value(1), 1.0);  // numeric defaults to index
}

TEST(Parameter, CategoricalNumericCarriesValues) {
  const auto p = Parameter::categorical_numeric("omp", {1, 2, 4, 8});
  EXPECT_EQ(p.num_levels(), 4u);
  EXPECT_DOUBLE_EQ(p.level_value(2), 4.0);
  EXPECT_EQ(p.level_label(3), "8");
}

TEST(Parameter, IntegerRange) {
  const auto p = Parameter::integer("n", -2, 3);
  EXPECT_EQ(p.num_levels(), 6u);
  EXPECT_DOUBLE_EQ(p.level_value(0), -2.0);
  EXPECT_DOUBLE_EQ(p.level_value(5), 3.0);
  EXPECT_EQ(p.level_label(2), "0");
}

TEST(Parameter, ContinuousBounds) {
  const auto p = Parameter::continuous("x", 0.5, 2.5);
  EXPECT_FALSE(p.is_discrete());
  EXPECT_DOUBLE_EQ(p.lo(), 0.5);
  EXPECT_DOUBLE_EQ(p.hi(), 2.5);
  EXPECT_THROW((void)p.num_levels(), Error);
  EXPECT_THROW((void)p.level_value(0), Error);
}

TEST(Parameter, RejectsDegenerateDefinitions) {
  EXPECT_THROW((void)Parameter::categorical("e", {}), Error);
  EXPECT_THROW((void)Parameter::integer("i", 3, 2), Error);
  EXPECT_THROW((void)Parameter::continuous("c", 1.0, 1.0), Error);
}

TEST(ParameterSpace, RejectsDuplicateNames) {
  ParameterSpace s;
  s.add(Parameter::integer("a", 0, 1));
  EXPECT_THROW(s.add(Parameter::integer("a", 0, 3)), Error);
}

TEST(ParameterSpace, IndexOf) {
  const auto s = testutil::small_discrete_space();
  EXPECT_EQ(s->index_of("A"), 0u);
  EXPECT_EQ(s->index_of("C"), 2u);
  EXPECT_THROW((void)s->index_of("missing"), Error);
}

TEST(ParameterSpace, CrossProductSize) {
  const auto s = testutil::small_discrete_space();
  EXPECT_TRUE(s->is_finite());
  EXPECT_EQ(s->cross_product_size(), 4u * 3u * 5u);
}

TEST(ParameterSpace, MixedSpaceIsNotFinite) {
  const auto s = testutil::mixed_space();
  EXPECT_FALSE(s->is_finite());
  EXPECT_THROW((void)s->cross_product_size(), Error);
}

TEST(ParameterSpace, OrdinalRoundTripCoversWholeSpace) {
  const auto s = testutil::small_discrete_space();
  std::set<std::uint64_t> seen;
  for (std::uint64_t ord = 0; ord < s->cross_product_size(); ++ord) {
    const Configuration c = s->configuration_at(ord);
    EXPECT_EQ(s->ordinal_of(c), ord);
    seen.insert(ord);
  }
  EXPECT_EQ(seen.size(), s->cross_product_size());
  EXPECT_THROW((void)s->configuration_at(s->cross_product_size()), Error);
}

TEST(ParameterSpace, EnumerateWithoutConstraintsMatchesCrossProduct) {
  const auto s = testutil::small_discrete_space();
  const auto configs = s->enumerate();
  EXPECT_EQ(configs.size(), s->cross_product_size());
  // Ordinal order.
  for (std::size_t i = 1; i < configs.size(); ++i) {
    EXPECT_LT(s->ordinal_of(configs[i - 1]), s->ordinal_of(configs[i]));
  }
}

TEST(ParameterSpace, ConstraintFiltersEnumerationAndSampling) {
  auto s = std::make_shared<ParameterSpace>();
  s->add(Parameter::integer("a", 0, 4));
  s->add(Parameter::integer("b", 0, 4));
  s->add_constraint(
      [](const ParameterSpace&, const Configuration& c) {
        return c.level(0) + c.level(1) <= 4;
      },
      "a + b <= 4");
  const auto configs = s->enumerate();
  EXPECT_EQ(configs.size(), 15u);  // triangular number
  for (const auto& c : configs) {
    EXPECT_TRUE(s->satisfies(c));
  }
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(s->satisfies(s->sample_uniform(rng)));
  }
  EXPECT_EQ(s->constraint_descriptions().size(), 1u);
}

TEST(ParameterSpace, ImpossibleConstraintThrowsOnSampling) {
  auto s = std::make_shared<ParameterSpace>();
  s->add(Parameter::integer("a", 0, 1));
  s->add_constraint(
      [](const ParameterSpace&, const Configuration&) { return false; }, "");
  Rng rng(1);
  EXPECT_THROW((void)s->sample_uniform(rng), Error);
  EXPECT_TRUE(s->enumerate().empty());
}

TEST(ParameterSpace, UniformSamplingTouchesAllLevels) {
  const auto s = testutil::small_discrete_space();
  Rng rng(2);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(s->ordinal_of(s->sample_uniform(rng)));
  }
  EXPECT_EQ(seen.size(), s->cross_product_size());  // 60 cells, 2000 draws
}

TEST(ParameterSpace, ContinuousSamplingStaysInBounds) {
  const auto s = testutil::mixed_space();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Configuration c = s->sample_uniform(rng);
    EXPECT_GE(c[1], 0.0);
    EXPECT_LT(c[1], 10.0);
    EXPECT_LT(c.level(0), 3u);
  }
}

TEST(ParameterSpace, OneHotEncoding) {
  const auto s = testutil::small_discrete_space();
  EXPECT_EQ(s->encoded_size(), 4u + 3u + 5u);
  Configuration c(std::vector<double>{2, 0, 4});
  const auto enc = s->encode(c);
  ASSERT_EQ(enc.size(), 12u);
  // A: level 2 of 4.
  EXPECT_DOUBLE_EQ(enc[2], 1.0);
  EXPECT_DOUBLE_EQ(enc[0] + enc[1] + enc[3], 0.0);
  // B: level 0 of 3.
  EXPECT_DOUBLE_EQ(enc[4], 1.0);
  // C: level 4 of 5.
  EXPECT_DOUBLE_EQ(enc[11], 1.0);
}

TEST(ParameterSpace, MixedEncodingScalesContinuous) {
  const auto s = testutil::mixed_space();
  EXPECT_EQ(s->encoded_size(), 3u + 1u);
  Configuration c(std::vector<double>{1, 2.5});
  const auto enc = s->encode(c);
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_DOUBLE_EQ(enc[1], 1.0);
  EXPECT_DOUBLE_EQ(enc[3], 0.25);
}

TEST(ParameterSpace, ToStringNamesLevels) {
  const auto s = testutil::small_discrete_space();
  Configuration c(std::vector<double>{1, 2, 0});
  EXPECT_EQ(s->to_string(c), "A=a1, B=4, C=0");
}

TEST(Configuration, EqualityAndLevels) {
  Configuration a(std::vector<double>{1, 2});
  Configuration b(std::vector<double>{1, 2});
  Configuration c(std::vector<double>{1, 3});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a.set_level(1, 7);
  EXPECT_EQ(a.level(1), 7u);
}

}  // namespace
}  // namespace hpb::space
