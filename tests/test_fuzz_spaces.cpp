// Randomized robustness sweep: generate many random parameter spaces
// (random parameter counts, kinds, level counts, and constraints) and
// check the structural invariants every layer relies on — ordinal
// round-trips, constrained enumeration, graph consistency, density
// normalization, and end-to-end tunability.
#include <gtest/gtest.h>

#include <set>

#include "baselines/config_graph.hpp"
#include "core/density.hpp"
#include "core/hiperbot.hpp"
#include "core/loop.hpp"
#include "space/parameter_space.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb {
namespace {

using space::Configuration;
using space::Parameter;
using space::ParameterSpace;

/// Random all-discrete space with 2–5 parameters of 2–6 levels each, and
/// with probability 1/2 a modulus constraint that knocks out part of the
/// cross product (but provably never all of it: the all-zero configuration
/// always satisfies level-sum % k == 0).
space::SpacePtr random_space(Rng& rng) {
  auto s = std::make_shared<ParameterSpace>();
  const std::size_t n_params = 2 + rng.index(4);
  for (std::size_t p = 0; p < n_params; ++p) {
    const std::string name = "p" + std::to_string(p);
    switch (rng.index(3)) {
      case 0: {
        std::vector<std::string> labels;
        for (std::size_t l = 0; l < 2 + rng.index(5); ++l) {
          labels.push_back(name + "_v" + std::to_string(l));
        }
        s->add(Parameter::categorical(name, labels));
        break;
      }
      case 1: {
        std::vector<double> values;
        for (std::size_t l = 0; l < 2 + rng.index(5); ++l) {
          values.push_back(static_cast<double>(1u << l));
        }
        s->add(Parameter::categorical_numeric(name, values));
        break;
      }
      default:
        s->add(Parameter::integer(name, 0,
                                  static_cast<std::int64_t>(1 + rng.index(5))));
        break;
    }
  }
  if (rng.bernoulli(0.5)) {
    const std::size_t k = 2 + rng.index(2);
    s->add_constraint(
        [k](const ParameterSpace& sp, const Configuration& c) {
          std::size_t total = 0;
          for (std::size_t p = 0; p < sp.num_params(); ++p) {
            total += c.level(p);
          }
          return total % k != 1;
        },
        "level-sum % k != 1");
  }
  return s;
}

class FuzzSpaces : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSpaces, StructuralInvariantsHold) {
  Rng rng(GetParam());
  const auto sp = random_space(rng);
  const auto configs = sp->enumerate();
  ASSERT_FALSE(configs.empty());
  ASSERT_LE(configs.size(), sp->cross_product_size());

  // Ordinals are unique, increasing, and round-trip.
  std::set<std::uint64_t> ordinals;
  for (const auto& c : configs) {
    const auto ord = sp->ordinal_of(c);
    EXPECT_TRUE(ordinals.insert(ord).second);
    EXPECT_EQ(sp->configuration_at(ord), c);
    EXPECT_TRUE(sp->satisfies(c));
  }

  // Encoding width is consistent and one-hot blocks sum to one per
  // discrete parameter.
  const auto enc = sp->encode(configs.front());
  EXPECT_EQ(enc.size(), sp->encoded_size());
  double total = 0.0;
  for (double v : enc) {
    total += v;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(sp->num_params()));

  // Uniform sampling stays inside the valid set.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(sp->satisfies(sp->sample_uniform(rng)));
  }
}

TEST_P(FuzzSpaces, GraphNeighborsAreSymmetricAndValid) {
  Rng rng(GetParam() + 1000);
  const auto sp = random_space(rng);
  const auto configs = sp->enumerate();
  if (configs.size() > 2000) {
    GTEST_SKIP() << "space too large for the fuzz graph check";
  }
  const baselines::ConfigGraph graph(*sp, configs);
  ASSERT_EQ(graph.num_nodes(), configs.size());
  for (std::size_t i = 0; i < graph.num_nodes(); ++i) {
    for (std::uint32_t j : graph.neighbors(i)) {
      ASSERT_LT(j, graph.num_nodes());
      // Symmetry: i must appear in j's neighbor list.
      const auto back = graph.neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(),
                          static_cast<std::uint32_t>(i)),
                back.end());
    }
  }
}

TEST_P(FuzzSpaces, DensitiesNormalizeAndTunerRuns) {
  Rng rng(GetParam() + 2000);
  const auto sp = random_space(rng);

  // Random observations → factorized density with normalized marginals.
  std::vector<Configuration> obs;
  for (int i = 0; i < 12; ++i) {
    obs.push_back(sp->sample_uniform(rng));
  }
  const core::FactorizedDensity density(sp, obs);
  for (std::size_t p = 0; p < sp->num_params(); ++p) {
    const auto probs = density.marginal_probabilities(p);
    double total = 0.0;
    for (double v : probs) {
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }

  // A short end-to-end tuning run on a hash objective never crashes and
  // never proposes an invalid configuration.
  auto ds = tabular::TabularObjective::from_function(
      "fuzz", sp, [&](const Configuration& c) {
        return 1.0 + hash_to_unit(splitmix64(sp->ordinal_of(c)));
      });
  core::HiPerBOtConfig config;
  config.initial_samples = 4;
  core::HiPerBOt tuner(ds.space_ptr(), config, GetParam());
  const std::size_t budget = std::min<std::size_t>(25, ds.size());
  const auto result = core::run_tuning(tuner, ds, budget);
  EXPECT_EQ(result.history.size(), budget);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSpaces,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace hpb
