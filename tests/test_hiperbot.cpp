// Tests for the HiPerBOt tuner: suggestion invariants, the two selection
// strategies, convergence behaviour, and transfer-learning wiring.
#include "core/hiperbot.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baselines/random_search.hpp"
#include "core/loop.hpp"
#include "test_util.hpp"

namespace hpb::core {
namespace {

using space::Configuration;

HiPerBOtConfig small_config(SelectionStrategy strategy) {
  HiPerBOtConfig cfg;
  cfg.initial_samples = 8;
  cfg.quantile = 0.25;
  cfg.strategy = strategy;
  cfg.proposal_candidates = 32;
  return cfg;
}

TEST(HiPerBOt, NeverSuggestsDuplicatesOnFiniteSpace) {
  auto ds = testutil::separable_dataset();
  HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kRanking), 1);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 60; ++t) {  // the whole space
    const Configuration c = tuner.suggest();
    const auto ordinal = ds.space().ordinal_of(c);
    EXPECT_TRUE(seen.insert(ordinal).second) << "duplicate at t=" << t;
    tuner.observe(c, ds.value_of(c));
  }
  // Pool exhausted now.
  EXPECT_THROW((void)tuner.suggest(), Error);
}

TEST(HiPerBOt, InitialPhaseIsRandomThenModelBased) {
  auto ds = testutil::separable_dataset();
  auto cfg = small_config(SelectionStrategy::kRanking);
  cfg.initial_samples = 5;
  HiPerBOt tuner(ds.space_ptr(), cfg, 2);
  for (int t = 0; t < 5; ++t) {
    const Configuration c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
  }
  EXPECT_EQ(tuner.history().size(), 5u);
  // After the initial phase a surrogate can be fit.
  EXPECT_NO_THROW((void)tuner.fit_surrogate());
}

TEST(HiPerBOt, FindsSeparableOptimumQuickly) {
  auto ds = testutil::separable_dataset();
  HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kRanking), 3);
  const TuneResult r = run_tuning(tuner, ds, 25);
  EXPECT_DOUBLE_EQ(r.best_value, 1.0);  // optimum found within 25/60 evals
}

TEST(HiPerBOt, ProposalStrategyWorksOnFiniteSpace) {
  auto ds = testutil::separable_dataset();
  HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kProposal),
                 4);
  const TuneResult r = run_tuning(tuner, ds, 40);
  EXPECT_LE(r.best_value, 2.0);
  // No duplicates even under Proposal (finite space tracks ordinals).
  std::set<std::uint64_t> seen;
  for (const auto& obs : r.history) {
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(obs.config)).second);
  }
}

TEST(HiPerBOt, ProposalHandlesContinuousSpaces) {
  auto sp = testutil::mixed_space();
  auto cfg = small_config(SelectionStrategy::kProposal);
  HiPerBOt tuner(sp, cfg, 5);
  // Objective: minimize |t - 7| with categorical penalty.
  for (int t = 0; t < 50; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_LT(c.level(0), 3u);
    EXPECT_GE(c[1], 0.0);
    EXPECT_LE(c[1], 10.0);
    tuner.observe(c, std::abs(c[1] - 7.0) + (c.level(0) == 2 ? 0.0 : 1.0));
  }
  EXPECT_LT(tuner.history().best_value(), 0.8);
}

TEST(HiPerBOt, RankingRequiresFinitePool) {
  auto sp = testutil::mixed_space();
  EXPECT_THROW(
      HiPerBOt(sp, small_config(SelectionStrategy::kRanking), 1),
      Error);
}

TEST(HiPerBOt, ValidatesConfig) {
  auto ds = testutil::separable_dataset();
  HiPerBOtConfig cfg;
  cfg.initial_samples = 1;
  EXPECT_THROW(HiPerBOt(ds.space_ptr(), cfg, 1), Error);
  cfg = {};
  cfg.quantile = 1.5;
  EXPECT_THROW(HiPerBOt(ds.space_ptr(), cfg, 1), Error);
}

TEST(HiPerBOt, DeterministicForFixedSeed) {
  auto ds = testutil::separable_dataset();
  auto run = [&](std::uint64_t seed) {
    HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kRanking),
                   seed);
    std::vector<std::uint64_t> ordinals;
    for (int t = 0; t < 20; ++t) {
      const Configuration c = tuner.suggest();
      ordinals.push_back(ds.space().ordinal_of(c));
      tuner.observe(c, ds.value_of(c));
    }
    return ordinals;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(HiPerBOt, ObserveValidatesConfigurationSize) {
  auto ds = testutil::separable_dataset();
  HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kRanking), 1);
  EXPECT_THROW(tuner.observe(Configuration({0.0}), 1.0), Error);
}

TEST(HiPerBOt, BeatsRandomOnAverage) {
  auto ds = testutil::separable_dataset();
  double hpb_total = 0.0, rnd_total = 0.0;
  constexpr int kReps = 10;
  constexpr std::size_t kBudget = 20;
  for (int rep = 0; rep < kReps; ++rep) {
    HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kRanking),
                   100 + rep);
    hpb_total += run_tuning(tuner, ds, kBudget).best_value;
    baselines::RandomSearch random(ds.space_ptr(), 200 + rep);
    rnd_total += run_tuning(random, ds, kBudget).best_value;
  }
  EXPECT_LE(hpb_total, rnd_total);
}

TEST(HiPerBOt, TransferPriorAcceleratesColdStart) {
  // Target objective equals the source (perfectly transferable). With a
  // strong prior, the very first model-based suggestion should land in the
  // good region.
  auto source = testutil::separable_dataset();
  auto target = testutil::separable_dataset();
  const TransferPrior prior = make_transfer_prior(
      source.space_ptr(), source.configs(), source.values(), 0.2);

  double with_prior = 0.0, without_prior = 0.0;
  constexpr int kReps = 8;
  for (int rep = 0; rep < kReps; ++rep) {
    auto cfg = small_config(SelectionStrategy::kRanking);
    cfg.initial_samples = 4;
    cfg.transfer_weight = 10.0;
    HiPerBOt with(target.space_ptr(), cfg, 300 + rep);
    with.set_transfer_prior(make_transfer_prior(
        source.space_ptr(), source.configs(), source.values(), 0.2));
    with_prior += run_tuning(with, target, 8).best_value;

    HiPerBOt without(target.space_ptr(), cfg, 300 + rep);
    without_prior += run_tuning(without, target, 8).best_value;
  }
  EXPECT_LT(with_prior, without_prior);
}

TEST(HiPerBOt, ParameterImportanceFromHistory) {
  auto ds = testutil::separable_dataset();
  HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kRanking), 7);
  (void)run_tuning(tuner, ds, 40);
  const auto importance = tuner.parameter_importance();
  ASSERT_EQ(importance.size(), 3u);
  for (double v : importance) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(TuningLoop, TrajectoryIsMonotoneNonIncreasing) {
  auto ds = testutil::separable_dataset();
  HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kRanking), 8);
  const TuneResult r = run_tuning(tuner, ds, 30);
  ASSERT_EQ(r.best_so_far.size(), 30u);
  ASSERT_EQ(r.history.size(), 30u);
  for (std::size_t t = 1; t < r.best_so_far.size(); ++t) {
    EXPECT_LE(r.best_so_far[t], r.best_so_far[t - 1]);
  }
  EXPECT_DOUBLE_EQ(r.best_so_far.back(), r.best_value);
  EXPECT_DOUBLE_EQ(ds.value_of(r.best_config), r.best_value);
}

TEST(TuningLoop, ZeroBudgetThrows) {
  auto ds = testutil::separable_dataset();
  HiPerBOt tuner(ds.space_ptr(), small_config(SelectionStrategy::kRanking), 9);
  EXPECT_THROW((void)run_tuning(tuner, ds, 0), Error);
}

}  // namespace
}  // namespace hpb::core
