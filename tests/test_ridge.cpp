// Tests for the linear-model baselines: RidgeTuner and ExhaustiveTuner.
#include "baselines/ridge_tuner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/hiperbot.hpp"
#include "core/loop.hpp"
#include "surface/surface.hpp"
#include "test_util.hpp"

namespace hpb::baselines {
namespace {

using space::Configuration;

TEST(RidgeTuner, NoDuplicatesAndConvergesOnAdditiveObjective) {
  // The separable objective is additive in the one-hot features, so a
  // linear model represents it exactly.
  auto ds = testutil::separable_dataset();
  RidgeConfig config;
  config.initial_samples = 12;
  config.epsilon = 0.0;
  RidgeTuner tuner(ds.space_ptr(), config, 1);
  std::set<std::uint64_t> seen;
  double best = 1e9;
  for (int t = 0; t < 20; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
    best = std::min(best, ds.value_of(c));
    tuner.observe(c, ds.value_of(c));
  }
  EXPECT_DOUBLE_EQ(best, 1.0);  // exact optimum: linear model nails additive f
}

TEST(RidgeTuner, PredictionMatchesAdditiveStructure) {
  auto ds = testutil::separable_dataset();
  RidgeConfig config;
  config.initial_samples = 30;
  config.regularization = 1e-6;
  RidgeTuner tuner(ds.space_ptr(), config, 2);
  for (int t = 0; t < 40; ++t) {
    const Configuration c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
  }
  (void)tuner.suggest();  // force a refit
  ASSERT_TRUE(tuner.is_fitted());
  // With 40 of 60 rows and near-zero ridge, predictions are near-exact.
  for (std::size_t i = 0; i < ds.size(); i += 7) {
    EXPECT_NEAR(tuner.predict(ds.config(i)), ds.value(i), 0.05);
  }
}

TEST(RidgeTuner, StrugglesWithInteractions) {
  // A purely multiplicative interaction surface defeats the linear model:
  // boosted trees reach a better objective at equal budget. (This is the
  // motivating gap between [18]-style linear models and the paper's
  // nonlinear surrogate.)
  auto sp = testutil::small_discrete_space();
  const auto surf = surface::SurfaceBuilder(sp, 99)
                        .random_interaction("A", "C", 1.0)
                        .random_interaction("B", "C", 0.8)
                        .noise(0.01)
                        .build();
  auto ds = surface::calibrate_to_range("inter", surf, 1.0, 20.0);
  double ridge_total = 0.0, hpb_total = 0.0;
  for (int rep = 0; rep < 8; ++rep) {
    RidgeConfig rc;
    rc.initial_samples = 10;
    rc.epsilon = 0.0;
    RidgeTuner ridge(ds.space_ptr(), rc, 50 + rep);
    ridge_total += core::run_tuning(ridge, ds, 18).best_value;
    core::HiPerBOtConfig hc;
    hc.initial_samples = 10;
    core::HiPerBOt hpb_tuner(ds.space_ptr(), hc, 50 + rep);
    hpb_total += core::run_tuning(hpb_tuner, ds, 18).best_value;
  }
  EXPECT_LE(hpb_total, ridge_total * 1.05);
}

TEST(RidgeTuner, Validation) {
  auto ds = testutil::separable_dataset();
  RidgeConfig bad;
  bad.regularization = 0.0;
  EXPECT_THROW(RidgeTuner(ds.space_ptr(), bad, 1), Error);
  RidgeTuner tuner(ds.space_ptr(), {}, 1);
  EXPECT_THROW((void)tuner.predict(ds.config(0)), Error);  // unfitted
}

TEST(ExhaustiveTuner, EnumeratesPoolInOrderThenThrows) {
  auto ds = testutil::separable_dataset();
  ExhaustiveTuner tuner(ds.space_ptr());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Configuration c = tuner.suggest();
    EXPECT_EQ(ds.index_of(c), i);
    tuner.observe(c, ds.value(i));
  }
  EXPECT_THROW((void)tuner.suggest(), Error);
}

TEST(ExhaustiveTuner, FullBudgetFindsTheExactBest) {
  auto ds = testutil::separable_dataset();
  ExhaustiveTuner tuner(ds.space_ptr());
  const auto result = core::run_tuning(tuner, ds, ds.size());
  EXPECT_DOUBLE_EQ(result.best_value, ds.best_value());
}

}  // namespace
}  // namespace hpb::baselines
