// Cross-cutting property tests, parameterized over all five application
// datasets and over surrogate configurations:
//   * affine invariance of the TPE surrogate's selection sequence,
//   * recall monotonicity in the sample budget,
//   * validity/distinctness of suggestions under swept hyperparameters,
//   * history CSV round trips through warm start.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "apps/registry.hpp"
#include "core/hiperbot.hpp"
#include "core/history_io.hpp"
#include "core/importance.hpp"
#include "core/loop.hpp"
#include "eval/metrics.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using space::Configuration;

// --------------------------------------------------- per-dataset properties
class DatasetProperties : public ::testing::TestWithParam<std::string> {
 protected:
  tabular::TabularObjective dataset() const {
    return apps::dataset_by_name(GetParam()).make();
  }
};

TEST_P(DatasetProperties, TunerSuggestionsAreValidAndDistinct) {
  auto ds = dataset();
  core::HiPerBOt tuner(ds.space_ptr(), {}, 1);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 60; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(ds.find(c).has_value());
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
    tuner.observe(c, ds.value_of(c));
  }
}

TEST_P(DatasetProperties, RecallIsMonotoneInBudget) {
  auto ds = dataset();
  core::HiPerBOt tuner(ds.space_ptr(), {}, 2);
  const auto result = core::run_tuning(tuner, ds, 120);
  double prev = 0.0;
  for (std::size_t n = 20; n <= 120; n += 20) {
    const double r = eval::recall_percentile(ds, result.history, n, 5.0);
    EXPECT_GE(r, prev) << "n=" << n;
    prev = r;
  }
}

TEST_P(DatasetProperties, BestSoFarTrajectoryNonIncreasing) {
  auto ds = dataset();
  core::HiPerBOt tuner(ds.space_ptr(), {}, 3);
  const auto result = core::run_tuning(tuner, ds, 80);
  for (std::size_t t = 1; t < result.best_so_far.size(); ++t) {
    EXPECT_LE(result.best_so_far[t], result.best_so_far[t - 1]);
  }
  EXPECT_GE(result.best_value, ds.best_value());
}

TEST_P(DatasetProperties, AffineObjectiveInvariance) {
  // The surrogate depends on y only through the quantile split, so the
  // suggestion sequence is invariant under positive affine transforms of
  // the objective (y -> a*y + b with a > 0).
  auto ds = dataset();
  auto run_sequence = [&](double a, double b) {
    core::HiPerBOt tuner(ds.space_ptr(), {}, 4);
    std::vector<std::uint64_t> ordinals;
    for (int t = 0; t < 50; ++t) {
      const Configuration c = tuner.suggest();
      ordinals.push_back(ds.space().ordinal_of(c));
      tuner.observe(c, a * ds.value_of(c) + b);
    }
    return ordinals;
  };
  const auto identity = run_sequence(1.0, 0.0);
  const auto scaled = run_sequence(1000.0, -5.0);
  EXPECT_EQ(identity, scaled);
}

TEST_P(DatasetProperties, ImportanceScoresWithinJsBounds) {
  auto ds = dataset();
  const auto entries = core::dataset_importance(ds, 0.2);
  EXPECT_EQ(entries.size(), ds.space().num_params());
  for (const auto& e : entries) {
    EXPECT_GE(e.js_divergence, 0.0) << e.parameter;
    EXPECT_LE(e.js_divergence, std::log(2.0)) << e.parameter;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, DatasetProperties,
                         ::testing::Values("kripke", "kripke_energy", "hypre",
                                           "lulesh", "openAtom",
                                           "systolic_small"));

// -------------------------------------------- hyperparameter-sweep validity
struct SweepCase {
  std::size_t initial_samples;
  double quantile;
  core::SelectionStrategy strategy;
};

class ConfigSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConfigSweep, SuggestionsStayValidUnderAnyConfig) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = GetParam().initial_samples;
  config.quantile = GetParam().quantile;
  config.strategy = GetParam().strategy;
  core::HiPerBOt tuner(ds.space_ptr(), config, 7);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 40; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(ds.find(c).has_value());
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
    tuner.observe(c, ds.value_of(c));
  }
  // A sensible result regardless of hyperparameters.
  EXPECT_LE(tuner.history().best_value(), 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigSweep,
    ::testing::Values(
        SweepCase{2, 0.05, core::SelectionStrategy::kRanking},
        SweepCase{5, 0.2, core::SelectionStrategy::kRanking},
        SweepCase{20, 0.2, core::SelectionStrategy::kRanking},
        SweepCase{30, 0.5, core::SelectionStrategy::kRanking},
        SweepCase{5, 0.1, core::SelectionStrategy::kProposal},
        SweepCase{20, 0.35, core::SelectionStrategy::kProposal},
        SweepCase{10, 0.9, core::SelectionStrategy::kRanking}));

// -------------------------------------------------------------- history IO
TEST(HistoryIo, CsvRoundTripPreservesObservations) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOt source(ds.space_ptr(), {}, 8);
  const auto result = core::run_tuning(source, ds, 30);

  std::ostringstream out;
  core::write_history_csv(out, ds.space(), result.history);

  // Replay into a fresh tuner and compare histories observation by
  // observation.
  core::HiPerBOt replayed(ds.space_ptr(), {}, 9);
  std::istringstream in(out.str());
  const std::size_t n = core::warm_start_from_csv(in, ds.space(), replayed);
  ASSERT_EQ(n, 30u);
  ASSERT_EQ(replayed.history().size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(replayed.history()[i].config, result.history[i].config);
    EXPECT_DOUBLE_EQ(replayed.history()[i].y, result.history[i].y);
  }
}

TEST(HistoryIo, WarmStartedTunerSkipsReplayedConfigs) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOt first(ds.space_ptr(), {}, 10);
  const auto result = core::run_tuning(first, ds, 25);
  std::ostringstream out;
  core::write_history_csv(out, ds.space(), result.history);

  core::HiPerBOt second(ds.space_ptr(), {}, 11);
  std::istringstream in(out.str());
  (void)core::warm_start_from_csv(in, ds.space(), second);
  std::set<std::uint64_t> replayed;
  for (const auto& obs : result.history) {
    replayed.insert(ds.space().ordinal_of(obs.config));
  }
  for (int t = 0; t < 20; ++t) {
    const Configuration c = second.suggest();
    EXPECT_FALSE(replayed.contains(ds.space().ordinal_of(c)));
    second.observe(c, ds.value_of(c));
  }
}

TEST(HistoryIo, HandlesReorderedColumnsAndErrors) {
  auto ds = testutil::separable_dataset();  // params A, B, C
  core::HiPerBOt tuner(ds.space_ptr(), {}, 12);
  {
    // Columns reordered: C,A,B,objective.
    std::istringstream in("C,A,B,objective\n3,a1,4,1.0\n");
    EXPECT_EQ(core::warm_start_from_csv(in, ds.space(), tuner), 1u);
    const auto& obs = tuner.history()[0];
    EXPECT_EQ(obs.config.level(0), 1u);  // A = a1
    EXPECT_EQ(obs.config.level(1), 2u);  // B label "4" is level 2
    EXPECT_EQ(obs.config.level(2), 3u);  // C = 3
  }
  {
    std::istringstream bad_level("A,B,C,objective\nbogus,1,0,1.0\n");
    EXPECT_THROW((void)core::warm_start_from_csv(bad_level, ds.space(), tuner),
                 Error);
  }
  {
    std::istringstream bad_header("A,B,objective\na0,1,1.0\n");
    EXPECT_THROW(
        (void)core::warm_start_from_csv(bad_header, ds.space(), tuner),
        Error);
  }
  {
    std::istringstream bad_objective("A,B,C,objective\na0,1,0,soon\n");
    EXPECT_THROW(
        (void)core::warm_start_from_csv(bad_objective, ds.space(), tuner),
        Error);
  }
}

TEST(HistoryIo, ContinuousParametersRoundTrip) {
  auto sp = testutil::mixed_space();
  core::HiPerBOtConfig config;
  config.strategy = core::SelectionStrategy::kProposal;
  config.initial_samples = 5;
  core::HiPerBOt source(sp, config, 13);
  for (int t = 0; t < 10; ++t) {
    const Configuration c = source.suggest();
    source.observe(c, c[1]);
  }
  std::ostringstream out;
  core::write_history_csv(out, *sp,
                          source.history().observations());
  core::HiPerBOt replayed(sp, config, 14);
  std::istringstream in(out.str());
  EXPECT_EQ(core::warm_start_from_csv(in, *sp, replayed), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(replayed.history()[i].config.level(0),
              source.history()[i].config.level(0));
    // The CSV writer emits shortest-round-trip decimals, so continuous
    // values survive the trip bitwise, not just approximately.
    EXPECT_EQ(replayed.history()[i].config[1], source.history()[i].config[1]);
  }
}

}  // namespace
}  // namespace hpb
