// Unit and property tests for hpb::stats: quantiles, histogram densities,
// KDE, divergences, and running summary statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/divergence.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "stats/quantile.hpp"
#include "stats/summary.hpp"

namespace hpb::stats {
namespace {

// ---------------------------------------------------------------- quantile
TEST(Quantile, Median) {
  std::vector<double> v = {5, 1, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, Extremes) {
  std::vector<double> v = {4, 2, 9, 7};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Quantile, SingleElement) {
  std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.3), 42.0);
}

TEST(Quantile, RejectsEmptyAndBadAlpha) {
  std::vector<double> v = {1.0};
  EXPECT_THROW((void)quantile({}, 0.5), Error);
  EXPECT_THROW((void)quantile(v, -0.1), Error);
  EXPECT_THROW((void)quantile(v, 1.1), Error);
}

TEST(Quantile, MonotoneInAlpha) {
  Rng rng(1);
  std::vector<double> v(37);
  for (double& x : v) {
    x = rng.normal();
  }
  double prev = quantile(v, 0.0);
  for (double a = 0.05; a <= 1.0; a += 0.05) {
    const double q = quantile(v, a);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(SplitThreshold, PutsAlphaFractionBelow) {
  std::vector<double> v(100);
  std::iota(v.begin(), v.end(), 0.0);
  const double thr = split_threshold(v, 0.2);
  EXPECT_EQ(count_below(v, thr), 20u);
}

TEST(SplitThreshold, AlwaysLeavesAtLeastOneGoodAndOneBad) {
  std::vector<double> v = {3.0, 1.0};
  const double thr = split_threshold(v, 0.01);
  EXPECT_EQ(count_below(v, thr), 1u);
  const double thr_hi = split_threshold(v, 0.99);
  EXPECT_EQ(count_below(v, thr_hi), 1u);
}

TEST(SmallestK, ReturnsAscendingIndices) {
  std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 3.0};
  const auto idx = smallest_k_indices(v, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 4u);
}

// --------------------------------------------------------------- histogram
TEST(Histogram, SmoothedProbabilitiesSumToOne) {
  HistogramDensity h(5, 0.5);
  h.add(0);
  h.add(0);
  h.add(3);
  const auto probs = h.probabilities();
  EXPECT_NEAR(std::accumulate(probs.begin(), probs.end(), 0.0), 1.0, 1e-12);
}

TEST(Histogram, UnseenLevelsKeepNonzeroMass) {
  HistogramDensity h(4, 1.0);
  for (int i = 0; i < 100; ++i) {
    h.add(2);
  }
  EXPECT_GT(h.pmf(0), 0.0);
  EXPECT_GT(h.pmf(2), h.pmf(0));
}

TEST(Histogram, ConvergesToEmpiricalFrequencies) {
  HistogramDensity h(2, 1.0);
  for (int i = 0; i < 3000; ++i) {
    h.add(i % 3 == 0 ? 0 : 1);  // 1/3 vs 2/3
  }
  EXPECT_NEAR(h.pmf(0), 1.0 / 3.0, 0.01);
  EXPECT_NEAR(h.pmf(1), 2.0 / 3.0, 0.01);
}

TEST(Histogram, WeightedAdds) {
  HistogramDensity h(2, 1e-9);
  h.add(0, 3.0);
  h.add(1, 1.0);
  EXPECT_NEAR(h.pmf(0), 0.75, 1e-6);
}

TEST(Histogram, MixInActsAsWeightedPrior) {
  HistogramDensity prior(3, 1e-9);
  prior.add(0, 10.0);
  HistogramDensity h(3, 1e-9);
  h.add(2, 10.0);
  h.mix_in(prior, 1.0);
  EXPECT_NEAR(h.pmf(0), 0.5, 1e-6);
  EXPECT_NEAR(h.pmf(2), 0.5, 1e-6);
  // Zero weight leaves it untouched.
  HistogramDensity h2(3, 1e-9);
  h2.add(2, 10.0);
  h2.mix_in(prior, 0.0);
  EXPECT_NEAR(h2.pmf(2), 1.0, 1e-6);
}

TEST(Histogram, Contracts) {
  EXPECT_THROW(HistogramDensity(0, 1.0), Error);
  EXPECT_THROW(HistogramDensity(3, 0.0), Error);
  HistogramDensity h(3, 1.0);
  EXPECT_THROW(h.add(3), Error);
  EXPECT_THROW(h.add(0, -1.0), Error);
  HistogramDensity other(4, 1.0);
  EXPECT_THROW(h.mix_in(other, 1.0), Error);
}

// --------------------------------------------------------------------- KDE
TEST(Kde, IntegratesToOneOnSupport) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 40; ++i) {
    samples.push_back(rng.uniform(1.0, 4.0));
  }
  KernelDensity kde(samples, 0.0, 5.0);
  // Trapezoid integration over the support.
  double integral = 0.0;
  constexpr int kSteps = 2000;
  for (int i = 0; i < kSteps; ++i) {
    const double x = 5.0 * (i + 0.5) / kSteps;
    integral += kde.pdf(x) * (5.0 / kSteps);
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(Kde, ZeroOutsideSupport) {
  std::vector<double> samples = {2.0};
  KernelDensity kde(samples, 0.0, 5.0, 0.5);
  EXPECT_DOUBLE_EQ(kde.pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(kde.pdf(5.1), 0.0);
}

TEST(Kde, PeaksNearSamples) {
  std::vector<double> samples = {1.0, 1.1, 0.9};
  KernelDensity kde(samples, 0.0, 10.0, 0.3);
  EXPECT_GT(kde.pdf(1.0), kde.pdf(6.0));
}

TEST(Kde, EmptyFallsBackToUniform) {
  KernelDensity kde({}, 0.0, 4.0);
  EXPECT_NEAR(kde.pdf(1.0), 0.25, 1e-12);
  EXPECT_NEAR(kde.pdf(3.9), 0.25, 1e-12);
}

TEST(Kde, SamplesStayInSupport) {
  std::vector<double> samples = {0.05, 9.95};
  KernelDensity kde(samples, 0.0, 10.0, 2.0);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double x = kde.sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 10.0);
  }
}

TEST(Kde, SamplesConcentrateNearKernelCenters) {
  std::vector<double> samples = {2.0};
  KernelDensity kde(samples, 0.0, 10.0, 0.25);
  Rng rng(4);
  int near = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    if (std::abs(kde.sample(rng) - 2.0) < 1.0) {
      ++near;
    }
  }
  EXPECT_GT(near, kN * 9 / 10);
}

TEST(Kde, MixInAddsPriorMass) {
  std::vector<double> a = {1.0};
  std::vector<double> b = {9.0};
  KernelDensity kde(a, 0.0, 10.0, 0.3);
  const KernelDensity prior(b, 0.0, 10.0, 0.3);
  const double before = kde.pdf(9.0);
  kde.mix_in(prior, 1.0);
  EXPECT_GT(kde.pdf(9.0), before);
  // Mass still integrates to ~1.
  double integral = 0.0;
  for (int i = 0; i < 4000; ++i) {
    integral += kde.pdf(10.0 * (i + 0.5) / 4000) * (10.0 / 4000);
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(Kde, SilvermanShrinksWithSampleCount) {
  Rng rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) {
    small.push_back(rng.normal(5.0, 1.0));
  }
  large = small;
  for (int i = 0; i < 990; ++i) {
    large.push_back(rng.normal(5.0, 1.0));
  }
  EXPECT_GT(KernelDensity::silverman_bandwidth(small, 10.0),
            KernelDensity::silverman_bandwidth(large, 10.0));
}

TEST(Kde, RejectsBadConstruction) {
  EXPECT_THROW(KernelDensity({}, 1.0, 1.0), Error);
  std::vector<double> out_of_range = {5.0};
  EXPECT_THROW(KernelDensity(out_of_range, 0.0, 1.0), Error);
}

// -------------------------------------------------------------- divergence
TEST(Divergence, KlZeroForIdentical) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
}

TEST(Divergence, KlIsAsymmetric) {
  std::vector<double> p = {0.9, 0.1};
  std::vector<double> q = {0.5, 0.5};
  EXPECT_NE(kl_divergence(p, q), kl_divergence(q, p));
}

TEST(Divergence, KlInfiniteOnDisjointSupport) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  EXPECT_TRUE(std::isinf(kl_divergence(p, q)));
}

TEST(Divergence, JsSymmetricAndBounded) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> p(4), q(4);
    double sp = 0, sq = 0;
    for (int i = 0; i < 4; ++i) {
      p[i] = rng.uniform() + 1e-3;
      q[i] = rng.uniform() + 1e-3;
      sp += p[i];
      sq += q[i];
    }
    for (int i = 0; i < 4; ++i) {
      p[i] /= sp;
      q[i] /= sq;
    }
    const double js_pq = js_divergence(p, q);
    const double js_qp = js_divergence(q, p);
    EXPECT_NEAR(js_pq, js_qp, 1e-12);
    EXPECT_GE(js_pq, 0.0);
    EXPECT_LE(js_pq, std::log(2.0) + 1e-12);
  }
}

TEST(Divergence, JsMaximalForDisjointSupport) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(js_divergence(p, q), std::log(2.0), 1e-12);
}

TEST(Divergence, RejectsNonDistributions) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> bad_sum = {0.5, 0.1};
  std::vector<double> negative = {1.5, -0.5};
  std::vector<double> wrong_size = {1.0};
  EXPECT_THROW((void)kl_divergence(p, bad_sum), Error);
  EXPECT_THROW((void)kl_divergence(negative, p), Error);
  EXPECT_THROW((void)kl_divergence(p, wrong_size), Error);
}

// ------------------------------------------------------------------ summary
TEST(Summary, MatchesDirectComputation) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const RunningStats s = summarize(v);
  EXPECT_EQ(s.count(), v.size());
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, VarianceZeroForFewObservations) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Summary, MergeEqualsSequential) {
  Rng rng(7);
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

}  // namespace
}  // namespace hpb::stats
