// Session / SessionManager coverage:
//   - the engine→session split is exact: a hand-driven Session produces
//     bitwise-identical results, journal bytes, and trace bytes to
//     TuningEngine::run over the same seed and FakeClock;
//   - Session verb misuse (double suggest, observe without a round,
//     count/order/foreign-config mismatches, close with a round in
//     flight, verbs after finish) throws without corrupting the session;
//   - per-observation stopping bookkeeping (target, stagnation) surfaces
//     through status();
//   - SessionManager lifecycle: create / duplicate / invalid names,
//     unknown sessions, close semantics, journal-on-disk collisions,
//     LRU eviction with resume-on-touch, per-session metrics scopes;
//   - eviction/resume equivalence: a session force-evicted (and therefore
//     journal-replayed) at several points suggests the exact same
//     configuration sequence as one kept hot, for hiperbot / geist /
//     random;
//   - journal parent-directory errors are clear, and fs::ensure_dir
//     builds nested directories.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "core/engine.hpp"
#include "core/journal.hpp"
#include "core/session.hpp"
#include "core/session_manager.hpp"
#include "core/stopping.hpp"
#include "eval/methods.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using core::EvalMeter;
using core::Observation;
using core::Session;
using core::SessionConfig;
using core::SessionManager;
using core::SessionManagerConfig;
using core::SessionSpec;
using core::SessionStatus;
using core::StopReason;
using core::TuneResult;
using core::TuningEngine;
using tabular::EvalStatus;

constexpr std::uint64_t kSeed = 0x5e5510;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "session_" + name;
}

/// Fresh (empty) directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// NaN-safe bitwise comparison of two tuning results.
void expect_identical(const TuneResult& a, const TuneResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].config.values(), b.history[i].config.values())
        << "history diverges at evaluation " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.history[i].y),
              std::bit_cast<std::uint64_t>(b.history[i].y))
        << "objective diverges at evaluation " << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status);
  }
  ASSERT_EQ(a.best_so_far.size(), b.best_so_far.size());
  for (std::size_t i = 0; i < a.best_so_far.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.best_so_far[i]),
              std::bit_cast<std::uint64_t>(b.best_so_far[i]));
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.best_value),
            std::bit_cast<std::uint64_t>(b.best_value));
  EXPECT_EQ(a.best_config.values(), b.best_config.values());
}

core::JournalHeader make_header(const tabular::TabularObjective& ds,
                                const std::string& method, std::size_t batch,
                                std::size_t budget) {
  core::JournalHeader h;
  h.method = method;
  h.dataset = ds.name();
  h.seed = kSeed;
  h.batch_size = batch;
  h.num_params = ds.space().num_params();
  h.max_evaluations = budget;
  return h;
}

/// SessionManager factory over the canned separable dataset (the spec's
/// dataset name is accepted verbatim — these tests exercise the manager,
/// not the dataset registry).
core::SessionFactory test_factory() {
  auto dataset = std::make_shared<tabular::TabularObjective>(
      testutil::separable_dataset());
  return [dataset](const SessionSpec& spec) {
    core::SessionBackend backend;
    backend.tuner = eval::make_named_tuner(spec.method, *dataset, spec.seed);
    backend.space = dataset->space_ptr();
    return backend;
  };
}

// ------------------------------------------------- engine/session identity

// The documented contract of the split: TuningEngine::run is nothing but a
// loop over Session::suggest / Session::observe plus objective evaluation.
// Reproduce that loop by hand against the public Session API and require
// the result, the journal bytes, and the trace bytes to match bit for bit.
TEST(SessionSplit, ManualSessionLoopMatchesEngineRunBitwise) {
  auto ds = testutil::separable_dataset();
  constexpr std::size_t kBudget = 26;  // deliberately not a batch multiple
  constexpr std::size_t kBatch = 4;

  const std::string engine_journal = temp_path("split_engine.hpbj");
  const std::string engine_trace = temp_path("split_engine.jsonl");
  TuneResult from_engine;
  {
    core::JournalWriter journal = core::JournalWriter::create(
        engine_journal, make_header(ds, "hiperbot", kBatch, kBudget));
    obs::FakeClock clock(1000, 10);
    obs::JsonlTraceSink sink = obs::JsonlTraceSink::create(engine_trace);
    const TuningEngine engine({.batch_size = kBatch,
                               .journal = &journal,
                               .recorder = {.trace = &sink, .clock = &clock}});
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    from_engine = engine.run(*tuner, ds, kBudget);
    sink.flush();
  }

  const std::string manual_journal = temp_path("split_manual.hpbj");
  const std::string manual_trace = temp_path("split_manual.jsonl");
  TuneResult from_session;
  {
    core::JournalWriter journal = core::JournalWriter::create(
        manual_journal, make_header(ds, "hiperbot", kBatch, kBudget));
    obs::FakeClock clock(1000, 10);
    obs::JsonlTraceSink sink = obs::JsonlTraceSink::create(manual_trace);
    const obs::Recorder recorder{.trace = &sink, .clock = &clock};
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    tuner->set_recorder(&recorder);
    Session session(*tuner,
                    {.batch_size = kBatch,
                     .recorder = recorder,
                     .stop = {.max_evaluations = kBudget}},
                    &journal);
    session.reserve(kBudget);
    while (session.evaluations() < kBudget) {
      const std::size_t k = std::min(kBatch, kBudget - session.evaluations());
      std::vector<space::Configuration> batch = session.suggest(k);
      std::vector<EvalMeter> meters(batch.size());
      std::vector<Observation> observations;
      observations.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        meters[i].start_ns = recorder.now_ns();
        const tabular::EvalResult r = ds.evaluate_result(batch[i]);
        meters[i].end_ns = recorder.now_ns();
        observations.push_back({std::move(batch[i]), r.value, r.status});
      }
      session.observe(std::move(observations), meters);
    }
    session.finish(StopReason::kBudgetExhausted);
    from_session = session.take_result();
    sink.flush();
  }

  expect_identical(from_engine, from_session);
  EXPECT_EQ(slurp(engine_journal), slurp(manual_journal));
  const std::string trace = slurp(engine_trace);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace, slurp(manual_trace));
  for (const std::string& path :
       {engine_journal, engine_trace, manual_journal, manual_trace}) {
    std::remove(path.c_str());
  }
}

// ------------------------------------------------------ session verb misuse

Session make_plain_session(std::unique_ptr<core::Tuner>& keep,
                           std::size_t batch = 2) {
  static auto ds = testutil::separable_dataset();
  keep = eval::make_named_tuner("random", ds, kSeed);
  return Session(*keep, {.batch_size = batch, .stop = {.max_evaluations = 40}});
}

std::vector<Observation> evaluate_all(
    const std::vector<space::Configuration>& batch) {
  std::vector<Observation> out;
  out.reserve(batch.size());
  for (const auto& c : batch) {
    out.push_back({c, testutil::separable_value(c), EvalStatus::kOk});
  }
  return out;
}

TEST(SessionErrors, SuggestWithRoundInFlightThrows) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_plain_session(tuner);
  auto batch = session.suggest(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(session.round_in_flight());
  EXPECT_THROW((void)session.suggest(2), hpb::Error);
  // The pending round survives the failed verb.
  session.observe(evaluate_all(batch));
  EXPECT_EQ(session.evaluations(), 2u);
}

TEST(SessionErrors, ObserveWithoutRoundThrows) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_plain_session(tuner);
  auto ds = testutil::separable_dataset();
  EXPECT_THROW(
      session.observe({{ds.configs()[0], 1.0, EvalStatus::kOk}}),
      hpb::Error);
}

TEST(SessionErrors, ObserveCountMismatchThrows) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_plain_session(tuner);
  auto batch = session.suggest(2);
  ASSERT_EQ(batch.size(), 2u);
  std::vector<Observation> short_round = evaluate_all(batch);
  short_round.pop_back();
  EXPECT_THROW(session.observe(std::move(short_round)), hpb::Error);
  // Recoverable: deliver the full round after the client error.
  session.observe(evaluate_all(batch));
  EXPECT_EQ(session.status().pending, 0u);
}

TEST(SessionErrors, ObserveOutOfOrderThrows) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_plain_session(tuner);
  auto batch = session.suggest(2);
  ASSERT_EQ(batch.size(), 2u);
  std::vector<Observation> swapped = evaluate_all(batch);
  std::swap(swapped[0], swapped[1]);
  EXPECT_THROW(session.observe(std::move(swapped)), hpb::Error);
  session.observe(evaluate_all(batch));
  EXPECT_EQ(session.evaluations(), 2u);
}

TEST(SessionErrors, ObserveForeignConfigurationThrows) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_plain_session(tuner);
  auto ds = testutil::separable_dataset();
  auto batch = session.suggest(1);
  ASSERT_EQ(batch.size(), 1u);
  // Any configuration other than the suggested one is foreign.
  const auto& foreign =
      ds.configs()[batch[0].values() == ds.configs()[0].values() ? 1 : 0];
  EXPECT_THROW(
      session.observe({{foreign, 1.0, EvalStatus::kOk}}), hpb::Error);
}

TEST(SessionErrors, CloseWithRoundInFlightThrows) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_plain_session(tuner);
  auto batch = session.suggest(2);
  EXPECT_THROW(session.close(), hpb::Error);
  session.observe(evaluate_all(batch));
  session.close();
  EXPECT_TRUE(session.finished());
}

TEST(SessionErrors, VerbsAfterFinishThrow) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_plain_session(tuner);
  session.observe(evaluate_all(session.suggest(2)));
  session.finish(StopReason::kBudgetExhausted);
  EXPECT_TRUE(session.status().finished);
  EXPECT_THROW((void)session.suggest(1), hpb::Error);
  EXPECT_THROW(session.observe({}), hpb::Error);
  EXPECT_THROW(session.close(), hpb::Error);
}

// ---------------------------------------------------- stopping bookkeeping

TEST(SessionStopping, TargetReachedSurfacesThroughStatus) {
  auto ds = testutil::separable_dataset();
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  Session session(*tuner, {.batch_size = 4,
                           .stop = {.max_evaluations = 200,
                                    .target_value = 1.0}});
  while (!session.stopped()) {
    ASSERT_LT(session.evaluations(), 200u);
    session.observe(evaluate_all(session.suggest(4)));
  }
  const SessionStatus st = session.status();
  EXPECT_TRUE(st.stopped);
  EXPECT_EQ(st.reason, StopReason::kTargetReached);
  EXPECT_DOUBLE_EQ(st.best_value, 1.0);
}

TEST(SessionStopping, StagnationPatienceSurfacesThroughStatus) {
  auto ds = testutil::separable_dataset();
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  Session session(*tuner, {.batch_size = 1,
                           .stop = {.max_evaluations = 1000,
                                    .stagnation_patience = 5}});
  while (!session.stopped() && session.evaluations() < 1000) {
    session.observe(evaluate_all(session.suggest(1)));
  }
  EXPECT_TRUE(session.stopped());
  EXPECT_EQ(session.stop_reason(), StopReason::kStagnation);
}

// ------------------------------------------------- manager lifecycle

SessionSpec spec_named(const std::string& name, const std::string& method,
                       std::size_t batch = 2) {
  SessionSpec spec;
  spec.name = name;
  spec.method = method;
  spec.dataset = "separable";
  spec.seed = kSeed;
  spec.batch_size = batch;
  spec.stop.max_evaluations = 64;
  return spec;
}

TEST(SessionManagerLifecycle, CreateSuggestObserveStatusClose) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir("mgr_lifecycle")});
  manager.create(spec_named("run1", "random"));
  EXPECT_EQ(manager.resident_count(), 1u);
  EXPECT_EQ(manager.created_count(), 1u);

  auto batch = manager.suggest("run1", 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(manager.status("run1").pending, 2u);

  const SessionStatus st = manager.observe("run1", evaluate_all(batch));
  EXPECT_EQ(st.evaluations, 2u);
  EXPECT_EQ(st.rounds, 1u);
  EXPECT_EQ(st.pending, 0u);
  EXPECT_FALSE(st.best_config.empty());

  manager.close("run1");
  EXPECT_EQ(manager.resident_count(), 0u);
  EXPECT_EQ(manager.closed_count(), 1u);
  // The finalized journal still names the session: verbs and re-creation
  // both report it closed / taken.
  EXPECT_THROW((void)manager.status("run1"), hpb::Error);
  EXPECT_THROW(manager.close("run1"), hpb::Error);
  EXPECT_THROW(manager.create(spec_named("run1", "random")), hpb::Error);
}

TEST(SessionManagerLifecycle, InvalidNamesAndDuplicatesRejected) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir("mgr_names")});
  const std::vector<std::string> bad_names = {
      "", ".", "..", "a/b", "a b", "ses*sion", std::string(129, 'x')};
  for (const std::string& bad : bad_names) {
    EXPECT_THROW(core::validate_session_name(bad), hpb::Error) << bad;
    EXPECT_THROW(manager.create(spec_named(bad, "random")), hpb::Error) << bad;
  }
  core::validate_session_name("ok-1.2_3");
  manager.create(spec_named("dup", "random"));
  EXPECT_THROW(manager.create(spec_named("dup", "random")), hpb::Error);
  EXPECT_THROW((void)manager.suggest("never-created", 1), hpb::Error);
}

TEST(SessionManagerLifecycle, EvictRefusesInFlightRounds) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir("mgr_inflight")});
  manager.create(spec_named("busy", "random"));
  auto batch = manager.suggest("busy", 2);
  // An unobserved round pins the session hot: evicting would orphan it.
  EXPECT_FALSE(manager.evict("busy"));
  (void)manager.observe("busy", evaluate_all(batch));
  EXPECT_TRUE(manager.evict("busy"));
  EXPECT_EQ(manager.resident_count(), 0u);
  // Resume-on-touch brings it back with its history intact.
  EXPECT_EQ(manager.status("busy").evaluations, 2u);
  EXPECT_EQ(manager.resumed_count(), 1u);
}

TEST(SessionManagerLifecycle, JournallessManagerNeverEvicts) {
  SessionManager manager(test_factory(), {});
  manager.create(spec_named("mem", "random"));
  EXPECT_TRUE(manager.journal_path("mem").empty());
  (void)manager.observe("mem", evaluate_all(manager.suggest("mem", 2)));
  EXPECT_FALSE(manager.evict("mem"));  // nothing on disk to resume from
  manager.close("mem");
  // Without a journal, a closed name is forgotten and can be re-created.
  manager.create(spec_named("mem", "random"));
}

TEST(SessionManagerLifecycle, LruEvictionKeepsResidencyBounded) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir("mgr_lru"),
                          .max_resident = 2,
                          .num_stripes = 1});
  for (int i = 0; i < 5; ++i) {
    const std::string name = "lru" + std::to_string(i);
    manager.create(spec_named(name, "random"));
    (void)manager.observe(name, evaluate_all(manager.suggest(name, 1)));
  }
  EXPECT_LE(manager.resident_count(), 2u);
  EXPECT_GE(manager.evicted_count(), 3u);
  // Touching the oldest (coldest) session resumes it transparently.
  EXPECT_EQ(manager.status("lru0").evaluations, 1u);
  EXPECT_GE(manager.resumed_count(), 1u);
  EXPECT_LE(manager.resident_count(), 2u);
}

TEST(SessionManagerLifecycle, PerSessionMetricsAreScoped) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir("mgr_metrics")});
  manager.create(spec_named("two-rounds", "random"));
  manager.create(spec_named("one-round", "random"));
  for (int round = 0; round < 2; ++round) {
    (void)manager.observe("two-rounds",
                          evaluate_all(manager.suggest("two-rounds", 2)));
  }
  (void)manager.observe("one-round",
                        evaluate_all(manager.suggest("one-round", 2)));
  const std::string two = manager.session_metrics_json("two-rounds");
  const std::string one = manager.session_metrics_json("one-round");
  EXPECT_NE(two.find("engine.evaluations"), std::string::npos);
  EXPECT_NE(one.find("engine.evaluations"), std::string::npos);
  EXPECT_NE(two, one) << "sessions must not share a metrics registry";
}

// ------------------------------------------- eviction/resume equivalence

/// Drive one managed session for `rounds` rounds of `batch`, force-evicting
/// it after each round listed in `evict_after` (journal replay rebuilds it
/// on the next verb). Returns every suggested configuration, flattened, and
/// the final best value.
struct DrivenRun {
  std::vector<std::vector<double>> suggested;
  double best = 0.0;
};

DrivenRun drive_managed(const std::string& method,
                        const std::set<std::size_t>& evict_after,
                        const std::string& dir_tag) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir(dir_tag)});
  constexpr std::size_t kRounds = 8;
  constexpr std::size_t kBatch = 2;
  SessionSpec spec = spec_named("equiv", method, kBatch);
  spec.stop.max_evaluations = kRounds * kBatch;
  manager.create(spec);
  DrivenRun run;
  for (std::size_t round = 0; round < kRounds; ++round) {
    auto batch = manager.suggest("equiv", kBatch);
    std::vector<Observation> observations;
    for (auto& c : batch) {
      run.suggested.push_back(c.values());
      // A sprinkling of client-side failures exercises the NaN replay path.
      if (run.suggested.size() % 5 == 0) {
        observations.push_back({std::move(c), std::nan(""),
                                EvalStatus::kInvalid});
      } else {
        const double y = testutil::separable_value(c);
        observations.push_back({std::move(c), y, EvalStatus::kOk});
      }
    }
    const SessionStatus st =
        manager.observe("equiv", std::move(observations));
    run.best = st.best_value;
    if (evict_after.count(round) != 0) {
      EXPECT_TRUE(manager.evict("equiv")) << method << " round " << round;
    }
  }
  EXPECT_EQ(manager.evicted_count(), evict_after.size());
  EXPECT_EQ(manager.resumed_count(), evict_after.size());
  return run;
}

void expect_same_run(const DrivenRun& a, const DrivenRun& b,
                     const std::string& label) {
  ASSERT_EQ(a.suggested.size(), b.suggested.size()) << label;
  for (std::size_t i = 0; i < a.suggested.size(); ++i) {
    ASSERT_EQ(a.suggested[i].size(), b.suggested[i].size()) << label;
    for (std::size_t j = 0; j < a.suggested[i].size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.suggested[i][j]),
                std::bit_cast<std::uint64_t>(b.suggested[i][j]))
          << label << ": suggestion " << i << " diverges at value " << j;
    }
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.best),
            std::bit_cast<std::uint64_t>(b.best))
      << label;
}

TEST(EvictionResumeEquivalence, ColdResumedSessionsSuggestIdenticalRuns) {
  for (const std::string method : {"hiperbot", "geist", "random"}) {
    const DrivenRun hot = drive_managed(method, {}, "equiv_" + method + "_hot");
    const DrivenRun early =
        drive_managed(method, {0}, "equiv_" + method + "_early");
    const DrivenRun mid =
        drive_managed(method, {3}, "equiv_" + method + "_mid");
    const DrivenRun thrash = drive_managed(
        method, {0, 1, 2, 3, 4, 5, 6}, "equiv_" + method + "_thrash");
    expect_same_run(hot, early, method + " evicted after round 0");
    expect_same_run(hot, mid, method + " evicted after round 3");
    expect_same_run(hot, thrash, method + " evicted after every round");
  }
}

// -------------------------------------------------- filesystem satellites

TEST(JournalPaths, MissingParentDirectoryIsACleanError) {
  const std::string dir = fresh_dir("no_such_parent");
  auto ds = testutil::separable_dataset();
  try {
    (void)core::JournalWriter::create(dir + "/sub/run.hpbj",
                                      make_header(ds, "random", 1, 4));
    FAIL() << "expected hpb::Error";
  } catch (const hpb::Error& e) {
    EXPECT_NE(std::string(e.what()).find("parent directory does not exist"),
              std::string::npos)
        << e.what();
  }
}

TEST(JournalPaths, EnsureDirBuildsNestedDirectories) {
  const std::string root = fresh_dir("ensure");
  const std::string nested = root + "/a/b/c";
  EXPECT_FALSE(fs::dir_exists(nested));
  fs::ensure_dir(nested);
  EXPECT_TRUE(fs::dir_exists(nested));
  fs::ensure_dir(nested);  // idempotent
  // A journal can be created under the new directory right away.
  auto ds = testutil::separable_dataset();
  (void)core::JournalWriter::create(nested + "/run.hpbj",
                                    make_header(ds, "random", 1, 4));
  // A path component that is a regular file is an error, not a silent
  // success.
  std::ofstream(root + "/file").put('x');
  EXPECT_THROW(fs::ensure_dir(root + "/file/sub"), hpb::Error);
}

}  // namespace
}  // namespace hpb
