// Runtime SIMD dispatch (core/simd.hpp) and the streaming table top-k
// (core/acquisition.hpp):
//   - tier naming, hardware detection, and the strict HPB_SIMD override
//     (unknown values and unavailable tiers throw instead of silently
//     falling back);
//   - score_block is bitwise-identical to the scalar per-candidate path on
//     every compiled tier, across randomized conditional/constrained
//     discrete spaces, a mixed discrete+continuous pool, and unaligned
//     block boundaries (vector-width tails);
//   - the streaming table top-k (pooled and streamed variants) reproduces
//     the generic per-candidate sweep exactly — hits, score bits, and
//     order — for every tier, any thread count, and multi-chunk pools
//     where the bounded merge actually truncates;
//   - HiPerBOt's suggestions are identical under every forced HPB_SIMD
//     tier, for both pooled and streamed Ranking sweeps.
#include "core/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/acquisition.hpp"
#include "core/hiperbot.hpp"
#include "space/candidate_stream.hpp"
#include "test_util.hpp"

namespace hpb::core {
namespace {

using space::Configuration;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Every tier this binary can actually run (scalar always; vector tiers
/// when compiled in AND supported by the CPU).
std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> tiers{SimdTier::kScalar};
  for (SimdTier t : {SimdTier::kAvx2, SimdTier::kNeon}) {
    if (simd_tier_available(t)) {
      tiers.push_back(t);
    }
  }
  return tiers;
}

/// Restores HPB_SIMD (and the cached tier decision) no matter how a test
/// exits, so override tests cannot leak into the rest of the binary.
class SimdEnvGuard {
 public:
  SimdEnvGuard() {
    if (const char* old = std::getenv("HPB_SIMD")) {
      saved_ = old;
    }
  }
  ~SimdEnvGuard() {
    if (saved_.has_value()) {
      ::setenv("HPB_SIMD", saved_->c_str(), 1);
    } else {
      ::unsetenv("HPB_SIMD");
    }
    refresh_simd_tier();
  }
  void set(const std::string& value) {
    ::setenv("HPB_SIMD", value.c_str(), 1);
    refresh_simd_tier();
  }

 private:
  std::optional<std::string> saved_;
};

/// Deterministic objective over any all-discrete space.
double toy_value(const Configuration& c, std::size_t j) {
  double y = static_cast<double>(j % 13) * 1e-3;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double d = c[i] - 2.0;
    y += d * d;
  }
  return y;
}

/// Surrogate + pool + columns + table over one random conditional space.
struct TableFixture {
  space::SpacePtr space;
  std::vector<Configuration> pool;
  History history;
  std::optional<TpeSurrogate> surrogate;
  std::optional<PoolColumns> columns;
  std::optional<AcquisitionTable> table;

  explicit TableFixture(std::uint64_t seed) {
    space = testutil::random_conditional_space(seed);
    pool = space->enumerate();
    for (std::size_t j = 0; j < pool.size(); j += 3) {
      history.add(pool[j], toy_value(pool[j], j));
    }
    surrogate.emplace(space, history, 0.2);
    columns.emplace(*space, pool);
    table.emplace(*surrogate, *columns);
  }
};

// ----------------------------------------------- dispatch + env override

TEST(SimdDispatch, TierNamesDetectionAndAvailability) {
  EXPECT_EQ(simd_tier_name(SimdTier::kScalar), "scalar");
  EXPECT_EQ(simd_tier_name(SimdTier::kAvx2), "avx2");
  EXPECT_EQ(simd_tier_name(SimdTier::kNeon), "neon");
  EXPECT_TRUE(simd_tier_available(SimdTier::kScalar));
  // The detected tier must be runnable, and the active tier (no override
  // in a normal test environment) must be too.
  EXPECT_TRUE(simd_tier_available(detected_simd_tier()));
  EXPECT_TRUE(simd_tier_available(active_simd_tier()));
  // At most one vector tier exists per architecture.
  EXPECT_FALSE(simd_tier_available(SimdTier::kAvx2) &&
               simd_tier_available(SimdTier::kNeon));
}

TEST(SimdDispatch, EnvOverrideIsStrictAndRefreshable) {
  SimdEnvGuard guard;
  guard.set("off");
  EXPECT_EQ(active_simd_tier(), SimdTier::kScalar);
  // Forcing an available vector tier selects it.
  for (SimdTier tier : available_tiers()) {
    if (tier == SimdTier::kScalar) {
      continue;
    }
    guard.set(std::string(simd_tier_name(tier)));
    EXPECT_EQ(active_simd_tier(), tier);
  }
  // Unknown values are an error, not a fallback.
  guard.set("sse9");
  EXPECT_THROW((void)active_simd_tier(), Error);
  // So is a tier this build/CPU cannot run.
  for (SimdTier tier : {SimdTier::kAvx2, SimdTier::kNeon}) {
    if (!simd_tier_available(tier)) {
      guard.set(std::string(simd_tier_name(tier)));
      EXPECT_THROW((void)active_simd_tier(), Error)
          << simd_tier_name(tier) << " should be unavailable here";
    }
  }
  // Empty / unset falls back to hardware detection.
  ::unsetenv("HPB_SIMD");
  refresh_simd_tier();
  EXPECT_EQ(active_simd_tier(), detected_simd_tier());
}

// -------------------------------------- score_block bitwise parity

TEST(SimdDispatch, ScoreBlockBitwiseParityOnRandomSpaces) {
  const std::vector<SimdTier> tiers = available_tiers();
  for (std::uint64_t t = 0; t < 40; ++t) {
    SCOPED_TRACE("space seed " + std::to_string(t));
    const TableFixture fx(0x51D0'0000 + t);
    const std::size_t n = fx.pool.size();
    // Per-candidate reference: table.score, itself pinned bitwise to
    // surrogate.acquisition by the Acquisition suite.
    std::vector<double> reference(n);
    for (std::size_t j = 0; j < n; ++j) {
      reference[j] = fx.table->score(*fx.columns, j);
      ASSERT_EQ(bits(reference[j]), bits(fx.surrogate->acquisition(fx.pool[j])))
          << "candidate " << j;
    }
    for (const SimdTier tier : tiers) {
      std::vector<double> out(n);
      fx.table->score_block(*fx.columns, 0, n, out.data(), tier);
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(bits(out[j]), bits(reference[j]))
            << simd_tier_name(tier) << " candidate " << j;
      }
    }
  }
}

TEST(SimdDispatch, ScoreBlockHandlesUnalignedRangesAndTails) {
  // Block boundaries that are not multiples of any vector width, so every
  // tier's tail path runs and lane offsets stay honest.
  const TableFixture fx(0x51D0'00FF);
  const std::size_t n = fx.pool.size();
  ASSERT_GE(n, 12u);
  std::vector<double> reference(n);
  fx.table->score_block(*fx.columns, 0, n, reference.data(),
                        SimdTier::kScalar);
  for (const SimdTier tier : available_tiers()) {
    for (const auto [begin, end] :
         {std::pair<std::size_t, std::size_t>{1, n - 2},
          {3, 4},  // single candidate, pure tail
          {0, 7},
          {n - 5, n}}) {
      std::vector<double> out(end - begin);
      fx.table->score_block(*fx.columns, begin, end, out.data(), tier);
      for (std::size_t j = begin; j < end; ++j) {
        ASSERT_EQ(bits(out[j - begin]), bits(reference[j]))
            << simd_tier_name(tier) << " range [" << begin << ", " << end
            << ") candidate " << j;
      }
    }
  }
}

TEST(SimdDispatch, ScoreBlockBitwiseParityOnMixedSpace) {
  // Mixed pool with repeated continuous values: the continuous column
  // indexes distinct-value ranks, which the gathers must follow just like
  // discrete levels.
  auto space = testutil::mixed_space();
  std::vector<Configuration> pool;
  for (double level : {0.0, 1.0, 2.0}) {
    for (double v : {0.25, 1.75, 3.5, 3.5, 9.0, 6.125, 0.25}) {
      pool.emplace_back(std::vector<double>{level, v});
    }
  }
  History h;
  for (std::size_t j = 0; j < pool.size(); j += 2) {
    h.add(pool[j], pool[j][1] + static_cast<double>(pool[j].level(0)));
  }
  const TpeSurrogate s(space, h, 0.3);
  const PoolColumns columns(*space, pool);
  ASSERT_TRUE(columns.is_continuous(1));
  const AcquisitionTable table(s, columns);
  std::vector<double> reference(pool.size());
  for (std::size_t j = 0; j < pool.size(); ++j) {
    reference[j] = table.score(columns, j);
  }
  for (const SimdTier tier : available_tiers()) {
    std::vector<double> out(pool.size());
    table.score_block(columns, 0, pool.size(), out.data(), tier);
    for (std::size_t j = 0; j < pool.size(); ++j) {
      EXPECT_EQ(bits(out[j]), bits(reference[j]))
          << simd_tier_name(tier) << " candidate " << j;
    }
  }
}

// ------------------------------------------------ streaming table top-k

TEST(StreamingTopk, TableTopkMatchesGenericSweepOnRandomSpaces) {
  for (std::uint64_t t = 0; t < 30; ++t) {
    SCOPED_TRACE("space seed " + std::to_string(t));
    const TableFixture fx(0x70C0'0000 + t);
    const auto excluded = [&](std::size_t j) {
      return fx.columns->ordinals()[j] % 7 == 0;
    };
    for (const std::size_t k : {std::size_t{1}, std::size_t{5}}) {
      const std::vector<SweepHit> reference = acquisition_topk(
          fx.columns->size(), k, nullptr,
          [&](std::size_t j) { return fx.table->score(*fx.columns, j); },
          excluded);
      for (const SimdTier tier : available_tiers()) {
        const std::vector<SweepHit> got = acquisition_topk_table(
            *fx.table, *fx.columns, k, nullptr, excluded, tier);
        ASSERT_EQ(got.size(), reference.size()) << simd_tier_name(tier);
        for (std::size_t i = 0; i < reference.size(); ++i) {
          EXPECT_EQ(got[i].index, reference[i].index) << simd_tier_name(tier);
          EXPECT_EQ(bits(got[i].score), bits(reference[i].score));
        }
      }
    }
  }
}

TEST(StreamingTopk, MultiChunkBoundedMergeMatchesGenericForAnyThreadCount) {
  // A 2^16 pool spans 8 fixed chunks, so the bounded per-chunk lists and
  // the serial merge both truncate; heavy score ties (few levels) exercise
  // the lowest-index tie-break through the merge.
  auto space = std::make_shared<space::ParameterSpace>();
  for (int i = 0; i < 4; ++i) {
    space->add(space::Parameter::integer("p" + std::to_string(i), 0, 15));
  }
  const std::vector<Configuration> pool = space->enumerate();
  ASSERT_EQ(pool.size(), 8 * kSweepChunk);
  History h;
  for (std::size_t j = 0; j < pool.size(); j += 1021) {
    h.add(pool[j], toy_value(pool[j], j));
  }
  const TpeSurrogate s(space, h, 0.2);
  const PoolColumns columns(*space, pool);
  const AcquisitionTable table(s, columns);
  const auto excluded = [&](std::size_t j) {
    return columns.ordinals()[j] % 5 == 0;
  };
  const std::vector<SweepHit> reference = acquisition_topk(
      columns.size(), 7, nullptr,
      [&](std::size_t j) { return table.score(columns, j); }, excluded);
  ASSERT_EQ(reference.size(), 7u);
  ThreadPool pool1(1), pool2(2), pool7(7), pool_hw(0);
  ThreadPool* pools[] = {nullptr, &pool1, &pool2, &pool7, &pool_hw};
  for (const SimdTier tier : available_tiers()) {
    for (ThreadPool* workers : pools) {
      const std::vector<SweepHit> got =
          acquisition_topk_table(table, columns, 7, workers, excluded, tier);
      ASSERT_EQ(got.size(), reference.size()) << simd_tier_name(tier);
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(got[i].index, reference[i].index) << simd_tier_name(tier);
        EXPECT_EQ(bits(got[i].score), bits(reference[i].score));
      }
    }
  }
}

TEST(StreamingTopk, StreamedTableSweepMatchesScoreConfigSweep) {
  ThreadPool pool2(2);
  for (std::uint64_t t = 0; t < 30; ++t) {
    SCOPED_TRACE("space seed " + std::to_string(t));
    auto space = testutil::random_conditional_space(0x57E0'0000 + t);
    const std::vector<Configuration> pool = space->enumerate();
    History h;
    for (std::size_t j = 0; j < pool.size(); j += 3) {
      h.add(pool[j], toy_value(pool[j], j));
    }
    const TpeSurrogate s(space, h, 0.2);
    const AcquisitionTable table(s, *space);
    // Small chunks force a multi-chunk streamed pass.
    const space::CandidateStream stream(space, /*seed=*/t,
                                        space::StreamConfig{.chunk = 64});
    const auto excluded = [](const space::CandidateStream::Candidate& c) {
      return c.ordinal % 3 == 0;
    };
    const std::vector<StreamHit> reference = acquisition_topk_stream(
        stream, /*pass=*/0, /*k=*/5, nullptr,
        [&](const Configuration& c) { return table.score_config(c); },
        excluded);
    for (const SimdTier tier : available_tiers()) {
      for (ThreadPool* workers : {static_cast<ThreadPool*>(nullptr), &pool2}) {
        const std::vector<StreamHit> got = acquisition_topk_stream_table(
            stream, /*pass=*/0, /*k=*/5, workers, table, excluded, tier);
        ASSERT_EQ(got.size(), reference.size()) << simd_tier_name(tier);
        for (std::size_t i = 0; i < reference.size(); ++i) {
          EXPECT_EQ(got[i].config.values(), reference[i].config.values());
          EXPECT_EQ(bits(got[i].score), bits(reference[i].score));
          EXPECT_EQ(got[i].pass_index, reference[i].pass_index);
          EXPECT_EQ(got[i].ordinal, reference[i].ordinal);
        }
      }
    }
  }
}

// -------------------------------- end-to-end: forced tiers, same tuner run

std::vector<std::uint64_t> forced_tier_run(SweepSource source) {
  auto ds = testutil::separable_dataset();
  HiPerBOtConfig config;
  config.initial_samples = 8;
  config.sweep_source = source;
  HiPerBOt tuner(ds.space_ptr(), config, 99);
  ThreadPool pool(2);
  tuner.set_sweep_pool(&pool);
  std::vector<std::uint64_t> seq;
  for (int t = 0; t < 25; ++t) {
    const Configuration c = tuner.suggest();
    seq.push_back(ds.space().ordinal_of(c));
    tuner.observe(c, ds.value_of(c));
  }
  seq.push_back(bits(tuner.history().best_value()));
  return seq;
}

TEST(StreamingTopk, SuggestionsIdenticalUnderEveryForcedTier) {
  SimdEnvGuard guard;
  guard.set("off");
  const auto pooled_reference = forced_tier_run(SweepSource::kPooled);
  const auto streamed_reference = forced_tier_run(SweepSource::kStreamed);
  // Streamed and pooled sweeps agree on a flat space (pinned elsewhere);
  // here both must also be tier-invariant.
  EXPECT_EQ(streamed_reference, pooled_reference);
  for (const SimdTier tier : available_tiers()) {
    if (tier == SimdTier::kScalar) {
      continue;
    }
    guard.set(std::string(simd_tier_name(tier)));
    EXPECT_EQ(forced_tier_run(SweepSource::kPooled), pooled_reference)
        << simd_tier_name(tier);
    EXPECT_EQ(forced_tier_run(SweepSource::kStreamed), streamed_reference)
        << simd_tier_name(tier);
  }
}

}  // namespace
}  // namespace hpb::core
