// Observability layer:
//   - metrics registry units: counter/gauge/histogram semantics, kind
//     collisions, deterministic JSON snapshots, lock-free hot path under
//     concurrent hammering;
//   - trace sink: JSONL format, id continuation across append_to (the
//     --resume stitching path), max_trace_id;
//   - the zero-cost guarantee: an engine run with a NoopTraceSink (or no
//     recorder at all) is bitwise identical to a traceless run;
//   - determinism: same seed + FakeClock => byte-identical trace files;
//   - coverage: a traced, journaled session emits one round span per round,
//     one evaluate span per evaluation, one journal.append per record, and
//     the tuner's fit events once the surrogate engages.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/engine.hpp"
#include "core/journal.hpp"
#include "eval/methods.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using core::TuneResult;
using core::TuningEngine;

constexpr std::uint64_t kSeed = 0x0b5e7e57;

std::string temp_path(const std::string& stem) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "obs_" + info->test_suite_name() + "_" +
         info->name() + "_" + stem;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void expect_identical(const TuneResult& a, const TuneResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].config.values(), b.history[i].config.values())
        << "history diverges at evaluation " << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status);
  }
  EXPECT_EQ(a.best_so_far, b.best_so_far);
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best_config.values(), b.best_config.values());
  EXPECT_EQ(a.num_failed, b.num_failed);
}

// ------------------------------------------------------------- metrics

TEST(Metrics, CounterAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeLastWriteWins) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-0.25);
  EXPECT_EQ(g.value(), -0.25);
}

TEST(Metrics, HistogramBucketsAndSum) {
  const double bounds[] = {1.0, 10.0, 100.0};
  obs::Histogram h{std::span<const double>(bounds)};
  h.record(0.5);    // <= 1
  h.record(1.0);    // <= 1 (bounds are inclusive upper edges)
  h.record(5.0);    // <= 10
  h.record(1000.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
}

TEST(Metrics, HistogramRejectsBadBounds) {
  const double unsorted[] = {1.0, 1.0};
  EXPECT_THROW(obs::Histogram{std::span<const double>(unsorted)}, Error);
  EXPECT_THROW(obs::Histogram{std::span<const double>()}, Error);
}

TEST(Metrics, RegistryFindsOrCreatesAndRejectsKindCollisions) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x.count");
  c.add(3);
  EXPECT_EQ(&reg.counter("x.count"), &c);  // stable handle
  EXPECT_EQ(reg.counter("x.count").value(), 3u);
  EXPECT_THROW((void)reg.gauge("x.count"), Error);
  const double bounds[] = {1.0};
  EXPECT_THROW((void)reg.histogram("x.count", bounds), Error);
  // Re-registering a histogram keeps the original bounds.
  const double first[] = {1.0, 2.0};
  const double other[] = {5.0};
  obs::Histogram& h = reg.histogram("lat", first);
  EXPECT_EQ(&reg.histogram("lat", other), &h);
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(Metrics, JsonSnapshotIsDeterministicAndOrdered) {
  auto build = [] {
    obs::MetricsRegistry reg;
    reg.counter("b.count").add(2);
    reg.gauge("a.gauge").set(1.5);
    const double bounds[] = {1.0, 10.0};
    reg.histogram("c.hist", bounds).record(3.0);
    return reg.to_json();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  // Name order, not registration order.
  EXPECT_LT(a.find("a.gauge"), a.find("b.count"));
  EXPECT_LT(a.find("b.count"), a.find("c.hist"));
  EXPECT_NE(a.find("\"value\":1.5"), std::string::npos) << a;
}

TEST(Metrics, WriteJsonRoundTrips) {
  obs::MetricsRegistry reg;
  reg.counter("n").add(7);
  const std::string path = temp_path("metrics.json");
  reg.write_json(path);
  EXPECT_EQ(slurp(path), reg.to_json());
  std::remove(path.c_str());
}

TEST(Metrics, HotPathIsExactUnderConcurrency) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("hits");
  const double bounds[] = {10.0, 100.0, 1000.0};
  obs::Histogram& h = reg.histogram("lat", bounds);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<double>((t * kPerThread + i) % 2000));
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
  // Sum is CAS-accumulated: no lost updates. 4 full sweeps of 0..1999.
  const double sweep = 2000.0 * 1999.0 / 2.0;
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * (kPerThread / 2000) * sweep);
}

// --------------------------------------------------------------- trace

TEST(TraceSink, JsonlFormatAndIds) {
  const std::string path = temp_path("trace.jsonl");
  {
    obs::JsonlTraceSink sink = obs::JsonlTraceSink::create(path);
    const std::uint64_t parent = sink.next_id();
    EXPECT_EQ(parent, 1u);
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::uint("index", 2),
        obs::TraceAttr::str("status", "ok"),
        obs::TraceAttr::num("value", 8.5),
    };
    sink.emit({.name = "evaluate",
               .id = sink.next_id(),
               .parent = parent,
               .start_ns = 100,
               .end_ns = 145,
               .attrs = attrs});
    sink.emit({.name = "round",
               .id = parent,
               .parent = 0,
               .start_ns = 90,
               .end_ns = 150,
               .attrs = {}});
  }
  const std::string text = slurp(path);
  EXPECT_EQ(text,
            "{\"id\":2,\"parent\":1,\"name\":\"evaluate\",\"ts\":100,"
            "\"dur\":45,\"attrs\":{\"index\":2,\"status\":\"ok\","
            "\"value\":8.5}}\n"
            "{\"id\":1,\"name\":\"round\",\"ts\":90,\"dur\":60}\n");
  EXPECT_EQ(obs::max_trace_id(path), 2u);
  std::remove(path.c_str());
}

TEST(TraceSink, AppendContinuesIdsAfterTheLargestInTheFile) {
  const std::string path = temp_path("trace.jsonl");
  {
    obs::JsonlTraceSink sink = obs::JsonlTraceSink::create(path);
    for (int i = 0; i < 5; ++i) {
      sink.emit({.name = "e", .id = sink.next_id(), .start_ns = 1,
                 .end_ns = 1, .attrs = {}});
    }
  }
  {
    obs::JsonlTraceSink sink = obs::JsonlTraceSink::append_to(path);
    EXPECT_EQ(sink.next_id(), 6u);  // continues, never reuses
    sink.emit({.name = "e", .id = 6, .start_ns = 2, .end_ns = 2,
               .attrs = {}});
  }
  EXPECT_EQ(obs::max_trace_id(path), 6u);
  // The first session's lines are intact (append, not truncate).
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"id\":1,"), std::string::npos);
  EXPECT_NE(text.find("\"id\":6,"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceSink, AppendToMissingFileDegradesToCreate) {
  const std::string path = temp_path("fresh.jsonl");
  std::remove(path.c_str());
  obs::JsonlTraceSink sink = obs::JsonlTraceSink::append_to(path);
  EXPECT_EQ(sink.next_id(), 1u);
  std::remove(path.c_str());
}

// --------------------------------------------- zero-cost / determinism

TEST(ObsEngine, NoopSinkRunIsBitwiseIdenticalToTraceless) {
  auto ds = testutil::separable_dataset();
  obs::NoopTraceSink noop;
  obs::FakeClock clock;
  const TuningEngine plain({.batch_size = 2});
  const TuningEngine nooped(
      {.batch_size = 2, .recorder = {.trace = &noop, .clock = &clock}});
  auto a = eval::make_named_tuner("hiperbot", ds, kSeed);
  auto b = eval::make_named_tuner("hiperbot", ds, kSeed);
  expect_identical(plain.run(*a, ds, 40), nooped.run(*b, ds, 40));
}

TEST(ObsEngine, MetricsOnlyRunIsBitwiseIdenticalToPlain) {
  auto ds = testutil::separable_dataset();
  obs::MetricsRegistry metrics;
  const TuningEngine plain({.batch_size = 2});
  const TuningEngine metered({.batch_size = 2,
                              .recorder = {.metrics = &metrics}});
  auto a = eval::make_named_tuner("hiperbot", ds, kSeed);
  auto b = eval::make_named_tuner("hiperbot", ds, kSeed);
  expect_identical(plain.run(*a, ds, 40), metered.run(*b, ds, 40));
  EXPECT_EQ(metrics.counter("engine.evaluations").value(), 40u);
  EXPECT_EQ(metrics.counter("engine.rounds").value(), 20u);
  EXPECT_EQ(metrics.gauge("engine.best_value").value(), 1.0);
  EXPECT_GE(metrics.counter("hiperbot.fits").value(), 1u);
}

TEST(ObsEngine, SameSeedAndFakeClockProduceByteIdenticalTraces) {
  auto ds = testutil::separable_dataset();
  auto traced_run = [&](const std::string& path) {
    obs::FakeClock clock(1000, 10);
    obs::JsonlTraceSink sink = obs::JsonlTraceSink::create(path);
    const TuningEngine engine(
        {.batch_size = 2, .recorder = {.trace = &sink, .clock = &clock}});
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    (void)engine.run(*tuner, ds, 40);
    sink.flush();
  };
  const std::string first = temp_path("a.jsonl");
  const std::string second = temp_path("b.jsonl");
  traced_run(first);
  traced_run(second);
  const std::string a = slurp(first);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

// ------------------------------------------------------------ coverage

std::size_t count_spans(const std::string& text, const std::string& name) {
  const std::string needle = "\"name\":\"" + name + "\"";
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ObsEngine, TracedJournaledSessionCoversEveryRoundEvalAndAppend) {
  auto ds = testutil::separable_dataset();
  const std::string trace_path = temp_path("session.jsonl");
  const std::string journal_path = temp_path("session.hpbj");
  constexpr std::size_t kBudget = 30;
  constexpr std::size_t kBatch = 4;
  {
    core::JournalHeader header;
    header.method = "hiperbot";
    header.dataset = ds.name();
    header.seed = kSeed;
    header.batch_size = kBatch;
    header.num_params = ds.space().num_params();
    header.max_evaluations = kBudget;
    header.trace_path = trace_path;
    core::JournalWriter journal =
        core::JournalWriter::create(journal_path, header);
    obs::FakeClock clock;
    obs::JsonlTraceSink sink = obs::JsonlTraceSink::create(trace_path);
    obs::MetricsRegistry metrics;
    const TuningEngine engine({.batch_size = kBatch,
                               .journal = &journal,
                               .recorder = {.trace = &sink,
                                            .metrics = &metrics,
                                            .clock = &clock}});
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    const TuneResult result = engine.run(*tuner, ds, kBudget);
    ASSERT_EQ(result.history.size(), kBudget);
    sink.flush();
  }
  const std::string text = slurp(trace_path);
  // 30 evaluations at batch 4 = 8 rounds (7 full + one of 2).
  const std::size_t rounds = (kBudget + kBatch - 1) / kBatch;
  EXPECT_EQ(count_spans(text, "round"), rounds);
  EXPECT_EQ(count_spans(text, "suggest"), rounds);
  EXPECT_EQ(count_spans(text, "observe"), rounds);
  EXPECT_EQ(count_spans(text, "evaluate"), kBudget);
  EXPECT_EQ(count_spans(text, "journal.append"), kBudget);
  // Default HiPerBOt config fits the surrogate once 20 initial samples are
  // in: rounds 5.. propose from the model.
  EXPECT_GE(count_spans(text, "hiperbot.fit"), 1u);
  // Every line is a JSON object with an id.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find("\"id\":"), 1u) << line;
  }
  // The journal points at the trace, so --resume can stitch spans.
  const core::JournalContents contents = core::read_journal(journal_path);
  EXPECT_EQ(contents.header.trace_path, trace_path);
  std::remove(trace_path.c_str());
  std::remove(journal_path.c_str());
}

TEST(ObsEngine, BaselineTunersExportTheirFits) {
  auto ds = testutil::separable_dataset();
  for (const char* method : {"gp", "ridge", "geist"}) {
    SCOPED_TRACE(method);
    obs::MetricsRegistry metrics;
    const TuningEngine engine({.recorder = {.metrics = &metrics}});
    auto tuner = eval::make_named_tuner(method, ds, kSeed);
    (void)engine.run(*tuner, ds, 40);
    const std::string json = metrics.to_json();
    const std::string counter = std::string(method) == "gp"      ? "gp.fits"
                                : std::string(method) == "ridge" ? "ridge.refits"
                                                           : "geist.propagations";
    EXPECT_GE(metrics.counter(counter).value(), 1u) << json;
  }
}

}  // namespace
}  // namespace hpb
