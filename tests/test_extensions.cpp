// Tests for the tuning-loop extensions: Latin hypercube initial designs,
// stopping criteria, objective adapters, and batch suggestion.
#include <gtest/gtest.h>

#include <set>

#include "core/hiperbot.hpp"
#include "core/stopping.hpp"
#include "space/sampling.hpp"
#include "tabular/adapters.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using space::Configuration;

// ------------------------------------------------------------- LHS designs
TEST(LatinHypercube, DiscreteLevelsCoveredEvenly) {
  const auto sp = testutil::small_discrete_space();
  Rng rng(1);
  // n = 12 = 4 × 3: parameter A (4 levels) must appear exactly 3× per
  // level, B (3 levels) exactly 4× per level.
  const auto design = space::latin_hypercube(*sp, 12, rng);
  ASSERT_EQ(design.size(), 12u);
  std::vector<int> count_a(4, 0), count_b(3, 0);
  for (const auto& c : design) {
    ++count_a[c.level(0)];
    ++count_b[c.level(1)];
  }
  for (int n : count_a) {
    EXPECT_EQ(n, 3);
  }
  for (int n : count_b) {
    EXPECT_EQ(n, 4);
  }
}

TEST(LatinHypercube, ContinuousStrataEachContainOneSample) {
  const auto sp = testutil::mixed_space();  // t in [0, 10]
  Rng rng(2);
  constexpr std::size_t kN = 20;
  const auto design = space::latin_hypercube(*sp, kN, rng);
  std::vector<int> strata(kN, 0);
  for (const auto& c : design) {
    const auto s = static_cast<std::size_t>(c[1] / (10.0 / kN));
    ++strata[std::min(s, kN - 1)];
  }
  for (int n : strata) {
    EXPECT_EQ(n, 1);
  }
}

TEST(LatinHypercube, ConstrainedRowsAreReplacedByValidSamples) {
  auto sp = std::make_shared<space::ParameterSpace>();
  sp->add(space::Parameter::integer("a", 0, 3));
  sp->add(space::Parameter::integer("b", 0, 3));
  sp->add_constraint(
      [](const space::ParameterSpace&, const Configuration& c) {
        return c.level(0) != c.level(1);
      },
      "");
  Rng rng(3);
  const auto design = space::latin_hypercube(*sp, 16, rng);
  ASSERT_EQ(design.size(), 16u);
  for (const auto& c : design) {
    EXPECT_TRUE(sp->satisfies(c));
  }
}

TEST(LatinHypercube, Validation) {
  const auto sp = testutil::small_discrete_space();
  Rng rng(4);
  EXPECT_THROW((void)space::latin_hypercube(*sp, 0, rng), Error);
}

TEST(HiPerBOtLhs, InitialPhaseUsesTheDesign) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 12;
  config.initial_design = core::InitialDesign::kLatinHypercube;
  core::HiPerBOt tuner(ds.space_ptr(), config, 5);
  std::vector<int> count_a(4, 0);
  for (int t = 0; t < 12; ++t) {
    const Configuration c = tuner.suggest();
    ++count_a[c.level(0)];
    tuner.observe(c, ds.value_of(c));
  }
  // 12 initial samples over 4 A-levels: exact stratification unless a
  // duplicate forced a uniform replacement — allow one deviation.
  int deviations = 0;
  for (int n : count_a) {
    deviations += std::abs(n - 3);
  }
  EXPECT_LE(deviations, 2);
}

// --------------------------------------------------------------- stopping
TEST(Stopping, BudgetExhaustion) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 4;
  core::HiPerBOt tuner(ds.space_ptr(), config, 6);
  core::StopConfig stop;
  stop.max_evaluations = 15;
  const auto out = core::run_tuning_until(tuner, ds, stop);
  EXPECT_EQ(out.reason, core::StopReason::kBudgetExhausted);
  EXPECT_EQ(out.result.history.size(), 15u);
}

TEST(Stopping, StagnationFiresAfterPatience) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 4;
  core::HiPerBOt tuner(ds.space_ptr(), config, 7);
  core::StopConfig stop;
  stop.max_evaluations = 60;
  stop.stagnation_patience = 8;
  const auto out = core::run_tuning_until(tuner, ds, stop);
  EXPECT_EQ(out.reason, core::StopReason::kStagnation);
  EXPECT_LT(out.result.history.size(), 60u);
  // The last `patience` evaluations brought no improvement.
  const auto& traj = out.result.best_so_far;
  EXPECT_DOUBLE_EQ(traj.back(), traj[traj.size() - 8]);
}

TEST(Stopping, TargetReachedStopsImmediately) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 4;
  core::HiPerBOt tuner(ds.space_ptr(), config, 8);
  core::StopConfig stop;
  stop.max_evaluations = 60;
  stop.target_value = 1.0;  // the dataset optimum
  const auto out = core::run_tuning_until(tuner, ds, stop);
  EXPECT_EQ(out.reason, core::StopReason::kTargetReached);
  EXPECT_DOUBLE_EQ(out.result.best_value, 1.0);
  EXPECT_DOUBLE_EQ(out.result.history.back().y, 1.0);
}

TEST(Stopping, Validation) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOt tuner(ds.space_ptr(), {}, 9);
  core::StopConfig stop;
  stop.max_evaluations = 0;
  EXPECT_THROW((void)core::run_tuning_until(tuner, ds, stop), Error);
}

// ---------------------------------------------------------------- adapters
TEST(Adapters, MaximizeNegatesAndTunersFindTheMaximum) {
  auto ds = testutil::separable_dataset();
  tabular::MaximizeAdapter maximize(ds);
  // The separable objective's maximum is at the levels farthest from
  // (1,2,3): A=3, B=0, C=0 with value 4+4+9+1 = 18.
  core::HiPerBOtConfig config;
  config.initial_samples = 8;
  core::HiPerBOt tuner(ds.space_ptr(), config, 10);
  const auto result = core::run_tuning(tuner, maximize, 40);
  EXPECT_DOUBLE_EQ(-result.best_value, 18.0);
}

TEST(Adapters, CountingCountsExactly) {
  auto ds = testutil::separable_dataset();
  tabular::CountingObjective counting(ds);
  core::HiPerBOt tuner(ds.space_ptr(), {}, 11);
  (void)core::run_tuning(tuner, counting, 25);
  EXPECT_EQ(counting.count(), 25u);
}

TEST(Adapters, NoisyPerturbsMultiplicatively) {
  auto ds = testutil::separable_dataset();
  tabular::NoisyObjective noisy(ds, 0.05, 12);
  const auto& c = ds.config(7);
  const double truth = ds.value(7);
  double max_rel = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double y = noisy.evaluate(c);
    max_rel = std::max(max_rel, std::abs(y - truth) / truth);
  }
  EXPECT_GT(max_rel, 0.01);  // noise is actually applied
  EXPECT_LT(max_rel, 0.30);  // ... at roughly the requested magnitude
  EXPECT_THROW(tabular::NoisyObjective(ds, -0.1, 1), Error);
}

TEST(Adapters, TunerStillWorksUnderNoise) {
  auto ds = testutil::separable_dataset();
  tabular::NoisyObjective noisy(ds, 0.05, 13);
  core::HiPerBOtConfig config;
  config.initial_samples = 8;
  core::HiPerBOt tuner(ds.space_ptr(), config, 13);
  const auto result = core::run_tuning(tuner, noisy, 40);
  // The *true* value of the selected config is near-optimal even though
  // observations were noisy.
  EXPECT_LE(ds.value_of(result.best_config), 3.0);
}

// -------------------------------------------------------- batch suggestion
TEST(BatchSuggest, DistinctAndScoredInInitialAndModelPhase) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 8;
  core::HiPerBOt tuner(ds.space_ptr(), config, 14);

  // Initial phase batch.
  auto batch = tuner.suggest_batch(8);
  ASSERT_EQ(batch.size(), 8u);
  std::set<std::uint64_t> seen;
  for (const auto& c : batch) {
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
    tuner.observe(c, ds.value_of(c));
  }

  // Model phase: a serial suggestion is outstanding (pending) until
  // observed, so a subsequent batch must not repeat it — it starts at the
  // surrogate's *second*-best pick.
  const Configuration top = tuner.suggest();
  EXPECT_TRUE(seen.insert(ds.space().ordinal_of(top)).second);
  auto model_batch = tuner.suggest_batch(5);
  ASSERT_EQ(model_batch.size(), 5u);
  for (const auto& c : model_batch) {
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
  }
  // Observing the outstanding suggestion releases its pending slot without
  // disturbing the batch bookkeeping.
  tuner.observe(top, ds.value_of(top));
}

TEST(BatchSuggest, CapsAtRemainingPool) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 8;
  core::HiPerBOt tuner(ds.space_ptr(), config, 15);
  for (int t = 0; t < 55; ++t) {
    const auto c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
  }
  const auto batch = tuner.suggest_batch(20);  // only 5 configs remain
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_THROW((void)tuner.suggest_batch(0), Error);
}

TEST(BatchSuggest, ProposalStrategyProducesValidBatch) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 8;
  config.strategy = core::SelectionStrategy::kProposal;
  core::HiPerBOt tuner(ds.space_ptr(), config, 16);
  for (int t = 0; t < 10; ++t) {
    const auto c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
  }
  const auto batch = tuner.suggest_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  std::set<std::uint64_t> seen;
  for (const auto& c : batch) {
    EXPECT_TRUE(ds.space().satisfies(c));
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
  }
}

}  // namespace
}  // namespace hpb
