// Tests for the evaluation layer: the §IV-B metrics, the replicated
// experiment runner, and report formatting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "baselines/random_search.hpp"
#include "common/error.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "eval/methods.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "test_util.hpp"

namespace hpb::eval {
namespace {

using core::Observation;
using space::Configuration;

std::vector<Observation> toy_history(
    const tabular::TabularObjective& ds,
    const std::vector<std::size_t>& indices) {
  std::vector<Observation> h;
  for (std::size_t idx : indices) {
    h.push_back({ds.config(idx), ds.value(idx)});
  }
  return h;
}

TEST(Metrics, BestOfFirstIsPrefixMinimum) {
  auto ds = testutil::separable_dataset();
  std::vector<Observation> h = {{ds.config(0), 5.0},
                                {ds.config(1), 2.0},
                                {ds.config(2), 9.0}};
  EXPECT_DOUBLE_EQ(best_of_first(h, 1), 5.0);
  EXPECT_DOUBLE_EQ(best_of_first(h, 2), 2.0);
  EXPECT_DOUBLE_EQ(best_of_first(h, 3), 2.0);
  EXPECT_DOUBLE_EQ(best_of_first(h, 99), 2.0);  // clamped
  EXPECT_THROW((void)best_of_first({}, 1), Error);
}

TEST(Metrics, RecallPercentileCountsGoodPrefix) {
  auto ds = testutil::separable_dataset();
  // Indices sorted by value: pick the dataset's best config deliberately.
  const std::size_t best = ds.best_index();
  auto h = toy_history(ds, {best});
  const double ell = 5.0;
  const double y_ell = ds.percentile_value(ell);
  const double denom = static_cast<double>(ds.count_leq(y_ell));
  EXPECT_NEAR(recall_percentile(ds, h, 1, ell), 1.0 / denom, 1e-12);
}

TEST(Metrics, RecallOneWhenAllGoodSelected) {
  auto ds = testutil::separable_dataset();
  const double gamma = 0.5;
  const double threshold = (1.0 + gamma) * ds.best_value();
  std::vector<std::size_t> good_rows;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.value(i) <= threshold) {
      good_rows.push_back(i);
    }
  }
  ASSERT_FALSE(good_rows.empty());
  const auto h = toy_history(ds, good_rows);
  EXPECT_DOUBLE_EQ(recall_tolerance(ds, h, h.size(), gamma), 1.0);
  EXPECT_DOUBLE_EQ(recall_tolerance_indices(ds, good_rows, gamma), 1.0);
  EXPECT_EQ(good_case_count(ds, gamma), good_rows.size());
}

TEST(Metrics, RecallZeroWhenOnlyBadSelected) {
  auto ds = testutil::separable_dataset();
  // The worst row cannot be within 5% of the best.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < ds.size(); ++i) {
    if (ds.value(i) > ds.value(worst)) {
      worst = i;
    }
  }
  const auto h = toy_history(ds, {worst});
  EXPECT_DOUBLE_EQ(recall_tolerance(ds, h, 1, 0.05), 0.0);
}

TEST(Metrics, RecallPrefixOnlyCountsFirstN) {
  auto ds = testutil::separable_dataset();
  const auto h = toy_history(ds, {ds.best_index(), 0});
  const double r1 = recall_tolerance(ds, h, 1, 0.05);
  EXPECT_GT(r1, 0.0);
  // With n = 0 interpreted as empty prefix... n is clamped to history, so
  // use a worst-first ordering to check prefix semantics instead.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < ds.size(); ++i) {
    if (ds.value(i) > ds.value(worst)) {
      worst = i;
    }
  }
  const auto h2 = toy_history(ds, {worst, ds.best_index()});
  EXPECT_DOUBLE_EQ(recall_tolerance(ds, h2, 1, 0.05), 0.0);
  EXPECT_GT(recall_tolerance(ds, h2, 2, 0.05), 0.0);
}

TEST(Experiment, CurveShapesAndDeterminism) {
  auto ds = testutil::separable_dataset();
  SelectionExperimentConfig cfg;
  cfg.sample_sizes = {5, 10, 20};
  cfg.reps = 4;
  cfg.recall_percentile = 10.0;
  cfg.seed = 77;
  TunerFactory random = [&](std::uint64_t seed) {
    return std::make_unique<baselines::RandomSearch>(ds.space_ptr(), seed);
  };
  const MethodCurve a = run_selection_experiment(ds, "Random", random, cfg);
  EXPECT_EQ(a.method, "Random");
  ASSERT_EQ(a.best_value.size(), 3u);
  ASSERT_EQ(a.recall.size(), 3u);
  for (const auto& cell : a.best_value) {
    EXPECT_EQ(cell.count(), 4u);
  }
  // Best value improves (weakly) with more samples.
  EXPECT_GE(a.best_value[0].mean(), a.best_value[2].mean());
  // Recall grows (weakly) with more samples.
  EXPECT_LE(a.recall[0].mean(), a.recall[2].mean());
  // Deterministic given a seed.
  const MethodCurve b = run_selection_experiment(ds, "Random", random, cfg);
  EXPECT_DOUBLE_EQ(a.best_value[1].mean(), b.best_value[1].mean());
}

TEST(Experiment, RejectsBadConfig) {
  auto ds = testutil::separable_dataset();
  TunerFactory random = [&](std::uint64_t seed) {
    return std::make_unique<baselines::RandomSearch>(ds.space_ptr(), seed);
  };
  SelectionExperimentConfig cfg;
  cfg.sample_sizes = {};
  EXPECT_THROW((void)run_selection_experiment(ds, "r", random, cfg), Error);
  cfg.sample_sizes = {1000};  // exceeds the 60-row dataset
  EXPECT_THROW((void)run_selection_experiment(ds, "r", random, cfg), Error);
}

TEST(Experiment, RepsFromEnvParsesAndFallsBack) {
  ::setenv("HPB_REPS", "7", 1);
  EXPECT_EQ(reps_from_env(20), 7u);
  // Malformed values are rejected loudly rather than silently ignored
  // (full coverage in tests/test_engine.cpp EnvParsing).
  ::setenv("HPB_REPS", "garbage", 1);
  EXPECT_THROW((void)reps_from_env(20), Error);
  ::unsetenv("HPB_REPS");
  EXPECT_EQ(reps_from_env(20), 20u);
}

TEST(StandardMethods, ProduceWorkingTunersSharingOnePool) {
  auto ds = testutil::separable_dataset();
  const StandardMethods methods = make_standard_methods(ds);
  EXPECT_EQ(methods.pool->size(), ds.size());
  EXPECT_EQ(methods.graph->num_nodes(), ds.size());
  for (const auto& factory :
       {methods.hiperbot, methods.geist, methods.random}) {
    auto tuner = factory(5);
    const auto c = tuner->suggest();
    EXPECT_TRUE(ds.find(c).has_value());
    tuner->observe(c, ds.value_of(c));
  }
}

TEST(Report, FormatsMeanStd) {
  stats::RunningStats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_EQ(format_mean_std(s), "1.50 ± 0.71");
  stats::RunningStats big;
  big.add(1000.0);
  big.add(1200.0);
  EXPECT_EQ(format_mean_std(big), "1100 ± 141");
}

TEST(Report, PrintCurvesContainsMethodsAndHeader) {
  auto ds = testutil::separable_dataset();
  SelectionExperimentConfig cfg;
  cfg.sample_sizes = {6, 12};
  cfg.reps = 2;
  TunerFactory random = [&](std::uint64_t seed) {
    return std::make_unique<baselines::RandomSearch>(ds.space_ptr(), seed);
  };
  const std::vector<MethodCurve> curves = {
      run_selection_experiment(ds, "Random", random, cfg)};
  std::ostringstream os;
  print_curves(os, "Toy", curves, ds.size(), ds.best_value(), true);
  const std::string text = os.str();
  EXPECT_NE(text.find("Toy"), std::string::npos);
  EXPECT_NE(text.find("Random"), std::string::npos);
  EXPECT_NE(text.find("Exhaustive"), std::string::npos);
  EXPECT_NE(text.find("(12)"), std::string::npos);
  EXPECT_NE(text.find("recall"), std::string::npos);
}

TEST(Report, WithoutRecallOmitsThatSection) {
  auto ds = testutil::separable_dataset();
  SelectionExperimentConfig cfg;
  cfg.sample_sizes = {6};
  cfg.reps = 2;
  TunerFactory random = [&](std::uint64_t seed) {
    return std::make_unique<baselines::RandomSearch>(ds.space_ptr(), seed);
  };
  const std::vector<MethodCurve> curves = {
      run_selection_experiment(ds, "Random", random, cfg)};
  std::ostringstream os;
  print_curves(os, "Toy", curves, ds.size(), /*exhaustive_best=*/-1.0,
               /*show_recall=*/false);
  const std::string text = os.str();
  EXPECT_EQ(text.find("recall"), std::string::npos);
  EXPECT_EQ(text.find("Exhaustive"), std::string::npos);
}

TEST(Report, RejectsEmptyOrMismatchedCurves) {
  std::ostringstream os;
  EXPECT_THROW(print_curves(os, "x", {}, 10, -1.0, false), Error);

  auto ds = testutil::separable_dataset();
  TunerFactory random = [&](std::uint64_t seed) {
    return std::make_unique<baselines::RandomSearch>(ds.space_ptr(), seed);
  };
  SelectionExperimentConfig a;
  a.sample_sizes = {6};
  a.reps = 1;
  SelectionExperimentConfig b = a;
  b.sample_sizes = {6, 12};
  const std::vector<MethodCurve> mismatched = {
      run_selection_experiment(ds, "A", random, a),
      run_selection_experiment(ds, "B", random, b)};
  EXPECT_THROW(print_curves(os, "x", mismatched, 10, -1.0, false), Error);
}

TEST(Report, CsvHasRowPerMetricAndCheckpoint) {
  auto ds = testutil::separable_dataset();
  SelectionExperimentConfig cfg;
  cfg.sample_sizes = {6, 12};
  cfg.reps = 2;
  TunerFactory random = [&](std::uint64_t seed) {
    return std::make_unique<baselines::RandomSearch>(ds.space_ptr(), seed);
  };
  const std::vector<MethodCurve> curves = {
      run_selection_experiment(ds, "Random", random, cfg)};
  const std::string path = ::testing::TempDir() + "/hpb_curves.csv";
  write_curves_csv(path, curves);
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  std::getline(in, line);
  EXPECT_EQ(line, "method,metric,sample_size,mean,std");
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 4u);  // 2 metrics × 2 checkpoints
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpb::eval
