// Property-test harness for the conditional/constrained space layer and the
// streamed candidate generator:
//   - ~500 seeded random conditional, divisibility-constrained spaces:
//     every streamed candidate satisfies its constraints and activity rules
//     (inactive parameters hold their sentinels), no ordinal repeats within
//     a pass, and the candidate sequence is identical for 1, 2, 7, and
//     hardware_concurrency worker threads;
//   - streaming reproduces enumerate() bitwise on enumerable spaces, and the
//     forced-Feistel mode emits a seeded permutation of the same valid set;
//   - HiPerBOt's streamed Ranking sweep is bitwise-identical to the
//     materialized-pool sweep on a flat unconstrained space — suggestions
//     and journal bytes alike;
//   - sentinel-bearing configurations round-trip through the write-ahead
//     journal (append + replay + engine resume on a systolic session), the
//     history CSV warm start, and the wire protocol without drift;
//   - enumerate() fails fast with a structured SpaceTooLargeError on a 2^40
//     space, and cross_product_size() detects 64-bit overflow instead of
//     silently wrapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "apps/systolic.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/history_io.hpp"
#include "core/hiperbot.hpp"
#include "core/journal.hpp"
#include "core/loop.hpp"
#include "core/session_manager.hpp"
#include "core/stopping.hpp"
#include "eval/methods.hpp"
#include "obs/json_util.hpp"
#include "service/factory.hpp"
#include "service/json.hpp"
#include "service/wire.hpp"
#include "space/candidate_stream.hpp"
#include "space/parameter_space.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using space::CandidateStream;
using space::Configuration;
using space::Parameter;
using space::ParameterSpace;
using space::SpacePtr;
using space::StreamConfig;

constexpr std::size_t kNumSpaces = 500;

// ------------------------------------------------- seeded random spaces

/// The shared seeded random conditional/constrained space generator — moved
/// to test_util.hpp so the SIMD dispatch-parity suite sweeps the same
/// distribution of spaces.
SpacePtr random_space(std::uint64_t seed) {
  return testutil::random_conditional_space(seed);
}

/// Independent recomputation of the divisibility constraints registered by
/// random_space is not possible from the outside (the predicate is opaque),
/// but the structural invariants are: canonical sentinels on every inactive
/// parameter, satisfies() agreement, and ordinal round-trips.
void expect_structurally_valid(const ParameterSpace& s,
                               const CandidateStream::Candidate& cand) {
  EXPECT_TRUE(s.satisfies(cand.config));
  EXPECT_TRUE(s.is_canonical(cand.config));
  EXPECT_EQ(s.ordinal_of(cand.config), cand.ordinal);
  for (std::size_t i = 0; i < s.num_params(); ++i) {
    if (!s.is_active(cand.config, i)) {
      EXPECT_EQ(cand.config[i], s.sentinel_value(i))
          << "inactive parameter " << s.param(i).name()
          << " must hold its sentinel";
    }
  }
}

TEST(SpaceProperties, StreamedCandidatesAreValidCanonicalAndDeduplicated) {
  std::size_t total_candidates = 0;
  std::size_t conditional_spaces = 0;
  for (std::size_t t = 0; t < kNumSpaces; ++t) {
    SCOPED_TRACE("space seed " + std::to_string(t));
    const SpacePtr s = random_space(0xA110'0000 + t);
    conditional_spaces += s->has_conditionals() ? 1 : 0;
    const CandidateStream stream(s, /*seed=*/t, StreamConfig{});
    const auto pass = stream.pass_candidates(0);
    std::set<std::uint64_t> ordinals;
    for (const auto& cand : pass) {
      expect_structurally_valid(*s, cand);
      EXPECT_TRUE(ordinals.insert(cand.ordinal).second)
          << "duplicate ordinal " << cand.ordinal << " within one pass";
    }
    EXPECT_FALSE(pass.empty());  // the all-sentinel config is always valid
    total_candidates += pass.size();
  }
  // The generator must actually exercise the conditional machinery.
  EXPECT_GT(conditional_spaces, kNumSpaces / 2);
  EXPECT_GT(total_candidates, kNumSpaces);
}

TEST(SpaceProperties, PassSequencesAreThreadCountIndependent) {
  ThreadPool pool1(1), pool2(2), pool7(7), pool_hw(0);
  ThreadPool* pools[] = {&pool1, &pool2, &pool7, &pool_hw};
  for (std::size_t t = 0; t < 150; ++t) {
    SCOPED_TRACE("space seed " + std::to_string(t));
    const SpacePtr s = random_space(0xA110'0000 + t);
    const CandidateStream stream(s, /*seed=*/t, StreamConfig{.chunk = 64});
    const auto serial = stream.pass_candidates(0, nullptr);
    for (ThreadPool* pool : pools) {
      const auto threaded = stream.pass_candidates(0, pool);
      ASSERT_EQ(threaded.size(), serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(threaded[i].config.values(), serial[i].config.values());
        EXPECT_EQ(threaded[i].pass_index, serial[i].pass_index);
        EXPECT_EQ(threaded[i].ordinal, serial[i].ordinal);
      }
    }
  }
}

TEST(SpaceProperties, ExhaustivePassReproducesEnumerateBitwise) {
  for (std::size_t t = 0; t < 200; ++t) {
    SCOPED_TRACE("space seed " + std::to_string(t));
    const SpacePtr s = random_space(0xA110'0000 + t);
    const CandidateStream stream(s, /*seed=*/t, StreamConfig{});
    ASSERT_TRUE(stream.exhaustive());
    const auto pass = stream.pass_candidates(0);
    const auto enumerated = s->enumerate();
    ASSERT_EQ(pass.size(), enumerated.size());
    for (std::size_t i = 0; i < pass.size(); ++i) {
      EXPECT_EQ(pass[i].config.values(), enumerated[i].values());
    }
  }
}

TEST(SpaceProperties, ForcedFeistelPassIsASeededPermutationOfTheValidSet) {
  std::size_t reordered = 0;
  constexpr std::size_t kFeistelSpaces = 100;
  for (std::size_t t = 0; t < kFeistelSpaces; ++t) {
    SCOPED_TRACE("space seed " + std::to_string(t));
    const SpacePtr s = random_space(0xA110'0000 + t);
    // max_exhaustive = 0 forces the Feistel permutation; a pass budget at
    // least the raw size makes each pass a bijection over the cross
    // product, so a pass must emit exactly the valid set, reordered.
    const StreamConfig config{.chunk = 256,
                              .max_exhaustive = 0,
                              .pass_raw_budget = 1ULL << 20};
    const CandidateStream stream(s, /*seed=*/0xFE15 + t, config);
    ASSERT_FALSE(stream.exhaustive());
    ASSERT_EQ(stream.pass_length(), stream.raw_size());
    const auto pass = stream.pass_candidates(0);
    std::set<std::uint64_t> seen;
    for (const auto& cand : pass) {
      expect_structurally_valid(*s, cand);
      EXPECT_TRUE(seen.insert(cand.ordinal).second);
    }
    std::set<std::uint64_t> expected;
    for (const auto& c : s->enumerate()) {
      expected.insert(s->ordinal_of(c));
    }
    EXPECT_EQ(seen, expected);

    // Deterministic in the seed: an identical stream replays identically...
    const CandidateStream replay(s, /*seed=*/0xFE15 + t, config);
    const auto replayed = replay.pass_candidates(0);
    ASSERT_EQ(replayed.size(), pass.size());
    bool pass1_differs = false;
    for (std::size_t i = 0; i < pass.size(); ++i) {
      EXPECT_EQ(replayed[i].ordinal, pass[i].ordinal);
    }
    // ...while later passes visit the same set in a different order.
    const auto pass1 = stream.pass_candidates(1);
    ASSERT_EQ(pass1.size(), pass.size());
    for (std::size_t i = 0; i < pass.size(); ++i) {
      pass1_differs = pass1_differs || pass1[i].ordinal != pass[i].ordinal;
    }
    reordered += pass1_differs ? 1 : 0;
  }
  EXPECT_GT(reordered, kFeistelSpaces / 2);
}

TEST(SpaceProperties, SamplePoolDrawsDistinctValidConfigurations) {
  const SpacePtr s = random_space(0xA110'0042);
  const StreamConfig config{.chunk = 256,
                            .max_exhaustive = 0,
                            .pass_raw_budget = 64};
  const CandidateStream stream(s, /*seed=*/9, config);
  const std::size_t valid = s->enumerate().size();
  const std::size_t k = std::min<std::size_t>(valid, 16);
  const auto pool = stream.sample_pool(k, /*max_passes=*/256);
  ASSERT_EQ(pool.size(), k);
  std::set<std::uint64_t> seen;
  for (const auto& c : pool) {
    EXPECT_TRUE(s->satisfies(c));
    EXPECT_TRUE(seen.insert(s->ordinal_of(c)).second);
  }
}

// ------------------------------------- streamed vs pooled sweeps, bitwise

TEST(StreamedSweep, MatchesPooledSuggestionsBitwiseOnFlatSpaces) {
  const SpacePtr s = testutil::small_discrete_space();  // 60 configs, flat
  core::HiPerBOtConfig pooled_config;
  pooled_config.initial_samples = 8;
  pooled_config.sweep_source = core::SweepSource::kPooled;
  core::HiPerBOtConfig streamed_config = pooled_config;
  streamed_config.sweep_source = core::SweepSource::kStreamed;

  ThreadPool pool7(7);
  core::HiPerBOt pooled(s, pooled_config, /*seed=*/21);
  core::HiPerBOt streamed(s, streamed_config, /*seed=*/21);
  core::HiPerBOt threaded(s, streamed_config, /*seed=*/21);
  threaded.set_sweep_pool(&pool7);

  // Keep the evaluated set under half the pool so the pooled path stays on
  // its rejection-sampling branch — the regime the parity contract pins.
  for (int t = 0; t < 25; ++t) {
    const Configuration a = pooled.suggest();
    const Configuration b = streamed.suggest();
    const Configuration c = threaded.suggest();
    EXPECT_EQ(a.values(), b.values()) << "diverged at step " << t;
    EXPECT_EQ(a.values(), c.values()) << "diverged at step " << t;
    const double y = testutil::separable_value(a);
    pooled.observe(a, y);
    streamed.observe(b, y);
    threaded.observe(c, y);
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(StreamedSweep, MatchesPooledJournalBytesOnFlatSpaces) {
  auto ds = testutil::separable_dataset();
  core::JournalHeader header;
  header.method = "hiperbot";
  header.dataset = ds.name();
  header.seed = 33;
  header.batch_size = 3;
  header.num_params = ds.space().num_params();
  header.max_evaluations = 24;

  auto run = [&](core::SweepSource source, const std::string& path) {
    core::HiPerBOtConfig config;
    config.initial_samples = 8;
    config.sweep_source = source;
    core::HiPerBOt tuner(ds.space_ptr(), config, header.seed);
    core::JournalWriter writer = core::JournalWriter::create(path, header);
    const core::TuningEngine engine({.batch_size = 3, .journal = &writer});
    core::StopConfig stop;
    stop.max_evaluations = 24;
    return engine.run_until(tuner, ds, stop);
  };

  const std::string pooled_path = ::testing::TempDir() + "sweep_pooled.hpbj";
  const std::string streamed_path =
      ::testing::TempDir() + "sweep_streamed.hpbj";
  const auto pooled = run(core::SweepSource::kPooled, pooled_path);
  const auto streamed = run(core::SweepSource::kStreamed, streamed_path);
  EXPECT_EQ(pooled.result.best_value, streamed.result.best_value);
  EXPECT_EQ(slurp(pooled_path), slurp(streamed_path));
}

TEST(StreamedSweep, DrivesHugeSystolicSpaceWithoutMaterializing) {
  apps::SystolicObjective objective;  // raw cross product ~2^33.9
  EXPECT_TRUE(objective.space().cross_product_exceeds(1ULL << 30));
  EXPECT_THROW((void)objective.space().enumerate(), SpaceTooLargeError);

  core::HiPerBOtConfig config;
  config.initial_samples = 10;
  core::HiPerBOt tuner(objective.space_ptr(), config, /*seed=*/5);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 18; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(objective.space().satisfies(c));
    EXPECT_TRUE(seen.insert(objective.space().ordinal_of(c)).second);
    tuner.observe(c, objective.evaluate(c));
  }
}

// ------------------------------------------- sentinel round trips

/// First history index whose configuration has at least one inactive
/// parameter (level-0 sentinel under a non-activating parent), or npos.
/// Works for core::History and std::vector<Observation> alike.
template <typename HistoryLike>
std::size_t first_sentinel_config(const ParameterSpace& s,
                                  const HistoryLike& history) {
  for (std::size_t i = 0; i < history.size(); ++i) {
    for (std::size_t p = 0; p < s.num_params(); ++p) {
      if (!s.is_active(history[i].config, p)) {
        return i;
      }
    }
  }
  return static_cast<std::size_t>(-1);
}

TEST(SentinelRoundTrip, HistoryCsvWarmStartPreservesSystolicConfigs) {
  auto ds = apps::dataset_by_name("systolic_small").make();
  core::HiPerBOt source(ds.space_ptr(), {}, /*seed=*/17);
  const auto result = core::run_tuning(source, ds, 40);
  // The run must actually contain sentinel-bearing configurations, or the
  // round trip proves nothing about conditional spaces.
  ASSERT_NE(first_sentinel_config(ds.space(), source.history()),
            static_cast<std::size_t>(-1));

  std::ostringstream out;
  core::write_history_csv(out, ds.space(), result.history);
  core::HiPerBOt replayed(ds.space_ptr(), {}, /*seed=*/18);
  std::istringstream in(out.str());
  ASSERT_EQ(core::warm_start_from_csv(in, ds.space(), replayed), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(replayed.history()[i].config.values(),
              result.history[i].config.values());
    EXPECT_DOUBLE_EQ(replayed.history()[i].y, result.history[i].y);
  }
}

TEST(SentinelRoundTrip, JournalAppendReplayIsExactOnSystolicConfigs) {
  auto ds = apps::dataset_by_name("systolic_small").make();
  const std::string path = ::testing::TempDir() + "systolic_journal.hpbj";
  core::JournalHeader header;
  header.method = "hiperbot";
  header.dataset = ds.name();
  header.seed = 29;
  header.batch_size = 1;
  header.num_params = ds.space().num_params();
  header.max_evaluations = 20;
  {
    core::JournalWriter writer = core::JournalWriter::create(path, header);
    core::HiPerBOt tuner(ds.space_ptr(), {}, header.seed);
    for (int t = 0; t < 20; ++t) {
      const Configuration c = tuner.suggest();
      const double y = ds.value_of(c);
      writer.begin_round(1, 1);
      writer.append_observation({c, y, tabular::EvalStatus::kOk});
      tuner.observe(c, y);
    }
  }
  const core::JournalContents contents = core::read_journal(path);
  ASSERT_EQ(contents.num_observations(), 20u);
  core::HiPerBOt replayed(ds.space_ptr(), {}, header.seed);
  const auto observations =
      core::replay_journal(replayed, ds.space(), contents);
  ASSERT_EQ(observations.size(), 20u);
  bool sentinel_seen = false;
  for (const auto& obs : observations) {
    EXPECT_TRUE(ds.space().satisfies(obs.config));
    for (std::size_t p = 0; p < ds.space().num_params(); ++p) {
      sentinel_seen = sentinel_seen || !ds.space().is_active(obs.config, p);
    }
  }
  EXPECT_TRUE(sentinel_seen);
}

TEST(SentinelRoundTrip, EngineResumeOnSystolicSessionIsBitwiseIdentical) {
  auto ds = apps::dataset_by_name("systolic_small").make();
  constexpr std::size_t kBudget = 30;
  constexpr std::uint64_t kSeed = 41;
  core::JournalHeader header;
  header.method = "hiperbot";
  header.dataset = ds.name();
  header.seed = kSeed;
  header.batch_size = 4;
  header.num_params = ds.space().num_params();
  header.max_evaluations = kBudget;
  core::StopConfig stop;
  stop.max_evaluations = kBudget;

  const std::string ref_path = ::testing::TempDir() + "systolic_ref.hpbj";
  core::StoppedTuneResult reference;
  {
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    core::JournalWriter writer = core::JournalWriter::create(ref_path, header);
    const core::TuningEngine engine({.batch_size = 4, .journal = &writer});
    reference = engine.run_until(*tuner, ds, stop);
  }
  const std::string bytes = slurp(ref_path);
  ASSERT_NE(first_sentinel_config(ds.space(), reference.result.history),
            static_cast<std::size_t>(-1));

  // Kill the session at several byte offsets (round boundaries and torn
  // tails alike) and resume: history and healed journal must match the
  // uninterrupted run exactly.
  const std::string cut_path = ::testing::TempDir() + "systolic_cut.hpbj";
  for (const double fraction : {0.35, 0.6, 0.85, 0.97}) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * fraction);
    SCOPED_TRACE("killed at byte " + std::to_string(cut));
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out << bytes.substr(0, cut);
    }
    const core::JournalContents prefix = core::read_journal(cut_path);
    if (prefix.finalized) {
      continue;
    }
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    const auto replayed = core::replay_journal(*tuner, ds.space(), prefix);
    core::JournalWriter writer = core::JournalWriter::append(cut_path, prefix);
    const core::TuningEngine engine({.batch_size = 4, .journal = &writer});
    const auto resumed = engine.run_until(*tuner, ds, stop, replayed);
    ASSERT_EQ(resumed.result.history.size(),
              reference.result.history.size());
    for (std::size_t i = 0; i < reference.result.history.size(); ++i) {
      EXPECT_EQ(resumed.result.history[i].config.values(),
                reference.result.history[i].config.values());
      EXPECT_DOUBLE_EQ(resumed.result.history[i].y,
                       reference.result.history[i].y);
    }
    EXPECT_EQ(slurp(cut_path), bytes);
  }
}

// ------------------------------------------------ wire-protocol round trip

service::JsonValue wire_reply(service::WireService& service,
                              const std::string& line) {
  return service::parse_json(service.handle_line(line));
}

bool wire_ok(const service::JsonValue& response) {
  const service::JsonValue* v = response.find("ok");
  return v != nullptr && v->is_bool() && v->as_bool();
}

std::string wire_result_entry(const service::JsonValue& config, double y) {
  std::string out = "{\"config\":[";
  const auto& values = config.as_array();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += obs::json_double(values[i].as_number());
  }
  out += "],\"y\":" + obs::json_double(y) + ",\"status\":\"ok\"}";
  return out;
}

TEST(SentinelRoundTrip, WireProtocolEchoesSystolicConfigsExactly) {
  const std::string dir = ::testing::TempDir() + "wire_systolic";
  std::filesystem::remove_all(dir);
  core::SessionManager manager(service::dataset_session_factory(),
                               {.journal_dir = dir});
  service::WireService service(manager);
  auto ds = apps::dataset_by_name("systolic_small").make();

  ASSERT_TRUE(wire_ok(wire_reply(
      service,
      "{\"verb\":\"create\",\"session\":\"sys\","
      "\"dataset\":\"systolic_small\",\"method\":\"hiperbot\",\"seed\":11,"
      "\"batch_size\":2,\"max_evaluations\":12}")));

  double best = std::numeric_limits<double>::infinity();
  std::vector<double> best_wire;
  bool sentinel_seen = false;
  for (int round = 0; round < 4; ++round) {
    const service::JsonValue suggested = wire_reply(
        service, "{\"verb\":\"suggest\",\"session\":\"sys\",\"count\":2}");
    ASSERT_TRUE(wire_ok(suggested));
    const auto& configs = suggested.find("configs")->as_array();
    ASSERT_EQ(configs.size(), 2u);
    std::string results;
    for (const auto& wire_config : configs) {
      const auto& values = wire_config.as_array();
      std::vector<double> decoded;
      decoded.reserve(values.size());
      for (const auto& v : values) {
        decoded.push_back(v.as_number());
      }
      const Configuration c(decoded);
      // Every suggestion that crosses the wire is valid and canonical in
      // the conditional space — sentinels included.
      EXPECT_TRUE(ds.space().satisfies(c));
      for (std::size_t p = 0; p < ds.space().num_params(); ++p) {
        sentinel_seen = sentinel_seen || !ds.space().is_active(c, p);
      }
      const double y = ds.value_of(c);
      if (y < best) {
        best = y;
        best_wire.clear();
        for (const auto& v : values) {
          best_wire.push_back(v.as_number());
        }
      }
      if (!results.empty()) {
        results += ',';
      }
      results += wire_result_entry(wire_config, y);
    }
    ASSERT_TRUE(wire_ok(
        wire_reply(service, "{\"verb\":\"observe\",\"session\":\"sys\","
                            "\"results\":[" +
                                results + "]}")));
  }
  EXPECT_TRUE(sentinel_seen);

  const service::JsonValue status = wire_reply(
      service, "{\"verb\":\"status\",\"session\":\"sys\"}");
  ASSERT_TRUE(wire_ok(status));
  EXPECT_DOUBLE_EQ(status.find("status")->find("best_value")->as_number(),
                   best);
  const auto& best_config = status.find("status")->find("best_config")
                                ->as_array();
  ASSERT_EQ(best_config.size(), best_wire.size());
  for (std::size_t i = 0; i < best_wire.size(); ++i) {
    EXPECT_EQ(best_config[i].as_number(), best_wire[i])
        << "best_config drifted at parameter " << i;
  }
}

// --------------------------------------------------- fail-fast guardrails

TEST(EnumerateGuard, HugeSpaceFailsFastWithStructuredError) {
  auto s = std::make_shared<ParameterSpace>();
  for (int i = 0; i < 8; ++i) {
    std::vector<double> values(32);
    for (std::size_t l = 0; l < values.size(); ++l) {
      values[l] = static_cast<double>(l);
    }
    s->add(Parameter::categorical_numeric("p" + std::to_string(i), values));
  }
  ASSERT_EQ(s->cross_product_size(), 1ULL << 40);
  try {
    (void)s->enumerate();
    FAIL() << "enumerate() must throw on a 2^40 space";
  } catch (const SpaceTooLargeError& e) {
    EXPECT_EQ(e.estimated_size(), 1ULL << 40);
    EXPECT_EQ(e.limit(), ParameterSpace::kMaxEnumerate);
    EXPECT_NE(std::string(e.what()).find("CandidateStream"),
              std::string::npos)
        << "the error must point at the streaming alternative: " << e.what();
  }
}

TEST(EnumerateGuard, CrossProductOverflowIsDetectedNotWrapped) {
  auto s = std::make_shared<ParameterSpace>();
  for (int i = 0; i < 5; ++i) {  // 8192^5 = 2^65 overflows uint64
    std::vector<double> values(8192);
    for (std::size_t l = 0; l < values.size(); ++l) {
      values[l] = static_cast<double>(l);
    }
    s->add(Parameter::categorical_numeric("p" + std::to_string(i), values));
  }
  try {
    (void)s->cross_product_size();
    FAIL() << "cross_product_size() must detect 64-bit overflow";
  } catch (const SpaceTooLargeError& e) {
    EXPECT_EQ(e.estimated_size(),
              std::numeric_limits<std::uint64_t>::max());
  }
  // The overflow-safe routing check never throws, even on this space.
  EXPECT_TRUE(s->cross_product_exceeds(1ULL << 62));
  EXPECT_THROW((void)s->enumerate(), SpaceTooLargeError);
}

}  // namespace
}  // namespace hpb
