// Asynchronous session coverage:
//   - determinism: the same fixed completion schedule (FakeClock, scripted
//     out-of-order completions) produces bitwise-identical suggestion
//     sequences and journal bytes across fresh runs;
//   - token discipline: out-of-order and partial observes succeed;
//     duplicate, already-resolved, and foreign tokens throw without
//     mutating the session (validate-all-before-mutate); an ok result with
//     a non-finite value is rejected;
//   - cancel semantics: cancel_async releases specific tokens or (empty
//     list) everything outstanding; close refuses while tokens are
//     outstanding; sync sessions un-wedge a stuck round with cancel_round
//     and both paths journal the abandonment for replay;
//   - cross-mode misuse: sync verbs on an async session (and vice versa)
//     are clear errors;
//   - randomized fuzz: interleaved issue/complete/cancel with injected
//     duplicate and foreign tokens keeps the session consistent with a
//     shadow model (run under ASan/TSan by tools/check.sh);
//   - eviction/resume equivalence: an async session force-evicted with
//     tokens outstanding (journal-replayed, outstanding set restored)
//     suggests the exact same configurations as one kept hot; same for a
//     sync session evicted after a cancelled round.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/journal.hpp"
#include "core/session.hpp"
#include "core/session_manager.hpp"
#include "eval/methods.hpp"
#include "obs/clock.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using core::AsyncResult;
using core::AsyncSuggestion;
using core::Observation;
using core::Session;
using core::SessionManager;
using core::SessionMode;
using core::SessionSpec;
using core::SessionStatus;
using tabular::EvalStatus;

constexpr std::uint64_t kSeed = 0xa51c;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "async_" + name;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

core::JournalHeader async_header(const tabular::TabularObjective& ds,
                                 std::size_t batch) {
  core::JournalHeader h;
  h.method = "hiperbot";
  h.dataset = ds.name();
  h.seed = kSeed;
  h.batch_size = batch;
  h.num_params = ds.space().num_params();
  h.max_evaluations = 64;
  h.async = true;
  return h;
}

AsyncResult complete(const AsyncSuggestion& s) {
  return {s.token, EvalStatus::kOk, testutil::separable_value(s.config)};
}

/// Fresh async session over the separable dataset; `keep` owns the tuner.
Session make_async_session(std::unique_ptr<core::Tuner>& keep,
                           core::JournalWriter* journal = nullptr,
                           std::size_t batch = 2) {
  static auto ds = testutil::separable_dataset();
  keep = eval::make_named_tuner("hiperbot", ds, kSeed);
  return Session(*keep,
                 {.batch_size = batch,
                  .stop = {.max_evaluations = 64},
                  .mode = SessionMode::kAsync},
                 journal);
}

// ------------------------------------------------------------- determinism

/// One scripted run: issue/complete under a fixed out-of-order schedule
/// (newest-first completions, one straggler cancelled), with a FakeClock
/// recorder and a journal. Returns every suggested value sequence plus the
/// journal bytes.
struct ScriptedRun {
  std::vector<std::vector<double>> suggested;
  std::vector<std::uint64_t> tokens;
  std::string journal_bytes;
};

ScriptedRun run_fixed_schedule(const std::string& tag) {
  auto ds = testutil::separable_dataset();
  const std::string path = temp_path(tag + ".hpbj");
  std::remove(path.c_str());
  ScriptedRun run;
  {
    core::JournalWriter journal =
        core::JournalWriter::create(path, async_header(ds, 2));
    obs::FakeClock clock(1000, 10);
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    Session session(*tuner,
                    {.batch_size = 2,
                     .recorder = {.clock = &clock},
                     .stop = {.max_evaluations = 64},
                     .mode = SessionMode::kAsync},
                    &journal);
    std::deque<AsyncSuggestion> outstanding;
    const auto issue = [&](std::size_t k) {
      for (AsyncSuggestion& s : session.suggest_async(k)) {
        run.suggested.push_back(s.config.values());
        run.tokens.push_back(s.token);
        outstanding.push_back(std::move(s));
      }
    };
    // Scripted schedule: grow to 4 outstanding, then complete newest-first
    // (maximally out of order), refill, cancel the oldest straggler, drain.
    issue(4);
    for (int i = 0; i < 3; ++i) {
      const AsyncSuggestion s = outstanding.back();
      outstanding.pop_back();
      const AsyncResult r[] = {complete(s)};
      session.observe_async(r);
      issue(1);
    }
    const std::uint64_t straggler[] = {outstanding.front().token};
    outstanding.pop_front();
    EXPECT_EQ(session.cancel_async(straggler), 1u);
    while (!outstanding.empty()) {
      const AsyncSuggestion s = outstanding.back();
      outstanding.pop_back();
      const AsyncResult r[] = {complete(s)};
      session.observe_async(r);
    }
    EXPECT_EQ(session.status().pending, 0u);
    session.close();
  }
  run.journal_bytes = slurp(path);
  std::remove(path.c_str());
  return run;
}

TEST(AsyncDeterminism, FixedScheduleIsBitwiseReproducible) {
  const ScriptedRun a = run_fixed_schedule("det_a");
  const ScriptedRun b = run_fixed_schedule("det_b");
  ASSERT_EQ(a.suggested.size(), b.suggested.size());
  for (std::size_t i = 0; i < a.suggested.size(); ++i) {
    ASSERT_EQ(a.suggested[i].size(), b.suggested[i].size());
    for (std::size_t j = 0; j < a.suggested[i].size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.suggested[i][j]),
                std::bit_cast<std::uint64_t>(b.suggested[i][j]))
          << "suggestion " << i << " diverges at value " << j;
    }
  }
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_FALSE(a.journal_bytes.empty());
  EXPECT_EQ(a.journal_bytes, b.journal_bytes);
}

TEST(AsyncDeterminism, TokensAreDenseAndIssueOrdered) {
  const ScriptedRun run = run_fixed_schedule("det_tokens");
  for (std::size_t i = 0; i < run.tokens.size(); ++i) {
    EXPECT_EQ(run.tokens[i], i + 1) << "tokens must be dense from 1";
  }
}

// -------------------------------------------------------- token discipline

TEST(AsyncSession, OutOfOrderAndPartialObserveSucceeds) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  const auto batch = session.suggest_async(3);
  ASSERT_EQ(batch.size(), 3u);
  // Newest first, then a partial delivery of the remaining two.
  const AsyncResult last[] = {complete(batch[2])};
  session.observe_async(last);
  EXPECT_EQ(session.evaluations(), 1u);
  EXPECT_EQ(session.status().pending, 2u);
  const AsyncResult rest[] = {complete(batch[1]), complete(batch[0])};
  session.observe_async(rest);
  EXPECT_EQ(session.evaluations(), 3u);
  EXPECT_EQ(session.status().pending, 0u);
}

TEST(AsyncSession, SuggestNeverWaitsOnOutstandingTokens) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  const auto first = session.suggest_async(2);
  const auto second = session.suggest_async(2);  // no observe in between
  EXPECT_EQ(session.status().pending, 4u);
  for (const auto& s : second) {
    EXPECT_GT(s.token, first.back().token);
  }
}

TEST(AsyncSession, DuplicateTokenInOneCallThrowsWithoutMutation) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  const auto batch = session.suggest_async(2);
  const AsyncResult dup[] = {complete(batch[0]), complete(batch[0])};
  EXPECT_THROW(session.observe_async(dup), hpb::Error);
  EXPECT_EQ(session.evaluations(), 0u);
  EXPECT_EQ(session.status().pending, 2u);
  // The batch is still deliverable after the failed call.
  const AsyncResult ok[] = {complete(batch[0]), complete(batch[1])};
  session.observe_async(ok);
  EXPECT_EQ(session.evaluations(), 2u);
}

TEST(AsyncSession, ResolvedAndForeignTokensThrowWithoutMutation) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  const auto batch = session.suggest_async(2);
  const AsyncResult first[] = {complete(batch[0])};
  session.observe_async(first);
  // Already resolved: the token is gone.
  EXPECT_THROW(session.observe_async(first), hpb::Error);
  // Foreign: never issued.
  const AsyncResult foreign[] = {{9999, EvalStatus::kOk, 1.0}};
  EXPECT_THROW(session.observe_async(foreign), hpb::Error);
  // A mixed call (one valid + one foreign) must not consume the valid one.
  const AsyncResult mixed[] = {complete(batch[1]),
                               {9999, EvalStatus::kOk, 1.0}};
  EXPECT_THROW(session.observe_async(mixed), hpb::Error);
  EXPECT_EQ(session.evaluations(), 1u);
  EXPECT_EQ(session.status().pending, 1u);
  const AsyncResult second[] = {complete(batch[1])};
  session.observe_async(second);
  EXPECT_EQ(session.evaluations(), 2u);
}

TEST(AsyncSession, NonFiniteOkValueIsRejected) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  const auto batch = session.suggest_async(1);
  const AsyncResult nan_ok[] = {{batch[0].token, EvalStatus::kOk,
                                 std::nan("")}};
  EXPECT_THROW(session.observe_async(nan_ok), hpb::Error);
  // The same token delivered as a failure (no finite value needed) is fine.
  const AsyncResult failed[] = {{batch[0].token, EvalStatus::kCrashed,
                                 std::nan("")}};
  session.observe_async(failed);
  EXPECT_EQ(session.status().num_failed, 1u);
}

TEST(AsyncSession, StatusReportsOutstandingTokensInIssueOrder) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  const auto batch = session.suggest_async(3);
  const AsyncResult mid[] = {complete(batch[1])};
  session.observe_async(mid);
  const SessionStatus st = session.status();
  EXPECT_TRUE(st.async);
  ASSERT_EQ(st.pending_tokens.size(), 2u);
  EXPECT_EQ(st.pending_tokens[0], batch[0].token);
  EXPECT_EQ(st.pending_tokens[1], batch[2].token);
}

// ------------------------------------------------------------------ cancel

TEST(AsyncSession, CancelSpecificTokensThenAll) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  const auto batch = session.suggest_async(4);
  EXPECT_THROW(session.close(), hpb::Error);  // outstanding tokens pin it
  const std::uint64_t one[] = {batch[1].token};
  EXPECT_EQ(session.cancel_async(one), 1u);
  EXPECT_EQ(session.status().pending, 3u);
  // Cancelling an already-cancelled (or foreign) token is an error.
  EXPECT_THROW((void)session.cancel_async(one), hpb::Error);
  // Empty list = cancel everything outstanding: the un-wedge path.
  EXPECT_EQ(session.cancel_async({}), 3u);
  EXPECT_EQ(session.status().pending, 0u);
  session.close();
  EXPECT_TRUE(session.finished());
}

TEST(SyncSession, CancelRoundReleasesAStuckRound) {
  auto ds = testutil::separable_dataset();
  auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
  Session session(*tuner,
                  {.batch_size = 2, .stop = {.max_evaluations = 64}});
  auto batch = session.suggest(2);
  EXPECT_TRUE(session.round_in_flight());
  EXPECT_THROW(session.close(), hpb::Error);  // wedged: client died here
  EXPECT_EQ(session.cancel_round(), 2u);
  EXPECT_FALSE(session.round_in_flight());
  // The session keeps working: a new round can be suggested and observed.
  batch = session.suggest(2);
  std::vector<Observation> obs;
  for (auto& c : batch) {
    obs.push_back({c, testutil::separable_value(c), EvalStatus::kOk});
  }
  session.observe(std::move(obs));
  EXPECT_EQ(session.evaluations(), 2u);
  // Nothing to cancel is an error, not a silent zero.
  EXPECT_THROW((void)session.cancel_round(), hpb::Error);
  session.close();
}

// ------------------------------------------------------- cross-mode misuse

TEST(CrossMode, SyncVerbsOnAsyncSessionThrow) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  EXPECT_THROW((void)session.suggest(1), hpb::Error);
  EXPECT_THROW(session.observe({}), hpb::Error);
  EXPECT_THROW((void)session.cancel_round(), hpb::Error);
  // The failed sync verbs did not disturb the async side.
  const auto batch = session.suggest_async(1);
  EXPECT_EQ(batch.size(), 1u);
}

TEST(CrossMode, AsyncVerbsOnSyncSessionThrow) {
  auto ds = testutil::separable_dataset();
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  Session session(*tuner, {.batch_size = 2, .stop = {.max_evaluations = 8}});
  EXPECT_THROW((void)session.suggest_async(1), hpb::Error);
  EXPECT_THROW(session.observe_async({}), hpb::Error);
  EXPECT_THROW((void)session.cancel_async({}), hpb::Error);
}

// ---------------------------------------------------------------- fuzzing

// Interleaved issue/complete/cancel under a seeded Rng, with duplicate and
// foreign tokens injected; a shadow set of outstanding tokens must agree
// with the session at every step. tools/check.sh runs this under both
// ASan and TSan.
TEST(AsyncFuzz, RandomizedCompletionOrderKeepsStateConsistent) {
  std::unique_ptr<core::Tuner> tuner;
  Session session = make_async_session(tuner);
  Rng rng(0xf0220);
  std::vector<AsyncSuggestion> outstanding;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  // The separable pool holds only 60 configurations; cap issuance so the
  // finite tuner never runs dry mid-fuzz.
  constexpr std::size_t kMaxIssued = 48;
  std::size_t issued = 0;
  for (int step = 0; step < 200; ++step) {
    const std::uint64_t action = rng.index(10);
    const bool can_issue = issued < kMaxIssued;
    if ((action < 4 || outstanding.empty()) && can_issue) {
      const std::size_t k =
          std::min<std::size_t>(1 + rng.index(3), kMaxIssued - issued);
      for (AsyncSuggestion& s : session.suggest_async(k)) {
        outstanding.push_back(std::move(s));
        ++issued;
      }
    } else if (outstanding.empty()) {
      break;  // pool cap reached and nothing left to complete
    } else if (action < 8) {
      // Complete a uniformly random outstanding token; one in five fails.
      const std::size_t pick = rng.index(outstanding.size());
      const AsyncSuggestion s = outstanding[pick];
      outstanding.erase(outstanding.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      if (rng.index(5) == 0) {
        const AsyncResult r[] = {{s.token, EvalStatus::kTimeout,
                                  std::nan("")}};
        session.observe_async(r);
        ++failed;
      } else {
        const AsyncResult r[] = {complete(s)};
        session.observe_async(r);
      }
      ++completed;
    } else if (action == 8) {
      const std::size_t pick = rng.index(outstanding.size());
      const std::uint64_t t[] = {outstanding[pick].token};
      outstanding.erase(outstanding.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      EXPECT_EQ(session.cancel_async(t), 1u);
      ++cancelled;
    } else {
      // Hostile input: a foreign token, and (when possible) a duplicate
      // pair in one call. Both must throw and leave the state untouched.
      const AsyncResult foreign[] = {{1u << 20, EvalStatus::kOk, 1.0}};
      EXPECT_THROW(session.observe_async(foreign), hpb::Error);
      if (!outstanding.empty()) {
        const AsyncResult dup[] = {complete(outstanding[0]),
                                   complete(outstanding[0])};
        EXPECT_THROW(session.observe_async(dup), hpb::Error);
      }
    }
    const SessionStatus st = session.status();
    ASSERT_EQ(st.pending, outstanding.size()) << "step " << step;
    ASSERT_EQ(st.evaluations, completed) << "step " << step;
  }
  EXPECT_EQ(session.cancel_async({}), outstanding.size());
  EXPECT_EQ(session.status().num_failed, failed);
  EXPECT_GT(cancelled, 0u);
  session.close();
}

// ------------------------------------------- eviction/resume equivalence

core::SessionFactory test_factory() {
  auto dataset = std::make_shared<tabular::TabularObjective>(
      testutil::separable_dataset());
  return [dataset](const SessionSpec& spec) {
    core::SessionBackend backend;
    backend.tuner = eval::make_named_tuner(spec.method, *dataset, spec.seed);
    backend.space = dataset->space_ptr();
    return backend;
  };
}

SessionSpec async_spec(const std::string& name) {
  SessionSpec spec;
  spec.name = name;
  spec.method = "hiperbot";
  spec.dataset = "separable";
  spec.seed = kSeed;
  spec.batch_size = 2;
  spec.stop.max_evaluations = 64;
  spec.mode = SessionMode::kAsync;
  return spec;
}

struct AsyncDriven {
  std::vector<std::vector<double>> suggested;
  double best = 0.0;
};

/// Fixed async schedule against a managed session: each step issues two
/// tokens and completes only the newest outstanding one (so the backlog —
/// and the pending-liar mass — grows), with one mid-run cancel and a
/// sprinkling of failures; evictions happen with tokens outstanding, so
/// resume must restore the outstanding set from the journal.
AsyncDriven drive_async_managed(const std::set<std::size_t>& evict_after,
                                const std::string& dir_tag) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir(dir_tag)});
  manager.create(async_spec("aequiv"));
  AsyncDriven run;
  std::deque<AsyncSuggestion> outstanding;
  std::size_t deliveries = 0;
  for (std::size_t step = 0; step < 6; ++step) {
    for (AsyncSuggestion& s : manager.suggest_async("aequiv", 2)) {
      run.suggested.push_back(s.config.values());
      outstanding.push_back(std::move(s));
    }
    const AsyncSuggestion s = outstanding.back();
    outstanding.pop_back();
    ++deliveries;
    const AsyncResult r[] = {
        deliveries % 4 == 0
            ? AsyncResult{s.token, EvalStatus::kCrashed, std::nan("")}
            : complete(s)};
    (void)manager.observe_async("aequiv", r);
    if (step == 3) {
      const std::uint64_t t[] = {outstanding.front().token};
      outstanding.pop_front();
      EXPECT_EQ(manager.cancel("aequiv", t), 1u);
    }
    if (evict_after.count(step) != 0) {
      EXPECT_TRUE(manager.evict("aequiv")) << "step " << step;
    }
  }
  while (!outstanding.empty()) {
    const AsyncSuggestion s = outstanding.back();
    outstanding.pop_back();
    const AsyncResult r[] = {complete(s)};
    run.best = manager.observe_async("aequiv", r).best_value;
  }
  EXPECT_EQ(manager.evicted_count(), evict_after.size());
  EXPECT_EQ(manager.resumed_count(), evict_after.size());
  return run;
}

void expect_same_async_run(const AsyncDriven& a, const AsyncDriven& b,
                           const std::string& label) {
  ASSERT_EQ(a.suggested.size(), b.suggested.size()) << label;
  for (std::size_t i = 0; i < a.suggested.size(); ++i) {
    ASSERT_EQ(a.suggested[i].size(), b.suggested[i].size()) << label;
    for (std::size_t j = 0; j < a.suggested[i].size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.suggested[i][j]),
                std::bit_cast<std::uint64_t>(b.suggested[i][j]))
          << label << ": suggestion " << i << " diverges at value " << j;
    }
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.best),
            std::bit_cast<std::uint64_t>(b.best))
      << label;
}

TEST(AsyncEvictionResume, EvictedWithOutstandingTokensMatchesHotBitwise) {
  const AsyncDriven hot = drive_async_managed({}, "aequiv_hot");
  const AsyncDriven early = drive_async_managed({0}, "aequiv_early");
  const AsyncDriven after_cancel = drive_async_managed({3}, "aequiv_mid");
  const AsyncDriven thrash =
      drive_async_managed({0, 1, 2, 3, 4}, "aequiv_thrash");
  expect_same_async_run(hot, early, "evicted after step 0");
  expect_same_async_run(hot, after_cancel, "evicted after the cancel step");
  expect_same_async_run(hot, thrash, "evicted after every step");
}

/// Sync equivalence across an abandoned round: round 1 observed, round 2
/// suggested then cancelled (the journal records the abandonment), rounds
/// 3-4 observed; the journal replay after an eviction must walk the same
/// path.
std::vector<std::vector<double>> drive_sync_with_cancel(
    bool evict_after_cancel, const std::string& dir_tag) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir(dir_tag)});
  SessionSpec spec = async_spec("sequiv");
  spec.mode = SessionMode::kSync;
  manager.create(spec);
  std::vector<std::vector<double>> suggested;
  const auto observe_round = [&] {
    auto batch = manager.suggest("sequiv", 2);
    std::vector<Observation> obs;
    for (auto& c : batch) {
      suggested.push_back(c.values());
      const double y = testutil::separable_value(c);
      obs.push_back({std::move(c), y, EvalStatus::kOk});
    }
    (void)manager.observe("sequiv", std::move(obs));
  };
  observe_round();
  for (const auto& c : manager.suggest("sequiv", 2)) {
    suggested.push_back(c.values());
  }
  EXPECT_EQ(manager.cancel("sequiv"), 2u);  // un-wedge the stuck round
  if (evict_after_cancel) {
    EXPECT_TRUE(manager.evict("sequiv"));
  }
  observe_round();
  observe_round();
  return suggested;
}

TEST(SyncCancelResume, AbandonedRoundReplaysBitwise) {
  const auto hot = drive_sync_with_cancel(false, "sequiv_hot");
  const auto resumed = drive_sync_with_cancel(true, "sequiv_resumed");
  ASSERT_EQ(hot.size(), resumed.size());
  for (std::size_t i = 0; i < hot.size(); ++i) {
    ASSERT_EQ(hot[i].size(), resumed[i].size());
    for (std::size_t j = 0; j < hot[i].size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(hot[i][j]),
                std::bit_cast<std::uint64_t>(resumed[i][j]))
          << "suggestion " << i << " diverges at value " << j;
    }
  }
}

// Closing an async managed session with tokens outstanding is refused;
// cancelling them (empty token list) un-wedges it for a clean close.
TEST(AsyncManaged, CloseRequiresDrainOrCancel) {
  SessionManager manager(test_factory(),
                         {.journal_dir = fresh_dir("aclose")});
  manager.create(async_spec("stuck"));
  (void)manager.suggest_async("stuck", 3);
  EXPECT_THROW(manager.close("stuck"), hpb::Error);
  EXPECT_EQ(manager.cancel("stuck", {}), 3u);
  manager.close("stuck");
  EXPECT_EQ(manager.closed_count(), 1u);
}

}  // namespace
}  // namespace hpb
