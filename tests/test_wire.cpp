// Wire-layer coverage: the strict JSON parser, the WireService verb
// handlers, and the LineServer socket front end.
//   - parse_json enforces RFC 8259 strictly (trailing garbage, duplicate
//     keys, control characters, depth bombs, bare NaN) and reports byte
//     offsets;
//   - every malformed / hostile request becomes a structured error
//     response with the right code (parse_error, bad_request,
//     unknown_verb, session_error) — handle_line never throws, and a
//     failed request never half-applies;
//   - out-of-order observes and double closes are session_errors after
//     which the session remains usable / stays closed;
//   - the LineServer round-trips requests over real Unix-domain and TCP
//     sockets, keeps a connection alive across malformed requests, caps
//     line length, serves concurrent clients (TSan exercises the striped
//     manager underneath), and shuts down cleanly with clients connected.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/session_manager.hpp"
#include "eval/methods.hpp"
#include "obs/json_util.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using core::SessionManager;
using core::SessionSpec;
using service::JsonParseError;
using service::JsonValue;
using service::LineServer;
using service::parse_json;
using service::WireService;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "wire_" + name;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::remove_all(dir);
  return dir;
}

core::SessionFactory test_factory() {
  auto dataset = std::make_shared<tabular::TabularObjective>(
      testutil::separable_dataset());
  return [dataset](const SessionSpec& spec) {
    core::SessionBackend backend;
    backend.tuner = eval::make_named_tuner(spec.method, *dataset, spec.seed);
    backend.space = dataset->space_ptr();
    return backend;
  };
}

/// Issue one request and parse the response with the service's own parser
/// (every response must itself be strict JSON).
JsonValue reply(WireService& service, const std::string& line) {
  const std::string response = service.handle_line(line);
  EXPECT_EQ(response.find('\n'), std::string::npos)
      << "responses must be single lines: " << response;
  return parse_json(response);
}

bool ok(const JsonValue& response) {
  const JsonValue* v = response.find("ok");
  return v != nullptr && v->is_bool() && v->as_bool();
}

std::string error_code_of(const JsonValue& response) {
  EXPECT_FALSE(ok(response));
  const JsonValue* error = response.find("error");
  if (error == nullptr) {
    ADD_FAILURE() << "error response without 'error' object";
    return {};
  }
  return error->find("code")->as_string();
}

std::string error_message_of(const JsonValue& response) {
  return response.find("error")->find("message")->as_string();
}

// ------------------------------------------------------------ JSON parser

TEST(JsonParser, AcceptsStrictDocuments) {
  EXPECT_TRUE(parse_json("{}").is_object());
  EXPECT_TRUE(parse_json("  [1, 2.5, -3e2]  ").is_array());
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_EQ(parse_json("\"a\\u0041\\n\"").as_string(), "aA\n");
  const JsonValue obj = parse_json("{\"a\":{\"b\":[true,false,null]}}");
  EXPECT_TRUE(obj.find("a")->find("b")->as_array()[2].is_null());
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonParser, RejectsHostileDocuments) {
  for (const std::string bad :
       {"", "{} x", "{\"a\":1,\"a\":2}", "{\"a\":1", "\"unterminated",
        "nan", "NaN", "Infinity", "01", "1.", "+1", "[1,]", "{\"a\" 1}",
        "\"ctrl\tchar\"", "\"\\ud800\"", "tru"}) {
    EXPECT_THROW((void)parse_json(bad), JsonParseError) << bad;
  }
  // A depth bomb is rejected, not stack-overflowed.
  EXPECT_THROW((void)parse_json(std::string(100, '[')), JsonParseError);
}

TEST(JsonParser, ReportsByteOffsets) {
  try {
    (void)parse_json("{\"a\": nope}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 6u);
    EXPECT_NE(std::string(e.what()).find("byte 6"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------- wire protocol

class WireTest : public ::testing::Test {
 protected:
  WireTest()
      : manager_(test_factory(),
                 {.journal_dir = fresh_dir(
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name())}),
        service_(manager_) {}

  std::string create_line(const std::string& name,
                          std::size_t batch = 2) const {
    return "{\"verb\":\"create\",\"session\":\"" + name +
           "\",\"dataset\":\"separable\",\"method\":\"random\",\"seed\":7,"
           "\"batch_size\":" +
           std::to_string(batch) + ",\"max_evaluations\":16}";
  }

  SessionManager manager_;
  WireService service_;
};

TEST_F(WireTest, MalformedJsonIsParseError) {
  EXPECT_EQ(error_code_of(reply(service_, "{nope")), "parse_error");
  EXPECT_EQ(error_code_of(reply(service_, "")), "parse_error");
  EXPECT_EQ(error_code_of(reply(service_, "\x01")), "parse_error");
}

TEST_F(WireTest, SchemaViolationsAreBadRequests) {
  // Not an object / missing or mistyped verb.
  EXPECT_EQ(error_code_of(reply(service_, "[1,2]")), "bad_request");
  EXPECT_EQ(error_code_of(reply(service_, "{\"session\":\"s\"}")),
            "bad_request");
  EXPECT_EQ(error_code_of(reply(service_, "{\"verb\":7}")), "bad_request");
  // Unknown keys are rejected by name.
  const JsonValue unknown_key = reply(
      service_,
      "{\"verb\":\"status\",\"session\":\"s\",\"bogus\":1}");
  EXPECT_EQ(error_code_of(unknown_key), "bad_request");
  EXPECT_NE(error_message_of(unknown_key).find("bogus"), std::string::npos);
  // Mistyped fields.
  EXPECT_EQ(error_code_of(reply(service_,
                                "{\"verb\":\"create\",\"session\":\"s\","
                                "\"dataset\":\"separable\",\"seed\":\"7\"}")),
            "bad_request");
  EXPECT_EQ(error_code_of(reply(service_,
                                "{\"verb\":\"suggest\",\"session\":\"s\","
                                "\"count\":-1}")),
            "bad_request");
  EXPECT_EQ(error_code_of(reply(service_,
                                "{\"verb\":\"observe\",\"session\":\"s\","
                                "\"results\":{}}")),
            "bad_request");
  // None of the rejected requests created state.
  EXPECT_EQ(manager_.created_count(), 0u);
}

TEST_F(WireTest, UnknownVerbHasItsOwnCode) {
  const JsonValue r =
      reply(service_, "{\"verb\":\"frobnicate\",\"session\":\"s\"}");
  EXPECT_EQ(error_code_of(r), "unknown_verb");
  EXPECT_NE(error_message_of(r).find("frobnicate"), std::string::npos);
}

TEST_F(WireTest, VerbsOnUnknownSessionsAreSessionErrors) {
  EXPECT_EQ(error_code_of(
                reply(service_, "{\"verb\":\"status\",\"session\":\"ghost\"}")),
            "session_error");
  EXPECT_EQ(error_code_of(
                reply(service_, "{\"verb\":\"close\",\"session\":\"ghost\"}")),
            "session_error");
}

/// Serialize one suggested config (array of numbers) back into a result
/// entry, preserving the exact wire text of every value.
std::string result_entry(const JsonValue& config, const std::string& y_or_none,
                         const std::string& status) {
  std::string out = "{\"config\":[";
  const auto& values = config.as_array();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += obs::json_double(values[i].as_number());
  }
  out += "]";
  if (!y_or_none.empty()) {
    out += ",\"y\":" + y_or_none;
  }
  out += ",\"status\":\"" + status + "\"}";
  return out;
}

TEST_F(WireTest, FullSessionLifecycleOverTheWire) {
  ASSERT_TRUE(ok(reply(service_, create_line("s1"))));
  // Fresh session: no evaluations, best_value is null.
  const JsonValue fresh =
      reply(service_, "{\"verb\":\"status\",\"session\":\"s1\"}");
  ASSERT_TRUE(ok(fresh));
  EXPECT_TRUE(fresh.find("status")->find("best_value")->is_null());
  EXPECT_FALSE(fresh.find("status")->find("stopped")->as_bool());

  const JsonValue suggested =
      reply(service_, "{\"verb\":\"suggest\",\"session\":\"s1\",\"count\":2}");
  ASSERT_TRUE(ok(suggested));
  const auto& configs = suggested.find("configs")->as_array();
  ASSERT_EQ(configs.size(), 2u);

  const JsonValue observed = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"s1\",\"results\":[" +
                    result_entry(configs[0], "10.5", "ok") + "," +
                    result_entry(configs[1], "5.25", "ok") + "]}");
  ASSERT_TRUE(ok(observed));
  const JsonValue* status = observed.find("status");
  EXPECT_DOUBLE_EQ(status->find("best_value")->as_number(), 5.25);
  EXPECT_EQ(status->find("evaluations")->as_number(), 2.0);
  EXPECT_EQ(status->find("rounds")->as_number(), 1.0);
  EXPECT_EQ(status->find("pending")->as_number(), 0.0);
  // best_config round-trips the winning suggestion bit-exactly.
  const auto& best = status->find("best_config")->as_array();
  const auto& winner = configs[1].as_array();
  ASSERT_EQ(best.size(), winner.size());
  for (std::size_t i = 0; i < best.size(); ++i) {
    EXPECT_EQ(obs::json_double(best[i].as_number()),
              obs::json_double(winner[i].as_number()));
  }

  ASSERT_TRUE(ok(reply(service_, "{\"verb\":\"close\",\"session\":\"s1\"}")));
  EXPECT_EQ(manager_.closed_count(), 1u);
}

TEST_F(WireTest, FailedResultsCarryNoValue) {
  ASSERT_TRUE(ok(reply(service_, create_line("s2"))));
  const JsonValue suggested =
      reply(service_, "{\"verb\":\"suggest\",\"session\":\"s2\",\"count\":2}");
  const auto& configs = suggested.find("configs")->as_array();
  // A y on a failed result is a client bug: rejected before any state
  // changes, so the round is still fully pending afterwards.
  const JsonValue rejected = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"s2\",\"results\":[" +
                    result_entry(configs[0], "1.0", "invalid") + "," +
                    result_entry(configs[1], "2.0", "ok") + "]}");
  EXPECT_EQ(error_code_of(rejected), "bad_request");
  EXPECT_EQ(reply(service_, "{\"verb\":\"status\",\"session\":\"s2\"}")
                .find("status")
                ->find("pending")
                ->as_number(),
            2.0);
  // Without the y it is a legal failed observation (NaN in the history).
  const JsonValue observed = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"s2\",\"results\":[" +
                    result_entry(configs[0], "", "invalid") + "," +
                    result_entry(configs[1], "2.0", "ok") + "]}");
  ASSERT_TRUE(ok(observed));
  EXPECT_EQ(observed.find("status")->find("failed")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(observed.find("status")->find("best_value")->as_number(),
                   2.0);
}

TEST_F(WireTest, OutOfOrderObserveIsASessionErrorAndRecoverable) {
  ASSERT_TRUE(ok(reply(service_, create_line("s3"))));
  const JsonValue suggested =
      reply(service_, "{\"verb\":\"suggest\",\"session\":\"s3\",\"count\":2}");
  const auto& configs = suggested.find("configs")->as_array();
  const JsonValue swapped = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"s3\",\"results\":[" +
                    result_entry(configs[1], "1.0", "ok") + "," +
                    result_entry(configs[0], "2.0", "ok") + "]}");
  EXPECT_EQ(error_code_of(swapped), "session_error");
  // Observe before suggest on a second session: also a session error.
  ASSERT_TRUE(ok(reply(service_, create_line("s4"))));
  EXPECT_EQ(error_code_of(
                reply(service_, "{\"verb\":\"observe\",\"session\":\"s4\","
                                "\"results\":[]}")),
            "session_error");
  // The swapped round is still deliverable in the right order.
  const JsonValue observed = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"s3\",\"results\":[" +
                    result_entry(configs[0], "2.0", "ok") + "," +
                    result_entry(configs[1], "1.0", "ok") + "]}");
  ASSERT_TRUE(ok(observed));
}

TEST_F(WireTest, DoubleCloseIsASessionError) {
  ASSERT_TRUE(ok(reply(service_, create_line("s5"))));
  ASSERT_TRUE(ok(reply(service_, "{\"verb\":\"close\",\"session\":\"s5\"}")));
  const JsonValue again =
      reply(service_, "{\"verb\":\"close\",\"session\":\"s5\"}");
  EXPECT_EQ(error_code_of(again), "session_error");
  EXPECT_NE(error_message_of(again).find("closed"), std::string::npos);
  EXPECT_EQ(error_code_of(
                reply(service_, "{\"verb\":\"suggest\",\"session\":\"s5\","
                                "\"count\":1}")),
            "session_error");
}

// ----------------------------------------------------- async wire protocol

std::string async_create_line(const std::string& name) {
  return "{\"verb\":\"create\",\"session\":\"" + name +
         "\",\"dataset\":\"separable\",\"method\":\"random\",\"seed\":7,"
         "\"batch_size\":2,\"max_evaluations\":32,\"mode\":\"async\"}";
}

TEST_F(WireTest, AsyncLifecycleOverTheWire) {
  ASSERT_TRUE(ok(reply(service_, async_create_line("a1"))));
  const JsonValue suggested =
      reply(service_, "{\"verb\":\"suggest\",\"session\":\"a1\",\"count\":3}");
  ASSERT_TRUE(ok(suggested));
  ASSERT_EQ(suggested.find("configs")->as_array().size(), 3u);
  const auto& tokens = suggested.find("tokens")->as_array();
  ASSERT_EQ(tokens.size(), 3u);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].as_number(), static_cast<double>(i + 1));
  }

  const JsonValue st =
      reply(service_, "{\"verb\":\"status\",\"session\":\"a1\"}");
  ASSERT_TRUE(ok(st));
  EXPECT_EQ(st.find("status")->find("mode")->as_string(), "async");
  EXPECT_EQ(st.find("status")->find("pending")->as_number(), 3.0);
  EXPECT_EQ(st.find("status")->find("pending_tokens")->as_array().size(), 3u);

  // Completions resolve tokens in any order; failures carry no y.
  const JsonValue newest_first = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"a1\",\"results\":["
                "{\"token\":3,\"y\":4.5}]}");
  ASSERT_TRUE(ok(newest_first));
  EXPECT_EQ(newest_first.find("status")->find("pending")->as_number(), 2.0);
  const JsonValue failed = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"a1\",\"results\":["
                "{\"token\":1,\"status\":\"crashed\"}]}");
  ASSERT_TRUE(ok(failed));
  EXPECT_EQ(failed.find("status")->find("failed")->as_number(), 1.0);
  // A y on a failed token result is a client bug.
  EXPECT_EQ(error_code_of(reply(
                service_, "{\"verb\":\"observe\",\"session\":\"a1\","
                          "\"results\":[{\"token\":2,\"y\":1.0,"
                          "\"status\":\"timeout\"}]}")),
            "bad_request");

  // The straggler is cancelled, which un-wedges close.
  EXPECT_EQ(error_code_of(
                reply(service_, "{\"verb\":\"close\",\"session\":\"a1\"}")),
            "session_error");
  const JsonValue cancelled = reply(
      service_, "{\"verb\":\"cancel\",\"session\":\"a1\",\"tokens\":[2]}");
  ASSERT_TRUE(ok(cancelled));
  EXPECT_EQ(cancelled.find("cancelled")->as_number(), 1.0);
  ASSERT_TRUE(ok(reply(service_, "{\"verb\":\"close\",\"session\":\"a1\"}")));
}

TEST_F(WireTest, AsyncObserveRejectsMixedForeignAndDuplicate) {
  ASSERT_TRUE(ok(reply(service_, async_create_line("a2"))));
  const JsonValue suggested =
      reply(service_, "{\"verb\":\"suggest\",\"session\":\"a2\",\"count\":2}");
  const auto& configs = suggested.find("configs")->as_array();
  // Token and config entries in one observe are two different protocols.
  const JsonValue mixed = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"a2\",\"results\":["
                "{\"token\":1,\"y\":1.0}," +
                    result_entry(configs[1], "2.0", "ok") + "]}");
  EXPECT_EQ(error_code_of(mixed), "bad_request");
  // Foreign and duplicate tokens are session errors; nothing is consumed.
  EXPECT_EQ(error_code_of(reply(
                service_, "{\"verb\":\"observe\",\"session\":\"a2\","
                          "\"results\":[{\"token\":99,\"y\":1.0}]}")),
            "session_error");
  EXPECT_EQ(error_code_of(reply(
                service_, "{\"verb\":\"observe\",\"session\":\"a2\","
                          "\"results\":[{\"token\":1,\"y\":1.0},"
                          "{\"token\":1,\"y\":2.0}]}")),
            "session_error");
  EXPECT_EQ(reply(service_, "{\"verb\":\"status\",\"session\":\"a2\"}")
                .find("status")
                ->find("pending")
                ->as_number(),
            2.0);
  // Bad token shapes are schema errors.
  EXPECT_EQ(error_code_of(reply(
                service_, "{\"verb\":\"observe\",\"session\":\"a2\","
                          "\"results\":[{\"token\":0,\"y\":1.0}]}")),
            "bad_request");
  EXPECT_EQ(error_code_of(reply(
                service_, "{\"verb\":\"observe\",\"session\":\"a2\","
                          "\"results\":[{\"token\":1.5,\"y\":1.0}]}")),
            "bad_request");
}

TEST_F(WireTest, TokenVerbsOnSyncSessionsAreSessionErrors) {
  ASSERT_TRUE(ok(reply(service_, create_line("sync1"))));
  const JsonValue suggested = reply(
      service_, "{\"verb\":\"suggest\",\"session\":\"sync1\",\"count\":2}");
  ASSERT_TRUE(ok(suggested));
  EXPECT_EQ(suggested.find("tokens"), nullptr)
      << "sync suggest responses must not grow a tokens key";
  EXPECT_EQ(error_code_of(reply(
                service_, "{\"verb\":\"observe\",\"session\":\"sync1\","
                          "\"results\":[{\"token\":1,\"y\":1.0}]}")),
            "session_error");
  EXPECT_EQ(error_code_of(reply(
                service_, "{\"verb\":\"cancel\",\"session\":\"sync1\","
                          "\"tokens\":[1]}")),
            "session_error");
}

TEST_F(WireTest, CancelUnwedgesAStuckSyncRound) {
  ASSERT_TRUE(ok(reply(service_, create_line("stuck"))));
  ASSERT_TRUE(ok(reply(
      service_, "{\"verb\":\"suggest\",\"session\":\"stuck\",\"count\":2}")));
  // The client that was evaluating this round died; close is refused.
  EXPECT_EQ(error_code_of(
                reply(service_, "{\"verb\":\"close\",\"session\":\"stuck\"}")),
            "session_error");
  const JsonValue cancelled =
      reply(service_, "{\"verb\":\"cancel\",\"session\":\"stuck\"}");
  ASSERT_TRUE(ok(cancelled));
  EXPECT_EQ(cancelled.find("cancelled")->as_number(), 2.0);
  // The session keeps working after the abandoned round.
  ASSERT_TRUE(ok(reply(
      service_, "{\"verb\":\"suggest\",\"session\":\"stuck\",\"count\":2}")));
  ASSERT_TRUE(
      ok(reply(service_, "{\"verb\":\"cancel\",\"session\":\"stuck\"}")));
  ASSERT_TRUE(ok(reply(service_, "{\"verb\":\"close\",\"session\":\"stuck\"}")));
}

TEST_F(WireTest, AllFailedRoundReportsNonFiniteBestExplicitly) {
  ASSERT_TRUE(ok(reply(service_, create_line("nf"))));
  const JsonValue suggested =
      reply(service_, "{\"verb\":\"suggest\",\"session\":\"nf\",\"count\":2}");
  const auto& configs = suggested.find("configs")->as_array();
  const JsonValue observed = reply(
      service_, "{\"verb\":\"observe\",\"session\":\"nf\",\"results\":[" +
                    result_entry(configs[0], "", "crashed") + "," +
                    result_entry(configs[1], "", "timeout") + "]}");
  ASSERT_TRUE(ok(observed));
  // No finite best exists: best_value is null AND the flag says why, so a
  // sloppy client cannot read the null as 0.
  const JsonValue* status = observed.find("status");
  EXPECT_TRUE(status->find("best_value")->is_null());
  const JsonValue* finite = status->find("best_value_finite");
  ASSERT_NE(finite, nullptr);
  EXPECT_FALSE(finite->as_bool());
}

// ------------------------------------------------------- json round-trips

TEST(JsonNumbers, FiniteDoublesRoundTripBitwise) {
  const std::vector<double> edge_cases = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      1.0 / 3.0,
      0.1,
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),       // smallest normal
      std::numeric_limits<double>::denorm_min(),  // smallest subnormal
      -std::numeric_limits<double>::denorm_min(),
      9007199254740993.0,  // above 2^53: needs full shortest-round-trip
      1e308,
      -1e-308,
  };
  for (const double v : edge_cases) {
    const std::string text = obs::json_double(v);
    const double parsed = parse_json(text).as_number();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
              std::bit_cast<std::uint64_t>(v))
        << text;
  }
  // The full double range: random bit patterns, skipping non-finite ones.
  Rng rng(0xb17);
  std::size_t tested = 0;
  while (tested < 2000) {
    const double v = std::bit_cast<double>(rng.next_u64());
    if (!std::isfinite(v)) {
      continue;
    }
    const std::string text = obs::json_double(v);
    const double parsed = parse_json(text).as_number();
    ASSERT_EQ(std::bit_cast<std::uint64_t>(parsed),
              std::bit_cast<std::uint64_t>(v))
        << text;
    ++tested;
  }
}

TEST(JsonNumbers, NonFiniteSpellingsAreParseErrors) {
  for (const std::string text :
       {"NaN", "nan", "Infinity", "-Infinity", "inf", "-inf",
        "{\"y\":NaN}", "[Infinity]"}) {
    EXPECT_THROW((void)parse_json(text), JsonParseError) << text;
  }
}

// ------------------------------------------------------------ line server

/// Minimal blocking line-oriented client used by the socket tests.
class LineClient {
 public:
  static LineClient connect_unix(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << path << ": " << std::strerror(errno);
    return LineClient(fd);
  }

  static LineClient connect_tcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << "port " << port << ": " << std::strerror(errno);
    return LineClient(fd);
  }

  LineClient(LineClient&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  ~LineClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  void send_raw(const std::string& bytes) const {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      ASSERT_GT(n, 0) << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// One request line in, one response line out (empty string on EOF).
  std::string request(const std::string& line) {
    send_raw(line + "\n");
    return read_line();
  }

  /// Half-close: no more requests, but responses can still be read. The
  /// server sees EOF with whatever tail bytes were sent unterminated.
  void shutdown_write() const { ::shutdown(fd_, SHUT_WR); }

  std::string read_line() {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        return {};  // EOF / reset
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  explicit LineClient(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buffer_;
};

/// One self-contained service stack (manager + wire + server) for socket
/// tests.
struct ServiceStack {
  explicit ServiceStack(const std::string& tag, service::ServerConfig server_config)
      : manager(test_factory(), {.journal_dir = fresh_dir(tag + "_journals")}),
        service(manager),
        server([this](std::string_view line) {
          return service.handle_line(line);
        }, std::move(server_config)) {}

  SessionManager manager;
  WireService service;
  LineServer server;
};

/// Drive one full create→suggest→observe→close session through a client.
void drive_session_via(LineClient& client, const std::string& name) {
  const std::string create =
      "{\"verb\":\"create\",\"session\":\"" + name +
      "\",\"dataset\":\"separable\",\"method\":\"random\",\"seed\":11,"
      "\"batch_size\":2,\"max_evaluations\":8}";
  ASSERT_TRUE(ok(parse_json(client.request(create)))) << name;
  const JsonValue suggested = parse_json(client.request(
      "{\"verb\":\"suggest\",\"session\":\"" + name + "\",\"count\":2}"));
  ASSERT_TRUE(ok(suggested)) << name;
  const auto& configs = suggested.find("configs")->as_array();
  ASSERT_EQ(configs.size(), 2u);
  const JsonValue observed = parse_json(client.request(
      "{\"verb\":\"observe\",\"session\":\"" + name + "\",\"results\":[" +
      result_entry(configs[0], "3.0", "ok") + "," +
      result_entry(configs[1], "4.0", "ok") + "]}"));
  ASSERT_TRUE(ok(observed)) << name;
  ASSERT_TRUE(ok(parse_json(client.request(
      "{\"verb\":\"close\",\"session\":\"" + name + "\"}"))))
      << name;
}

TEST(LineServerTest, UnixSocketRoundTrip) {
  const std::string socket_path = temp_path("roundtrip.sock");
  ServiceStack stack("unix_rt", {.unix_path = socket_path});
  stack.server.start();
  {
    LineClient client = LineClient::connect_unix(socket_path);
    drive_session_via(client, "u1");
    // Malformed input gets an error response but keeps the connection.
    EXPECT_EQ(error_code_of(parse_json(client.request("][nonsense"))),
              "parse_error");
    drive_session_via(client, "u2");
  }
  stack.server.stop();
  EXPECT_EQ(stack.manager.closed_count(), 2u);
  EXPECT_EQ(stack.server.connections_accepted(), 1u);
}

TEST(LineServerTest, TcpSocketRoundTrip) {
  ServiceStack stack("tcp_rt", {.tcp_port = 0});
  ASSERT_GT(stack.server.port(), 0);
  stack.server.start();
  {
    LineClient client = LineClient::connect_tcp(stack.server.port());
    drive_session_via(client, "t1");
  }
  stack.server.stop();
  EXPECT_EQ(stack.manager.closed_count(), 1u);
}

TEST(LineServerTest, OverlongLinesAreRejectedAndDropped) {
  const std::string socket_path = temp_path("overlong.sock");
  ServiceStack stack("overlong",
                     {.unix_path = socket_path, .max_line_bytes = 128});
  stack.server.start();
  LineClient client = LineClient::connect_unix(socket_path);
  client.send_raw(std::string(512, 'x'));
  const JsonValue response = parse_json(client.read_line());
  EXPECT_EQ(error_code_of(response), "bad_request");
  EXPECT_NE(error_message_of(response).find("exceeds"), std::string::npos);
  EXPECT_EQ(client.read_line(), "");  // server dropped the connection
  stack.server.stop();
}

TEST(LineServerTest, CrlfLinesParseTerminatedAndOnEofTail) {
  const std::string socket_path = temp_path("crlf.sock");
  ServiceStack stack("crlf", {.unix_path = socket_path});
  stack.server.start();
  {
    // CRLF-terminated lines (telnet-style client) parse like plain LF.
    LineClient client = LineClient::connect_unix(socket_path);
    client.send_raw(
        "{\"verb\":\"create\",\"session\":\"crlf1\","
        "\"dataset\":\"separable\",\"method\":\"random\"}\r\n");
    ASSERT_TRUE(ok(parse_json(client.read_line())));
    // The final line arrives CR-terminated with no LF, then EOF: the CR
    // must be stripped before the handler sees the tail.
    client.send_raw("{\"verb\":\"status\",\"session\":\"crlf1\"}\r");
    client.shutdown_write();
    const JsonValue status = parse_json(client.read_line());
    ASSERT_TRUE(ok(status)) << "EOF-tail CR reached the JSON parser";
    EXPECT_EQ(status.find("status")->find("evaluations")->as_number(), 0.0);
  }
  stack.server.stop();
}

TEST(LineServerTest, OversizedLineWithNewlineInSameChunkIsRejected) {
  const std::string socket_path = temp_path("cap_chunk.sock");
  ServiceStack stack("cap_chunk",
                     {.unix_path = socket_path, .max_line_bytes = 128});
  stack.server.start();
  LineClient client = LineClient::connect_unix(socket_path);
  // The oversized line and its newline (plus a valid follow-up request)
  // arrive in ONE chunk: the cap must still fire, report its limit, and
  // close — the follow-up must never execute on a poisoned stream.
  client.send_raw(std::string(512, 'x') + "\n" +
                  "{\"verb\":\"create\",\"session\":\"sneak\","
                  "\"dataset\":\"separable\",\"method\":\"random\"}\n");
  const JsonValue response = parse_json(client.read_line());
  EXPECT_EQ(error_code_of(response), "bad_request");
  EXPECT_NE(error_message_of(response).find("128"), std::string::npos)
      << "the cap error must state the configured limit";
  EXPECT_EQ(client.read_line(), "");  // connection closed after the error
  stack.server.stop();
  EXPECT_EQ(stack.manager.created_count(), 0u)
      << "no request after the cap violation may reach the handler";
}

TEST(LineServerTest, ConcurrentClientsShareOneManager) {
  ServiceStack stack("concurrent", {.tcp_port = 0});
  stack.server.start();
  constexpr int kClients = 4;
  constexpr int kSessionsEach = 3;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&stack, c] {
      LineClient client = LineClient::connect_tcp(stack.server.port());
      for (int s = 0; s < kSessionsEach; ++s) {
        drive_session_via(client,
                          "c" + std::to_string(c) + "s" + std::to_string(s));
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  stack.server.stop();
  EXPECT_EQ(stack.manager.created_count(),
            static_cast<std::uint64_t>(kClients * kSessionsEach));
  EXPECT_EQ(stack.manager.closed_count(),
            static_cast<std::uint64_t>(kClients * kSessionsEach));
  EXPECT_EQ(stack.server.connections_accepted(),
            static_cast<std::uint64_t>(kClients));
}

TEST(LineServerTest, StopWithClientsConnectedDoesNotHang) {
  const std::string socket_path = temp_path("stop.sock");
  ServiceStack stack("stop", {.unix_path = socket_path});
  stack.server.start();
  LineClient client = LineClient::connect_unix(socket_path);
  ASSERT_TRUE(ok(parse_json(client.request(
      "{\"verb\":\"create\",\"session\":\"s\",\"dataset\":\"separable\","
      "\"method\":\"random\"}"))));
  stack.server.stop();  // must join the idle connection, not wait on it
  EXPECT_EQ(client.read_line(), "");  // connection closed by shutdown
}

TEST(LineServerTest, ClientDisconnectMidResponseDoesNotKillTheServer) {
  const std::string socket_path = temp_path("epipe.sock");
  ServiceStack stack("epipe", {.unix_path = socket_path});
  stack.server.start();
  {
    // Pipeline a burst of requests and slam the connection shut without
    // reading a byte: the server is mid-write when the peer vanishes, so
    // its sends hit EPIPE/ECONNRESET. That must neither raise SIGPIPE nor
    // take the process down — and requests already read may keep executing
    // against the shared manager without tripping TSan.
    LineClient client = LineClient::connect_unix(socket_path);
    std::string burst;
    for (int i = 0; i < 200; ++i) {
      burst += "{\"verb\":\"status\",\"session\":\"ghost\"}\n";
    }
    client.send_raw(burst);
  }  // destructor closes the socket with every response unread
  // The server keeps serving new connections as if nothing happened.
  LineClient after = LineClient::connect_unix(socket_path);
  drive_session_via(after, "after_epipe");
  stack.server.stop();  // joins the torn connection's thread cleanly
  EXPECT_EQ(stack.manager.closed_count(), 1u);
}

TEST(LineServerTest, ExternalStopFlagEndsServe) {
  std::atomic<bool> stop{false};
  ServiceStack stack("flag", {.tcp_port = 0, .stop_flag = &stop});
  std::thread server_thread([&stack] { stack.server.serve(); });
  {
    LineClient client = LineClient::connect_tcp(stack.server.port());
    drive_session_via(client, "f1");
  }
  stop.store(true);
  server_thread.join();  // serve() returns once the flag is seen
  EXPECT_EQ(stack.manager.closed_count(), 1u);
}

}  // namespace
}  // namespace hpb
