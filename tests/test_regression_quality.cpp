// Statistical regression gate for tuning quality (label: slow).
//
// Any change to the surrogate, the densities, the acquisition scan, or the
// engine's reduction order shows up here before it shows up in the paper's
// figures: over >= 20 seeds per application, HiPerBOt's median
// best-found value at the paper's budget must (a) stay under a calibrated
// absolute threshold and (b) beat random search at the same budget. The
// thresholds carry slack over the observed medians (see the table below) so
// seed-level noise does not flake the suite, but a real quality regression
// — the median drifting toward random's — fails loudly, with a per-seed
// table in the failure message.
//
// Observed at calibration (budget 100, seeds 1..20, engine batch 1):
//   kripke: hiperbot median 8.43 (exhaustive best 8.43), random ~ 9.01
//   hypre:  hiperbot median 3.45 (exhaustive best 3.45), random ~ 3.59
//   lulesh: hiperbot median 2.72 (exhaustive best 2.72), random ~ 2.86
#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/engine.hpp"
#include "eval/methods.hpp"

namespace hpb {
namespace {

constexpr std::size_t kSeeds = 20;
constexpr std::size_t kBudget = 100;  // the paper's Fig. 2/3 budget scale

struct AppCase {
  const char* dataset;
  /// Absolute ceiling on HiPerBOt's median best at kBudget evaluations.
  double median_threshold;
};

// Thresholds sit between the calibrated HiPerBOt median and the random-
// search median: crossing one means the tuner lost most of its edge.
const AppCase kCases[] = {
    {"kripke", 8.9},  // paper: best 8.43 s; random needs ~4x the budget
    {"hypre", 3.55},
    {"lulesh", 2.82},
};

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// Best value found by `method` for each of kSeeds independent seeds.
std::vector<double> best_per_seed(const std::string& method,
                                  tabular::TabularObjective& dataset) {
  const core::TuningEngine engine({.batch_size = 1});
  std::vector<double> bests;
  bests.reserve(kSeeds);
  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    auto tuner = eval::make_named_tuner(method, dataset, seed);
    bests.push_back(engine.run(*tuner, dataset, kBudget).best_value);
  }
  return bests;
}

std::string seed_table(const std::vector<double>& hiperbot,
                       const std::vector<double>& random) {
  std::ostringstream os;
  os << std::setprecision(6) << "  seed  hiperbot      random\n";
  for (std::size_t i = 0; i < hiperbot.size(); ++i) {
    os << "  " << std::left << std::setw(6) << (i + 1) << std::setw(14)
       << hiperbot[i] << random[i] << '\n';
  }
  os << "  median: hiperbot " << median(hiperbot) << ", random "
     << median(random) << '\n';
  return os.str();
}

class RegressionQuality : public ::testing::TestWithParam<AppCase> {};

TEST_P(RegressionQuality, HiperbotMedianBeatsRandomAndThreshold) {
  const AppCase& app = GetParam();
  auto dataset = apps::dataset_by_name(app.dataset).make();
  const std::vector<double> hiperbot = best_per_seed("hiperbot", dataset);
  const std::vector<double> random = best_per_seed("random", dataset);
  const double hiperbot_median = median(hiperbot);
  const double random_median = median(random);

  EXPECT_LE(hiperbot_median, app.median_threshold)
      << "HiPerBOt quality regressed on " << app.dataset << ": median best "
      << hiperbot_median << " over " << kSeeds << " seeds at budget "
      << kBudget << " exceeds the calibrated ceiling "
      << app.median_threshold << " (exhaustive best "
      << dataset.best_value() << ").\n"
      << seed_table(hiperbot, random);
  EXPECT_LE(hiperbot_median, random_median)
      << "HiPerBOt no longer beats random search on " << app.dataset
      << " at budget " << kBudget << " (over " << kSeeds << " seeds).\n"
      << seed_table(hiperbot, random);
}

INSTANTIATE_TEST_SUITE_P(Apps, RegressionQuality,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                           return std::string(info.param.dataset);
                         });

}  // namespace
}  // namespace hpb
