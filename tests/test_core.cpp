// Tests for the HiPerBOt core: observation history splitting, factorized
// densities, the TPE surrogate and its acquisition function, transfer
// priors, and parameter importance.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/density.hpp"
#include "core/history.hpp"
#include "core/importance.hpp"
#include "core/surrogate.hpp"
#include "test_util.hpp"

namespace hpb::core {
namespace {

using space::Configuration;

// ----------------------------------------------------------------- history
TEST(History, TracksBest) {
  History h;
  h.add(Configuration({0, 0, 0}), 5.0);
  h.add(Configuration({1, 0, 0}), 2.0);
  h.add(Configuration({2, 0, 0}), 7.0);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.best_value(), 2.0);
  EXPECT_EQ(h.best_config().level(0), 1u);
}

TEST(History, RejectsNonFiniteObjective) {
  History h;
  EXPECT_THROW(h.add(Configuration({0}), std::nan("")), Error);
  EXPECT_THROW(h.add(Configuration({0}), INFINITY), Error);
}

TEST(History, EmptyAccessorsThrow) {
  History h;
  EXPECT_THROW((void)h.best_value(), Error);
  EXPECT_THROW((void)h.best_config(), Error);
  EXPECT_THROW((void)h.split(0.2), Error);
}

TEST(History, SplitPutsAlphaFractionInGood) {
  History h;
  for (int i = 0; i < 10; ++i) {
    h.add(Configuration({static_cast<double>(i)}), static_cast<double>(i));
  }
  const HistorySplit s = h.split(0.2);
  ASSERT_EQ(s.good.size(), 2u);
  ASSERT_EQ(s.bad.size(), 8u);
  // Good group holds the two smallest values (0 and 1).
  for (std::size_t idx : s.good) {
    EXPECT_LT(h[idx].y, s.threshold);
  }
  for (std::size_t idx : s.bad) {
    EXPECT_GE(h[idx].y, s.threshold);
  }
  EXPECT_DOUBLE_EQ(s.threshold, 2.0);
}

TEST(History, SplitAlwaysNonEmptyBothSides) {
  History h;
  h.add(Configuration({0}), 1.0);
  h.add(Configuration({1}), 2.0);
  const HistorySplit tiny = h.split(0.01);
  EXPECT_EQ(tiny.good.size(), 1u);
  EXPECT_EQ(tiny.bad.size(), 1u);
  const HistorySplit huge = h.split(0.99);
  EXPECT_EQ(huge.good.size(), 1u);
  EXPECT_EQ(huge.bad.size(), 1u);
}

TEST(History, SplitRejectsBadAlpha) {
  History h;
  h.add(Configuration({0}), 1.0);
  h.add(Configuration({1}), 2.0);
  EXPECT_THROW((void)h.split(0.0), Error);
  EXPECT_THROW((void)h.split(1.0), Error);
}

// ----------------------------------------------------------------- density
TEST(FactorizedDensity, LogDensityIsSumOfMarginals) {
  auto sp = testutil::small_discrete_space();
  std::vector<Configuration> obs = {Configuration({0, 1, 2}),
                                    Configuration({0, 1, 3}),
                                    Configuration({1, 2, 2})};
  const FactorizedDensity d(sp, obs);
  const Configuration probe({0, 1, 2});
  double expected = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    expected += std::log(d.histogram(i).pmf(probe.level(i)));
  }
  EXPECT_NEAR(d.log_density(probe), expected, 1e-12);
  EXPECT_NEAR(d.density(probe), std::exp(expected), 1e-12);
}

TEST(FactorizedDensity, EmptyObservationsGiveUniform) {
  auto sp = testutil::small_discrete_space();
  const FactorizedDensity d(sp, {});
  const double expected =
      std::log(1.0 / 4.0) + std::log(1.0 / 3.0) + std::log(1.0 / 5.0);
  EXPECT_NEAR(d.log_density(Configuration({0, 0, 0})), expected, 1e-12);
  EXPECT_NEAR(d.log_density(Configuration({3, 2, 4})), expected, 1e-12);
}

TEST(FactorizedDensity, SampleMatchesObservedConcentration) {
  auto sp = testutil::small_discrete_space();
  std::vector<Configuration> obs(50, Configuration({2, 1, 4}));
  DensityConfig cfg;
  cfg.histogram_smoothing = 0.1;
  const FactorizedDensity d(sp, obs, cfg);
  Rng rng(1);
  int match = 0;
  for (int i = 0; i < 500; ++i) {
    const Configuration c = d.sample(rng);
    if (c.level(0) == 2 && c.level(1) == 1 && c.level(2) == 4) {
      ++match;
    }
  }
  EXPECT_GT(match, 450);
}

TEST(FactorizedDensity, MarginalProbabilitiesSumToOne) {
  auto sp = testutil::mixed_space();
  std::vector<Configuration> obs = {Configuration({0, 3.0}),
                                    Configuration({1, 4.0}),
                                    Configuration({1, 5.0})};
  const FactorizedDensity d(sp, obs);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto probs = d.marginal_probabilities(p);
    double total = 0.0;
    for (double v : probs) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Continuous marginal uses importance_bins cells.
  EXPECT_EQ(d.marginal_probabilities(1).size(), DensityConfig{}.importance_bins);
}

TEST(FactorizedDensity, MixInShiftsTowardPrior) {
  auto sp = testutil::small_discrete_space();
  std::vector<Configuration> target_obs = {Configuration({0, 0, 0})};
  std::vector<Configuration> source_obs(20, Configuration({3, 2, 4}));
  DensityConfig cfg;
  cfg.histogram_smoothing = 0.1;
  FactorizedDensity d(sp, target_obs, cfg);
  const FactorizedDensity prior(sp, source_obs, cfg);
  const Configuration source_mode({3, 2, 4});
  const double before = d.log_density(source_mode);
  d.mix_in(prior, 2.0);
  EXPECT_GT(d.log_density(source_mode), before);
}

TEST(FactorizedDensity, MixInValidation) {
  auto sp = testutil::small_discrete_space();
  auto other_space = testutil::mixed_space();
  FactorizedDensity d(sp, {});
  const FactorizedDensity wrong(other_space, {});
  EXPECT_THROW(d.mix_in(wrong, 1.0), Error);
  const FactorizedDensity same(sp, {});
  EXPECT_THROW(d.mix_in(same, -1.0), Error);
}

TEST(FactorizedDensity, HistogramAccessorRejectsContinuous) {
  auto sp = testutil::mixed_space();
  const FactorizedDensity d(sp, {});
  EXPECT_NO_THROW((void)d.histogram(0));
  EXPECT_THROW((void)d.histogram(1), Error);
  EXPECT_THROW((void)d.histogram(2), Error);
}

// --------------------------------------------------------------- surrogate
History make_separable_history(std::size_t n, std::uint64_t seed) {
  auto sp = testutil::small_discrete_space();
  Rng rng(seed);
  History h;
  for (std::size_t i = 0; i < n; ++i) {
    const Configuration c = sp->sample_uniform(rng);
    h.add(c, testutil::separable_value(c));
  }
  return h;
}

TEST(TpeSurrogate, AcquisitionPrefersOptimumRegion) {
  auto sp = testutil::small_discrete_space();
  const History h = make_separable_history(40, 3);
  const TpeSurrogate s(sp, h, 0.2);
  // The separable optimum (1,2,3) must score higher than a far corner.
  EXPECT_GT(s.acquisition(Configuration({1, 2, 3})),
            s.acquisition(Configuration({3, 0, 0})));
}

TEST(TpeSurrogate, ThresholdMatchesHistorySplit) {
  auto sp = testutil::small_discrete_space();
  const History h = make_separable_history(25, 5);
  const TpeSurrogate s(sp, h, 0.2);
  EXPECT_DOUBLE_EQ(s.threshold(), h.split(0.2).threshold);
}

TEST(TpeSurrogate, ImportanceDetectsInfluentialParameter) {
  // Objective depends only on parameter A.
  auto sp = testutil::small_discrete_space();
  Rng rng(7);
  History h;
  for (int i = 0; i < 120; ++i) {
    const Configuration c = sp->sample_uniform(rng);
    h.add(c, c.level(0) == 1 ? 1.0 : 10.0);
  }
  const TpeSurrogate s(sp, h, 0.2);
  const auto imp = s.parameter_importance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], 5.0 * imp[1]);
  EXPECT_GT(imp[0], 5.0 * imp[2]);
}

TEST(TransferPrior, BuiltFromSourceDataset) {
  auto ds = testutil::separable_dataset();
  const TransferPrior prior = make_transfer_prior(
      ds.space_ptr(), ds.configs(), ds.values(), 0.2);
  // Good density concentrates near the optimum levels.
  EXPECT_GT(prior.good.log_density(Configuration({1, 2, 3})),
            prior.good.log_density(Configuration({3, 0, 0})));
  // Bad density is closer to uniform over the large bad region.
  EXPECT_GT(prior.bad.log_density(Configuration({3, 0, 0})),
            prior.good.log_density(Configuration({3, 0, 0})));
}

TEST(TransferPrior, PriorShiftsSurrogateAcquisition) {
  auto sp = testutil::small_discrete_space();
  // Tiny, uninformative target history (constant objective): without a
  // prior the surrogate cannot distinguish configurations.
  History h;
  Rng rng(9);
  for (int i = 0; i < 6; ++i) {
    h.add(sp->sample_uniform(rng), 1.0 + 0.001 * i);
  }
  auto source = testutil::separable_dataset();
  const TransferPrior prior = make_transfer_prior(
      source.space_ptr(), source.configs(), source.values(), 0.2);
  const TpeSurrogate without(sp, h, 0.3);
  const TpeSurrogate with(sp, h, 0.3, {}, &prior, 5.0);
  const double gain_with = with.acquisition(Configuration({1, 2, 3})) -
                           with.acquisition(Configuration({3, 0, 0}));
  const double gain_without = without.acquisition(Configuration({1, 2, 3})) -
                              without.acquisition(Configuration({3, 0, 0}));
  EXPECT_GT(gain_with, gain_without + 0.1);
}

TEST(TransferPrior, RequiresMinimumData) {
  auto sp = testutil::small_discrete_space();
  std::vector<Configuration> one = {Configuration({0, 0, 0})};
  std::vector<double> vals = {1.0};
  EXPECT_THROW((void)make_transfer_prior(sp, one, vals, 0.2), Error);
}

// -------------------------------------------------------------- importance
TEST(Importance, FullDatasetRanksStrongestFirst) {
  auto ds = testutil::separable_dataset();
  const auto entries = dataset_importance(ds, 0.2);
  ASSERT_EQ(entries.size(), 3u);
  // Sorted descending.
  EXPECT_GE(entries[0].js_divergence, entries[1].js_divergence);
  EXPECT_GE(entries[1].js_divergence, entries[2].js_divergence);
  // All parameters matter in the separable objective; scores are positive.
  EXPECT_GT(entries[2].js_divergence, 0.0);
}

TEST(Importance, PartialSampleApproximatesFullRanking) {
  // Objective dominated by parameter C (5 levels, wide spread).
  auto sp = testutil::small_discrete_space();
  auto ds = tabular::TabularObjective::from_function(
      "cdom", sp, [](const Configuration& c) {
        return 1.0 + 10.0 * static_cast<double>(c.level(2)) +
               0.1 * static_cast<double>(c.level(0));
      });
  Rng rng(11);
  std::vector<Configuration> sample_configs;
  std::vector<double> sample_values;
  for (int i = 0; i < 30; ++i) {
    const auto& c = ds.config(rng.index(ds.size()));
    sample_configs.push_back(c);
    sample_values.push_back(ds.value_of(c));
  }
  const auto partial = parameter_importance(sp, sample_configs, sample_values,
                                            0.2);
  EXPECT_EQ(partial.front().parameter, "C");
  const auto full = dataset_importance(ds, 0.2);
  EXPECT_EQ(full.front().parameter, "C");
}

}  // namespace
}  // namespace hpb::core
