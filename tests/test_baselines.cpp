// Tests for the tuner baselines: RandomSearch, GEIST, and the GP-EI tuner.
#include <gtest/gtest.h>

#include <set>

#include "baselines/geist.hpp"
#include "baselines/gp_tuner.hpp"
#include "baselines/random_search.hpp"
#include "common/error.hpp"
#include "core/loop.hpp"
#include "test_util.hpp"

namespace hpb::baselines {
namespace {

using space::Configuration;

// ------------------------------------------------------------ RandomSearch
TEST(RandomSearch, NoDuplicatesOnFiniteSpace) {
  auto ds = testutil::separable_dataset();
  RandomSearch tuner(ds.space_ptr(), 1);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 60; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
    tuner.observe(c, ds.value_of(c));
  }
}

TEST(RandomSearch, PoolExhaustionThrows) {
  auto ds = testutil::separable_dataset();
  auto pool = std::make_shared<const std::vector<Configuration>>(
      std::vector<Configuration>{ds.config(0), ds.config(1)});
  RandomSearch tuner(ds.space_ptr(), 1, pool);
  for (int t = 0; t < 2; ++t) {
    const Configuration c = tuner.suggest();
    tuner.observe(c, 1.0);
  }
  EXPECT_THROW((void)tuner.suggest(), Error);
}

TEST(RandomSearch, ContinuousSpaceSampling) {
  auto sp = testutil::mixed_space();
  RandomSearch tuner(sp, 2);
  for (int t = 0; t < 50; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(sp->satisfies(c));
    tuner.observe(c, 0.0);
  }
}

// -------------------------------------------------------------------- GEIST
GeistConfig small_geist() {
  GeistConfig cfg;
  cfg.initial_samples = 8;
  cfg.quantile = 0.25;
  cfg.batch_size = 4;
  return cfg;
}

TEST(Geist, NoDuplicateSuggestions) {
  auto ds = testutil::separable_dataset();
  Geist tuner(ds.space_ptr(), small_geist(), 3);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 60; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second) << t;
    tuner.observe(c, ds.value_of(c));
  }
  EXPECT_THROW((void)tuner.suggest(), Error);
}

TEST(Geist, ConvergesOnSmoothObjective) {
  auto ds = testutil::separable_dataset();
  Geist tuner(ds.space_ptr(), small_geist(), 4);
  const core::TuneResult r = core::run_tuning(tuner, ds, 30);
  EXPECT_LE(r.best_value, 2.0);
}

TEST(Geist, BeatsRandomOnAverage) {
  auto ds = testutil::separable_dataset();
  double geist_total = 0.0, rnd_total = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    Geist g(ds.space_ptr(), small_geist(), 10 + rep);
    geist_total += core::run_tuning(g, ds, 24).best_value;
    RandomSearch r(ds.space_ptr(), 50 + rep);
    rnd_total += core::run_tuning(r, ds, 24).best_value;
  }
  EXPECT_LE(geist_total, rnd_total);
}

TEST(Geist, BeliefsExposedAfterPropagation) {
  auto ds = testutil::separable_dataset();
  auto cfg = small_geist();
  Geist tuner(ds.space_ptr(), cfg, 5);
  EXPECT_TRUE(tuner.beliefs().empty());
  (void)core::run_tuning(tuner, ds, cfg.initial_samples + 1);
  ASSERT_EQ(tuner.beliefs().size(), ds.size());
  for (double b : tuner.beliefs()) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

TEST(Geist, ObserveRejectsConfigOutsidePool) {
  auto ds = testutil::separable_dataset();
  auto pool = std::make_shared<const std::vector<Configuration>>(
      std::vector<Configuration>{ds.config(0), ds.config(1), ds.config(2)});
  auto graph = std::make_shared<const ConfigGraph>(ds.space(), *pool);
  Geist tuner(ds.space_ptr(), small_geist(), 1, pool, graph);
  EXPECT_THROW(tuner.observe(ds.config(10), 1.0), Error);
}

TEST(Geist, SharedGraphMatchesInternallyBuilt) {
  auto ds = testutil::separable_dataset();
  auto pool = std::make_shared<const std::vector<Configuration>>(
      ds.configs().begin(), ds.configs().end());
  auto graph = std::make_shared<const ConfigGraph>(ds.space(), *pool);
  Geist a(ds.space_ptr(), small_geist(), 7, pool, graph);
  Geist b(ds.space_ptr(), small_geist(), 7);
  for (int t = 0; t < 20; ++t) {
    const Configuration ca = a.suggest();
    const Configuration cb = b.suggest();
    EXPECT_EQ(ds.space().ordinal_of(ca), ds.space().ordinal_of(cb));
    a.observe(ca, ds.value_of(ca));
    b.observe(cb, ds.value_of(cb));
  }
}

TEST(Geist, ValidatesConfig) {
  auto ds = testutil::separable_dataset();
  GeistConfig bad;
  bad.initial_samples = 1;
  EXPECT_THROW(Geist(ds.space_ptr(), bad, 1), Error);
  bad = {};
  bad.batch_size = 0;
  EXPECT_THROW(Geist(ds.space_ptr(), bad, 1), Error);
}

TEST(Geist, BatchedSuggestionsUseBeliefsFromTheirRound) {
  // GEIST refreshes labels once per batch: the queued suggestions of a
  // round all derive from the same propagation, and a new propagation
  // happens only after the queue drains.
  auto ds = testutil::separable_dataset();
  GeistConfig cfg = small_geist();
  cfg.batch_size = 5;
  Geist tuner(ds.space_ptr(), cfg, 11);
  // Drain the random phase.
  for (std::size_t t = 0; t < cfg.initial_samples; ++t) {
    const auto c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
  }
  // First model round triggers one propagation; beliefs stay constant
  // while the batch drains even though observations arrive.
  const auto first = tuner.suggest();
  tuner.observe(first, ds.value_of(first));
  const std::vector<double> beliefs_snapshot = tuner.beliefs();
  for (int t = 0; t < 4; ++t) {  // remaining queued suggestions
    const auto c = tuner.suggest();
    EXPECT_EQ(tuner.beliefs(), beliefs_snapshot);
    tuner.observe(c, ds.value_of(c));
  }
  // Next suggestion starts a new round with refreshed beliefs.
  (void)tuner.suggest();
  EXPECT_NE(tuner.beliefs(), beliefs_snapshot);
}

// ------------------------------------------------------------------- GP-EI
GpConfig small_gp() {
  GpConfig cfg;
  cfg.initial_samples = 8;
  cfg.candidate_subsample = 0;  // exact argmax on the tiny space
  return cfg;
}

TEST(GpTuner, PosteriorInterpolatesObservations) {
  auto ds = testutil::separable_dataset();
  GpTuner tuner(ds.space_ptr(), small_gp(), 1);
  for (int t = 0; t < 10; ++t) {
    const Configuration c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
  }
  // Posterior at an observed point: mean close to the observation, tiny
  // variance.
  const Configuration probe = ds.config(5);
  tuner.observe(probe, ds.value_of(probe));
  const auto post = tuner.posterior(probe);
  EXPECT_NEAR(post.mean, ds.value_of(probe),
              0.05 * (1.0 + std::abs(ds.value_of(probe))));
  EXPECT_LT(post.variance, 0.1);
}

TEST(GpTuner, NoDuplicateSuggestions) {
  auto ds = testutil::separable_dataset();
  GpTuner tuner(ds.space_ptr(), small_gp(), 2);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 40; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
    tuner.observe(c, ds.value_of(c));
  }
}

TEST(GpTuner, FindsOptimumOnSmallSpace) {
  auto ds = testutil::separable_dataset();
  GpTuner tuner(ds.space_ptr(), small_gp(), 3);
  const core::TuneResult r = core::run_tuning(tuner, ds, 30);
  EXPECT_LE(r.best_value, 2.0);
}

TEST(GpTuner, HistoryCapKeepsIncumbent) {
  auto ds = testutil::separable_dataset();
  auto cfg = small_gp();
  cfg.max_history = 12;
  GpTuner tuner(ds.space_ptr(), cfg, 4);
  const core::TuneResult r = core::run_tuning(tuner, ds, 40);
  // Still converges despite the cap.
  EXPECT_LE(r.best_value, 2.0);
}

TEST(GpTuner, ValidatesConfig) {
  auto ds = testutil::separable_dataset();
  GpConfig bad;
  bad.length_scale = 0.0;
  EXPECT_THROW(GpTuner(ds.space_ptr(), bad, 1), Error);
  bad = {};
  bad.noise_variance = 0.0;
  EXPECT_THROW(GpTuner(ds.space_ptr(), bad, 1), Error);
}

}  // namespace
}  // namespace hpb::baselines
