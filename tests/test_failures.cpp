// Failure-aware evaluation path:
//   - EvalResult/EvalStatus plumbing and the engine's FailurePolicy (failed
//     evaluations spend budget, are retried only when transient, and never
//     become best_config);
//   - deterministic fault injection (same seed + rates => identical runs,
//     rate 0 => bitwise pass-through at batch 1 and 4);
//   - every standard method survives a 100-evaluation budget on Kripke at a
//     20% permanent failure rate;
//   - ThreadPool survives throwing tasks (no terminate, no wait_idle
//     deadlock, error surfaced);
//   - run_until drains the whole round when a stop triggers mid-batch, and
//     stagnation patience counts per observation within a batch;
//   - history CSV round-trips the status column, validates the objective
//     header column, and rejects rows with a trailing comma.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "apps/registry.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/history_io.hpp"
#include "core/hiperbot.hpp"
#include "core/stopping.hpp"
#include "eval/methods.hpp"
#include "eval/metrics.hpp"
#include "tabular/fault_injection.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using core::Observation;
using core::TuneResult;
using core::TuningEngine;
using tabular::EvalResult;
using tabular::EvalStatus;
using tabular::FaultInjectingObjective;

constexpr std::uint64_t kSeed = 0xFA117;

/// Ask/tell sink recording every delivered outcome (for CSV replay tests).
class RecordingTuner final : public core::Tuner {
 public:
  [[nodiscard]] space::Configuration suggest() override {
    throw Error("RecordingTuner does not suggest");
  }
  void observe(const space::Configuration& config, double y) override {
    ok_configs.push_back(config);
    ok_values.push_back(y);
  }
  void observe_failure(const space::Configuration& config,
                       EvalStatus status) override {
    failed_configs.push_back(config);
    failed_statuses.push_back(status);
  }
  [[nodiscard]] std::string name() const override { return "Recording"; }

  std::vector<space::Configuration> ok_configs;
  std::vector<double> ok_values;
  std::vector<space::Configuration> failed_configs;
  std::vector<EvalStatus> failed_statuses;
};

/// Objective whose first evaluation of every configuration crashes and
/// whose retries succeed — exercises the engine's transient-retry policy
/// deterministically.
class FlakyObjective final : public tabular::Objective {
 public:
  explicit FlakyObjective(tabular::TabularObjective& inner) : inner_(&inner) {}

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return inner_->space();
  }
  [[nodiscard]] double evaluate(const space::Configuration& c) override {
    return inner_->evaluate(c);
  }
  [[nodiscard]] EvalResult evaluate_result(
      const space::Configuration& c) override {
    std::scoped_lock lock(mutex_);
    if (seen_.insert(inner_->space().ordinal_of(c)).second) {
      return EvalResult::failure(EvalStatus::kCrashed);
    }
    return EvalResult::success(inner_->evaluate(c));
  }
  [[nodiscard]] std::string name() const override { return "flaky"; }

 private:
  tabular::TabularObjective* inner_;
  std::mutex mutex_;
  std::unordered_set<std::uint64_t> seen_;
};

void expect_identical(const TuneResult& a, const TuneResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].config.values(), b.history[i].config.values())
        << "config mismatch at " << i;
    // Failed observations carry NaN, so compare bit patterns, not ==.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.history[i].y),
              std::bit_cast<std::uint64_t>(b.history[i].y))
        << "value mismatch at " << i;
    EXPECT_EQ(a.history[i].status, b.history[i].status)
        << "status mismatch at " << i;
  }
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best_so_far, b.best_so_far);
  EXPECT_EQ(a.num_failed, b.num_failed);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolFailure, ThrowingTaskSurfacesFromWaitIdleWithoutDeadlock) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([] {});
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error was consumed; the pool is still usable.
  pool.submit([] {});
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPoolFailure, ParallelForStillReportsItsOwnFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for_indexed(&pool, 16,
                                    [](std::size_t i) {
                                      if (i == 3) {
                                        throw std::runtime_error("index 3");
                                      }
                                    }),
               std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());
}

// ------------------------------------------------------------------ engine

TEST(EngineFailure, FailedEvaluationsSpendBudgetButNeverBecomeBest) {
  auto ds = testutil::separable_dataset();
  FaultInjectingObjective faulty(ds, {.fail_rate = 0.3, .seed = kSeed});
  const TuningEngine engine({.batch_size = 4});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const auto result = engine.run(*tuner, faulty, 40);

  ASSERT_EQ(result.history.size(), 40u);
  std::size_t failed = 0;
  double best_ok = std::numeric_limits<double>::infinity();
  for (const auto& o : result.history) {
    if (o.ok()) {
      EXPECT_TRUE(std::isfinite(o.y));
      best_ok = std::min(best_ok, o.y);
    } else {
      EXPECT_TRUE(std::isnan(o.y));
      EXPECT_TRUE(faulty.in_failure_region(o.config));
      ++failed;
    }
  }
  EXPECT_GT(failed, 0u) << "fault injection produced no failures at 30%";
  EXPECT_EQ(result.num_failed, failed);
  EXPECT_EQ(result.best_value, best_ok);
  EXPECT_FALSE(faulty.in_failure_region(result.best_config));
  // best_so_far never reflects a failed observation.
  for (double b : result.best_so_far) {
    EXPECT_TRUE(std::isfinite(b) ||
                b == std::numeric_limits<double>::infinity());
    EXPECT_FALSE(std::isnan(b));
  }
}

TEST(EngineFailure, TransientCrashesAreRetriedWithinTheSameBudgetSlot) {
  auto ds = testutil::separable_dataset();
  FlakyObjective flaky(ds);
  const TuningEngine engine({.batch_size = 4, .failure = {.max_retries = 1}});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const auto result = engine.run(*tuner, flaky, 20);
  ASSERT_EQ(result.history.size(), 20u);
  // Every first attempt crashed; the single retry succeeded each time.
  EXPECT_EQ(result.num_failed, 0u);
  for (const auto& o : result.history) {
    EXPECT_TRUE(o.ok());
  }
}

TEST(EngineFailure, NoRetriesRecordsTheCrash) {
  auto ds = testutil::separable_dataset();
  FlakyObjective flaky(ds);
  const TuningEngine engine({.batch_size = 1, .failure = {.max_retries = 0}});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const auto result = engine.run(*tuner, flaky, 5);
  ASSERT_EQ(result.history.size(), 5u);
  EXPECT_EQ(result.num_failed, 5u);
  for (const auto& o : result.history) {
    EXPECT_EQ(o.status, EvalStatus::kCrashed);
  }
  EXPECT_EQ(result.best_value, std::numeric_limits<double>::infinity());
}

TEST(EngineFailure, ZeroRatesAreBitwiseIdenticalToUnwrappedRuns) {
  auto ds = testutil::separable_dataset();
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4}}) {
    const TuningEngine engine({.batch_size = batch});
    for (const auto& name : eval::tuner_names()) {
      auto plain_tuner = eval::make_named_tuner(name, ds, kSeed);
      const auto plain = engine.run(*plain_tuner, ds, 30);

      FaultInjectingObjective faulty(ds,
                                     {.fail_rate = 0.0, .crash_rate = 0.0});
      auto wrapped_tuner = eval::make_named_tuner(name, ds, kSeed);
      const auto wrapped = engine.run(*wrapped_tuner, faulty, 30);
      expect_identical(plain, wrapped);
      EXPECT_EQ(faulty.failures_injected(), 0u);
    }
  }
}

TEST(EngineFailure, SameSeedAndRatesReproduceTheExactRun) {
  auto ds = testutil::separable_dataset();
  const TuningEngine engine({.batch_size = 4});
  auto run_once = [&] {
    FaultInjectingObjective faulty(
        ds, {.fail_rate = 0.25, .crash_rate = 0.1, .seed = kSeed});
    auto tuner = eval::make_named_tuner("hiperbot", ds, kSeed);
    return engine.run(*tuner, faulty, 40);
  };
  expect_identical(run_once(), run_once());
}

TEST(EngineFailure, AllMethodsFinishKripkeBudgetUnderTwentyPercentFailures) {
  auto kripke = apps::dataset_by_name("kripke").make();
  const TuningEngine engine({.batch_size = 4});
  for (const auto& name : eval::tuner_names()) {
    if (name == "exhaustive") {
      continue;  // a prefix scan is not a budgeted method
    }
    SCOPED_TRACE(name);
    FaultInjectingObjective faulty(
        kripke, {.fail_rate = 0.2, .crash_rate = 0.05, .seed = kSeed});
    auto tuner = eval::make_named_tuner(name, kripke, kSeed);
    const auto result = engine.run(*tuner, faulty, 100);
    ASSERT_EQ(result.history.size(), 100u);
    EXPECT_LT(result.num_failed, 100u) << "no successful evaluation at all";
    EXPECT_TRUE(std::isfinite(result.best_value));
    EXPECT_FALSE(faulty.in_failure_region(result.best_config));
  }
}

// --------------------------------------------------------------- run_until

TEST(EngineRunUntilFailure, StagnationCountsPerObservationWithinABatch) {
  auto ds = testutil::separable_dataset();
  core::StopConfig stop;
  stop.max_evaluations = ds.size();
  stop.stagnation_patience = 2;
  const TuningEngine engine({.batch_size = 4});
  auto tuner = eval::make_named_tuner("exhaustive", ds, kSeed);
  // The exhaustive scan of the separable dataset worsens monotonically
  // often enough that patience 2 trips inside an early round; the whole
  // round is still drained into the history.
  const auto stopped = engine.run_until(*tuner, ds, stop);
  EXPECT_EQ(stopped.reason, core::StopReason::kStagnation);
  EXPECT_EQ(stopped.result.history.size() % 4, 0u)
      << "mid-batch stop must drain the full round";
  EXPECT_LT(stopped.result.history.size(), ds.size());
}

// --------------------------------------------------------------- history IO

TEST(HistoryCsvFailure, StatusColumnRoundTripsFailures) {
  auto space = testutil::small_discrete_space();
  auto ds = testutil::separable_dataset();
  FaultInjectingObjective faulty(ds, {.fail_rate = 0.3, .seed = kSeed});
  const TuningEngine engine({.batch_size = 4});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const auto result = engine.run(*tuner, faulty, 30);
  ASSERT_GT(result.num_failed, 0u);

  std::ostringstream out;
  core::write_history_csv(out, *space, result.history);
  const std::string csv = out.str();
  EXPECT_NE(csv.find(",status"), std::string::npos);

  std::istringstream in(csv);
  RecordingTuner sink;
  const std::size_t replayed = core::warm_start_from_csv(in, *space, sink);
  EXPECT_EQ(replayed, result.history.size());
  ASSERT_EQ(sink.failed_configs.size(), result.num_failed);
  ASSERT_EQ(sink.ok_values.size(), result.history.size() - result.num_failed);
  std::size_t ok_i = 0, fail_i = 0;
  for (const auto& o : result.history) {
    if (o.ok()) {
      EXPECT_EQ(sink.ok_configs[ok_i].values(), o.config.values());
      EXPECT_EQ(sink.ok_values[ok_i], o.y);
      ++ok_i;
    } else {
      EXPECT_EQ(sink.failed_configs[fail_i].values(), o.config.values());
      EXPECT_EQ(sink.failed_statuses[fail_i], o.status);
      ++fail_i;
    }
  }
}

TEST(HistoryCsvFailure, FailureFreeHistoriesKeepTheLegacyLayout) {
  auto space = testutil::small_discrete_space();
  auto ds = testutil::separable_dataset();
  const TuningEngine engine({.batch_size = 1});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const auto result = engine.run(*tuner, ds, 5);
  std::ostringstream out;
  core::write_history_csv(out, *space, result.history);
  EXPECT_EQ(out.str().find("status"), std::string::npos);
}

TEST(HistoryCsvFailure, HeaderWithoutObjectiveColumnIsRejected) {
  auto space = testutil::small_discrete_space();
  RecordingTuner sink;
  // Right column count, but the objective column is misnamed: previously
  // the last parameter-named column was silently parsed as the objective.
  std::istringstream in("A,B,C,value\na0,1,0,7.5\n");
  EXPECT_THROW(core::warm_start_from_csv(in, *space, sink), Error);
}

TEST(HistoryCsvFailure, TrailingCommaRowIsRejectedNotShifted) {
  auto space = testutil::small_discrete_space();
  RecordingTuner sink;
  // The old getline-based splitter dropped the trailing empty field, so
  // this row passed the field-count check with "0" parsed as objective.
  std::istringstream in("A,B,C,objective\na0,1,0,\n");
  EXPECT_THROW(core::warm_start_from_csv(in, *space, sink), Error);
}

TEST(HistoryCsvFailure, ReorderedParameterColumnsStillMapByName) {
  auto space = testutil::small_discrete_space();
  RecordingTuner sink;
  std::istringstream in("C,A,B,objective,status\n"
                        "3,a1,4,2.5,ok\n"
                        "0,a0,1,nan,invalid\n");
  EXPECT_EQ(core::warm_start_from_csv(in, *space, sink), 2u);
  ASSERT_EQ(sink.ok_values.size(), 1u);
  EXPECT_EQ(sink.ok_values[0], 2.5);
  EXPECT_EQ(sink.ok_configs[0].level(0), 1u);  // A = a1
  EXPECT_EQ(sink.ok_configs[0].level(2), 3u);  // C = 3
  ASSERT_EQ(sink.failed_statuses.size(), 1u);
  EXPECT_EQ(sink.failed_statuses[0], EvalStatus::kInvalid);
}

TEST(HistoryCsvFailure, UnknownStatusNameIsRejected) {
  auto space = testutil::small_discrete_space();
  RecordingTuner sink;
  std::istringstream in("A,B,C,objective,status\na0,1,0,7.5,exploded\n");
  EXPECT_THROW(core::warm_start_from_csv(in, *space, sink), Error);
}

// ------------------------------------------------------------- environment

TEST(FailEnvParsing, StrictRateParsing) {
  unsetenv("HPB_FAIL_RATE");
  EXPECT_EQ(tabular::fail_rate_from_env(0.125), 0.125);
  setenv("HPB_FAIL_RATE", "0.3", 1);
  EXPECT_EQ(tabular::fail_rate_from_env(0.0), 0.3);
  setenv("HPB_FAIL_RATE", "0", 1);
  EXPECT_EQ(tabular::fail_rate_from_env(0.5), 0.0);
  for (const char* bad : {"", " ", "nope", "0.5x", "1.0", "-0.1"}) {
    setenv("HPB_FAIL_RATE", bad, 1);
    EXPECT_THROW(tabular::fail_rate_from_env(0.0), Error) << '"' << bad
                                                          << '"';
  }
  unsetenv("HPB_FAIL_RATE");
  setenv("HPB_CRASH_RATE", "0.05", 1);
  EXPECT_EQ(tabular::crash_rate_from_env(0.0), 0.05);
  unsetenv("HPB_CRASH_RATE");
}

// ------------------------------------------------------------------ status

TEST(EvalStatusNames, RoundTrip) {
  for (const EvalStatus s : {EvalStatus::kOk, EvalStatus::kInvalid,
                             EvalStatus::kCrashed, EvalStatus::kTimeout}) {
    EXPECT_EQ(tabular::status_from_name(tabular::status_name(s)), s);
  }
  EXPECT_THROW(tabular::status_from_name("partial"), Error);
}

}  // namespace
}  // namespace hpb
