// Tests for the GEIST substrate: the Hamming-1 configuration graph and
// CAMLP label propagation.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/camlp.hpp"
#include "baselines/config_graph.hpp"
#include "common/error.hpp"
#include "test_util.hpp"

namespace hpb::baselines {
namespace {

using space::Configuration;
using space::Parameter;
using space::ParameterSpace;

TEST(ConfigGraph, DegreesMatchHammingNeighborCounts) {
  const auto sp = testutil::small_discrete_space();
  const auto pool = sp->enumerate();
  const ConfigGraph g(*sp, pool);
  ASSERT_EQ(g.num_nodes(), 60u);
  // Unconstrained cross product: every node has Σ (levels_i − 1) neighbors.
  const std::size_t expected = (4 - 1) + (3 - 1) + (5 - 1);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.degree(i), expected);
  }
  EXPECT_EQ(g.num_edges(), 60u * expected / 2);
}

TEST(ConfigGraph, NeighborsDifferInExactlyOneParameter) {
  const auto sp = testutil::small_discrete_space();
  const auto pool = sp->enumerate();
  const ConfigGraph g(*sp, pool);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    for (std::uint32_t j : g.neighbors(i)) {
      std::size_t diffs = 0;
      for (std::size_t p = 0; p < sp->num_params(); ++p) {
        diffs += (pool[i].level(p) != pool[j].level(p)) ? 1 : 0;
      }
      EXPECT_EQ(diffs, 1u);
    }
  }
}

TEST(ConfigGraph, ConstrainedPoolOmitsInvalidNeighbors) {
  auto sp = std::make_shared<ParameterSpace>();
  sp->add(Parameter::integer("a", 0, 2));
  sp->add(Parameter::integer("b", 0, 2));
  sp->add_constraint(
      [](const ParameterSpace&, const Configuration& c) {
        return c.level(0) + c.level(1) <= 2;
      },
      "");
  const auto pool = sp->enumerate();  // 6 configs
  ASSERT_EQ(pool.size(), 6u);
  const ConfigGraph g(*sp, pool);
  // Node (0,0): neighbors (1,0), (2,0), (0,1), (0,2) — all valid → degree 4.
  const Configuration origin({0, 0});
  std::size_t origin_idx = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i] == origin) {
      origin_idx = i;
    }
  }
  EXPECT_EQ(g.degree(origin_idx), 4u);
  // Node (2,0): in-space neighbors are (0,0), (1,0) — (2,1) and (2,2)
  // violate the constraint → degree 2.
  const Configuration corner({2, 0});
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i] == corner) {
      EXPECT_EQ(g.degree(i), 2u);
    }
  }
}

TEST(ConfigGraph, RejectsDuplicatesAndEmpty) {
  const auto sp = testutil::small_discrete_space();
  auto pool = sp->enumerate();
  pool.push_back(pool.front());
  EXPECT_THROW(ConfigGraph(*sp, pool), Error);
  EXPECT_THROW(ConfigGraph(*sp, std::vector<Configuration>{}), Error);
}

// ------------------------------------------------------------------- CAMLP
/// A genuine Hamming-1 *path* of 2k+1 nodes: configurations (a, a) and
/// (a, a+1) over two integer parameters. Consecutive nodes differ in
/// exactly one parameter, non-consecutive in two — a zigzag path. (Note a
/// single-parameter space would give a *complete* graph, since any two
/// levels differ in exactly that one parameter.)
ConfigGraph zigzag_path(std::size_t k) {
  auto sp = std::make_shared<ParameterSpace>();
  sp->add(Parameter::integer("a", 0, static_cast<std::int64_t>(k)));
  sp->add(Parameter::integer("b", 0, static_cast<std::int64_t>(k)));
  sp->add_constraint(
      [](const ParameterSpace&, const Configuration& c) {
        return c.level(1) == c.level(0) || c.level(1) == c.level(0) + 1;
      },
      "zigzag");
  const auto pool = sp->enumerate();  // ordinal order == path order
  return ConfigGraph(*sp, pool);
}

TEST(Camlp, ZigzagIsAPath) {
  const ConfigGraph g = zigzag_path(10);
  ASSERT_EQ(g.num_nodes(), 21u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(20), 1u);
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_EQ(g.degree(i), 2u);
  }
}

TEST(Camlp, SingleParameterSpaceGivesCompleteGraph) {
  auto sp = std::make_shared<ParameterSpace>();
  sp->add(Parameter::integer("i", 0, 9));
  const ConfigGraph g(*sp, sp->enumerate());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(g.degree(i), 9u);
  }
}

TEST(Camlp, UnlabeledGraphStaysUniform) {
  const ConfigGraph g = zigzag_path(5);
  Labels labels(g.num_nodes(), -1);
  const auto beliefs = camlp_propagate(g, labels, {});
  for (double b : beliefs) {
    EXPECT_NEAR(b, 0.5, 1e-9);
  }
}

TEST(Camlp, BeliefsStayInUnitInterval) {
  const ConfigGraph g = zigzag_path(10);
  Labels labels(g.num_nodes(), -1);
  labels[0] = 1;
  labels[20] = 0;
  CamlpConfig cfg;
  cfg.beta = 1.0;
  cfg.max_iters = 100;
  const auto beliefs = camlp_propagate(g, labels, cfg);
  for (double b : beliefs) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

TEST(Camlp, LabeledEndsPullTheirNeighborhoods) {
  const ConfigGraph g = zigzag_path(10);  // 21 nodes
  Labels labels(21, -1);
  labels[0] = 1;   // good end
  labels[20] = 0;  // bad end
  CamlpConfig cfg;
  cfg.beta = 1.0;
  cfg.max_iters = 500;
  cfg.tolerance = 1e-12;
  const auto beliefs = camlp_propagate(g, labels, cfg);
  EXPECT_GT(beliefs[1], beliefs[19]);
  EXPECT_GT(beliefs[0], 0.5);
  EXPECT_LT(beliefs[20], 0.5);
  // Monotone decay along the path from the good end to the bad end.
  for (std::size_t i = 1; i <= 20; ++i) {
    EXPECT_LE(beliefs[i], beliefs[i - 1] + 1e-9);
  }
}

TEST(Camlp, HigherBetaSpreadsLabelsFurther) {
  const ConfigGraph g = zigzag_path(7);  // 15 nodes
  Labels labels(15, -1);
  labels[0] = 1;
  CamlpConfig weak;
  weak.beta = 0.01;
  weak.max_iters = 500;
  weak.tolerance = 1e-14;
  CamlpConfig strong = weak;
  strong.beta = 1.0;
  const auto b_weak = camlp_propagate(g, labels, weak);
  const auto b_strong = camlp_propagate(g, labels, strong);
  // Mid-path node learns more about the distant label with stronger
  // propagation.
  EXPECT_GT(b_strong[7] - 0.5, b_weak[7] - 0.5);
}

TEST(Camlp, ValidatesInput) {
  const ConfigGraph g = zigzag_path(2);
  Labels wrong_size(4, -1);
  EXPECT_THROW((void)camlp_propagate(g, wrong_size, {}), Error);
  Labels ok(5, -1);
  CamlpConfig bad;
  bad.beta = 0.0;
  EXPECT_THROW((void)camlp_propagate(g, ok, bad), Error);
}

}  // namespace
}  // namespace hpb::baselines
