// Unit and property tests for the dense linear algebra kernels.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpb::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.flat()) {
    v = rng.normal();
  }
  return m;
}

/// Random SPD matrix A = B Bᵀ + n·I.
Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix b = random_matrix(n, n, rng);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = dot(b.row(i), b.row(j));
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

TEST(Matrix, IndexingIsRowMajor) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 3;
  m(1, 1) = 5;
  EXPECT_DOUBLE_EQ(m.flat()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.flat()[2], 3.0);
  EXPECT_DOUBLE_EQ(m.flat()[4], 5.0);
  EXPECT_EQ(m.row(1).size(), 3u);
}

TEST(Matvec, KnownValues) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]
  double v = 1.0;
  for (double& x : a.flat()) {
    x = v++;
  }
  const Vector x = {1.0, 1.0, 1.0};
  const Vector y = matvec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matvec, TransposedAgreesWithExplicitTranspose) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 6, rng);
  Vector x(4);
  for (double& v : x) {
    v = rng.normal();
  }
  const Vector y = matvec_transposed(a, x);
  // Compare against transpose-then-matvec.
  Matrix at(6, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      at(j, i) = a(i, j);
    }
  }
  const Vector y2 = matvec(at, x);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(y[i], y2[i], 1e-12);
  }
}

TEST(Matmul, AgreesWithNaive) {
  Rng rng(2);
  const Matrix a = random_matrix(3, 5, rng);
  const Matrix b = random_matrix(5, 4, rng);
  const Matrix c = matmul(a, b);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 5; ++k) {
        acc += a(i, k) * b(k, j);
      }
      EXPECT_NEAR(c(i, j), acc, 1e-12);
    }
  }
}

TEST(Matmul, DimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)matmul(a, b), Error);
  Vector x(2);
  EXPECT_THROW((void)matvec(a, x), Error);
}

TEST(Dot, BasicAndMismatch) {
  const Vector a = {1, 2, 3};
  const Vector b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const Vector c = {1, 2};
  EXPECT_THROW((void)dot(a, c), Error);
  EXPECT_DOUBLE_EQ(norm2(b), std::sqrt(77.0));
}

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, FactorReconstructsMatrix) {
  Rng rng(GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  const Matrix l = cholesky(a);
  // L Lᵀ == A and L is lower triangular.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j > i) {
        EXPECT_DOUBLE_EQ(l(i, j), 0.0);
      }
      double acc = 0.0;
      for (std::size_t k = 0; k <= std::min(i, j); ++k) {
        acc += l(i, k) * l(j, k);
      }
      EXPECT_NEAR(acc, a(i, j), 1e-8 * (1.0 + std::abs(a(i, j))));
    }
  }
}

TEST_P(CholeskySizes, SolveRecoversKnownSolution) {
  Rng rng(GetParam() + 100);
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  Vector x_true(n);
  for (double& v : x_true) {
    v = rng.normal();
  }
  const Vector b = matvec(a, x_true);
  const Matrix l = cholesky(a);
  const Vector x = cholesky_solve(l, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW((void)cholesky(a), Error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW((void)cholesky(Matrix(2, 3)), Error);
}

TEST(Cholesky, LogDetMatchesDiagonalProduct) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(1, 1) = 9.0;
  const Matrix l = cholesky(a);
  EXPECT_NEAR(cholesky_logdet(l), std::log(36.0), 1e-12);
}

TEST(TriangularSolves, ForwardAndBackward) {
  Matrix l(2, 2);
  l(0, 0) = 2.0;
  l(1, 0) = 1.0;
  l(1, 1) = 3.0;
  const Vector b = {4.0, 11.0};
  const Vector y = solve_lower(l, b);  // y = [2, 3]
  EXPECT_NEAR(y[0], 2.0, 1e-12);
  EXPECT_NEAR(y[1], 3.0, 1e-12);
  const Vector x = solve_lower_transposed(l, b);  // Lᵀ x = b
  EXPECT_NEAR(x[1], 11.0 / 3.0, 1e-12);
  EXPECT_NEAR(x[0], (4.0 - x[1]) / 2.0, 1e-12);
}

TEST(Axpy, AccumulatesInPlace) {
  const Vector x = {1.0, 2.0};
  Vector y = {10.0, 20.0};
  axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[1], 21.0);
}

}  // namespace
}  // namespace hpb::linalg
