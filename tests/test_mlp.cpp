// Tests for the minimal MLP: gradient checking against finite differences,
// training convergence, and parameter round-trips.
#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace hpb::nn {
namespace {

TEST(Mlp, ConstructionAndSizes) {
  Rng rng(1);
  Mlp net({3, 5, 2}, rng);
  EXPECT_EQ(net.input_size(), 3u);
  EXPECT_EQ(net.output_size(), 2u);
  EXPECT_EQ(net.num_parameters(), 3u * 5u + 5u + 5u * 2u + 2u);
}

TEST(Mlp, RejectsDegenerateShapes) {
  Rng rng(1);
  EXPECT_THROW(Mlp({3}, rng), Error);
  EXPECT_THROW(Mlp({3, 0, 1}, rng), Error);
}

TEST(Mlp, ForwardValidatesInputSize) {
  Rng rng(1);
  Mlp net({3, 4, 1}, rng);
  std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW((void)net.forward(wrong), Error);
  std::vector<double> ok = {1.0, 2.0, 3.0};
  EXPECT_EQ(net.forward(ok).size(), 1u);
}

TEST(Mlp, PredictRequiresScalarOutput) {
  Rng rng(1);
  Mlp net({2, 3, 2}, rng);
  std::vector<double> x = {0.5, 0.5};
  EXPECT_THROW((void)net.predict(x), Error);
}

TEST(Mlp, ParameterRoundTrip) {
  Rng rng(2);
  Mlp net({4, 6, 3, 1}, rng);
  const auto flat = net.flatten_parameters();
  ASSERT_EQ(flat.size(), net.num_parameters());
  Mlp other({4, 6, 3, 1}, rng);  // different init
  other.set_parameters(flat);
  std::vector<double> x = {0.1, -0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(net.predict(x), other.predict(x));
  std::vector<double> wrong(flat.size() - 1);
  EXPECT_THROW(other.set_parameters(wrong), Error);
}

class MlpGradientCheck
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(MlpGradientCheck, AnalyticMatchesFiniteDifference) {
  Rng rng(42);
  Mlp net(GetParam(), rng);
  const std::size_t in = GetParam().front();
  const std::size_t out = GetParam().back();
  std::vector<double> x(in), y(out);
  for (double& v : x) {
    v = rng.normal();
  }
  for (double& v : y) {
    v = rng.normal();
  }
  const auto [loss, grad] = net.loss_and_gradient(x, y);
  EXPECT_GE(loss, 0.0);

  auto params = net.flatten_parameters();
  constexpr double kEps = 1e-6;
  // Spot-check a spread of parameters (checking all is O(P²) work).
  for (std::size_t k = 0; k < params.size(); k += 7) {
    const double saved = params[k];
    params[k] = saved + kEps;
    net.set_parameters(params);
    const double loss_plus = net.loss_and_gradient(x, y).first;
    params[k] = saved - kEps;
    net.set_parameters(params);
    const double loss_minus = net.loss_and_gradient(x, y).first;
    params[k] = saved;
    net.set_parameters(params);
    const double numeric = (loss_plus - loss_minus) / (2.0 * kEps);
    EXPECT_NEAR(grad[k], numeric, 1e-5 * (1.0 + std::abs(numeric)))
        << "param " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpGradientCheck,
    ::testing::Values(std::vector<std::size_t>{2, 1},
                      std::vector<std::size_t>{3, 4, 1},
                      std::vector<std::size_t>{5, 8, 4, 1},
                      std::vector<std::size_t>{4, 6, 2}));

TEST(Mlp, LearnsLinearFunction) {
  Rng rng(3);
  Mlp net({2, 16, 1}, rng);
  constexpr std::size_t kN = 128;
  linalg::Matrix x(kN, 2);
  std::vector<double> y(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = 2.0 * x(i, 0) - 3.0 * x(i, 1) + 0.5;
  }
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.batch_size = 16;
  cfg.adam.learning_rate = 5e-3;
  const double initial = net.evaluate_loss(x, y);
  net.fit(x, y, cfg, rng);
  const double final_loss = net.evaluate_loss(x, y);
  EXPECT_LT(final_loss, 0.05 * initial);
  EXPECT_LT(final_loss, 0.02);
}

TEST(Mlp, LearnsNonlinearFunction) {
  Rng rng(4);
  Mlp net({1, 24, 24, 1}, rng);
  constexpr std::size_t kN = 200;
  linalg::Matrix x(kN, 1);
  std::vector<double> y(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = std::abs(x(i, 0));  // ReLU-friendly kink
  }
  TrainConfig cfg;
  cfg.epochs = 300;
  cfg.batch_size = 25;
  cfg.adam.learning_rate = 5e-3;
  net.fit(x, y, cfg, rng);
  EXPECT_LT(net.evaluate_loss(x, y), 0.01);
}

TEST(Mlp, TrainEpochValidatesShapes) {
  Rng rng(5);
  Mlp net({2, 3, 1}, rng);
  linalg::Matrix x(4, 3);  // wrong feature width
  std::vector<double> y(4);
  TrainConfig cfg;
  EXPECT_THROW((void)net.train_epoch(x, y, cfg, rng), Error);
  linalg::Matrix x2(4, 2);
  std::vector<double> y2(3);  // wrong target count
  EXPECT_THROW((void)net.train_epoch(x2, y2, cfg, rng), Error);
}

TEST(Mlp, LossDecreasesAcrossEpochs) {
  Rng rng(6);
  Mlp net({3, 12, 1}, rng);
  constexpr std::size_t kN = 64;
  linalg::Matrix x(kN, 3);
  std::vector<double> y(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      x(i, j) = rng.normal();
    }
    y[i] = x(i, 0) * x(i, 1) + x(i, 2);
  }
  TrainConfig cfg;
  cfg.epochs = 1;
  const double before = net.evaluate_loss(x, y);
  for (int e = 0; e < 60; ++e) {
    (void)net.train_epoch(x, y, cfg, rng);
  }
  EXPECT_LT(net.evaluate_loss(x, y), before);
}

}  // namespace
}  // namespace hpb::nn
