// Tests for the live stencil objective: correctness of the tiled/unrolled
// kernel across configurations and sane timing behaviour.
#include "apps/stencil.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpb::apps {
namespace {

StencilWorkload tiny_workload() {
  StencilWorkload w;
  w.grid = 48;
  w.sweeps = 4;
  w.repeats = 1;
  return w;
}

TEST(Stencil, SpaceIsFiniteAndWellFormed) {
  StencilObjective obj(tiny_workload());
  EXPECT_TRUE(obj.space().is_finite());
  EXPECT_EQ(obj.space().num_params(), 4u);
  EXPECT_GT(obj.space().cross_product_size(), 50u);
}

TEST(Stencil, EvaluateReturnsPositiveTime) {
  StencilObjective obj(tiny_workload());
  Rng rng(1);
  const auto c = obj.space().sample_uniform(rng);
  EXPECT_GT(obj.evaluate(c), 0.0);
}

TEST(Stencil, AllConfigurationsComputeTheSameResult) {
  // Tiling, unrolling, and threading must not change the numerics: the
  // checksum after a fixed number of sweeps is identical for every
  // configuration.
  StencilObjective obj(tiny_workload());
  Rng rng(2);
  const auto reference_config = obj.space().sample_uniform(rng);
  (void)obj.evaluate(reference_config);
  const double reference = obj.last_checksum();
  EXPECT_GT(reference, 0.0);
  for (int trial = 0; trial < 12; ++trial) {
    const auto c = obj.space().sample_uniform(rng);
    (void)obj.evaluate(c);
    EXPECT_NEAR(obj.last_checksum(), reference, 1e-9 * reference)
        << obj.space().to_string(c);
  }
}

TEST(Stencil, ChecksumIsDeterministicAcrossRepeats) {
  StencilObjective obj(tiny_workload());
  Rng rng(3);
  const auto c = obj.space().sample_uniform(rng);
  (void)obj.evaluate(c);
  const double first = obj.last_checksum();
  (void)obj.evaluate(c);
  EXPECT_DOUBLE_EQ(obj.last_checksum(), first);
}

TEST(Stencil, RejectsDegenerateWorkloads) {
  StencilWorkload w;
  w.grid = 4;
  EXPECT_THROW(StencilObjective{w}, Error);
  w = {};
  w.sweeps = 0;
  EXPECT_THROW(StencilObjective{w}, Error);
  w = {};
  w.repeats = 0;
  EXPECT_THROW(StencilObjective{w}, Error);
}

}  // namespace
}  // namespace hpb::apps
