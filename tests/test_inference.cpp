// Tests for stats::inference: bootstrap confidence intervals, the
// Mann–Whitney U test, and the empirical CDF.
#include "stats/inference.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace hpb::stats {
namespace {

TEST(Bootstrap, CiContainsMeanAndIsDeterministic) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) {
    values.push_back(rng.normal(10.0, 2.0));
  }
  const auto ci = bootstrap_mean_ci(values, 0.95);
  double mean = 0.0;
  for (double v : values) {
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  EXPECT_LT(ci.lo, mean);
  EXPECT_GT(ci.hi, mean);
  EXPECT_NEAR(ci.level, 0.95, 1e-12);
  const auto again = bootstrap_mean_ci(values, 0.95);
  EXPECT_DOUBLE_EQ(ci.lo, again.lo);
  EXPECT_DOUBLE_EQ(ci.hi, again.hi);
}

TEST(Bootstrap, WiderLevelGivesWiderInterval) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) {
    values.push_back(rng.normal(0.0, 1.0));
  }
  const auto ci90 = bootstrap_mean_ci(values, 0.90);
  const auto ci99 = bootstrap_mean_ci(values, 0.99);
  EXPECT_LT(ci99.lo, ci90.lo);
  EXPECT_GT(ci99.hi, ci90.hi);
}

TEST(Bootstrap, IntervalShrinksWithSampleSize) {
  Rng rng(3);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) {
    small.push_back(rng.normal(5.0, 1.0));
  }
  for (int i = 0; i < 640; ++i) {
    large.push_back(rng.normal(5.0, 1.0));
  }
  const auto ci_small = bootstrap_mean_ci(small);
  const auto ci_large = bootstrap_mean_ci(large);
  EXPECT_LT(ci_large.hi - ci_large.lo, ci_small.hi - ci_small.lo);
}

TEST(Bootstrap, Validation) {
  std::vector<double> one = {1.0};
  EXPECT_THROW((void)bootstrap_mean_ci({}, 0.95), Error);
  EXPECT_THROW((void)bootstrap_mean_ci(one, 1.5), Error);
  EXPECT_THROW((void)bootstrap_mean_ci(one, 0.95, 10), Error);
}

TEST(MannWhitney, ClearSeparationIsSignificant) {
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(1.0 + 0.01 * i);   // much smaller
    b.push_back(10.0 + 0.01 * i);  // much larger
  }
  const auto result = mann_whitney_u(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_NEAR(result.effect_size, 0.0, 1e-12);  // every a < every b
}

TEST(MannWhitney, IdenticalDistributionsNotSignificant) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  const auto result = mann_whitney_u(a, b);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_NEAR(result.effect_size, 0.5, 0.2);
}

TEST(MannWhitney, SymmetricInPValue) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {3, 4, 5, 6, 7};
  const auto ab = mann_whitney_u(a, b);
  const auto ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.effect_size + ba.effect_size, 1.0, 1e-12);
}

TEST(MannWhitney, HandlesTiesWithMidranks) {
  std::vector<double> a = {1, 1, 2, 2};
  std::vector<double> b = {1, 2, 2, 3};
  const auto result = mann_whitney_u(a, b);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
  EXPECT_LT(result.effect_size, 0.5);  // a tends smaller
}

TEST(MannWhitney, Validation) {
  std::vector<double> one = {1.0};
  std::vector<double> two = {1.0, 2.0};
  std::vector<double> constant = {3.0, 3.0};
  EXPECT_THROW((void)mann_whitney_u(one, two), Error);
  EXPECT_THROW((void)mann_whitney_u(constant, constant), Error);
}

TEST(Ecdf, StepsThroughSortedValues) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ecdf(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(v, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(v, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(v, 100.0), 1.0);
  EXPECT_THROW((void)ecdf({}, 1.0), Error);
}

}  // namespace
}  // namespace hpb::stats
