// Daemon survivability coverage:
//   - cold-start recovery: the startup scan adopts every resumable journal
//     (continuation is bitwise-identical to the uncrashed run), records
//     finalized ones, quarantines unreadable ones to *.hpbj.corrupt, and
//     create-vs-adopt collisions tell the client how to resume;
//   - disk-fault tolerance: an injected ENOSPC on one session's journal
//     append degrades exactly that session (read-only status/checkpoint,
//     structured error on mutation, never evicted) while other sessions
//     keep tuning, and the degraded session's durable prefix resumes
//     cleanly after a restart;
//   - fs fault-injection seam: typed IoError with the planned errno, skip
//     budget, matched-op counter;
//   - idempotent wire retries: a retried rid returns the recorded response
//     byte-identically — no new tokens minted, no observation
//     double-applied — and error responses are never cached;
//   - overload shedding: the per-session pending cap and the server
//     connection cap both answer with the structured `overloaded` code;
//   - graceful drain: drained servers answer everything already sent, then
//     close; checkpoint_all covers every resident session;
//   - the `health` verb reports resident/degraded/adopted/quarantined.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "core/session.hpp"
#include "core/session_manager.hpp"
#include "eval/methods.hpp"
#include "obs/json_util.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using core::Observation;
using core::SessionManager;
using core::SessionManagerConfig;
using core::SessionSpec;
using core::SessionStatus;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "recovery_" + name;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::remove_all(dir);
  return dir;
}

core::SessionFactory test_factory() {
  auto dataset = std::make_shared<tabular::TabularObjective>(
      testutil::separable_dataset());
  return [dataset](const SessionSpec& spec) {
    core::SessionBackend backend;
    backend.tuner = eval::make_named_tuner(spec.method, *dataset, spec.seed);
    backend.space = dataset->space_ptr();
    return backend;
  };
}

SessionSpec spec_named(const std::string& name, std::size_t batch = 2,
                       std::size_t budget = 40) {
  SessionSpec spec;
  spec.name = name;
  spec.method = "random";
  spec.dataset = "separable";
  spec.seed = 7;
  spec.batch_size = batch;
  spec.stop.max_evaluations = budget;
  return spec;
}

/// Run one full suggest→observe round and return the suggested configs.
std::vector<space::Configuration> run_round(SessionManager& manager,
                                            const std::string& name) {
  std::vector<space::Configuration> configs = manager.suggest(name, 0);
  std::vector<Observation> observations;
  observations.reserve(configs.size());
  for (const space::Configuration& c : configs) {
    Observation o;
    o.config = c;
    o.y = testutil::separable_value(c);
    observations.push_back(std::move(o));
  }
  manager.observe(name, std::move(observations));
  return configs;
}

// --------------------------------------------------- cold-start recovery

TEST(Recovery, StartupScanAdoptsResumableAndRecordsFinished) {
  const std::string dir = fresh_dir("adopt");
  {
    SessionManager manager(test_factory(), {.journal_dir = dir});
    manager.create(spec_named("alpha"));
    manager.create(spec_named("beta"));
    run_round(manager, "alpha");
    manager.create(spec_named("done"));
    manager.close("done");
    // No close for alpha/beta: the manager dies like a crashed daemon.
  }
  SessionManager restarted(test_factory(), {.journal_dir = dir});
  const core::RecoveryReport& report = restarted.recovery();
  ASSERT_EQ(report.adopted.size(), 2u);
  EXPECT_EQ(report.adopted[0], "alpha");  // sorted for determinism
  EXPECT_EQ(report.adopted[1], "beta");
  ASSERT_EQ(report.finished.size(), 1u);
  EXPECT_EQ(report.finished[0], "done");
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(restarted.health().adopted, 2u);
  // Adoption is lazy: nothing resident until a verb touches a name.
  EXPECT_EQ(restarted.resident_count(), 0u);
  EXPECT_EQ(restarted.status("alpha").evaluations, 2u);
  EXPECT_EQ(restarted.resident_count(), 1u);
}

TEST(Recovery, AdoptedSessionContinuesBitwise) {
  const std::string dir = fresh_dir("bitwise");
  std::vector<space::Configuration> expected;
  {
    SessionManager manager(test_factory(), {.journal_dir = dir});
    manager.create(spec_named("ref"));
    run_round(manager, "ref");
    run_round(manager, "ref");
    // Open a round and crash with it unobserved: the journal holds a
    // `round` record with no observations, exactly the torn state a
    // SIGKILL mid-round leaves.
    expected = manager.suggest("ref", 0);
  }
  SessionManager restarted(test_factory(), {.journal_dir = dir});
  ASSERT_EQ(restarted.recovery().adopted.size(), 1u);
  // The incomplete round is dropped on replay and re-minted identically.
  const std::vector<space::Configuration> resumed =
      restarted.suggest("ref", 0);
  ASSERT_EQ(resumed.size(), expected.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i].values(), expected[i].values())
        << "resumed suggest diverges at config " << i;
  }
}

TEST(Recovery, CorruptJournalQuarantinedAtStartup) {
  const std::string dir = fresh_dir("quarantine");
  {
    SessionManager manager(test_factory(), {.journal_dir = dir});
    manager.create(spec_named("good"));
  }
  {
    std::ofstream bad(dir + "/bad.hpbj", std::ios::binary);
    bad << "this is not a journal\n";
  }
  SessionManager restarted(test_factory(), {.journal_dir = dir});
  const core::RecoveryReport& report = restarted.recovery();
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], "bad");
  ASSERT_EQ(report.adopted.size(), 1u);
  EXPECT_EQ(report.adopted[0], "good");
  EXPECT_FALSE(std::filesystem::exists(dir + "/bad.hpbj"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/bad.hpbj.corrupt"));
  EXPECT_EQ(restarted.health().quarantined, 1u);
  // The quarantined name is free again.
  restarted.create(spec_named("bad"));
  EXPECT_EQ(restarted.status("bad").evaluations, 0u);
}

TEST(Recovery, CorruptJournalQuarantinedAtResumeTime) {
  const std::string dir = fresh_dir("quarantine_resume");
  SessionManager manager(test_factory(),
                         {.journal_dir = dir, .recover_on_start = false});
  {
    std::ofstream bad(dir + "/torn.hpbj", std::ios::binary);
    bad << "garbage header\n";
  }
  try {
    (void)manager.status("torn");
    FAIL() << "expected the corrupt journal to fail the verb";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/torn.hpbj.corrupt"));
  // The session is gone now — the same verb reports unknown, not corrupt.
  try {
    (void)manager.status("torn");
    FAIL() << "expected unknown session after quarantine";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown session"),
              std::string::npos)
        << e.what();
  }
}

TEST(Recovery, CreateVsAdoptCollisionExplainsResume) {
  const std::string dir = fresh_dir("collision");
  {
    SessionManager manager(test_factory(), {.journal_dir = dir});
    manager.create(spec_named("keep"));
    run_round(manager, "keep");
  }
  SessionManager restarted(test_factory(), {.journal_dir = dir});
  try {
    restarted.create(spec_named("keep"));
    FAIL() << "create over a surviving journal must not truncate it";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cold"), std::string::npos)
        << e.what();
  }
  // Touching the name adopts it with its durable history intact.
  EXPECT_EQ(restarted.status("keep").evaluations, 2u);
}

// --------------------------------------------------- disk-fault tolerance

TEST(FaultInjection, PlannedFaultThrowsTypedIoError) {
  fs::clear_fault_plan();
  const std::string dir = fresh_dir("fsio");
  fs::ensure_dir(dir);
  const std::string path = dir + "/victim.txt";
  fs::set_fault_plan({.path_substring = "victim", .error_number = ENOSPC});
  try {
    fs::write_file_atomic(path, "doomed");
    FAIL() << "expected the armed plan to inject ENOSPC";
  } catch (const IoError& e) {
    EXPECT_EQ(e.error_number(), ENOSPC);
  }
  EXPECT_GE(fs::fault_ops_matched(), 1u);
  // Non-matching paths are untouched by the armed plan.
  fs::write_file_atomic(dir + "/other.txt", "fine");
  fs::clear_fault_plan();
  fs::write_file_atomic(path, "fine now");
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(FaultInjection, SkipBudgetDelaysTheFault) {
  fs::clear_fault_plan();
  const std::string dir = fresh_dir("fsio_skip");
  fs::ensure_dir(dir);
  // write_file_atomic performs two ops matching "skipme" (the tmp-file
  // write and its fsync; the directory fsync matches the parent path, not
  // the file). skip=3 lets the first call through whole and fails the
  // second call on its fsync.
  fs::set_fault_plan(
      {.path_substring = "skipme", .error_number = EIO, .skip = 3});
  fs::write_file_atomic(dir + "/skipme.txt", "first");  // matching ops 1, 2
  EXPECT_THROW(fs::write_file_atomic(dir + "/skipme.txt", "second"), IoError);
  fs::clear_fault_plan();
}

TEST(FaultInjection, JournalFaultDegradesOnlyThatSession) {
  fs::clear_fault_plan();
  const std::string dir = fresh_dir("degrade");
  SessionManager manager(test_factory(), {.journal_dir = dir});
  manager.create(spec_named("sick"));
  manager.create(spec_named("healthy"));
  run_round(manager, "sick");

  fs::set_fault_plan({.path_substring = "sick.hpbj", .error_number = ENOSPC});
  try {
    (void)manager.suggest("sick", 0);
    FAIL() << "journal append should have failed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("degraded"), std::string::npos)
        << e.what();
  }
  fs::clear_fault_plan();

  // The sick session is read-only now: status serves and says degraded,
  // mutation keeps failing with the structured story even though the disk
  // recovered (a restart is the documented way back).
  const SessionStatus status = manager.status("sick");
  EXPECT_TRUE(status.degraded);
  EXPECT_FALSE(status.degraded_reason.empty());
  EXPECT_THROW((void)manager.suggest("sick", 0), Error);
  EXPECT_EQ(manager.degraded_count(), 1u);
  EXPECT_EQ(manager.health().degraded, 1u);

  // Degraded sessions are pinned resident — eviction would mask the fault
  // behind a silent journal replay.
  EXPECT_FALSE(manager.evict("sick"));

  // Every other session keeps tuning through the same manager.
  run_round(manager, "healthy");
  EXPECT_EQ(manager.status("healthy").evaluations, 2u);
  EXPECT_FALSE(manager.status("healthy").degraded);

  // The durable prefix (everything before the fault) survives a restart.
  SessionManager restarted(test_factory(), {.journal_dir = dir});
  EXPECT_EQ(restarted.status("sick").evaluations, 2u);
  EXPECT_FALSE(restarted.status("sick").degraded);
  run_round(restarted, "sick");
  EXPECT_EQ(restarted.status("sick").evaluations, 4u);
}

// --------------------------------------------------- idempotent retries

core::SessionFactory wire_factory() { return test_factory(); }

std::string create_line(const std::string& name, std::size_t batch,
                        bool async) {
  std::string line = "{\"verb\":\"create\",\"session\":\"" + name +
                     "\",\"dataset\":\"separable\",\"method\":\"random\","
                     "\"batch_size\":" +
                     std::to_string(batch) + ",\"max_evaluations\":40";
  if (async) {
    line += ",\"mode\":\"async\"";
  }
  return line + "}";
}

service::JsonValue ok_json(const std::string& response) {
  service::JsonValue v = service::parse_json(response);
  const service::JsonValue* ok = v.find("ok");
  EXPECT_TRUE(ok != nullptr && ok->is_bool() && ok->as_bool()) << response;
  return v;
}

std::string code_of(const std::string& response) {
  const service::JsonValue v = service::parse_json(response);
  const service::JsonValue* error = v.find("error");
  if (error == nullptr) {
    return {};
  }
  return error->find("code")->as_string();
}

TEST(RidReplay, RetriedSuggestIsByteIdenticalAndMintsNoNewTokens) {
  const std::string dir = fresh_dir("rid_suggest");
  SessionManager manager(wire_factory(), {.journal_dir = dir});
  service::WireService wire(manager);
  ok_json(wire.handle_line(create_line("s", 2, /*async=*/true)));

  const std::string request =
      "{\"verb\":\"suggest\",\"session\":\"s\",\"rid\":\"req-1\"}";
  const std::string first = wire.handle_line(request);
  ok_json(first);
  const std::string retried = wire.handle_line(request);
  EXPECT_EQ(retried, first);  // byte-identical replay

  // Exactly one batch of tokens exists: the retry minted nothing.
  const service::JsonValue status =
      ok_json(wire.handle_line("{\"verb\":\"status\",\"session\":\"s\"}"));
  EXPECT_EQ(status.find("status")->find("pending")->as_number(), 2.0);
}

TEST(RidReplay, RetriedObserveDoesNotDoubleApply) {
  const std::string dir = fresh_dir("rid_observe");
  SessionManager manager(wire_factory(), {.journal_dir = dir});
  service::WireService wire(manager);
  ok_json(wire.handle_line(create_line("s", 1, /*async=*/false)));
  const service::JsonValue suggest =
      ok_json(wire.handle_line("{\"verb\":\"suggest\",\"session\":\"s\"}"));
  std::string config = "[";
  const auto& values = suggest.find("configs")->as_array()[0].as_array();
  for (std::size_t i = 0; i < values.size(); ++i) {
    config += (i > 0 ? "," : "") + obs::json_double(values[i].as_number());
  }
  config += ']';
  const std::string observe =
      "{\"verb\":\"observe\",\"session\":\"s\",\"rid\":\"obs-1\","
      "\"results\":[{\"config\":" + config + ",\"y\":3.5,\"status\":\"ok\"}]}";
  const std::string first = wire.handle_line(observe);
  ok_json(first);
  const std::string retried = wire.handle_line(observe);
  EXPECT_EQ(retried, first);
  const service::JsonValue status =
      ok_json(wire.handle_line("{\"verb\":\"status\",\"session\":\"s\"}"));
  EXPECT_EQ(status.find("status")->find("evaluations")->as_number(), 1.0);
}

TEST(RidReplay, RetriedCancelReleasesTokensOnce) {
  const std::string dir = fresh_dir("rid_cancel");
  SessionManager manager(wire_factory(), {.journal_dir = dir});
  service::WireService wire(manager);
  ok_json(wire.handle_line(create_line("s", 2, /*async=*/true)));
  const service::JsonValue suggest = ok_json(
      wire.handle_line("{\"verb\":\"suggest\",\"session\":\"s\"}"));
  const std::uint64_t token = static_cast<std::uint64_t>(
      suggest.find("tokens")->as_array()[0].as_number());
  const std::string cancel =
      "{\"verb\":\"cancel\",\"session\":\"s\",\"rid\":\"can-1\","
      "\"tokens\":[" + std::to_string(token) + "]}";
  const std::string first = wire.handle_line(cancel);
  ok_json(first);
  EXPECT_EQ(wire.handle_line(cancel), first);
  const service::JsonValue status =
      ok_json(wire.handle_line("{\"verb\":\"status\",\"session\":\"s\"}"));
  EXPECT_EQ(status.find("status")->find("pending")->as_number(), 1.0);
}

TEST(RidReplay, ErrorResponsesAreNotCached) {
  const std::string dir = fresh_dir("rid_errors");
  SessionManager manager(wire_factory(), {.journal_dir = dir});
  service::WireService wire(manager);
  ok_json(wire.handle_line(create_line("s", 1, /*async=*/false)));
  // Observe with no round in flight: session_error, rightly.
  const std::string premature =
      "{\"verb\":\"observe\",\"session\":\"s\",\"rid\":\"retry-me\","
      "\"results\":[{\"config\":[0,0,0],\"y\":1.0}]}";
  EXPECT_EQ(code_of(wire.handle_line(premature)), "session_error");
  // After the round opens, the same rid must re-execute, not replay the
  // recorded failure.
  const service::JsonValue suggest =
      ok_json(wire.handle_line("{\"verb\":\"suggest\",\"session\":\"s\"}"));
  std::string config = "[";
  const auto& values = suggest.find("configs")->as_array()[0].as_array();
  for (std::size_t i = 0; i < values.size(); ++i) {
    config += (i > 0 ? "," : "") + obs::json_double(values[i].as_number());
  }
  config += ']';
  ok_json(wire.handle_line(
      "{\"verb\":\"observe\",\"session\":\"s\",\"rid\":\"retry-me\","
      "\"results\":[{\"config\":" + config + ",\"y\":2.0,\"status\":\"ok\"}]}"));
}

TEST(RidReplay, RidSchemaIsStrict) {
  const std::string dir = fresh_dir("rid_schema");
  SessionManager manager(wire_factory(), {.journal_dir = dir});
  service::WireService wire(manager);
  ok_json(wire.handle_line(create_line("s", 1, /*async=*/false)));
  EXPECT_EQ(code_of(wire.handle_line(
                "{\"verb\":\"suggest\",\"session\":\"s\",\"rid\":7}")),
            "bad_request");
  EXPECT_EQ(code_of(wire.handle_line(
                "{\"verb\":\"suggest\",\"session\":\"s\",\"rid\":\"" +
                std::string(65, 'x') + "\"}")),
            "bad_request");
  EXPECT_EQ(code_of(wire.handle_line(
                "{\"verb\":\"status\",\"session\":\"s\",\"rid\":\"r\"}")),
            "bad_request");  // rid is for mutating verbs only
}

// --------------------------------------------------- overload shedding

TEST(Overload, AsyncPendingCapShedsSuggest) {
  const std::string dir = fresh_dir("pending_cap");
  SessionManager manager(test_factory(),
                         {.journal_dir = dir, .max_pending_per_session = 3});
  SessionSpec spec = spec_named("s");
  spec.mode = core::SessionMode::kAsync;
  manager.create(spec);
  EXPECT_EQ(manager.suggest_async("s", 3).size(), 3u);
  EXPECT_THROW((void)manager.suggest_async("s", 1), OverloadError);
  // The shed is stateless: observing one token frees one slot.
  const SessionStatus status = manager.status("s");
  core::AsyncResult result;
  result.token = status.pending_tokens[0];
  result.y = 2.0;
  manager.observe_async("s", std::span<const core::AsyncResult>(&result, 1));
  EXPECT_EQ(manager.suggest_async("s", 1).size(), 1u);
}

TEST(Overload, PendingCapSurfacesAsOverloadedOnTheWire) {
  const std::string dir = fresh_dir("pending_wire");
  SessionManager manager(test_factory(),
                         {.journal_dir = dir, .max_pending_per_session = 2});
  service::WireService wire(manager);
  ok_json(wire.handle_line(create_line("s", 2, /*async=*/true)));
  ok_json(wire.handle_line("{\"verb\":\"suggest\",\"session\":\"s\"}"));
  EXPECT_EQ(code_of(wire.handle_line(
                "{\"verb\":\"suggest\",\"session\":\"s\"}")),
            "overloaded");
}

/// Minimal blocking unix-socket line client for server-level tests.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return;
    }
    timeval tv{.tv_sec = 10, .tv_usec = 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  bool send_line(const std::string& line) {
    std::string out = line + "\n";
    std::string_view data = out;
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Read one response line; "" on EOF/timeout.
  std::string read_line() {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        return {};
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the server closed the connection (EOF) within the timeout.
  bool wait_eof() {
    char chunk[64];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return n == 0;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(Overload, ConnectionCapShedsWithStructuredError) {
  const std::string socket_path = temp_path("cap.sock");
  service::LineServer server(
      [](std::string_view) { return std::string("{\"ok\":true}"); },
      {.unix_path = socket_path, .max_connections = 1});
  server.start();

  auto first = std::make_unique<TestClient>(socket_path);
  ASSERT_TRUE(first->connected());
  ASSERT_TRUE(first->send_line("{}"));
  EXPECT_EQ(first->read_line(), "{\"ok\":true}");

  TestClient shed(socket_path);
  ASSERT_TRUE(shed.connected());
  const std::string response = shed.read_line();
  EXPECT_EQ(code_of(response), "overloaded") << response;
  EXPECT_TRUE(shed.wait_eof());
  EXPECT_EQ(server.connections_shed(), 1u);

  // Capacity frees once the first client leaves (within a couple of
  // accept-loop ticks); a retry then succeeds.
  first.reset();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool recovered = false;
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    TestClient retry(socket_path);
    if (retry.connected() && retry.send_line("{}") &&
        retry.read_line() == "{\"ok\":true}") {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered);
  server.stop();
}

// --------------------------------------------------- graceful drain

TEST(Drain, AnswersEverythingSentThenCloses) {
  const std::string socket_path = temp_path("drain.sock");
  service::LineServer server(
      [](std::string_view) { return std::string("{\"ok\":true}"); },
      {.unix_path = socket_path});
  server.start();
  TestClient client(socket_path);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line("{}"));
  EXPECT_EQ(client.read_line(), "{\"ok\":true}");
  // Pipeline a few requests, then drain: every one must still be answered
  // before the server hangs up.
  ASSERT_TRUE(client.send_line("{}"));
  ASSERT_TRUE(client.send_line("{}"));
  server.drain();
  EXPECT_EQ(client.read_line(), "{\"ok\":true}");
  EXPECT_EQ(client.read_line(), "{\"ok\":true}");
  EXPECT_TRUE(client.wait_eof());
  server.stop();
}

TEST(Drain, CheckpointAllCoversEveryResidentSession) {
  const std::string dir = fresh_dir("checkpoint");
  SessionManager manager(test_factory(), {.journal_dir = dir});
  manager.create(spec_named("a"));
  manager.create(spec_named("b"));
  manager.create(spec_named("c"));
  run_round(manager, "a");
  EXPECT_EQ(manager.checkpoint_all(), 3u);
}

// --------------------------------------------------- health verb

TEST(Health, VerbReportsSurvivabilityCounters) {
  const std::string dir = fresh_dir("health");
  {
    SessionManager seeded(test_factory(), {.journal_dir = dir});
    seeded.create(spec_named("old"));
    run_round(seeded, "old");
  }
  SessionManager manager(test_factory(), {.journal_dir = dir});
  service::WireService wire(manager);
  const service::JsonValue before =
      ok_json(wire.handle_line("{\"verb\":\"health\"}"));
  const service::JsonValue* h = before.find("health");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("resident")->as_number(), 0.0);
  EXPECT_EQ(h->find("adopted")->as_number(), 1.0);
  EXPECT_EQ(h->find("degraded")->as_number(), 0.0);
  EXPECT_EQ(h->find("quarantined")->as_number(), 0.0);

  ok_json(wire.handle_line(create_line("fresh", 1, /*async=*/false)));
  ok_json(wire.handle_line("{\"verb\":\"status\",\"session\":\"old\"}"));
  const service::JsonValue after =
      ok_json(wire.handle_line("{\"verb\":\"health\"}"));
  const service::JsonValue* h2 = after.find("health");
  EXPECT_EQ(h2->find("resident")->as_number(), 2.0);
  EXPECT_EQ(h2->find("created")->as_number(), 1.0);
  EXPECT_EQ(h2->find("resumed")->as_number(), 1.0);
  // Strict schema: health takes no other keys.
  EXPECT_EQ(code_of(wire.handle_line(
                "{\"verb\":\"health\",\"session\":\"x\"}")),
            "bad_request");
}

TEST(Health, StatusReportsDegradedOnTheWire) {
  fs::clear_fault_plan();
  const std::string dir = fresh_dir("health_degraded");
  SessionManager manager(test_factory(), {.journal_dir = dir});
  service::WireService wire(manager);
  ok_json(wire.handle_line(create_line("s", 1, /*async=*/false)));
  fs::set_fault_plan({.path_substring = "s.hpbj", .error_number = ENOSPC});
  EXPECT_EQ(code_of(wire.handle_line(
                "{\"verb\":\"suggest\",\"session\":\"s\"}")),
            "session_error");
  fs::clear_fault_plan();
  const service::JsonValue status =
      ok_json(wire.handle_line("{\"verb\":\"status\",\"session\":\"s\"}"));
  const service::JsonValue* degraded =
      status.find("status")->find("degraded");
  ASSERT_NE(degraded, nullptr);
  EXPECT_TRUE(degraded->as_bool());
  const service::JsonValue health =
      ok_json(wire.handle_line("{\"verb\":\"health\"}"));
  EXPECT_EQ(health.find("health")->find("degraded")->as_number(), 1.0);
}

}  // namespace
}  // namespace hpb
