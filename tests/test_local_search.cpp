// Tests for the local-search baselines: simulated annealing and hill
// climbing with restarts.
#include "baselines/local_search.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baselines/random_search.hpp"
#include "core/loop.hpp"
#include "test_util.hpp"

namespace hpb::baselines {
namespace {

using space::Configuration;

TEST(SimulatedAnnealing, NoDuplicateEvaluations) {
  auto ds = testutil::separable_dataset();
  SimulatedAnnealing tuner(ds.space_ptr(), {}, 1);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 50; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second) << t;
    tuner.observe(c, ds.value_of(c));
  }
}

TEST(SimulatedAnnealing, TemperatureCoolsMonotonically) {
  auto ds = testutil::separable_dataset();
  AnnealingConfig config;
  config.initial_samples = 5;
  SimulatedAnnealing tuner(ds.space_ptr(), config, 2);
  double prev = 0.0;
  for (int t = 0; t < 30; ++t) {
    const Configuration c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
    if (t >= 5) {
      EXPECT_LE(tuner.temperature(), prev);
    }
    prev = tuner.temperature();
  }
  EXPECT_GT(prev, 0.0);
}

TEST(SimulatedAnnealing, ConvergesOnSeparableObjective) {
  auto ds = testutil::separable_dataset();
  SimulatedAnnealing tuner(ds.space_ptr(), {}, 3);
  const auto result = core::run_tuning(tuner, ds, 40);
  EXPECT_LE(result.best_value, 2.0);
}

TEST(SimulatedAnnealing, SuggestTwiceWithoutObserveThrows) {
  auto ds = testutil::separable_dataset();
  SimulatedAnnealing tuner(ds.space_ptr(), {}, 4);
  (void)tuner.suggest();
  EXPECT_THROW((void)tuner.suggest(), Error);
}

TEST(SimulatedAnnealing, Validation) {
  auto mixed = testutil::mixed_space();
  EXPECT_THROW(SimulatedAnnealing(mixed, {}, 1), Error);
  auto ds = testutil::separable_dataset();
  AnnealingConfig bad;
  bad.cooling_rate = 1.0;
  EXPECT_THROW(SimulatedAnnealing(ds.space_ptr(), bad, 1), Error);
}

TEST(HillClimbing, NoDuplicateEvaluations) {
  auto ds = testutil::separable_dataset();
  HillClimbing tuner(ds.space_ptr(), {}, 5);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 60; ++t) {  // the whole space
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second) << t;
    tuner.observe(c, ds.value_of(c));
  }
}

TEST(HillClimbing, ClimbsToTheUniqueOptimum) {
  // The separable objective has no bad local optima under Hamming-1 moves
  // (it is coordinate-wise convex), so greedy climbing must reach 1.0.
  auto ds = testutil::separable_dataset();
  HillClimbing tuner(ds.space_ptr(), {}, 6);
  const auto result = core::run_tuning(tuner, ds, 45);
  EXPECT_DOUBLE_EQ(result.best_value, 1.0);
}

TEST(HillClimbing, RestartsWhenNeighborhoodExhausted) {
  auto ds = testutil::separable_dataset();
  HillClimbing tuner(ds.space_ptr(), {}, 7);
  (void)core::run_tuning(tuner, ds, 58);
  EXPECT_GE(tuner.restarts(), 1u);
}

TEST(HillClimbing, BeatsRandomOnSmoothObjective) {
  auto ds = testutil::separable_dataset();
  double hc_total = 0.0, rnd_total = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    HillClimbing hc(ds.space_ptr(), {}, 100 + rep);
    hc_total += core::run_tuning(hc, ds, 20).best_value;
    RandomSearch rnd(ds.space_ptr(), 200 + rep);
    rnd_total += core::run_tuning(rnd, ds, 20).best_value;
  }
  EXPECT_LE(hc_total, rnd_total);
}

TEST(HillClimbing, Validation) {
  auto mixed = testutil::mixed_space();
  EXPECT_THROW(HillClimbing(mixed, {}, 1), Error);
}

}  // namespace
}  // namespace hpb::baselines
