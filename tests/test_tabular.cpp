// Tests for TabularObjective: construction, lookup, dataset statistics,
// and CSV export.
#include "tabular/tabular_objective.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "test_util.hpp"

namespace hpb::tabular {
namespace {

TEST(Tabular, FromFunctionEnumeratesWholeSpace) {
  auto ds = testutil::separable_dataset();
  EXPECT_EQ(ds.size(), 60u);
  EXPECT_EQ(ds.name(), "separable");
}

TEST(Tabular, LookupMatchesFunction) {
  auto ds = testutil::separable_dataset();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_DOUBLE_EQ(ds.value(i), testutil::separable_value(ds.config(i)));
    EXPECT_EQ(ds.index_of(ds.config(i)), i);
  }
}

TEST(Tabular, EvaluateIsPureLookup) {
  auto ds = testutil::separable_dataset();
  space::Configuration c(std::vector<double>{1, 2, 3});
  EXPECT_DOUBLE_EQ(ds.evaluate(c), 1.0);
}

TEST(Tabular, BestTracksUniqueOptimum) {
  auto ds = testutil::separable_dataset();
  EXPECT_DOUBLE_EQ(ds.best_value(), 1.0);
  const auto& best = ds.best_config();
  EXPECT_EQ(best.level(0), 1u);
  EXPECT_EQ(best.level(1), 2u);
  EXPECT_EQ(best.level(2), 3u);
  EXPECT_GT(ds.worst_value(), ds.best_value());
}

TEST(Tabular, FindReturnsNulloptForUnknownConfig) {
  auto sp = testutil::small_discrete_space();
  // Dataset over a constrained subset: only configs with A == 0.
  auto constrained = std::make_shared<space::ParameterSpace>();
  constrained->add(space::Parameter::categorical("A", {"a0", "a1"}));
  constrained->add_constraint(
      [](const space::ParameterSpace&, const space::Configuration& c) {
        return c.level(0) == 0;
      },
      "");
  auto ds = TabularObjective::from_function(
      "tiny", constrained, [](const space::Configuration&) { return 1.0; });
  EXPECT_EQ(ds.size(), 1u);
  space::Configuration excluded(std::vector<double>{1});
  EXPECT_FALSE(ds.find(excluded).has_value());
  EXPECT_THROW((void)ds.index_of(excluded), Error);
  EXPECT_THROW((void)ds.value_of(excluded), Error);
}

TEST(Tabular, PercentileAndCountAgree) {
  auto ds = testutil::separable_dataset();
  const double y5 = ds.percentile_value(5.0);
  // By definition roughly 5% of configurations lie at or below y5.
  const std::size_t count = ds.count_leq(y5);
  EXPECT_GE(count, 2u);
  EXPECT_LE(count, 6u);
  EXPECT_THROW((void)ds.percentile_value(0.0), Error);
  EXPECT_THROW((void)ds.percentile_value(101.0), Error);
}

TEST(Tabular, CountLeqBoundaries) {
  auto ds = testutil::separable_dataset();
  EXPECT_EQ(ds.count_leq(ds.worst_value()), ds.size());
  EXPECT_EQ(ds.count_leq(ds.best_value() - 1e-9), 0u);
  EXPECT_GE(ds.count_leq(ds.best_value()), 1u);
}

TEST(Tabular, RejectsMalformedConstruction) {
  auto sp = testutil::small_discrete_space();
  auto configs = sp->enumerate();
  std::vector<double> wrong_size(configs.size() - 1, 1.0);
  EXPECT_THROW(TabularObjective("x", sp, configs, wrong_size), Error);

  // Duplicate configuration.
  std::vector<space::Configuration> dup = {configs[0], configs[0]};
  std::vector<double> vals = {1.0, 2.0};
  EXPECT_THROW(TabularObjective("x", sp, dup, vals), Error);

  EXPECT_THROW(TabularObjective("x", nullptr, configs,
                                std::vector<double>(configs.size(), 1.0)),
               Error);
}

TEST(Tabular, CsvRoundTripHasHeaderAndAllRows) {
  auto ds = testutil::separable_dataset();
  const std::string path = ::testing::TempDir() + "/hpb_tabular_test.csv";
  ds.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "A,B,C,objective");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, ds.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpb::tabular
