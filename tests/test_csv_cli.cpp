// Tests for the CSV dataset loader and the command-line flag parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "eval/methods.hpp"
#include "tabular/csv.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

// --------------------------------------------------------------------- CSV
tabular::TabularObjective from_string(const std::string& text) {
  std::istringstream in(text);
  return tabular::load_csv_stream(in, "test");
}

TEST(CsvLoader, ParsesMixedColumnTypes) {
  const auto ds = from_string(
      "solver,threads,runtime\n"
      "amg,1,3.5\n"
      "amg,2,2.5\n"
      "pcg,1,4.0\n"
      "pcg,2,3.0\n");
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.space().num_params(), 2u);
  const auto& solver = ds.space().param(0);
  EXPECT_EQ(solver.name(), "solver");
  EXPECT_EQ(solver.num_levels(), 2u);
  EXPECT_EQ(solver.level_label(0), "amg");
  const auto& threads = ds.space().param(1);
  EXPECT_EQ(threads.num_levels(), 2u);
  EXPECT_DOUBLE_EQ(threads.level_value(1), 2.0);
  EXPECT_DOUBLE_EQ(ds.best_value(), 2.5);
}

TEST(CsvLoader, NumericLevelsAreSorted) {
  const auto ds = from_string(
      "n,y\n"
      "16,1\n"
      "2,2\n"
      "8,3\n"
      "4,4\n");
  const auto& n = ds.space().param(0);
  ASSERT_EQ(n.num_levels(), 4u);
  EXPECT_DOUBLE_EQ(n.level_value(0), 2.0);
  EXPECT_DOUBLE_EQ(n.level_value(3), 16.0);
  // Row "16,1" maps to the highest level with objective 1.
  space::Configuration c(std::vector<double>{3});
  EXPECT_DOUBLE_EQ(ds.value_of(c), 1.0);
}

TEST(CsvLoader, SkipsBlankLinesAndTrimsWhitespace) {
  const auto ds = from_string(
      "a, b ,obj\n"
      " x , 1 , 5.0 \n"
      "\n"
      " y , 2 , 6.0 \n");
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.space().param(1).name(), "b");
}

TEST(CsvLoader, RejectsMalformedInput) {
  EXPECT_THROW((void)from_string(""), Error);               // no header
  EXPECT_THROW((void)from_string("only_objective\n1\n"), Error);
  EXPECT_THROW((void)from_string("a,obj\n"), Error);        // no rows
  EXPECT_THROW((void)from_string("a,obj\nx,1\nx,2\n"), Error);  // duplicate
  EXPECT_THROW((void)from_string("a,obj\nx\n"), Error);     // field count
  EXPECT_THROW((void)from_string("a,obj\nx,fast\n"), Error);  // bad objective
  EXPECT_THROW((void)tabular::load_csv("/nonexistent/file.csv"), Error);
}

TEST(CsvLoader, RoundTripsThroughWriteCsv) {
  auto original = testutil::separable_dataset();
  const std::string path = ::testing::TempDir() + "/hpb_roundtrip.csv";
  original.write_csv(path);
  const auto loaded = tabular::load_csv(path);
  EXPECT_EQ(loaded.name(), "hpb_roundtrip");
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.best_value(), original.best_value());
  // Objective values survive the round trip (config order may differ).
  EXPECT_DOUBLE_EQ(loaded.worst_value(), original.worst_value());
  std::remove(path.c_str());
}

TEST(CsvLoader, LoadedDatasetIsTunable) {
  const auto text =
      "a,b,y\n"
      "0,0,9\n0,1,7\n0,2,6\n"
      "1,0,5\n1,1,2\n1,2,4\n"
      "2,0,8\n2,1,3\n2,2,7\n";
  auto ds = from_string(text);
  auto tuner = eval::make_named_tuner("hiperbot", ds, 1);
  double best = 1e9;
  for (int t = 0; t < 9; ++t) {
    const auto c = tuner->suggest();
    const double y = ds.value_of(c);
    best = std::min(best, y);
    tuner->observe(c, y);
  }
  EXPECT_DOUBLE_EQ(best, 2.0);
}

// --------------------------------------------------------------------- CLI
TEST(ArgParser, TypedFlagsAndDefaults) {
  cli::ArgParser args("prog");
  args.add_string("name", "default", "")
      .add_size("count", 7, "")
      .add_double("rate", 0.5, "")
      .add_bool("verbose", false, "");
  args.parse({"--name", "value", "--count", "42", "--rate=0.25", "pos1",
              "--verbose", "pos2"});
  EXPECT_EQ(args.get_string("name"), "value");
  EXPECT_EQ(args.get_size("count"), 42u);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.25);
  EXPECT_TRUE(args.get_bool("verbose"));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_TRUE(args.was_set("count"));
}

TEST(ArgParser, DefaultsWhenUnset) {
  cli::ArgParser args("prog");
  args.add_size("count", 7, "").add_bool("flag", true, "");
  args.parse(std::vector<std::string>{});
  EXPECT_EQ(args.get_size("count"), 7u);
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_FALSE(args.was_set("count"));
}

TEST(ArgParser, BoolAcceptsExplicitValue) {
  cli::ArgParser args("prog");
  args.add_bool("flag", true, "");
  args.parse({"--flag", "false"});
  EXPECT_FALSE(args.get_bool("flag"));
}

TEST(ArgParser, DoubleDashEndsFlagParsing) {
  cli::ArgParser args("prog");
  args.add_size("n", 1, "");
  args.parse({"--n", "2", "--", "--n"});
  EXPECT_EQ(args.get_size("n"), 2u);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "--n");
}

TEST(ArgParser, Errors) {
  cli::ArgParser args("prog");
  args.add_size("count", 7, "").add_string("s", "", "");
  EXPECT_THROW(args.parse({"--unknown", "1"}), Error);
  EXPECT_THROW(args.parse({"--count", "notanumber"}), Error);
  EXPECT_THROW(args.parse({"--count"}), Error);  // missing value
  EXPECT_THROW((void)args.get_double("count"), Error);  // wrong type
  EXPECT_THROW((void)args.get_size("missing"), Error);
  EXPECT_THROW(args.add_size("count", 1, ""), Error);  // duplicate
}

TEST(ArgParser, UsageListsFlags) {
  cli::ArgParser args("prog", "description");
  args.add_size("budget", 100, "evaluation budget");
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("prog"), std::string::npos);
  EXPECT_NE(usage.find("--budget"), std::string::npos);
  EXPECT_NE(usage.find("evaluation budget"), std::string::npos);
}

// ------------------------------------------------------------- named tuner
TEST(NamedTuner, AllNamesConstructWorkingTuners) {
  auto ds = testutil::separable_dataset();
  for (const auto& name : eval::tuner_names()) {
    auto tuner = eval::make_named_tuner(name, ds, 3);
    const auto c = tuner->suggest();
    EXPECT_TRUE(ds.find(c).has_value()) << name;
    tuner->observe(c, ds.value_of(c));
  }
  EXPECT_THROW((void)eval::make_named_tuner("bogus", ds, 1), Error);
}

}  // namespace
}  // namespace hpb
