// Acquisition sweep engine (core/acquisition.hpp) and the suggest-path
// fixes that ride along with it:
//   - score tables are bitwise-identical to TpeSurrogate::acquisition;
//   - the chunked top-k sweep is deterministic for any thread count and
//     breaks ties toward the lowest candidate index;
//   - serial suggest() marks its choice pending (no duplicate suggestions);
//   - the dense-exclusion random phase terminates via the linear-scan path;
//   - degenerate KDEs yield uniform importance marginals instead of aborting;
//   - History::split and make_transfer_prior agree on the rank-based split.
#include "core/acquisition.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/hiperbot.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "stats/quantile.hpp"
#include "test_util.hpp"

namespace hpb::core {
namespace {

using space::Configuration;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// ------------------------------------------------ table vs direct, bitwise

TEST(Acquisition, TableMatchesDirectBitwiseOnDiscreteSpace) {
  auto ds = testutil::separable_dataset();
  const std::vector<Configuration> pool = ds.space_ptr()->enumerate();
  History h;
  for (std::size_t j = 0; j < pool.size(); j += 5) {
    h.add(pool[j], ds.value_of(pool[j]));
  }
  const TpeSurrogate s(ds.space_ptr(), h, 0.2);
  const PoolColumns columns(ds.space(), pool);
  const AcquisitionTable table(s, columns);
  for (std::size_t j = 0; j < pool.size(); ++j) {
    EXPECT_EQ(bits(table.score(columns, j)), bits(s.acquisition(pool[j])))
        << "candidate " << j;
  }
}

TEST(Acquisition, TableMatchesDirectBitwiseOnMixedSpace) {
  auto space = testutil::mixed_space();
  // A gridded pool with repeated continuous values, so the distinct-value
  // memo actually deduplicates (15 pool rows share 5 distinct t values).
  std::vector<Configuration> pool;
  for (double level : {0.0, 1.0, 2.0}) {
    for (double t : {0.25, 1.75, 3.5, 3.5, 9.0}) {
      pool.emplace_back(std::vector<double>{level, t});
    }
  }
  History h;
  for (std::size_t j = 0; j < pool.size(); j += 2) {
    h.add(pool[j], pool[j][1] + static_cast<double>(pool[j].level(0)));
  }
  const TpeSurrogate s(space, h, 0.3);
  const PoolColumns columns(*space, pool);
  EXPECT_TRUE(columns.is_continuous(1));
  EXPECT_EQ(columns.table_size(1), 4u);  // 5 grid points, one repeated
  EXPECT_TRUE(columns.ordinals().empty());  // not a finite space
  const AcquisitionTable table(s, columns);
  for (std::size_t j = 0; j < pool.size(); ++j) {
    EXPECT_EQ(bits(table.score(columns, j)), bits(s.acquisition(pool[j])))
        << "candidate " << j;
  }
}

// ------------------------------------------- deterministic chunked sweeps

TEST(Acquisition, TopkIdenticalForAnyThreadCount) {
  // Spans multiple fixed chunks and has heavy score ties (j % 97), so both
  // the chunk reduction and the tie-break are exercised.
  const std::size_t n = 3 * kSweepChunk + 123;
  const auto score = [](std::size_t j) {
    return static_cast<double>(j % 97);
  };
  const auto excluded = [](std::size_t j) { return j % 5 == 0; };
  const std::vector<SweepHit> serial =
      acquisition_topk(n, 7, nullptr, score, excluded);
  ASSERT_EQ(serial.size(), 7u);
  // Best score is 96, first reached at j=96 (not divisible by 5).
  EXPECT_EQ(serial.front().index, 96u);
  EXPECT_EQ(serial.front().score, 96.0);
  for (std::size_t threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    const std::vector<SweepHit> parallel =
        acquisition_topk(n, 7, &pool, score, excluded);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].index, serial[i].index) << threads << " threads";
      EXPECT_EQ(bits(parallel[i].score), bits(serial[i].score));
    }
  }
}

TEST(Acquisition, TopkBreaksTiesTowardLowestIndex) {
  const auto constant = [](std::size_t) { return 1.5; };
  const auto hits = acquisition_topk(
      1000, 3, nullptr, constant, [](std::size_t j) { return j == 1; });
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_EQ(hits[1].index, 2u);  // index 1 is excluded
  EXPECT_EQ(hits[2].index, 3u);
  EXPECT_TRUE(acquisition_topk(0, 3, nullptr, constant,
                               [](std::size_t) { return false; })
                  .empty());
}

// ----------------------- tuner sweeps: thread-count and mode invariance

// One tuning run's observable outputs: the suggested ordinals and, once the
// surrogate is live, the bit pattern of the exported best-acquisition gauge.
std::vector<std::uint64_t> ranking_run(AcquisitionMode mode, int threads) {
  auto ds = testutil::separable_dataset();
  HiPerBOtConfig config;
  config.initial_samples = 8;
  config.acquisition = mode;
  HiPerBOt tuner(ds.space_ptr(), config, 99);
  obs::MetricsRegistry metrics;
  const obs::Recorder rec{.metrics = &metrics};
  tuner.set_recorder(&rec);
  std::optional<ThreadPool> pool;
  if (threads >= 0) {
    pool.emplace(static_cast<std::size_t>(threads));
    tuner.set_sweep_pool(&*pool);
  }
  std::vector<std::uint64_t> seq;
  for (int t = 0; t < 30; ++t) {
    const Configuration c = tuner.suggest();
    seq.push_back(ds.space().ordinal_of(c));
    if (t >= 8) {
      seq.push_back(bits(metrics.gauge("hiperbot.acquisition_best").value()));
    }
    tuner.observe(c, ds.value_of(c));
  }
  return seq;
}

TEST(Acquisition, SuggestionsIdenticalAcrossThreadCountsAndVsDirect) {
  const auto reference = ranking_run(AcquisitionMode::kTable, -1);
  EXPECT_EQ(ranking_run(AcquisitionMode::kTable, 1), reference);
  EXPECT_EQ(ranking_run(AcquisitionMode::kTable, 2), reference);
  EXPECT_EQ(ranking_run(AcquisitionMode::kTable, 7), reference);
  EXPECT_EQ(ranking_run(AcquisitionMode::kTable, 0), reference);  // hardware
  EXPECT_EQ(ranking_run(AcquisitionMode::kDirect, -1), reference);
}

std::vector<std::uint64_t> batch_run(AcquisitionMode mode, int threads) {
  auto ds = testutil::separable_dataset();
  HiPerBOtConfig config;
  config.initial_samples = 6;
  config.acquisition = mode;
  HiPerBOt tuner(ds.space_ptr(), config, 41);
  std::optional<ThreadPool> pool;
  if (threads >= 0) {
    pool.emplace(static_cast<std::size_t>(threads));
    tuner.set_sweep_pool(&*pool);
  }
  std::vector<std::uint64_t> seq;
  for (int round = 0; round < 8; ++round) {
    for (const Configuration& c : tuner.suggest_batch(3)) {
      seq.push_back(ds.space().ordinal_of(c));
      tuner.observe(c, ds.value_of(c));
    }
  }
  return seq;
}

TEST(Acquisition, BatchesIdenticalAcrossThreadCountsAndVsDirect) {
  const auto reference = batch_run(AcquisitionMode::kTable, -1);
  EXPECT_EQ(batch_run(AcquisitionMode::kTable, 2), reference);
  EXPECT_EQ(batch_run(AcquisitionMode::kTable, 7), reference);
  EXPECT_EQ(batch_run(AcquisitionMode::kDirect, -1), reference);
}

// ----------------------------------------- serial suggest() marks pending

TEST(SuggestPending, SerialSuggestionsNeverRepeatWhileUnobserved) {
  auto ds = testutil::separable_dataset();
  HiPerBOtConfig config;
  config.initial_samples = 4;
  HiPerBOt tuner(ds.space_ptr(), config, 5);

  // Initial (random) phase: two back-to-back suggests must differ.
  const Configuration a = tuner.suggest();
  const Configuration b = tuner.suggest();
  EXPECT_NE(ds.space().ordinal_of(a), ds.space().ordinal_of(b));
  tuner.observe(a, ds.value_of(a));
  tuner.observe(b, ds.value_of(b));
  for (int t = 0; t < 2; ++t) {
    const Configuration c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
  }

  // Model phase: unobserved serial suggestions stay excluded, both from
  // later serial suggests and from a later batch.
  std::set<std::uint64_t> seen;
  const Configuration c = tuner.suggest();
  const Configuration d = tuner.suggest();
  EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
  EXPECT_TRUE(seen.insert(ds.space().ordinal_of(d)).second);
  for (const Configuration& e : tuner.suggest_batch(4)) {
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(e)).second);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(SuggestPending, SerialLoopMatchesBatchOfOneBitwise) {
  // The pending marker must not disturb the classic suggest/observe loop:
  // it is released by the observe() before the next suggest, so the serial
  // loop and the batch(1) loop walk identical RNG and surrogate states.
  auto ds = testutil::separable_dataset();
  HiPerBOtConfig config;
  config.initial_samples = 8;
  HiPerBOt serial(ds.space_ptr(), config, 123);
  HiPerBOt batched(ds.space_ptr(), config, 123);
  for (int t = 0; t < 25; ++t) {
    const Configuration a = serial.suggest();
    const auto batch = batched.suggest_batch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(ds.space().ordinal_of(a), ds.space().ordinal_of(batch.front()))
        << "iteration " << t;
    serial.observe(a, ds.value_of(a));
    batched.observe(batch.front(), ds.value_of(batch.front()));
  }
  EXPECT_EQ(bits(serial.history().best_value()),
            bits(batched.history().best_value()));
}

// ------------------------------------ dense-exclusion random phase (scan)

TEST(SuggestPending, DenseExclusionReturnsEachFreeConfigOnce) {
  auto ds = testutil::separable_dataset();  // 60 configurations
  HiPerBOtConfig config;
  config.initial_samples = 60;  // keep the tuner in the random phase
  HiPerBOt tuner(ds.space_ptr(), config, 3);
  const std::vector<Configuration> pool = ds.space_ptr()->enumerate();
  std::set<std::uint64_t> free_ordinals;
  for (std::size_t j = 0; j < pool.size(); ++j) {
    if (j == 17 || j == 41) {
      free_ordinals.insert(ds.space().ordinal_of(pool[j]));
      continue;
    }
    tuner.observe(pool[j], ds.value_of(pool[j]));
  }
  // 58 of 60 excluded: far past the scan threshold. Each remaining config
  // comes back exactly once (suggest marks it pending), then the pool is
  // exhausted.
  std::set<std::uint64_t> got;
  got.insert(ds.space().ordinal_of(tuner.suggest()));
  got.insert(ds.space().ordinal_of(tuner.suggest()));
  EXPECT_EQ(got, free_ordinals);
  EXPECT_THROW((void)tuner.suggest(), Error);
}

// --------------------------------------------- degenerate KDE importance

TEST(Density, DegenerateKdeMarginalFallsBackToUniform) {
  // All mass at the domain edge with a bandwidth ~12 orders of magnitude
  // below the range: every importance-bin midpoint underflows to pdf 0.
  // Importance export must degrade to the uniform marginal, not abort.
  auto space = std::make_shared<space::ParameterSpace>();
  space->add(space::Parameter::continuous("t", 0.0, 1e9));
  DensityConfig dc;
  dc.kde_bandwidth = 1e-3;
  dc.importance_bins = 16;
  const std::vector<Configuration> samples{Configuration({0.0}),
                                           Configuration({0.0})};
  const FactorizedDensity d(space, samples, dc);
  const std::vector<double> probs = d.marginal_probabilities(0);
  ASSERT_EQ(probs.size(), 16u);
  for (const double p : probs) {
    EXPECT_DOUBLE_EQ(p, 1.0 / 16.0);
  }
}

// ------------------------------------------------- rank-split tie pinning

TEST(RankSplit, AllEqualValuesSplitByInsertionOrder) {
  const std::vector<double> values{5.0, 5.0, 5.0, 5.0, 5.0};
  const stats::RankSplit rs = stats::rank_split(values, 0.4);
  EXPECT_EQ(rs.good, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(rs.bad, (std::vector<std::size_t>{2, 3, 4}));
  EXPECT_EQ(rs.threshold, 5.0);
}

TEST(RankSplit, TiesAtTheBoundaryKeepEarlierObservationsGood) {
  const std::vector<double> values{3.0, 1.0, 3.0, 1.0, 2.0};
  const stats::RankSplit rs = stats::rank_split(values, 0.4);
  EXPECT_EQ(rs.good, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(rs.bad, (std::vector<std::size_t>{4, 0, 2}));
  EXPECT_EQ(rs.threshold, 2.0);
}

TEST(RankSplit, HistorySplitAndTransferPriorAgree) {
  auto ds = testutil::separable_dataset();
  const std::vector<Configuration> pool = ds.space_ptr()->enumerate();
  // Values with deliberate ties (the dataset's objective has many).
  std::vector<Configuration> configs;
  std::vector<double> values;
  History h;
  for (std::size_t j = 0; j < 20; ++j) {
    configs.push_back(pool[j * 3]);
    values.push_back(ds.value_of(pool[j * 3]));
    h.add(configs.back(), values.back());
  }
  const double alpha = 0.25;
  const stats::RankSplit rs = stats::rank_split(values, alpha);
  const HistorySplit hs = h.split(alpha);
  EXPECT_EQ(hs.good, rs.good);
  EXPECT_EQ(hs.bad, rs.bad);
  EXPECT_EQ(bits(hs.threshold), bits(rs.threshold));

  // make_transfer_prior must group by the same rank split: its good density
  // equals one fit directly from the rank-split good configurations.
  const DensityConfig dc;
  const TransferPrior prior =
      make_transfer_prior(ds.space_ptr(), configs, values, alpha, dc);
  std::vector<Configuration> good_configs;
  for (const std::size_t j : rs.good) {
    good_configs.push_back(configs[j]);
  }
  const FactorizedDensity expected(ds.space_ptr(), good_configs, dc);
  for (const Configuration& c : pool) {
    EXPECT_EQ(bits(prior.good.log_density(c)), bits(expected.log_density(c)));
  }
}

// ----------------------------------------------------- sweep observability

class SweepSpanSink final : public obs::TraceSink {
 public:
  std::uint64_t next_id() override { return ++ids_; }
  void emit(const obs::TraceEvent& event) override {
    if (event.name != "hiperbot.sweep") {
      return;
    }
    ++sweep_spans_;
    for (const obs::TraceAttr& attr : event.attrs) {
      if (attr.key == "mode") {
        last_mode_ = std::string(attr.string_value);
      } else if (attr.key == "pool") {
        last_pool_ = attr.uint_value;
      }
    }
  }

  std::uint64_t ids_ = 0;
  int sweep_spans_ = 0;
  std::string last_mode_;
  std::uint64_t last_pool_ = 0;
};

TEST(Acquisition, SweepEmitsSpanAndCountsSweeps) {
  auto ds = testutil::separable_dataset();
  HiPerBOtConfig config;
  config.initial_samples = 4;
  HiPerBOt tuner(ds.space_ptr(), config, 11);
  SweepSpanSink sink;
  obs::MetricsRegistry metrics;
  const obs::Recorder rec{.trace = &sink, .metrics = &metrics};
  tuner.set_recorder(&rec);
  for (int t = 0; t < 6; ++t) {
    const Configuration c = tuner.suggest();
    tuner.observe(c, ds.value_of(c));
  }
  EXPECT_EQ(sink.sweep_spans_, 2);  // iterations 5 and 6 fit the surrogate
  EXPECT_EQ(metrics.counter("hiperbot.sweeps").value(), 2u);
  EXPECT_EQ(sink.last_mode_, "table");
  EXPECT_EQ(sink.last_pool_, 60u);
}

}  // namespace
}  // namespace hpb::core
