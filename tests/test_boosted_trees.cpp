// Tests for the gradient-boosted-trees learner and the BRT tuner.
#include "baselines/boosted_trees.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/loop.hpp"
#include "test_util.hpp"

namespace hpb::baselines {
namespace {

using space::Configuration;

/// y = 3·x0 − 2·x1 + x0·x1 on random binary features.
void make_xor_ish(std::size_t n, linalg::Matrix& x, std::vector<double>& y,
                  Rng& rng) {
  x = linalg::Matrix(n, 4);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      x(i, j) = rng.bernoulli(0.5) ? 1.0 : 0.0;
    }
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1) + 4.0 * x(i, 0) * x(i, 1);
  }
}

TEST(BoostedTrees, FitsAdditiveAndInteractionStructure) {
  Rng rng(1);
  linalg::Matrix x;
  std::vector<double> y;
  make_xor_ish(256, x, y, rng);
  GbtConfig config;
  config.rounds = 80;
  config.max_depth = 2;
  BoostedTrees model(config);
  model.fit(x, y, 42);
  EXPECT_TRUE(model.is_fitted());
  EXPECT_EQ(model.num_trees(), 80u);
  EXPECT_LT(model.evaluate_mse(x, y), 0.01);
}

TEST(BoostedTrees, DepthOneCannotCaptureTheInteraction) {
  Rng rng(2);
  linalg::Matrix x;
  std::vector<double> y;
  make_xor_ish(256, x, y, rng);
  GbtConfig stumps;
  stumps.rounds = 80;
  stumps.max_depth = 1;
  BoostedTrees stump_model(stumps);
  stump_model.fit(x, y, 42);
  GbtConfig deep = stumps;
  deep.max_depth = 3;
  BoostedTrees deep_model(deep);
  deep_model.fit(x, y, 42);
  EXPECT_GT(stump_model.evaluate_mse(x, y),
            4.0 * deep_model.evaluate_mse(x, y));
}

TEST(BoostedTrees, FeatureImportanceIdentifiesActiveFeatures) {
  Rng rng(3);
  linalg::Matrix x;
  std::vector<double> y;
  make_xor_ish(256, x, y, rng);
  BoostedTrees model;
  model.fit(x, y, 42);
  const auto importance = model.feature_importance();
  ASSERT_EQ(importance.size(), 4u);
  double total = 0.0;
  for (double v : importance) {
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Features 0 and 1 drive the target; 2 and 3 are noise.
  EXPECT_GT(importance[0] + importance[1],
            20.0 * (importance[2] + importance[3]));
}

TEST(BoostedTrees, DeterministicGivenSeed) {
  Rng rng(4);
  linalg::Matrix x;
  std::vector<double> y;
  make_xor_ish(128, x, y, rng);
  GbtConfig config;
  config.subsample = 0.7;
  BoostedTrees a(config), b(config);
  a.fit(x, y, 99);
  b.fit(x, y, 99);
  for (std::size_t r = 0; r < x.rows(); r += 13) {
    EXPECT_DOUBLE_EQ(a.predict(x.row(r)), b.predict(x.row(r)));
  }
}

TEST(BoostedTrees, ConstantTargetGivesConstantPrediction) {
  linalg::Matrix x(8, 2);
  std::vector<double> y(8, 5.0);
  Rng rng(5);
  for (double& v : x.flat()) {
    v = rng.bernoulli(0.5) ? 1.0 : 0.0;
  }
  BoostedTrees model;
  model.fit(x, y, 1);
  EXPECT_NEAR(model.predict(x.row(0)), 5.0, 1e-9);
}

TEST(BoostedTrees, Validation) {
  GbtConfig bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(BoostedTrees{bad}, Error);
  BoostedTrees model;
  std::vector<double> f = {0.0, 1.0};
  EXPECT_THROW((void)model.predict(f), Error);  // unfitted
  linalg::Matrix x(3, 2);
  std::vector<double> wrong(2);
  EXPECT_THROW(model.fit(x, wrong, 1), Error);
}

TEST(BrtTuner, NoDuplicatesAndConverges) {
  auto ds = testutil::separable_dataset();
  BrtTunerConfig config;
  config.initial_samples = 10;
  config.epsilon = 0.0;
  BrtTuner tuner(ds.space_ptr(), config, 6);
  std::set<std::uint64_t> seen;
  double best = 1e9;
  for (int t = 0; t < 30; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
    const double y = ds.value_of(c);
    best = std::min(best, y);
    tuner.observe(c, y);
  }
  EXPECT_LE(best, 2.0);
}

TEST(BrtTuner, EpsilonOneIsPureExploration) {
  auto ds = testutil::separable_dataset();
  BrtTunerConfig config;
  config.epsilon = 1.0;
  BrtTuner tuner(ds.space_ptr(), config, 7);
  // With epsilon = 1 every suggestion is uniform: still distinct and valid.
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 40; ++t) {
    const Configuration c = tuner.suggest();
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
    tuner.observe(c, ds.value_of(c));
  }
}

}  // namespace
}  // namespace hpb::baselines
