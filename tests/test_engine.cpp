// TuningEngine determinism and batching contract:
//   - batch_size == 1 reproduces the historical serial ask/tell loop
//     bitwise for every registered tuner (the paper's curves do not move);
//   - batched runs are deterministic for a fixed seed and never evaluate a
//     configuration twice;
//   - run_until keeps the serial driver's stopping semantics;
//   - HiPerBOt tracks outstanding batch members as pending (regression for
//     the overlapping-batches footgun);
//   - the HPB_REPS / HPB_BATCH environment knobs are parsed strictly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "core/journal.hpp"
#include "core/loop.hpp"
#include "core/stopping.hpp"
#include "eval/experiment.hpp"
#include "eval/methods.hpp"
#include "test_util.hpp"

namespace hpb {
namespace {

using core::Observation;
using core::TuneResult;
using core::TuningEngine;

constexpr std::size_t kBudget = 40;
constexpr std::uint64_t kSeed = 0xE7517E;

/// Verbatim copy of the pre-engine serial driver (core/loop.cpp before it
/// became a shim) — the reference the engine must reproduce at batch 1.
TuneResult legacy_run_tuning(core::Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget) {
  TuneResult result;
  result.history.reserve(budget);
  result.best_so_far.reserve(budget);
  for (std::size_t t = 0; t < budget; ++t) {
    space::Configuration c = tuner.suggest();
    const double y = objective.evaluate(c);
    tuner.observe(c, y);
    if (result.history.empty() || y < result.best_value) {
      result.best_value = y;
      result.best_config = c;
    }
    result.history.push_back({std::move(c), y});
    result.best_so_far.push_back(result.best_value);
  }
  return result;
}

void expect_identical(const TuneResult& a, const TuneResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].config.values(), b.history[i].config.values())
        << "history diverges at evaluation " << i;
    EXPECT_EQ(a.history[i].y, b.history[i].y);
  }
  EXPECT_EQ(a.best_so_far, b.best_so_far);
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best_config.values(), b.best_config.values());
}

TEST(EngineSerialEquivalence, EveryTunerMatchesLegacyLoopAtBatchOne) {
  auto ds = testutil::separable_dataset();
  const TuningEngine engine({.batch_size = 1});
  for (const std::string& name : eval::tuner_names()) {
    SCOPED_TRACE(name);
    auto legacy_tuner = eval::make_named_tuner(name, ds, kSeed);
    auto engine_tuner = eval::make_named_tuner(name, ds, kSeed);
    const TuneResult expected = legacy_run_tuning(*legacy_tuner, ds, kBudget);
    const TuneResult actual = engine.run(*engine_tuner, ds, kBudget);
    expect_identical(expected, actual);
  }
}

TEST(EngineSerialEquivalence, ShimsStillDriveTheSameHistory) {
  auto ds = testutil::separable_dataset();
  auto a = eval::make_named_tuner("hiperbot", ds, kSeed);
  auto b = eval::make_named_tuner("hiperbot", ds, kSeed);
  expect_identical(legacy_run_tuning(*a, ds, kBudget),
                   core::run_tuning(*b, ds, kBudget));
}

TEST(EngineBatched, SameSeedSameHistoryAndNoDuplicates) {
  auto ds = testutil::separable_dataset();
  for (const std::size_t batch : {std::size_t{2}, std::size_t{4}}) {
    const TuningEngine engine({.batch_size = batch});
    for (const std::string& name : eval::tuner_names()) {
      SCOPED_TRACE(name + " batch " + std::to_string(batch));
      auto first = eval::make_named_tuner(name, ds, kSeed);
      auto second = eval::make_named_tuner(name, ds, kSeed);
      const TuneResult a = engine.run(*first, ds, kBudget);
      const TuneResult b = engine.run(*second, ds, kBudget);
      expect_identical(a, b);

      std::unordered_set<std::uint64_t> seen;
      for (const Observation& o : a.history) {
        EXPECT_TRUE(seen.insert(ds.space().ordinal_of(o.config)).second)
            << "duplicate configuration in batched history";
      }
    }
  }
}

TEST(EngineBatched, PoolAndSerialEvaluationAgree) {
  auto ds = testutil::separable_dataset();
  ThreadPool pool(4);
  const TuningEngine with_pool({.batch_size = 4, .pool = &pool});
  const TuningEngine without_pool({.batch_size = 4});
  auto a = eval::make_named_tuner("hiperbot", ds, kSeed);
  auto b = eval::make_named_tuner("hiperbot", ds, kSeed);
  expect_identical(with_pool.run(*a, ds, kBudget),
                   without_pool.run(*b, ds, kBudget));
}

TEST(EngineBatched, BudgetNotDivisibleByBatchStillExact) {
  auto ds = testutil::separable_dataset();
  const TuningEngine engine({.batch_size = 7});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const TuneResult r = engine.run(*tuner, ds, 23);
  EXPECT_EQ(r.history.size(), 23u);
  EXPECT_EQ(r.best_so_far.size(), 23u);
}

TEST(EngineBatched, RejectsZeroBatch) {
  EXPECT_THROW(TuningEngine({.batch_size = 0}), Error);
}

TEST(EngineRunUntil, BatchOneMatchesLegacyStoppingSemantics) {
  auto ds = testutil::separable_dataset();
  core::StopConfig stop;
  stop.max_evaluations = kBudget;
  stop.stagnation_patience = 6;
  const TuningEngine engine({.batch_size = 1});
  auto a = eval::make_named_tuner("anneal", ds, kSeed);
  auto b = eval::make_named_tuner("anneal", ds, kSeed);
  const auto expected = core::run_tuning_until(*a, ds, stop);
  const auto actual = engine.run_until(*b, ds, stop);
  EXPECT_EQ(expected.reason, actual.reason);
  expect_identical(expected.result, actual.result);
}

TEST(EngineRunUntil, TargetStopMidBatchDrainsWholeRound) {
  auto ds = testutil::separable_dataset();
  core::StopConfig stop;
  stop.max_evaluations = ds.size();
  stop.target_value = ds.best_value();  // the unique optimum (value 1)
  const TuningEngine engine({.batch_size = 4});
  auto tuner = eval::make_named_tuner("random", ds, kSeed);
  const auto stopped = engine.run_until(*tuner, ds, stop);
  EXPECT_EQ(stopped.reason, core::StopReason::kTargetReached);
  EXPECT_EQ(stopped.result.best_value, ds.best_value());
  // Every evaluation of the stopping round was paid for and is recorded:
  // the history is a whole number of full batches, the target value appears
  // in the final batch, and nothing before that batch beats the target.
  EXPECT_EQ(stopped.result.history.size() % 4, 0u);
  const std::size_t last_round = stopped.result.history.size() - 4;
  bool hit = false;
  for (std::size_t i = 0; i < stopped.result.history.size(); ++i) {
    if (stopped.result.history[i].y == ds.best_value()) {
      EXPECT_GE(i, last_round);
      hit = true;
    }
  }
  EXPECT_TRUE(hit);
}

TEST(HiPerBOtPending, OverlappingBatchesNeverRepeatOutstandingConfigs) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 4;
  core::HiPerBOt tuner(ds.space_ptr(), config, kSeed);

  const auto first = tuner.suggest_batch(6);
  const auto second = tuner.suggest_batch(6);  // nothing observed yet
  std::unordered_set<std::uint64_t> seen;
  for (const auto& c : first) {
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second);
  }
  for (const auto& c : second) {
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(c)).second)
        << "second batch repeated an outstanding configuration";
  }
}

TEST(HiPerBOtPending, PartialObservationKeepsRestPending) {
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 4;
  core::HiPerBOt tuner(ds.space_ptr(), config, kSeed);

  const auto batch = tuner.suggest_batch(6);
  // Observe only half the batch; the other half must stay excluded.
  for (std::size_t i = 0; i < 3; ++i) {
    tuner.observe(batch[i], ds.value_of(batch[i]));
  }
  std::unordered_set<std::uint64_t> excluded;
  for (const auto& c : batch) {
    excluded.insert(ds.space().ordinal_of(c));
  }
  const auto next = tuner.suggest_batch(6);
  for (const auto& c : next) {
    EXPECT_FALSE(excluded.contains(ds.space().ordinal_of(c)));
  }
}

TEST(HiPerBOtPending, ObservingReleasesPendingForReasoningNotRepeats) {
  // Once every batch member is observed, the tuner proceeds normally and a
  // full run never evaluates a configuration twice.
  auto ds = testutil::separable_dataset();
  core::HiPerBOtConfig config;
  config.initial_samples = 4;
  core::HiPerBOt tuner(ds.space_ptr(), config, kSeed);
  const TuningEngine engine({.batch_size = 6});
  const TuneResult r = engine.run(tuner, ds, ds.size());
  std::unordered_set<std::uint64_t> seen;
  for (const Observation& o : r.history) {
    EXPECT_TRUE(seen.insert(ds.space().ordinal_of(o.config)).second);
  }
  EXPECT_EQ(seen.size(), ds.size());
}

TEST(EngineJournal, JournalingDoesNotPerturbAnyTunerBitwise) {
  // A journaled run and a plain run are the same run: the journal is
  // write-only bookkeeping on the side of the loop.
  auto ds = testutil::separable_dataset();
  for (const std::string& name : eval::tuner_names()) {
    SCOPED_TRACE(name);
    auto plain_tuner = eval::make_named_tuner(name, ds, kSeed);
    const TuneResult plain =
        TuningEngine({.batch_size = 4}).run(*plain_tuner, ds, kBudget);

    const std::string path = ::testing::TempDir() + "engine_" + name + ".hpbj";
    core::JournalHeader header;
    header.method = name;
    header.dataset = ds.name();
    header.seed = kSeed;
    header.batch_size = 4;
    header.num_params = ds.space().num_params();
    header.max_evaluations = kBudget;
    auto journaled_tuner = eval::make_named_tuner(name, ds, kSeed);
    core::JournalWriter writer = core::JournalWriter::create(path, header);
    const TuneResult journaled =
        TuningEngine({.batch_size = 4, .journal = &writer})
            .run(*journaled_tuner, ds, kBudget);
    expect_identical(plain, journaled);
  }
}

TEST(EngineJournal, EveryTunerResumesBitwiseFromAMidRunJournal) {
  // Truncate each tuner's journal at a round boundary mid-run and resume:
  // the replayed-prefix overload must land on the identical final result.
  auto ds = testutil::separable_dataset();
  const TuningEngine engine({.batch_size = 4});
  for (const std::string& name : eval::tuner_names()) {
    SCOPED_TRACE(name);
    const std::string path = ::testing::TempDir() + "resume_" + name + ".hpbj";
    core::JournalHeader header;
    header.method = name;
    header.dataset = ds.name();
    header.seed = kSeed;
    header.batch_size = 4;
    header.num_params = ds.space().num_params();
    header.max_evaluations = kBudget;
    auto full_tuner = eval::make_named_tuner(name, ds, kSeed);
    core::JournalWriter writer = core::JournalWriter::create(path, header);
    const TuneResult full =
        TuningEngine({.batch_size = 4, .journal = &writer})
            .run(*full_tuner, ds, kBudget);

    core::JournalContents contents = core::read_journal(path);
    ASSERT_GT(contents.rounds.size(), 2u);
    contents.rounds.resize(contents.rounds.size() / 2);  // mid-run snapshot
    auto resumed_tuner = eval::make_named_tuner(name, ds, kSeed);
    const std::vector<Observation> replayed =
        core::replay_journal(*resumed_tuner, ds.space(), contents);
    ASSERT_FALSE(replayed.empty());
    const TuneResult resumed =
        engine.run(*resumed_tuner, ds, kBudget, replayed);
    expect_identical(full, resumed);
  }
}

class EnvParsing : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("HPB_REPS");
    unsetenv("HPB_BATCH");
  }
};

TEST_F(EnvParsing, UnsetFallsBack) {
  unsetenv("HPB_REPS");
  unsetenv("HPB_BATCH");
  EXPECT_EQ(eval::reps_from_env(7), 7u);
  EXPECT_EQ(eval::batch_from_env(3), 3u);
}

TEST_F(EnvParsing, ParsesPlainAndPaddedIntegers) {
  setenv("HPB_REPS", "50", 1);
  EXPECT_EQ(eval::reps_from_env(7), 50u);
  setenv("HPB_BATCH", "  12  ", 1);
  EXPECT_EQ(eval::batch_from_env(1), 12u);
}

TEST_F(EnvParsing, RejectsGarbage) {
  for (const char* bad : {"", "  ", "abc", "12abc", "1.5", "-3", "0",
                          "99999999999999999999999999"}) {
    setenv("HPB_REPS", bad, 1);
    EXPECT_THROW((void)eval::reps_from_env(7), Error)
        << "HPB_REPS=\"" << bad << "\" should be rejected";
    setenv("HPB_BATCH", bad, 1);
    EXPECT_THROW((void)eval::batch_from_env(1), Error)
        << "HPB_BATCH=\"" << bad << "\" should be rejected";
  }
}

TEST_F(EnvParsing, SelectionExperimentHonorsBatchSize) {
  // A batched experiment runs end to end and batch 1 equals the legacy
  // curve driver (the statistics reduce in rep order either way).
  auto ds = testutil::separable_dataset();
  const auto methods = eval::make_standard_methods(ds);
  eval::SelectionExperimentConfig config;
  config.sample_sizes = {10, 25};
  config.reps = 3;
  config.batch_size = 4;
  const auto curve =
      eval::run_selection_experiment(ds, "HiPerBOt", methods.hiperbot, config);
  ASSERT_EQ(curve.best_value.size(), 2u);
  EXPECT_EQ(curve.best_value[0].count(), 3u);
}

}  // namespace
}  // namespace hpb
