// Integration tests: the full §V / §VII pipelines at reduced scale —
// HiPerBOt vs GEIST vs Random on a real app dataset, transfer learning
// with priors vs cold start, and cross-seed stability of the conclusions.
#include <gtest/gtest.h>

#include <chrono>

#include "apps/kripke.hpp"
#include "apps/lulesh.hpp"
#include "apps/transfer.hpp"
#include "baselines/perfnet.hpp"
#include "baselines/random_search.hpp"
#include "core/loop.hpp"
#include "eval/experiment.hpp"
#include "eval/methods.hpp"
#include "eval/metrics.hpp"

namespace hpb {
namespace {

TEST(Integration, MethodOrderingOnKripkeMatchesPaper) {
  // The paper's central claim (Fig. 2): HiPerBOt >= GEIST >> Random in
  // recall at a fixed budget, and HiPerBOt reaches the exhaustive best
  // within ~96 samples.
  auto dataset = apps::make_kripke_exec();
  const auto methods = eval::make_standard_methods(dataset);
  eval::SelectionExperimentConfig config;
  config.sample_sizes = {96, 192};
  config.reps = 5;
  config.recall_percentile = 5.0;
  config.seed = 0x17E6;

  const auto random =
      eval::run_selection_experiment(dataset, "Random", methods.random, config);
  const auto geist =
      eval::run_selection_experiment(dataset, "GEIST", methods.geist, config);
  const auto hiperbot = eval::run_selection_experiment(
      dataset, "HiPerBOt", methods.hiperbot, config);

  // Recall ordering at the largest budget.
  EXPECT_GT(hiperbot.recall[1].mean(), geist.recall[1].mean());
  EXPECT_GT(geist.recall[1].mean(), 2.0 * random.recall[1].mean());
  // HiPerBOt best-config at 96 samples is at or very near the optimum.
  EXPECT_LT(hiperbot.best_value[0].mean(), 1.02 * dataset.best_value());
  // Random is still far away at the same budget.
  EXPECT_GT(random.best_value[0].mean(), 1.02 * dataset.best_value());
}

TEST(Integration, TransferPriorBeatsColdStartOnKripke) {
  apps::TransferPair pair = apps::make_kripke_transfer(0.9);
  const auto pool = std::make_shared<const std::vector<space::Configuration>>(
      pair.target.configs().begin(), pair.target.configs().end());
  constexpr std::size_t kBudget = 120;

  double recall_with = 0.0, recall_without = 0.0;
  constexpr int kReps = 3;
  Rng seeder(0x17E7);
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t seed = seeder.next_u64();
    core::HiPerBOtConfig config;
    config.transfer_weight = 2.0;

    core::HiPerBOt with(pair.target.space_ptr(), config, seed, pool);
    with.set_transfer_prior(core::make_transfer_prior(
        pair.source.space_ptr(), pair.source.configs(), pair.source.values(),
        config.quantile));
    const auto r_with = core::run_tuning(with, pair.target, kBudget);
    recall_with +=
        eval::recall_tolerance(pair.target, r_with.history, kBudget, 0.15);

    core::HiPerBOt without(pair.target.space_ptr(), config, seed, pool);
    const auto r_without = core::run_tuning(without, pair.target, kBudget);
    recall_without += eval::recall_tolerance(pair.target, r_without.history,
                                             kBudget, 0.15);
  }
  EXPECT_GT(recall_with, recall_without);
  EXPECT_GT(recall_with / kReps, 0.5);  // prior finds most good configs
}

TEST(Integration, PerfNetIsCompetitiveButBeatenOnHypreTransfer) {
  // Fig. 8b's shape: both methods recall well at tight tolerances; HiPerBOt
  // stays at least as high as PerfNet across thresholds.
  apps::TransferPair pair = apps::make_hypre_transfer(0.9);
  const std::size_t budget = pair.target.size() / 100 + 100;

  baselines::PerfNet net({}, 0x17E8);
  net.train(pair.source, pair.target, budget);
  const double perfnet_recall =
      eval::recall_tolerance_indices(pair.target, net.selection(), 0.05);
  EXPECT_GT(perfnet_recall, 0.4);  // the deep baseline genuinely works

  const auto pool = std::make_shared<const std::vector<space::Configuration>>(
      pair.target.configs().begin(), pair.target.configs().end());
  core::HiPerBOtConfig config;
  config.transfer_weight = 2.0;
  core::HiPerBOt tuner(pair.target.space_ptr(), config, 0x17E9, pool);
  tuner.set_transfer_prior(core::make_transfer_prior(
      pair.source.space_ptr(), pair.source.configs(), pair.source.values(),
      config.quantile));
  const auto result = core::run_tuning(tuner, pair.target, budget);
  const double hiperbot_recall =
      eval::recall_tolerance(pair.target, result.history, budget, 0.05);
  EXPECT_GE(hiperbot_recall, perfnet_recall);
}

TEST(Integration, ConclusionsStableAcrossSeeds) {
  // The Fig. 5 LULESH claim — HiPerBOt finds >= 2x the good configurations
  // of random selection — must hold for every seed, not on average only.
  auto dataset = apps::make_lulesh();
  const auto pool = std::make_shared<const std::vector<space::Configuration>>(
      dataset.configs().begin(), dataset.configs().end());
  constexpr std::size_t kBudget = 250;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    core::HiPerBOt hpb_tuner(dataset.space_ptr(), {}, seed, pool);
    const auto hpb_result = core::run_tuning(hpb_tuner, dataset, kBudget);
    const double hpb_recall =
        eval::recall_percentile(dataset, hpb_result.history, kBudget, 5.0);

    baselines::RandomSearch random(dataset.space_ptr(), seed + 100, pool);
    const auto rnd_result = core::run_tuning(random, dataset, kBudget);
    const double rnd_recall =
        eval::recall_percentile(dataset, rnd_result.history, kBudget, 5.0);

    EXPECT_GT(hpb_recall, 2.0 * rnd_recall) << "seed " << seed;
  }
}

TEST(Integration, TunerOverheadIsSmall) {
  // §VII: "HiPerBOt for LULESH took around 600 ms to select the best
  // configuration". A full 150-evaluation session on the simulated dataset
  // must finish in single-digit seconds even on a slow machine.
  auto dataset = apps::make_lulesh();
  const auto start = std::chrono::steady_clock::now();
  core::HiPerBOt tuner(dataset.space_ptr(), {}, 9);
  (void)core::run_tuning(tuner, dataset, 150);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 10.0);
}

}  // namespace
}  // namespace hpb
