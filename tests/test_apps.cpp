// Tests for the simulated application datasets: space shapes, calibration
// anchors from the paper, determinism, and Table I importance orderings.
#include <gtest/gtest.h>

#include "apps/hypre.hpp"
#include "apps/kripke.hpp"
#include "apps/lulesh.hpp"
#include "apps/openatom.hpp"
#include "apps/registry.hpp"
#include "core/importance.hpp"

namespace hpb::apps {
namespace {

TEST(Registry, HasAllPaperDatasetsPlusSystolic) {
  const auto& reg = dataset_registry();
  ASSERT_EQ(reg.size(), 6u);
  EXPECT_EQ(reg[0].name, "kripke");
  EXPECT_EQ(reg[1].name, "kripke_energy");
  EXPECT_EQ(reg[2].name, "hypre");
  EXPECT_EQ(reg[3].name, "lulesh");
  EXPECT_EQ(reg[4].name, "openAtom");
  EXPECT_EQ(reg[5].name, "systolic_small");
  EXPECT_THROW((void)dataset_by_name("nope"), Error);
  EXPECT_EQ(dataset_by_name("lulesh").name, "lulesh");
}

TEST(KripkeExec, MatchesPaperAnchors) {
  const auto ds = make_kripke_exec();
  // §V-A: best configuration 8.43 s, expert choice 15.2 s.
  EXPECT_NEAR(ds.best_value(), 8.43, 1e-6);
  EXPECT_NEAR(ds.value_of(kripke_exec_expert(ds.space())), 15.2, 1e-6);
  // ~1609 configurations in the paper; our constrained space is close.
  EXPECT_GT(ds.size(), 1000u);
  EXPECT_LT(ds.size(), 2500u);
  EXPECT_EQ(ds.space().num_params(), 5u);
}

TEST(KripkeExec, OccupancyConstraintHolds) {
  const auto ds = make_kripke_exec();
  const auto& sp = ds.space();
  const std::size_t i_omp = sp.index_of("OMP");
  const std::size_t i_ranks = sp.index_of("Ranks");
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto& c = ds.config(i);
    const double total = sp.param(i_omp).level_value(c.level(i_omp)) *
                         sp.param(i_ranks).level_value(c.level(i_ranks));
    EXPECT_GE(total, 8.0);
    EXPECT_LE(total, 32.0);
  }
}

TEST(KripkeEnergy, MatchesPaperAnchors) {
  const auto ds = make_kripke_energy();
  EXPECT_NEAR(ds.best_value(), 2447.0, 1e-6);
  EXPECT_NEAR(ds.value_of(kripke_energy_expert(ds.space())), 4742.0, 1e-6);
  EXPECT_GT(ds.size(), 10000u);  // paper: 17815
  EXPECT_EQ(ds.space().num_params(), 6u);
}

TEST(KripkeEnergy, PowerCapEffectIsUShaped) {
  // Marginal mean energy over the PKG_LIMIT levels should dip in the middle
  // (capping saves energy) and rise at both extremes.
  const auto ds = make_kripke_energy();
  const auto& sp = ds.space();
  const std::size_t i_pkg = sp.index_of("PKG_LIMIT");
  const std::size_t levels = sp.param(i_pkg).num_levels();
  std::vector<double> mean(levels, 0.0);
  std::vector<std::size_t> count(levels, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const std::size_t l = ds.config(i).level(i_pkg);
    mean[l] += ds.value(i);
    ++count[l];
  }
  for (std::size_t l = 0; l < levels; ++l) {
    mean[l] /= static_cast<double>(count[l]);
  }
  const double mid = mean[levels / 2];
  EXPECT_LT(mid, mean.front());
  EXPECT_LT(mid, mean.back());
}

TEST(Hypre, SpaceShapeAndCalibration) {
  const auto ds = make_hypre();
  EXPECT_EQ(ds.size(), 4608u);  // paper: 4589
  EXPECT_EQ(ds.space().num_params(), 6u);
  EXPECT_NEAR(ds.best_value(), 3.45, 1e-6);
  // Median anchored at 6.9 s; the lognormal tail extends well beyond it.
  EXPECT_NEAR(ds.percentile_value(50.0), 6.9, 0.05);
  EXPECT_GT(ds.worst_value(), 9.0);
}

TEST(Hypre, ImportanceTopThreeMatchTableOne) {
  // Table I (all samples): Ranks > OMP > Solver >> Smoother, MU, PMX.
  const auto ds = make_hypre();
  const auto entries = core::dataset_importance(ds, 0.2);
  ASSERT_EQ(entries.size(), 6u);
  EXPECT_EQ(entries[0].parameter, "Ranks");
  EXPECT_EQ(entries[1].parameter, "OMP");
  EXPECT_EQ(entries[2].parameter, "Solver");
  // The tail parameters are negligible, as in the paper.
  EXPECT_LT(entries[4].js_divergence, 0.25 * entries[0].js_divergence);
}

TEST(Lulesh, MatchesPaperAnchors) {
  const auto ds = make_lulesh();
  EXPECT_NEAR(ds.best_value(), 2.72, 1e-6);
  EXPECT_NEAR(ds.value_of(lulesh_default_o3(ds.space())), 6.02, 1e-6);
  EXPECT_EQ(ds.space().num_params(), 11u);  // eleven compiler flags
  EXPECT_EQ(ds.size(), 5632u);              // paper: 4800
}

TEST(Lulesh, ImportanceTopThreeMatchTableOne) {
  // Table I (all samples): builtin > malloc > unroll lead the ranking.
  const auto ds = make_lulesh();
  const auto entries = core::dataset_importance(ds, 0.2);
  std::vector<std::string> top = {entries[0].parameter, entries[1].parameter,
                                  entries[2].parameter};
  EXPECT_NE(std::find(top.begin(), top.end(), "builtin"), top.end());
  EXPECT_NE(std::find(top.begin(), top.end(), "malloc"), top.end());
  EXPECT_NE(std::find(top.begin(), top.end(), "unroll"), top.end());
}

TEST(OpenAtom, MatchesPaperAnchors) {
  const auto ds = make_openatom();
  EXPECT_NEAR(ds.best_value(), 1.24, 1e-6);
  EXPECT_NEAR(ds.value_of(openatom_expert(ds.space())), 1.6, 1e-6);
  EXPECT_EQ(ds.space().num_params(), 8u);
  EXPECT_EQ(ds.size(), 9216u);  // paper: 8928
}

TEST(OpenAtom, SgrainDominatesImportance) {
  const auto ds = make_openatom();
  const auto entries = core::dataset_importance(ds, 0.2);
  EXPECT_EQ(entries.front().parameter, "sgrain");
}

TEST(AllDatasets, DeterministicAcrossConstruction) {
  for (const auto& info : dataset_registry()) {
    const auto a = info.make();
    const auto b = info.make();
    ASSERT_EQ(a.size(), b.size()) << info.name;
    for (std::size_t i = 0; i < a.size(); i += 97) {
      EXPECT_DOUBLE_EQ(a.value(i), b.value(i)) << info.name;
    }
  }
}

TEST(AllDatasets, FewConfigurationsNearOptimum) {
  // §V-A/B: "only a few samples in the high-performing bins" — the right-
  // skew that makes random sampling ineffective. Under 6% of configurations
  // lie within 10% of the best value on every dataset, and the transport /
  // solver datasets the paper singles out are sparser still.
  for (const auto& info : dataset_registry()) {
    const auto ds = info.make();
    const std::size_t near_best = ds.count_leq(1.10 * ds.best_value());
    EXPECT_LT(static_cast<double>(near_best),
              0.06 * static_cast<double>(ds.size()))
        << info.name;
    EXPECT_GE(near_best, 1u) << info.name;
  }
  const auto kripke = dataset_by_name("kripke").make();
  EXPECT_LT(static_cast<double>(kripke.count_leq(1.10 * kripke.best_value())),
            0.02 * static_cast<double>(kripke.size()));
}

TEST(AllDatasets, ReferenceValuesAreWellInsideTheRange) {
  for (const auto& info : dataset_registry()) {
    if (!info.reference_value) {
      continue;
    }
    const auto ds = info.make();
    EXPECT_GT(*info.reference_value, ds.best_value()) << info.name;
    EXPECT_LT(*info.reference_value, ds.worst_value()) << info.name;
  }
}

}  // namespace
}  // namespace hpb::apps
