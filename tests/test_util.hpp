// Shared helpers for the hiperbot test suite: small canned parameter
// spaces and objectives used across module tests.
#pragma once

#include <cmath>
#include <memory>

#include "space/parameter_space.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::testutil {

/// 3-parameter all-discrete space: A (4 levels), B (3 numeric levels),
/// C (integer 0..4) — 60 configurations, no constraints.
inline space::SpacePtr small_discrete_space() {
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(space::Parameter::categorical("A", {"a0", "a1", "a2", "a3"}));
  s->add(space::Parameter::categorical_numeric("B", {1, 2, 4}));
  s->add(space::Parameter::integer("C", 0, 4));
  return s;
}

/// Mixed space: one categorical (3 levels) + one continuous in [0, 10].
inline space::SpacePtr mixed_space() {
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(space::Parameter::categorical("cat", {"x", "y", "z"}));
  s->add(space::Parameter::continuous("t", 0.0, 10.0));
  return s;
}

/// Deterministic separable objective on small_discrete_space():
/// f = (A-1)² + (B-2)² + (C-3)² + 1; unique optimum at levels (1, 2, 3)
/// with value 1.
inline double separable_value(const space::Configuration& c) {
  const double a = static_cast<double>(c.level(0)) - 1.0;
  const double b = static_cast<double>(c.level(1)) - 2.0;
  const double d = static_cast<double>(c.level(2)) - 3.0;
  return a * a + b * b + d * d + 1.0;
}

/// The separable objective as a frozen dataset.
inline tabular::TabularObjective separable_dataset() {
  return tabular::TabularObjective::from_function(
      "separable", small_discrete_space(), separable_value);
}

}  // namespace hpb::testutil
