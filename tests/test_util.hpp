// Shared helpers for the hiperbot test suite: small canned parameter
// spaces and objectives used across module tests.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "space/parameter_space.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::testutil {

/// 3-parameter all-discrete space: A (4 levels), B (3 numeric levels),
/// C (integer 0..4) — 60 configurations, no constraints.
inline space::SpacePtr small_discrete_space() {
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(space::Parameter::categorical("A", {"a0", "a1", "a2", "a3"}));
  s->add(space::Parameter::categorical_numeric("B", {1, 2, 4}));
  s->add(space::Parameter::integer("C", 0, 4));
  return s;
}

/// Mixed space: one categorical (3 levels) + one continuous in [0, 10].
inline space::SpacePtr mixed_space() {
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(space::Parameter::categorical("cat", {"x", "y", "z"}));
  s->add(space::Parameter::continuous("t", 0.0, 10.0));
  return s;
}

/// Deterministic separable objective on small_discrete_space():
/// f = (A-1)² + (B-2)² + (C-3)² + 1; unique optimum at levels (1, 2, 3)
/// with value 1.
inline double separable_value(const space::Configuration& c) {
  const double a = static_cast<double>(c.level(0)) - 1.0;
  const double b = static_cast<double>(c.level(1)) - 2.0;
  const double d = static_cast<double>(c.level(2)) - 3.0;
  return a * a + b * b + d * d + 1.0;
}

/// The separable objective as a frozen dataset.
inline tabular::TabularObjective separable_dataset() {
  return tabular::TabularObjective::from_function(
      "separable", small_discrete_space(), separable_value);
}

/// A seeded random all-discrete space: 3-6 power-of-two numeric parameters,
/// roughly half of the later ones conditional on a *proper* subset of an
/// earlier parent's values, plus up to two divisibility constraints. Level 0
/// always carries the value 1, so the all-sentinel configuration satisfies
/// every divisibility constraint and the valid set is never empty. Shared by
/// the space property suite and the SIMD dispatch-parity suite.
inline space::SpacePtr random_conditional_space(std::uint64_t seed) {
  Rng rng(seed);
  auto s = std::make_shared<space::ParameterSpace>();
  const std::size_t n = 3 + rng.index(4);
  std::vector<std::size_t> levels(n);
  for (std::size_t i = 0; i < n; ++i) {
    levels[i] = 2 + rng.index(4);
    std::vector<double> values;
    for (std::size_t l = 0; l < levels[i]; ++l) {
      values.push_back(static_cast<double>(1ULL << l));
    }
    space::Parameter p =
        space::Parameter::categorical_numeric("p" + std::to_string(i), values);
    const bool conditional = i > 0 && rng.index(2) == 0;
    if (conditional) {
      const std::size_t parent = rng.index(i);
      // A proper subset of the parent's levels (add_conditional rejects
      // always-active children by design).
      std::vector<std::size_t> order(levels[parent]);
      for (std::size_t l = 0; l < order.size(); ++l) {
        order[l] = l;
      }
      for (std::size_t l = order.size(); l > 1; --l) {
        std::swap(order[l - 1], order[rng.index(l)]);
      }
      const std::size_t count = 1 + rng.index(levels[parent] - 1);
      std::vector<double> active;
      for (std::size_t l = 0; l < count; ++l) {
        active.push_back(static_cast<double>(1ULL << order[l]));
      }
      s->add_conditional(std::move(p), "p" + std::to_string(parent), active);
    } else {
      s->add(std::move(p));
    }
  }
  const std::size_t num_constraints = rng.index(3);
  for (std::size_t t = 0; t < num_constraints; ++t) {
    const std::size_t a = rng.index(n);
    const std::size_t b = rng.index(n);
    if (a != b) {
      s->add_divisibility("p" + std::to_string(a), "p" + std::to_string(b));
    }
  }
  return s;
}

}  // namespace hpb::testutil
