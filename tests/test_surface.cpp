// Tests for the synthetic performance-surface toolkit: determinism,
// positivity, effect semantics, and calibration guarantees.
#include "surface/surface.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/importance.hpp"
#include "test_util.hpp"

namespace hpb::surface {
namespace {

TEST(Surface, DeterministicForFixedSeed) {
  auto sp = testutil::small_discrete_space();
  const Surface a = SurfaceBuilder(sp, 42)
                        .random_main_effect("A", 0.3)
                        .random_interaction("A", "B", 0.1)
                        .noise(0.05)
                        .build();
  const Surface b = SurfaceBuilder(sp, 42)
                        .random_main_effect("A", 0.3)
                        .random_interaction("A", "B", 0.1)
                        .noise(0.05)
                        .build();
  for (const auto& c : sp->enumerate()) {
    EXPECT_DOUBLE_EQ(a.raw(c), b.raw(c));
  }
}

TEST(Surface, DifferentSeedsDiffer) {
  auto sp = testutil::small_discrete_space();
  const Surface a = SurfaceBuilder(sp, 1).random_main_effect("A", 0.3).build();
  const Surface b = SurfaceBuilder(sp, 2).random_main_effect("A", 0.3).build();
  bool any_diff = false;
  for (const auto& c : sp->enumerate()) {
    any_diff |= (a.raw(c) != b.raw(c));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Surface, AlwaysPositive) {
  auto sp = testutil::small_discrete_space();
  const Surface s = SurfaceBuilder(sp, 7)
                        .base(0.5)
                        .random_main_effect("A", 1.0)
                        .random_main_effect("B", 1.0)
                        .random_interaction("B", "C", 0.8)
                        .noise(0.5)
                        .build();
  for (const auto& c : sp->enumerate()) {
    EXPECT_GT(s.raw(c), 0.0);
  }
}

TEST(Surface, ExplicitMainEffectMultiplies) {
  auto sp = testutil::small_discrete_space();
  const Surface s = SurfaceBuilder(sp, 0)
                        .base(2.0)
                        .main_effect("B", {1.0, 3.0, 5.0})
                        .build();
  space::Configuration c(std::vector<double>{0, 0, 0});
  EXPECT_DOUBLE_EQ(s.raw(c), 2.0);
  c.set_level(1, 1);
  EXPECT_DOUBLE_EQ(s.raw(c), 6.0);
  c.set_level(1, 2);
  EXPECT_DOUBLE_EQ(s.raw(c), 10.0);
}

TEST(Surface, InteractionTableIndexedRowMajor) {
  auto sp = std::make_shared<space::ParameterSpace>();
  sp->add(space::Parameter::integer("p", 0, 1));
  sp->add(space::Parameter::integer("q", 0, 2));
  const Surface s = SurfaceBuilder(sp, 0)
                        .interaction_table("p", "q",
                                           {1, 2, 3,    // p=0 row
                                            4, 5, 6})   // p=1 row
                        .build();
  space::Configuration c(std::vector<double>{1, 2});
  EXPECT_DOUBLE_EQ(s.raw(c), 6.0);
  c.set_level(0, 0);
  c.set_level(1, 1);
  EXPECT_DOUBLE_EQ(s.raw(c), 2.0);
}

TEST(Surface, ContinuousEffectUsesValue) {
  auto sp = testutil::mixed_space();
  const Surface s = SurfaceBuilder(sp, 0)
                        .continuous_effect("t", [](double t) { return 1.0 + t; })
                        .build();
  space::Configuration c(std::vector<double>{0, 4.0});
  EXPECT_DOUBLE_EQ(s.raw(c), 5.0);
}

TEST(Surface, NoiseIsFrozenPerConfiguration) {
  auto sp = testutil::small_discrete_space();
  const Surface s = SurfaceBuilder(sp, 3).noise(0.3).build();
  const auto configs = sp->enumerate();
  // Same config evaluates identically every time (a frozen dataset).
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_DOUBLE_EQ(s.raw(configs[5]), s.raw(configs[5]));
  }
  // And different configs get different noise.
  EXPECT_NE(s.raw(configs[5]), s.raw(configs[6]));
}

TEST(SurfaceBuilder, ValidatesArguments) {
  auto sp = testutil::small_discrete_space();
  SurfaceBuilder b(sp, 0);
  EXPECT_THROW(b.main_effect("A", {1.0}), Error);             // wrong count
  EXPECT_THROW(b.main_effect("A", {1, 1, 1, -1}), Error);     // negative
  EXPECT_THROW(b.main_effect("missing", {1.0}), Error);       // unknown name
  EXPECT_THROW(b.random_interaction("A", "A", 0.1), Error);   // self-pair
  EXPECT_THROW(b.interaction_table("A", "B", {1.0}), Error);  // wrong size
  EXPECT_THROW(b.noise(-0.1), Error);
  EXPECT_THROW(b.base(0.0), Error);

  auto mixed = testutil::mixed_space();
  SurfaceBuilder mb(mixed, 0);
  EXPECT_THROW(mb.random_main_effect("t", 0.1), Error);  // continuous
  EXPECT_THROW(mb.continuous_effect("cat", [](double) { return 1.0; }),
               Error);  // discrete
}

TEST(Calibration, RangeHitsBothEndpoints) {
  auto sp = testutil::small_discrete_space();
  const Surface s =
      SurfaceBuilder(sp, 11).random_main_effect("A", 0.5).noise(0.1).build();
  const auto ds = calibrate_to_range("cal", s, 2.0, 9.0);
  EXPECT_NEAR(ds.best_value(), 2.0, 1e-9);
  EXPECT_NEAR(ds.worst_value(), 9.0, 1e-9);
}

TEST(Calibration, AnchorHitsBestAndAnchorExactly) {
  auto sp = testutil::small_discrete_space();
  const Surface s =
      SurfaceBuilder(sp, 13).random_main_effect("A", 0.5).noise(0.1).build();
  const space::Configuration anchor = sp->configuration_at(17);
  const auto ds = calibrate_to_anchor("cal", s, 1.5, anchor, 4.5);
  EXPECT_NEAR(ds.best_value(), 1.5, 1e-9);
  EXPECT_NEAR(ds.value_of(anchor), 4.5, 1e-9);
}

TEST(Calibration, PreservesOrdering) {
  auto sp = testutil::small_discrete_space();
  const Surface s =
      SurfaceBuilder(sp, 17).random_main_effect("B", 0.8).noise(0.2).build();
  const auto ds = calibrate_to_range("cal", s, 1.0, 2.0);
  const auto configs = sp->enumerate();
  for (std::size_t i = 1; i < configs.size(); ++i) {
    const bool raw_less = s.raw(configs[i - 1]) < s.raw(configs[i]);
    const bool cal_less = ds.value_of(configs[i - 1]) < ds.value_of(configs[i]);
    EXPECT_EQ(raw_less, cal_less);
  }
}

TEST(Calibration, QuantileHitsBestAndQuantileExactly) {
  auto sp = testutil::small_discrete_space();
  const Surface s =
      SurfaceBuilder(sp, 23).random_main_effect("A", 0.6).noise(0.15).build();
  const auto ds = calibrate_to_quantile("cal", s, 2.0, 0.5, 5.0);
  EXPECT_NEAR(ds.best_value(), 2.0, 1e-9);
  EXPECT_NEAR(ds.percentile_value(50.0), 5.0, 1e-9);
  // The right tail extends beyond the anchored median.
  EXPECT_GT(ds.worst_value(), 5.0);
  EXPECT_THROW((void)calibrate_to_quantile("x", s, 5.0, 0.5, 2.0), Error);
  EXPECT_THROW((void)calibrate_to_quantile("x", s, 1.0, 0.0, 2.0), Error);
}

TEST(Calibration, RejectsInvertedTargets) {
  auto sp = testutil::small_discrete_space();
  const Surface s = SurfaceBuilder(sp, 1).random_main_effect("A", 0.3).build();
  EXPECT_THROW((void)calibrate_to_range("x", s, 5.0, 2.0), Error);
}

TEST(Surface, StrongerEffectDominatesImportance) {
  // A surface where B's effect is much stronger than C's must yield a
  // higher JS-divergence importance for B on the full dataset.
  auto sp = testutil::small_discrete_space();
  const Surface s = SurfaceBuilder(sp, 19)
                        .main_effect("B", {1.0, 2.0, 4.0})
                        .main_effect("C", {1.0, 1.02, 1.04, 1.02, 1.0})
                        .noise(0.01)
                        .build();
  const auto ds = calibrate_to_range("imp", s, 1.0, 10.0);
  const auto entries = core::dataset_importance(ds, 0.2);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().parameter, "B");
  double b_score = 0, c_score = 0;
  for (const auto& e : entries) {
    if (e.parameter == "B") b_score = e.js_divergence;
    if (e.parameter == "C") c_score = e.js_divergence;
  }
  EXPECT_GT(b_score, 4.0 * c_score);
}

}  // namespace
}  // namespace hpb::surface
