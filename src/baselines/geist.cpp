#include "baselines/geist.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/quantile.hpp"

namespace hpb::baselines {
namespace {

constexpr double kUnobserved = std::numeric_limits<double>::quiet_NaN();

}  // namespace

Geist::Geist(space::SpacePtr space, GeistConfig config, std::uint64_t seed)
    : Geist(space, config, seed,
            std::make_shared<const std::vector<space::Configuration>>(
                space->enumerate()),
            nullptr) {}

Geist::Geist(space::SpacePtr space, GeistConfig config, std::uint64_t seed,
             std::shared_ptr<const std::vector<space::Configuration>> pool,
             std::shared_ptr<const ConfigGraph> graph)
    : space_(std::move(space)),
      config_(config),
      rng_(seed),
      pool_(std::move(pool)),
      graph_(std::move(graph)) {
  HPB_REQUIRE(space_ != nullptr, "Geist: null space");
  HPB_REQUIRE(pool_ != nullptr && !pool_->empty(), "Geist: empty pool");
  HPB_REQUIRE(config_.initial_samples >= 2, "Geist: need >= 2 initial samples");
  HPB_REQUIRE(config_.batch_size >= 1, "Geist: batch_size must be >= 1");
  if (graph_ == nullptr) {
    graph_ = std::make_shared<const ConfigGraph>(*space_, *pool_);
  }
  HPB_REQUIRE(graph_->num_nodes() == pool_->size(),
              "Geist: graph/pool size mismatch");
  node_of_ordinal_.reserve(pool_->size());
  for (std::size_t i = 0; i < pool_->size(); ++i) {
    node_of_ordinal_.emplace(space_->ordinal_of((*pool_)[i]),
                             static_cast<std::uint32_t>(i));
  }
  observed_.assign(pool_->size(), kUnobserved);
}

void Geist::propagate_and_refill_queue() {
  // Label observed nodes by the quantile threshold on observed values.
  std::vector<double> values;
  values.reserve(observed_nodes_.size());
  for (std::uint32_t node : observed_nodes_) {
    values.push_back(observed_[node]);
  }
  const double threshold = stats::split_threshold(values, config_.quantile);

  Labels labels(pool_->size(), -1);
  for (std::uint32_t node : observed_nodes_) {
    labels[node] = observed_[node] < threshold ? std::int8_t{1} : std::int8_t{0};
  }
  // Failed evaluations have no value but a definite verdict: hard-bad.
  for (std::uint32_t node : failed_) {
    labels[node] = 0;
  }
  beliefs_ = camlp_propagate(*graph_, labels, config_.camlp);

  // Queue the top unlabeled nodes by good-belief (random tie-breaking via a
  // tiny hash jitter keyed on this round's RNG draw).
  const std::uint64_t jitter_key = rng_.next_u64();
  std::vector<std::uint32_t> candidates;
  candidates.reserve(pool_->size() - observed_nodes_.size());
  for (std::uint32_t i = 0; i < pool_->size(); ++i) {
    if (std::isnan(observed_[i]) && !pending_.contains(i) &&
        !failed_.contains(i)) {
      candidates.push_back(i);
    }
  }
  HPB_REQUIRE(!candidates.empty(), "Geist: pool exhausted");
  const std::size_t take = std::min<std::size_t>(config_.batch_size,
                                                 candidates.size());
  auto score = [&](std::uint32_t node) {
    return beliefs_[node] +
           1e-12 * hash_to_unit(hash_combine(jitter_key, node));
  };
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(take),
                    candidates.end(), [&](std::uint32_t a, std::uint32_t b) {
                      return score(a) > score(b);
                    });
  queue_.assign(candidates.begin(),
                candidates.begin() + static_cast<std::ptrdiff_t>(take));

  // Export propagation internals. Reads only — the queue above is already
  // fixed, so a traced Geist proposes exactly what an untraced one would.
  if (recorder_ != nullptr && recorder_->active()) {
    std::size_t good_labels = 0;
    for (std::uint32_t node : observed_nodes_) {
      if (labels[node] == 1) {
        ++good_labels;
      }
    }
    double belief_sum = 0.0;
    double belief_top = 0.0;
    for (std::uint32_t node : candidates) {
      belief_sum += beliefs_[node];
      belief_top = std::max(belief_top, beliefs_[node]);
    }
    const double belief_mean =
        belief_sum / static_cast<double>(candidates.size());
    if (recorder_->metrics != nullptr) {
      recorder_->metrics->counter("geist.propagations").add(1);
      recorder_->metrics->gauge("geist.observed")
          .set(static_cast<double>(observed_nodes_.size()));
      recorder_->metrics->gauge("geist.good_labels")
          .set(static_cast<double>(good_labels));
      recorder_->metrics->gauge("geist.queue")
          .set(static_cast<double>(queue_.size()));
      recorder_->metrics->gauge("geist.belief_mean").set(belief_mean);
      recorder_->metrics->gauge("geist.belief_top").set(belief_top);
    }
    if (recorder_->trace != nullptr) {
      const std::uint64_t now = recorder_->now_ns();
      const obs::TraceAttr attrs[] = {
          obs::TraceAttr::uint("observed", observed_nodes_.size()),
          obs::TraceAttr::uint("good_labels", good_labels),
          obs::TraceAttr::uint("failed", failed_.size()),
          obs::TraceAttr::uint("queue", queue_.size()),
          obs::TraceAttr::num("threshold", threshold),
          obs::TraceAttr::num("belief_mean", belief_mean),
          obs::TraceAttr::num("belief_top", belief_top),
      };
      recorder_->trace->emit({.name = "geist.propagate",
                              .id = recorder_->trace->next_id(),
                              .parent = 0,
                              .start_ns = now,
                              .end_ns = now,
                              .attrs = attrs});
    }
  }
}

space::Configuration Geist::suggest() {
  if (observed_nodes_.size() < config_.initial_samples) {
    HPB_REQUIRE(observed_nodes_.size() + pending_.size() + failed_.size() <
                    pool_->size(),
                "Geist: pool exhausted");
    for (;;) {
      const std::size_t i = rng_.index(pool_->size());
      if (std::isnan(observed_[i]) &&
          !pending_.contains(static_cast<std::uint32_t>(i)) &&
          !failed_.contains(static_cast<std::uint32_t>(i))) {
        return (*pool_)[i];
      }
    }
  }
  while (!queue_.empty() && (pending_.contains(queue_.front()) ||
                             failed_.contains(queue_.front()))) {
    queue_.pop_front();  // claimed by an outstanding batch meanwhile
  }
  if (queue_.empty()) {
    propagate_and_refill_queue();
  }
  const std::uint32_t node = queue_.front();
  queue_.pop_front();
  return (*pool_)[node];
}

std::vector<space::Configuration> Geist::suggest_batch(std::size_t k) {
  HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
  if (k == 1) {
    return {suggest()};
  }
  std::vector<space::Configuration> batch;
  batch.reserve(k);
  while (batch.size() < k &&
         observed_nodes_.size() + pending_.size() + failed_.size() <
             pool_->size()) {
    space::Configuration c = suggest();
    pending_.insert(node_of_ordinal_.at(space_->ordinal_of(c)));
    batch.push_back(std::move(c));
  }
  HPB_REQUIRE(!batch.empty(), "Geist: pool exhausted");
  return batch;
}

void Geist::observe(const space::Configuration& config, double y) {
  const auto it = node_of_ordinal_.find(space_->ordinal_of(config));
  HPB_REQUIRE(it != node_of_ordinal_.end(),
              "Geist::observe: configuration not in pool");
  const std::uint32_t node = it->second;
  pending_.erase(node);
  if (std::isnan(observed_[node])) {
    observed_nodes_.push_back(node);
  }
  observed_[node] = y;
}

void Geist::observe_failure(const space::Configuration& config,
                            core::EvalStatus status) {
  HPB_REQUIRE(status != core::EvalStatus::kOk,
              "Geist::observe_failure: status must be a failure");
  const auto it = node_of_ordinal_.find(space_->ordinal_of(config));
  HPB_REQUIRE(it != node_of_ordinal_.end(),
              "Geist::observe_failure: configuration not in pool");
  const std::uint32_t node = it->second;
  pending_.erase(node);
  failed_.insert(node);  // hard-bad label; never suggested again
}

void Geist::abandon(const space::Configuration& config) {
  const auto it = node_of_ordinal_.find(space_->ordinal_of(config));
  HPB_REQUIRE(it != node_of_ordinal_.end(),
              "Geist::abandon: configuration not in pool");
  pending_.erase(it->second);
}

}  // namespace hpb::baselines
