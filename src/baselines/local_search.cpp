#include "baselines/local_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "stats/summary.hpp"

namespace hpb::baselines {
namespace {

constexpr int kMaxDraws = 100000;

}  // namespace

// ------------------------------------------------------- SimulatedAnnealing
SimulatedAnnealing::SimulatedAnnealing(space::SpacePtr space,
                                       AnnealingConfig config,
                                       std::uint64_t seed)
    : space_(std::move(space)), config_(config), rng_(seed) {
  HPB_REQUIRE(space_ != nullptr, "SimulatedAnnealing: null space");
  HPB_REQUIRE(space_->is_finite(), "SimulatedAnnealing: finite spaces only");
  HPB_REQUIRE(config_.initial_samples >= 2,
              "SimulatedAnnealing: need >= 2 initial samples");
  HPB_REQUIRE(config_.cooling_rate > 0.0 && config_.cooling_rate < 1.0,
              "SimulatedAnnealing: cooling_rate in (0,1)");
}

space::Configuration SimulatedAnnealing::random_unevaluated() {
  for (int attempt = 0; attempt < kMaxDraws; ++attempt) {
    space::Configuration c = space_->sample_uniform(rng_);
    if (!evaluated_.contains(space_->ordinal_of(c))) {
      return c;
    }
  }
  HPB_REQUIRE(false, "SimulatedAnnealing: space exhausted");
  return {};  // unreachable
}

space::Configuration SimulatedAnnealing::mutate(
    const space::Configuration& c) {
  // Change one random parameter to a random different level, retrying until
  // the result is valid and unevaluated (falling back to uniform sampling).
  for (int attempt = 0; attempt < 200; ++attempt) {
    space::Configuration probe = c;
    const std::size_t p = rng_.index(space_->num_params());
    const std::size_t levels = space_->param(p).num_levels();
    if (levels < 2) {
      continue;
    }
    std::size_t l = rng_.index(levels - 1);
    if (l >= probe.level(p)) {
      ++l;  // skip the current level
    }
    probe.set_level(p, l);
    if (space_->satisfies(probe) &&
        !evaluated_.contains(space_->ordinal_of(probe))) {
      return probe;
    }
  }
  return random_unevaluated();
}

space::Configuration SimulatedAnnealing::suggest() {
  HPB_REQUIRE(!has_pending_,
              "SimulatedAnnealing: observe() the previous suggestion first");
  space::Configuration next;
  if (initial_values_.size() < config_.initial_samples || !has_current_) {
    next = random_unevaluated();
  } else {
    next = mutate(current_);
  }
  pending_ = next;
  has_pending_ = true;
  return next;
}

std::vector<space::Configuration> SimulatedAnnealing::suggest_batch(
    std::size_t k) {
  HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
  if (k == 1) {
    return {suggest()};
  }
  HPB_REQUIRE(!has_pending_,
              "SimulatedAnnealing: observe() the previous suggestion first");
  std::vector<space::Configuration> batch;
  batch.reserve(k);
  std::unordered_set<std::uint64_t> taken;
  int attempts = 0;
  const int max_attempts = static_cast<int>(k) * 200;
  while (batch.size() < k && attempts++ < max_attempts) {
    space::Configuration c =
        (initial_values_.size() < config_.initial_samples || !has_current_)
            ? random_unevaluated()
            : mutate(current_);
    if (taken.insert(space_->ordinal_of(c)).second) {
      batch.push_back(std::move(c));
    }
  }
  HPB_REQUIRE(!batch.empty(),
              "SimulatedAnnealing: could not assemble a batch");
  return batch;
}

void SimulatedAnnealing::observe(const space::Configuration& config,
                                 double y) {
  evaluated_[space_->ordinal_of(config)] = y;
  has_pending_ = false;

  if (initial_values_.size() < config_.initial_samples) {
    initial_values_.push_back(y);
    if (!has_current_ || y < current_value_) {
      current_ = config;
      current_value_ = y;
      has_current_ = true;
    }
    if (initial_values_.size() == config_.initial_samples) {
      const auto stats = stats::summarize(initial_values_);
      temperature_ = std::max(config_.initial_temperature_factor *
                                  stats.stddev(),
                              1e-12);
    }
    return;
  }

  // Metropolis acceptance on the proposed move.
  const double delta = y - current_value_;
  if (delta <= 0.0 || rng_.uniform() < std::exp(-delta / temperature_)) {
    current_ = config;
    current_value_ = y;
  }
  temperature_ = std::max(temperature_ * config_.cooling_rate, 1e-12);
}

void SimulatedAnnealing::observe_failure(const space::Configuration& config,
                                         core::EvalStatus status) {
  HPB_REQUIRE(status != core::EvalStatus::kOk,
              "SimulatedAnnealing::observe_failure: status must be a failure");
  evaluated_[space_->ordinal_of(config)] =
      std::numeric_limits<double>::infinity();
  has_pending_ = false;
  // Bootstrap draws contribute no value (the initial temperature needs real
  // measurements); afterwards the move is rejected and the schedule cools.
  if (initial_values_.size() >= config_.initial_samples) {
    temperature_ = std::max(temperature_ * config_.cooling_rate, 1e-12);
  }
}

void SimulatedAnnealing::abandon(const space::Configuration& config) {
  // The abandoned move was never taken: the walk stays at the current
  // incumbent, nothing is marked evaluated, and the schedule does not cool
  // (no budget was actually spent on a measurement).
  if (has_pending_ && pending_.values() == config.values()) {
    has_pending_ = false;
  }
}

// -------------------------------------------------------------- HillClimbing
HillClimbing::HillClimbing(space::SpacePtr space, HillClimbConfig config,
                           std::uint64_t seed)
    : space_(std::move(space)), config_(config), rng_(seed) {
  HPB_REQUIRE(space_ != nullptr, "HillClimbing: null space");
  HPB_REQUIRE(space_->is_finite(), "HillClimbing: finite spaces only");
  HPB_REQUIRE(config_.initial_samples >= 1,
              "HillClimbing: need >= 1 initial sample");
}

space::Configuration HillClimbing::random_unevaluated() {
  for (int attempt = 0; attempt < kMaxDraws; ++attempt) {
    space::Configuration c = space_->sample_uniform(rng_);
    if (!evaluated_.contains(space_->ordinal_of(c))) {
      return c;
    }
  }
  HPB_REQUIRE(false, "HillClimbing: space exhausted");
  return {};  // unreachable
}

void HillClimbing::refill_neighbors() {
  neighbors_.clear();
  for (std::size_t p = 0; p < space_->num_params(); ++p) {
    const std::size_t original = incumbent_.level(p);
    for (std::size_t l = 0; l < space_->param(p).num_levels(); ++l) {
      if (l == original) {
        continue;
      }
      space::Configuration probe = incumbent_;
      probe.set_level(p, l);
      if (space_->satisfies(probe) &&
          !evaluated_.contains(space_->ordinal_of(probe))) {
        neighbors_.push_back(std::move(probe));
      }
    }
  }
  rng_.shuffle(neighbors_);
}

space::Configuration HillClimbing::suggest() {
  if (evaluated_.size() < config_.initial_samples || !has_incumbent_) {
    return random_unevaluated();
  }
  if (neighbors_.empty()) {
    refill_neighbors();
    if (neighbors_.empty()) {
      // Local optimum with a fully explored neighborhood: restart.
      ++restarts_;
      has_incumbent_ = false;
      return random_unevaluated();
    }
  }
  space::Configuration next = std::move(neighbors_.back());
  neighbors_.pop_back();
  return next;
}

std::vector<space::Configuration> HillClimbing::suggest_batch(std::size_t k) {
  HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
  if (k == 1) {
    return {suggest()};
  }
  std::vector<space::Configuration> batch;
  batch.reserve(k);
  std::unordered_set<std::uint64_t> taken;
  int attempts = 0;
  const int max_attempts = static_cast<int>(k) * 200;
  while (batch.size() < k && attempts++ < max_attempts) {
    // Neighborhood pops are distinct and unevaluated; only random draws in
    // the bootstrap/restart phase can collide within the batch.
    space::Configuration c = suggest();
    if (taken.insert(space_->ordinal_of(c)).second) {
      batch.push_back(std::move(c));
    }
  }
  HPB_REQUIRE(!batch.empty(), "HillClimbing: could not assemble a batch");
  return batch;
}

void HillClimbing::observe(const space::Configuration& config, double y) {
  evaluated_[space_->ordinal_of(config)] = y;
  if (!has_incumbent_ || y < incumbent_value_) {
    incumbent_ = config;
    incumbent_value_ = y;
    has_incumbent_ = true;
    neighbors_.clear();  // new incumbent: explore its neighborhood instead
  }
}

void HillClimbing::observe_failure(const space::Configuration& config,
                                   core::EvalStatus status) {
  HPB_REQUIRE(status != core::EvalStatus::kOk,
              "HillClimbing::observe_failure: status must be a failure");
  evaluated_[space_->ordinal_of(config)] =
      std::numeric_limits<double>::infinity();
}

}  // namespace hpb::baselines
