#include "baselines/boosted_trees.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "baselines/batch_util.hpp"

namespace hpb::baselines {

BoostedTrees::BoostedTrees(GbtConfig config) : config_(config) {
  HPB_REQUIRE(config_.rounds >= 1, "BoostedTrees: rounds must be >= 1");
  HPB_REQUIRE(config_.max_depth >= 1, "BoostedTrees: max_depth must be >= 1");
  HPB_REQUIRE(config_.learning_rate > 0.0 && config_.learning_rate <= 1.0,
              "BoostedTrees: learning_rate in (0,1]");
  HPB_REQUIRE(config_.min_samples_leaf >= 1,
              "BoostedTrees: min_samples_leaf must be >= 1");
  HPB_REQUIRE(config_.subsample > 0.0 && config_.subsample <= 1.0,
              "BoostedTrees: subsample in (0,1]");
}

namespace {

double mean_of(std::span<const double> values,
               std::span<const std::size_t> rows) {
  double acc = 0.0;
  for (std::size_t r : rows) {
    acc += values[r];
  }
  return acc / static_cast<double>(rows.size());
}

/// Best split of `rows` on one feature by exact scan: returns the squared-
/// error reduction and the threshold, or gain 0 if no valid split exists.
struct SplitCandidate {
  double gain = 0.0;
  double threshold = 0.0;
};

SplitCandidate best_split_on_feature(const hpb::linalg::Matrix& x,
                                     std::span<const double> residuals,
                                     std::span<const std::size_t> rows,
                                     std::size_t feature,
                                     std::size_t min_leaf) {
  // Sort row indices by feature value.
  std::vector<std::size_t> order(rows.begin(), rows.end());
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return x(a, feature) < x(b, feature);
  });

  const std::size_t n = order.size();
  double total = 0.0, total_sq = 0.0;
  for (std::size_t r : order) {
    total += residuals[r];
    total_sq += residuals[r] * residuals[r];
  }
  const double parent_sse = total_sq - total * total / static_cast<double>(n);

  SplitCandidate best;
  double left_sum = 0.0, left_sq = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double v = residuals[order[i]];
    left_sum += v;
    left_sq += v * v;
    // Can only split between distinct feature values.
    if (x(order[i], feature) == x(order[i + 1], feature)) {
      continue;
    }
    const std::size_t nl = i + 1;
    const std::size_t nr = n - nl;
    if (nl < min_leaf || nr < min_leaf) {
      continue;
    }
    const double right_sum = total - left_sum;
    const double right_sq = total_sq - left_sq;
    const double sse =
        (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
        (right_sq - right_sum * right_sum / static_cast<double>(nr));
    const double gain = parent_sse - sse;
    if (gain > best.gain) {
      best.gain = gain;
      best.threshold =
          0.5 * (x(order[i], feature) + x(order[i + 1], feature));
    }
  }
  return best;
}

}  // namespace

void BoostedTrees::build_tree(Tree& tree, const linalg::Matrix& x,
                              std::span<const double> residuals,
                              std::vector<std::size_t>& rows,
                              std::size_t depth) {
  const auto node_index = static_cast<std::int32_t>(tree.size());
  tree.emplace_back();
  tree[node_index].value = mean_of(residuals, rows);

  if (depth == 0 || rows.size() < 2 * config_.min_samples_leaf) {
    return;  // leaf
  }

  // Exhaustive split search over all features.
  double best_gain = 0.0;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  for (std::size_t f = 0; f < x.cols(); ++f) {
    const SplitCandidate cand = best_split_on_feature(
        x, residuals, rows, f, config_.min_samples_leaf);
    if (cand.gain > best_gain) {
      best_gain = cand.gain;
      best_feature = f;
      best_threshold = cand.threshold;
    }
  }
  if (best_gain <= 1e-12) {
    return;  // no useful split: leaf
  }
  split_gain_[best_feature] += best_gain;

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (x(r, best_feature) <= best_threshold ? left_rows : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  tree[node_index].feature = static_cast<std::int32_t>(best_feature);
  tree[node_index].threshold = best_threshold;
  tree[node_index].left = static_cast<std::int32_t>(tree.size());
  build_tree(tree, x, residuals, left_rows, depth - 1);
  tree[node_index].right = static_cast<std::int32_t>(tree.size());
  build_tree(tree, x, residuals, right_rows, depth - 1);
}

void BoostedTrees::fit(const linalg::Matrix& x, std::span<const double> y,
                       std::uint64_t seed) {
  HPB_REQUIRE(x.rows() == y.size(), "BoostedTrees::fit: size mismatch");
  HPB_REQUIRE(x.rows() >= 2, "BoostedTrees::fit: need >= 2 rows");
  trees_.clear();
  num_features_ = x.cols();
  split_gain_.assign(num_features_, 0.0);

  base_prediction_ =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());
  std::vector<double> residuals(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    residuals[i] = y[i] - base_prediction_;
  }

  Rng rng(seed);
  const auto n_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.subsample *
                                  static_cast<double>(x.rows())));
  for (std::size_t round = 0; round < config_.rounds; ++round) {
    std::vector<std::size_t> rows;
    if (n_sub >= x.rows()) {
      rows.resize(x.rows());
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    } else {
      rows = rng.sample_without_replacement(x.rows(), n_sub);
    }
    Tree tree;
    build_tree(tree, x, residuals, rows, config_.max_depth);
    // Update residuals with the shrunken tree prediction over ALL rows.
    for (std::size_t r = 0; r < x.rows(); ++r) {
      residuals[r] -=
          config_.learning_rate * predict_tree(tree, x.row(r));
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double BoostedTrees::predict_tree(const Tree& tree,
                                  std::span<const double> features) {
  std::int32_t node = 0;
  while (tree[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = tree[static_cast<std::size_t>(node)];
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold
               ? n.left
               : n.right;
  }
  return tree[static_cast<std::size_t>(node)].value;
}

double BoostedTrees::predict(std::span<const double> features) const {
  HPB_REQUIRE(fitted_, "BoostedTrees::predict: fit() first");
  HPB_REQUIRE(features.size() == num_features_,
              "BoostedTrees::predict: feature width mismatch");
  double acc = base_prediction_;
  for (const Tree& tree : trees_) {
    acc += config_.learning_rate * predict_tree(tree, features);
  }
  return acc;
}

double BoostedTrees::evaluate_mse(const linalg::Matrix& x,
                                  std::span<const double> y) const {
  HPB_REQUIRE(x.rows() == y.size(), "evaluate_mse: size mismatch");
  HPB_REQUIRE(x.rows() > 0, "evaluate_mse: empty dataset");
  double acc = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double diff = predict(x.row(r)) - y[r];
    acc += diff * diff;
  }
  return acc / static_cast<double>(x.rows());
}

std::vector<double> BoostedTrees::feature_importance() const {
  HPB_REQUIRE(fitted_, "feature_importance: fit() first");
  std::vector<double> importance = split_gain_;
  const double total =
      std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importance) {
      v /= total;
    }
  }
  return importance;
}

// ------------------------------------------------------------------ BrtTuner
BrtTuner::BrtTuner(space::SpacePtr space, BrtTunerConfig config,
                   std::uint64_t seed)
    : BrtTuner(space, config, seed,
               std::make_shared<const std::vector<space::Configuration>>(
                   space->enumerate())) {}

BrtTuner::BrtTuner(space::SpacePtr space, BrtTunerConfig config,
                   std::uint64_t seed,
                   std::shared_ptr<const std::vector<space::Configuration>> pool)
    : space_(std::move(space)),
      config_(config),
      rng_(seed),
      pool_(std::move(pool)),
      model_(config.model) {
  HPB_REQUIRE(space_ != nullptr, "BrtTuner: null space");
  HPB_REQUIRE(pool_ != nullptr && !pool_->empty(), "BrtTuner: empty pool");
  HPB_REQUIRE(config_.initial_samples >= 2, "BrtTuner: need >= 2 initial");
  HPB_REQUIRE(config_.epsilon >= 0.0 && config_.epsilon <= 1.0,
              "BrtTuner: epsilon in [0,1]");
  HPB_REQUIRE(config_.refit_every >= 1, "BrtTuner: refit_every >= 1");
}

space::Configuration BrtTuner::random_unevaluated() {
  HPB_REQUIRE(evaluated_.size() < pool_->size(), "BrtTuner: pool exhausted");
  for (;;) {
    const auto& c = (*pool_)[rng_.index(pool_->size())];
    if (!evaluated_.contains(space_->ordinal_of(c))) {
      return c;
    }
  }
}

void BrtTuner::refit() {
  linalg::Matrix x(x_.size(), space_->encoded_size());
  for (std::size_t r = 0; r < x_.size(); ++r) {
    std::copy(x_[r].begin(), x_[r].end(), x.row(r).begin());
  }
  model_.fit(x, y_, rng_.next_u64());
  observations_at_fit_ = y_.size();
}

space::Configuration BrtTuner::suggest() {
  if (y_.size() < config_.initial_samples || rng_.bernoulli(config_.epsilon)) {
    return random_unevaluated();
  }
  if (!model_.is_fitted() ||
      y_.size() >= observations_at_fit_ + config_.refit_every) {
    refit();
  }
  const space::Configuration* best = nullptr;
  double best_pred = 0.0;
  for (const auto& c : *pool_) {
    if (evaluated_.contains(space_->ordinal_of(c))) {
      continue;
    }
    const double pred = model_.predict(space_->encode(c));
    if (best == nullptr || pred < best_pred) {
      best = &c;
      best_pred = pred;
    }
  }
  HPB_REQUIRE(best != nullptr, "BrtTuner: pool exhausted");
  return *best;
}

std::vector<space::Configuration> BrtTuner::suggest_batch(std::size_t k) {
  if (k == 1) {
    return {suggest()};
  }
  return detail::greedy_argmin_batch(
      k, *pool_, *space_, evaluated_, rng_,
      [&] {
        return y_.size() < config_.initial_samples ||
               rng_.bernoulli(config_.epsilon);
      },
      [&] {
        if (!model_.is_fitted() ||
            y_.size() >= observations_at_fit_ + config_.refit_every) {
          refit();
        }
      },
      [&](const space::Configuration& c) {
        return model_.predict(space_->encode(c));
      });
}

void BrtTuner::observe(const space::Configuration& config, double y) {
  evaluated_.insert(space_->ordinal_of(config));
  x_.push_back(space_->encode(config));
  y_.push_back(y);
}

void BrtTuner::observe_failure(const space::Configuration& config,
                               core::EvalStatus status) {
  HPB_REQUIRE(status != core::EvalStatus::kOk,
              "BrtTuner::observe_failure: status must be a failure");
  evaluated_.insert(space_->ordinal_of(config));
}

}  // namespace hpb::baselines
