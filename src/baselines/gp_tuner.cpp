#include "baselines/gp_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "stats/summary.hpp"

namespace hpb::baselines {
namespace {

double std_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double std_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

}  // namespace

GpTuner::GpTuner(space::SpacePtr space, GpConfig config, std::uint64_t seed)
    : GpTuner(space, config, seed,
              std::make_shared<const std::vector<space::Configuration>>(
                  space->enumerate())) {}

GpTuner::GpTuner(space::SpacePtr space, GpConfig config, std::uint64_t seed,
                 std::shared_ptr<const std::vector<space::Configuration>> pool)
    : space_(std::move(space)),
      config_(config),
      rng_(seed),
      pool_(std::move(pool)) {
  HPB_REQUIRE(space_ != nullptr, "GpTuner: null space");
  HPB_REQUIRE(pool_ != nullptr && !pool_->empty(), "GpTuner: empty pool");
  HPB_REQUIRE(config_.initial_samples >= 2, "GpTuner: need >= 2 initial");
  HPB_REQUIRE(config_.length_scale > 0.0, "GpTuner: length_scale > 0");
  HPB_REQUIRE(config_.noise_variance > 0.0, "GpTuner: noise_variance > 0");
}

double GpTuner::kernel(std::span<const double> a,
                       std::span<const double> b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return config_.signal_variance *
         std::exp(-0.5 * d2 / (config_.length_scale * config_.length_scale));
}

void GpTuner::refit() {
  const std::size_t n = x_.size();
  const auto stats = stats::summarize(y_);
  y_mean_ = stats.mean();
  y_std_ = std::max(stats.stddev(), 1e-12);

  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(x_[i], x_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += config_.noise_variance;
  }
  chol_ = linalg::cholesky(k);
  linalg::Vector centered(n);
  for (std::size_t i = 0; i < n; ++i) {
    centered[i] = (y_[i] - y_mean_) / y_std_;
  }
  alpha_ = linalg::cholesky_solve(chol_, centered);
  fitted_ = true;

  // Export fit internals (reads only; suggestion order is unaffected).
  if (recorder_ != nullptr && recorder_->active()) {
    if (recorder_->metrics != nullptr) {
      recorder_->metrics->counter("gp.fits").add(1);
      recorder_->metrics->gauge("gp.history").set(static_cast<double>(n));
      recorder_->metrics->gauge("gp.y_mean").set(y_mean_);
      recorder_->metrics->gauge("gp.y_std").set(y_std_);
    }
    if (recorder_->trace != nullptr) {
      const std::uint64_t now = recorder_->now_ns();
      const obs::TraceAttr attrs[] = {
          obs::TraceAttr::uint("history", n),
          obs::TraceAttr::num("y_mean", y_mean_),
          obs::TraceAttr::num("y_std", y_std_),
          obs::TraceAttr::num("length_scale", config_.length_scale),
      };
      recorder_->trace->emit({.name = "gp.fit",
                              .id = recorder_->trace->next_id(),
                              .parent = 0,
                              .start_ns = now,
                              .end_ns = now,
                              .attrs = attrs});
    }
  }
}

GpTuner::Posterior GpTuner::posterior_encoded(std::span<const double> x) const {
  const std::size_t n = x_.size();
  linalg::Vector k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] = kernel(x, x_[i]);
  }
  const double mean_std = linalg::dot(k_star, alpha_);
  const linalg::Vector v = linalg::solve_lower(chol_, k_star);
  const double var_std =
      std::max(kernel(x, x) - linalg::dot(v, v), 1e-12);
  return {y_mean_ + y_std_ * mean_std, y_std_ * y_std_ * var_std};
}

GpTuner::Posterior GpTuner::posterior(const space::Configuration& c) {
  HPB_REQUIRE(fitted_, "GpTuner::posterior: call after enough observations");
  return posterior_encoded(space_->encode(c));
}

double GpTuner::expected_improvement(const space::Configuration& c,
                                     double y_best) const {
  const Posterior post = posterior_encoded(space_->encode(c));
  const double sigma = std::sqrt(post.variance);
  const double z = (y_best - post.mean) / sigma;
  return (y_best - post.mean) * std_normal_cdf(z) + sigma * std_normal_pdf(z);
}

space::Configuration GpTuner::suggest() {
  HPB_REQUIRE(evaluated_.size() < pool_->size(), "GpTuner: pool exhausted");
  if (y_.size() < config_.initial_samples) {
    for (;;) {
      const auto& c = (*pool_)[rng_.index(pool_->size())];
      if (!evaluated_.contains(space_->ordinal_of(c))) {
        return c;
      }
    }
  }
  if (!fitted_) {
    refit();
  }
  const double y_best = *std::min_element(y_.begin(), y_.end());

  // Score either the whole pool or a random subsample of unevaluated
  // candidates.
  const space::Configuration* best = nullptr;
  double best_ei = -1.0;
  auto consider = [&](const space::Configuration& c) {
    if (evaluated_.contains(space_->ordinal_of(c))) {
      return;
    }
    const double ei = expected_improvement(c, y_best);
    if (best == nullptr || ei > best_ei) {
      best = &c;
      best_ei = ei;
    }
  };
  if (config_.candidate_subsample == 0 ||
      config_.candidate_subsample >= pool_->size()) {
    for (const auto& c : *pool_) {
      consider(c);
    }
  } else {
    for (std::size_t k = 0; k < config_.candidate_subsample; ++k) {
      consider((*pool_)[rng_.index(pool_->size())]);
    }
  }
  if (best == nullptr) {
    // Subsample hit only evaluated configs; fall back to random.
    for (;;) {
      const auto& c = (*pool_)[rng_.index(pool_->size())];
      if (!evaluated_.contains(space_->ordinal_of(c))) {
        return c;
      }
    }
  }
  return *best;
}

std::vector<space::Configuration> GpTuner::suggest_batch(std::size_t k) {
  HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
  if (k == 1) {
    return {suggest()};
  }
  HPB_REQUIRE(evaluated_.size() < pool_->size(), "GpTuner: pool exhausted");
  std::vector<space::Configuration> batch;
  std::unordered_set<std::uint64_t> taken;
  auto excluded = [&](const space::Configuration& c) {
    const std::uint64_t ordinal = space_->ordinal_of(c);
    return evaluated_.contains(ordinal) || taken.contains(ordinal);
  };
  auto take = [&](const space::Configuration& c) {
    taken.insert(space_->ordinal_of(c));
    batch.push_back(c);
  };
  const std::size_t want = std::min(k, pool_->size() - evaluated_.size());
  batch.reserve(want);

  if (y_.size() >= config_.initial_samples) {
    if (!fitted_) {
      refit();
    }
    const double y_best = *std::min_element(y_.begin(), y_.end());
    std::vector<std::pair<double, const space::Configuration*>> scored;
    std::unordered_set<std::uint64_t> seen;  // subsampling can redraw
    auto consider = [&](const space::Configuration& c) {
      if (excluded(c) || !seen.insert(space_->ordinal_of(c)).second) {
        return;
      }
      scored.emplace_back(expected_improvement(c, y_best), &c);
    };
    if (config_.candidate_subsample == 0 ||
        config_.candidate_subsample >= pool_->size()) {
      for (const auto& c : *pool_) {
        consider(c);
      }
    } else {
      for (std::size_t i = 0; i < config_.candidate_subsample; ++i) {
        consider((*pool_)[rng_.index(pool_->size())]);
      }
    }
    const std::size_t take_n = std::min(want, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(take_n),
                      scored.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (std::size_t i = 0; i < take_n; ++i) {
      take(*scored[i].second);
    }
  }
  // Initial design, or the subsample surfaced fewer than `want` candidates:
  // fill the rest with distinct uniform draws.
  while (batch.size() < want) {
    const auto& c = (*pool_)[rng_.index(pool_->size())];
    if (!excluded(c)) {
      take(c);
    }
  }
  return batch;
}

void GpTuner::append_observation(const space::Configuration& config,
                                 double y) {
  evaluated_.insert(space_->ordinal_of(config));
  x_.push_back(space_->encode(config));
  y_.push_back(y);
  if (y_.size() > config_.max_history) {
    // Drop the oldest observation unless it is the incumbent best.
    std::size_t drop = 0;
    const std::size_t best = static_cast<std::size_t>(
        std::min_element(y_.begin(), y_.end()) - y_.begin());
    if (drop == best) {
      drop = 1;
    }
    x_.erase(x_.begin() + static_cast<std::ptrdiff_t>(drop));
    y_.erase(y_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  fitted_ = false;
}

void GpTuner::observe(const space::Configuration& config, double y) {
  append_observation(config, y);
  if (y_.size() >= config_.initial_samples) {
    refit();
  }
}

void GpTuner::observe_failure(const space::Configuration& config,
                              core::EvalStatus status) {
  HPB_REQUIRE(status != core::EvalStatus::kOk,
              "GpTuner::observe_failure: status must be a failure");
  evaluated_.insert(space_->ordinal_of(config));
}

void GpTuner::observe_batch(std::span<const core::Observation> observations) {
  bool appended = false;
  for (const core::Observation& o : observations) {
    if (o.ok()) {
      append_observation(o.config, o.y);
      appended = true;
    } else {
      observe_failure(o.config, o.status);
    }
  }
  if (appended && y_.size() >= config_.initial_samples) {
    refit();
  }
}

}  // namespace hpb::baselines
