// PerfNet baseline [Marathe et al., SC'17] re-implemented at simulator
// scale: a deep-learning transfer approach that trains a regression network
// on plentiful source-domain (small-scale) measurements, fine-tunes it on a
// small number of target-domain (large-scale) measurements, and then ranks
// the target configuration space by predicted performance.
//
// Evaluation protocol (§VII): the model receives a total budget of B target
// samples. A fraction is spent on randomly drawn target observations used
// for fine-tuning; the remaining budget is filled with the configurations
// the network predicts to be fastest. The selected set H is scored with the
// tolerance-based Recall of eq. 12.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::baselines {

struct PerfNetConfig {
  std::vector<std::size_t> hidden_sizes = {64, 32};
  nn::TrainConfig pretrain{{1e-3, 0.9, 0.999, 1e-8}, 32, 60};
  nn::TrainConfig finetune{{3e-4, 0.9, 0.999, 1e-8}, 16, 60};
  /// Cap on source rows used for pre-training (subsampled uniformly);
  /// 0 = use all. Keeps epoch cost bounded on 50k-row source datasets.
  std::size_t max_source_rows = 4000;
  /// Fraction of the selection budget spent on random fine-tuning samples.
  double observe_fraction = 0.33;
};

class PerfNet {
 public:
  PerfNet(PerfNetConfig config, std::uint64_t seed);

  /// Pre-train on the full source dataset, draw fine-tuning samples from the
  /// target, and fine-tune. Source and target must share a parameter-space
  /// structure (identical encoding width). `budget` is the total number of
  /// target samples the model may touch (observed + selected).
  void train(const tabular::TabularObjective& source,
             const tabular::TabularObjective& target, std::size_t budget);

  /// Predicted (normalized log) objective for a target configuration;
  /// lower = predicted faster. Only the ordering is meaningful.
  [[nodiscard]] double predict(const space::Configuration& c) const;

  /// The selected set H: the observed fine-tuning samples plus the
  /// top-predicted remaining configurations, |H| == budget. Indices into
  /// the target dataset.
  [[nodiscard]] std::vector<std::size_t> selection() const {
    return selection_;
  }

  [[nodiscard]] std::string name() const { return "PerfNet"; }

 private:
  [[nodiscard]] double normalize(double y) const;

  PerfNetConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Mlp> net_;
  const tabular::TabularObjective* target_ = nullptr;
  double log_mean_ = 0.0;
  double log_std_ = 1.0;
  std::vector<std::size_t> selection_;
};

}  // namespace hpb::baselines
