// Shared batch-assembly helper for the ε-greedy argmin model tuners
// (RidgeTuner, BrtTuner): one top-k prediction scan serves every model slot
// of the batch, and exploration slots draw distinct random configurations.
//
// This is the constant-liar batch specialized to tuners whose model is
// frozen within a round: pretending each picked configuration was observed
// at the incumbent value changes nothing about the (unrefitted) model's
// ranking, so the fill-in reduces to "take the next-best distinct
// candidate" — which is what this helper implements in a single scan.
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "space/parameter_space.hpp"

namespace hpb::baselines::detail {

/// Assemble up to `k` distinct not-yet-evaluated configurations (capped at
/// the remaining pool). `explore_slot` is consulted once per slot (ε-greedy
/// draw); `ensure_fitted` runs before the first model slot of the round;
/// `predict` scores a candidate (lower is better).
[[nodiscard]] std::vector<space::Configuration> greedy_argmin_batch(
    std::size_t k, const std::vector<space::Configuration>& pool,
    const space::ParameterSpace& space,
    const std::unordered_set<std::uint64_t>& evaluated, Rng& rng,
    const std::function<bool()>& explore_slot,
    const std::function<void()>& ensure_fitted,
    const std::function<double(const space::Configuration&)>& predict);

}  // namespace hpb::baselines::detail
