// Linear-model baselines.
//
// RidgeTuner: ridge regression on the one-hot configuration encoding with
// ε-greedy argmin selection — the simplest "response surface" autotuner,
// standing in for the linear/CCA-style modeling the paper cites via
// Ganapathi et al. [18]. Its failure mode (cannot express interactions)
// is exactly what motivates the nonlinear models.
//
// ExhaustiveTuner: evaluates the whole pool in storage order — the
// "Exhaustive best" line of Figs. 2–6 as an ask/tell tuner.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/tuner.hpp"
#include "linalg/matrix.hpp"
#include "space/parameter_space.hpp"

namespace hpb::baselines {

struct RidgeConfig {
  std::size_t initial_samples = 20;
  double regularization = 1e-2;  // lambda of (XᵀX + λI)β = Xᵀy
  double epsilon = 0.1;          // exploration rate
  std::size_t refit_every = 8;
};

class RidgeTuner final : public core::Tuner {
 public:
  RidgeTuner(space::SpacePtr space, RidgeConfig config, std::uint64_t seed);
  RidgeTuner(space::SpacePtr space, RidgeConfig config, std::uint64_t seed,
             std::shared_ptr<const std::vector<space::Configuration>> pool);

  [[nodiscard]] space::Configuration suggest() override;
  /// ε-greedy batch: model slots come from one top-k prediction scan
  /// (constant-liar fill-in for the frozen model), exploration slots are
  /// distinct random draws.
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;
  void observe(const space::Configuration& config, double y) override;
  /// Failed configurations are excluded from future suggestions but never
  /// enter the regression targets (a penalty value would bias the fit).
  void observe_failure(const space::Configuration& config,
                       core::EvalStatus status) override;
  [[nodiscard]] std::string name() const override { return "Ridge"; }

  /// Prediction for a configuration (fitted model required).
  [[nodiscard]] double predict(const space::Configuration& c) const;
  [[nodiscard]] bool is_fitted() const noexcept { return fitted_; }

 private:
  [[nodiscard]] space::Configuration random_unevaluated();
  void refit();

  space::SpacePtr space_;
  RidgeConfig config_;
  Rng rng_;
  std::shared_ptr<const std::vector<space::Configuration>> pool_;
  std::unordered_set<std::uint64_t> evaluated_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;
  linalg::Vector beta_;  // includes intercept as the last coefficient
  bool fitted_ = false;
  std::size_t observations_at_fit_ = 0;
};

/// Deterministic full enumeration of the candidate pool, in order.
class ExhaustiveTuner final : public core::Tuner {
 public:
  explicit ExhaustiveTuner(space::SpacePtr space);
  ExhaustiveTuner(space::SpacePtr space,
                  std::shared_ptr<const std::vector<space::Configuration>> pool);

  [[nodiscard]] space::Configuration suggest() override;
  /// The next min(k, remaining) configurations in storage order.
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;
  void observe(const space::Configuration& config, double y) override;
  [[nodiscard]] std::string name() const override { return "Exhaustive"; }

 private:
  std::shared_ptr<const std::vector<space::Configuration>> pool_;
  std::size_t next_ = 0;
};

}  // namespace hpb::baselines
