// Random selection baseline (§V): configurations drawn uniformly at random
// from the parameter space, without replacement on finite spaces.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/tuner.hpp"
#include "space/parameter_space.hpp"

namespace hpb::baselines {

class RandomSearch final : public core::Tuner {
 public:
  RandomSearch(space::SpacePtr space, std::uint64_t seed);
  RandomSearch(space::SpacePtr space, std::uint64_t seed,
               std::shared_ptr<const std::vector<space::Configuration>> pool);

  [[nodiscard]] space::Configuration suggest() override;
  /// Distinct draws within the batch (suggest() deduplicates only against
  /// observed configurations, so the plain loop could repeat itself).
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;
  void observe(const space::Configuration& config, double y) override;
  /// Failed configurations are simply never redrawn (finite spaces).
  void observe_failure(const space::Configuration& config,
                       core::EvalStatus status) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  space::SpacePtr space_;
  Rng rng_;
  std::shared_ptr<const std::vector<space::Configuration>> pool_;
  std::unordered_set<std::uint64_t> evaluated_;
};

}  // namespace hpb::baselines
