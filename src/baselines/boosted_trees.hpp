// Gradient-boosted regression trees and the model-based tuner built on
// them — the "boosted regression trees for predictive auto-tuning"
// approach of Bergstra et al. [2] that the paper cites as prior supervised
// autotuning work (§VIII).
//
// The learner is a classic least-squares gradient booster over shallow
// axis-aligned trees; features are the one-hot configuration encoding, so
// a depth-d tree captures interactions between up to d parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/tuner.hpp"
#include "linalg/matrix.hpp"
#include "space/parameter_space.hpp"

namespace hpb::baselines {

struct GbtConfig {
  std::size_t rounds = 100;        // number of boosted trees
  std::size_t max_depth = 3;       // depth of each tree
  double learning_rate = 0.15;     // shrinkage per tree
  std::size_t min_samples_leaf = 2;
  /// Fraction of rows sampled (without replacement) per tree; 1.0 disables
  /// stochastic boosting.
  double subsample = 1.0;
};

/// Least-squares gradient-boosted trees: fit on an n×d feature matrix,
/// predict scalar targets.
class BoostedTrees {
 public:
  explicit BoostedTrees(GbtConfig config = {});

  /// Fit to (x, y); any previous model is discarded. Deterministic given
  /// the seed (used only when subsample < 1).
  void fit(const linalg::Matrix& x, std::span<const double> y,
           std::uint64_t seed = 0);

  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Mean squared error over a dataset.
  [[nodiscard]] double evaluate_mse(const linalg::Matrix& x,
                                    std::span<const double> y) const;

  [[nodiscard]] bool is_fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_trees() const noexcept {
    return trees_.size();
  }

  /// Total squared-error reduction attributed to splits on each feature —
  /// the classic impurity-based feature importance (normalized to sum 1).
  [[nodiscard]] std::vector<double> feature_importance() const;

 private:
  /// Flat node array per tree; leaves have feature == kLeaf.
  struct Node {
    std::int32_t feature = -1;   // -1 marks a leaf
    double threshold = 0.0;      // goes left when x[feature] <= threshold
    double value = 0.0;          // leaf prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
  };
  using Tree = std::vector<Node>;

  void build_tree(Tree& tree, const linalg::Matrix& x,
                  std::span<const double> residuals,
                  std::vector<std::size_t>& rows, std::size_t depth);
  [[nodiscard]] static double predict_tree(const Tree& tree,
                                           std::span<const double> features);

  GbtConfig config_;
  double base_prediction_ = 0.0;
  std::vector<Tree> trees_;
  std::vector<double> split_gain_;  // per feature
  std::size_t num_features_ = 0;
  bool fitted_ = false;
};

struct BrtTunerConfig {
  std::size_t initial_samples = 20;
  GbtConfig model;
  /// Exploration rate: fraction of model-phase suggestions drawn uniformly
  /// instead of from the model's argmin.
  double epsilon = 0.1;
  /// Refit cadence: rebuild the model every `refit_every` observations.
  std::size_t refit_every = 8;
};

/// Active-learning tuner: fit boosted trees to the history, evaluate the
/// un-tried configuration with the smallest predicted objective (with
/// ε-greedy exploration).
class BrtTuner final : public core::Tuner {
 public:
  BrtTuner(space::SpacePtr space, BrtTunerConfig config, std::uint64_t seed);
  BrtTuner(space::SpacePtr space, BrtTunerConfig config, std::uint64_t seed,
           std::shared_ptr<const std::vector<space::Configuration>> pool);

  [[nodiscard]] space::Configuration suggest() override;
  /// ε-greedy batch: model slots come from one top-k prediction scan
  /// (constant-liar fill-in for the frozen model), exploration slots are
  /// distinct random draws.
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;
  void observe(const space::Configuration& config, double y) override;
  /// Failed configurations are excluded from future suggestions but never
  /// enter the regression targets (a penalty value would bias the trees).
  void observe_failure(const space::Configuration& config,
                       core::EvalStatus status) override;
  [[nodiscard]] std::string name() const override { return "BoostedTrees"; }

 private:
  [[nodiscard]] space::Configuration random_unevaluated();
  void refit();

  space::SpacePtr space_;
  BrtTunerConfig config_;
  Rng rng_;
  std::shared_ptr<const std::vector<space::Configuration>> pool_;
  std::unordered_set<std::uint64_t> evaluated_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;
  BoostedTrees model_;
  std::size_t observations_at_fit_ = 0;
};

}  // namespace hpb::baselines
