// Local-search baselines over the Hamming-1 configuration neighborhood:
// simulated annealing and (restarting) greedy hill climbing. These are the
// classic search strategies used by autotuners such as OpenTuner; the paper
// cites directed-search autotuning (§I, §VIII) as the pre-model-based state
// of practice, and these close the comparison.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/tuner.hpp"
#include "space/parameter_space.hpp"

namespace hpb::baselines {

struct AnnealingConfig {
  /// Initial acceptance temperature relative to the spread of the first
  /// random samples (T0 = factor × stddev of initial values).
  double initial_temperature_factor = 1.0;
  /// Multiplicative cooling per evaluation.
  double cooling_rate = 0.97;
  std::size_t initial_samples = 5;
};

/// Simulated annealing with single-parameter mutations. Finite spaces only;
/// already-evaluated configurations are skipped (the budget never re-runs a
/// measurement), matching how the other tuners are charged.
class SimulatedAnnealing final : public core::Tuner {
 public:
  SimulatedAnnealing(space::SpacePtr space, AnnealingConfig config,
                     std::uint64_t seed);

  [[nodiscard]] space::Configuration suggest() override;
  /// k distinct moves proposed from the *current* incumbent; observations
  /// are then applied through the Metropolis rule in suggestion order.
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;
  void observe(const space::Configuration& config, double y) override;
  /// A failed move is a rejected move: the walk stays at the current
  /// incumbent, the configuration is never re-proposed, and (past the
  /// bootstrap) the temperature still cools — the schedule tracks budget
  /// spent, not successes.
  void observe_failure(const space::Configuration& config,
                       core::EvalStatus status) override;
  /// Release the awaited suggestion without observing it; the walk stays at
  /// the current incumbent and the next suggest proposes a fresh move.
  void abandon(const space::Configuration& config) override;
  [[nodiscard]] std::string name() const override { return "SimAnneal"; }

  [[nodiscard]] double temperature() const noexcept { return temperature_; }

 private:
  [[nodiscard]] space::Configuration mutate(const space::Configuration& c);
  [[nodiscard]] space::Configuration random_unevaluated();

  space::SpacePtr space_;
  AnnealingConfig config_;
  Rng rng_;
  std::unordered_map<std::uint64_t, double> evaluated_;
  std::vector<double> initial_values_;
  space::Configuration current_;
  double current_value_ = 0.0;
  bool has_current_ = false;
  double temperature_ = 0.0;
  space::Configuration pending_;  // suggestion whose result we await
  bool has_pending_ = false;
};

struct HillClimbConfig {
  std::size_t initial_samples = 5;
};

/// Greedy first-improvement hill climbing with random restarts: walk the
/// Hamming-1 neighborhood of the incumbent; when every neighbor has been
/// tried without improvement, restart from a fresh random configuration.
class HillClimbing final : public core::Tuner {
 public:
  HillClimbing(space::SpacePtr space, HillClimbConfig config,
               std::uint64_t seed);

  [[nodiscard]] space::Configuration suggest() override;
  /// Distinct batch: neighborhood pops are distinct by construction; the
  /// random (re)start phase deduplicates redraws within the batch.
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;
  void observe(const space::Configuration& config, double y) override;
  /// A failed neighbor never becomes the incumbent; it is only marked
  /// evaluated so the walk does not retry it.
  void observe_failure(const space::Configuration& config,
                       core::EvalStatus status) override;
  [[nodiscard]] std::string name() const override { return "HillClimb"; }

  [[nodiscard]] std::size_t restarts() const noexcept { return restarts_; }

 private:
  void refill_neighbors();
  [[nodiscard]] space::Configuration random_unevaluated();

  space::SpacePtr space_;
  HillClimbConfig config_;
  Rng rng_;
  std::unordered_map<std::uint64_t, double> evaluated_;
  space::Configuration incumbent_;
  double incumbent_value_ = 0.0;
  bool has_incumbent_ = false;
  std::vector<space::Configuration> neighbors_;  // untried, shuffled
  std::size_t restarts_ = 0;
};

}  // namespace hpb::baselines
