// Gaussian-process regression tuner with expected-improvement acquisition.
//
// This is the classic BO baseline the paper cites via Duplyakin et al. [17]
// but does not re-run (GEIST had already been shown to beat it). We include
// it so the comparison can be reproduced end-to-end: RBF kernel over the
// one-hot encoded configuration, exact GP posterior via Cholesky, EI
// maximized over a (sub)sampled candidate pool.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/tuner.hpp"
#include "linalg/matrix.hpp"
#include "space/parameter_space.hpp"

namespace hpb::baselines {

struct GpConfig {
  std::size_t initial_samples = 20;
  double length_scale = 1.0;     // RBF length scale in one-hot space
  double signal_variance = 1.0;  // kernel amplitude (y is standardized)
  double noise_variance = 1e-4;  // observation jitter
  /// Candidates scored per iteration (uniformly subsampled from the pool);
  /// 0 scores the whole pool. GP scoring is O(candidates × history).
  std::size_t candidate_subsample = 512;
  /// History cap: once exceeded, the oldest non-best observations are
  /// dropped from the GP fit to bound the O(n³) Cholesky.
  std::size_t max_history = 256;
};

class GpTuner final : public core::Tuner {
 public:
  GpTuner(space::SpacePtr space, GpConfig config, std::uint64_t seed);
  GpTuner(space::SpacePtr space, GpConfig config, std::uint64_t seed,
          std::shared_ptr<const std::vector<space::Configuration>> pool);

  [[nodiscard]] space::Configuration suggest() override;
  /// Top-k expected improvement in a single candidate scan over the frozen
  /// posterior (the constant-liar batch with a lie that never triggers a
  /// refit reduces to exactly this), random-filled during the initial
  /// design. One scan and one refit per batch instead of one per
  /// evaluation.
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;
  void observe(const space::Configuration& config, double y) override;
  /// Failed configurations are marked evaluated (never re-proposed) but are
  /// NOT added to the GP fit: a NaN/penalty target would corrupt the
  /// posterior, and exclusion alone keeps the model clean.
  void observe_failure(const space::Configuration& config,
                       core::EvalStatus status) override;
  /// Appends the whole batch (routing failures to observe_failure), then
  /// refits the posterior once.
  void observe_batch(std::span<const core::Observation> observations) override;
  [[nodiscard]] std::string name() const override { return "GP-EI"; }

  /// Posterior mean/variance at a configuration (for tests).
  struct Posterior {
    double mean = 0.0;
    double variance = 0.0;
  };
  [[nodiscard]] Posterior posterior(const space::Configuration& c);

 private:
  void refit();
  /// Record one observation without refitting (shared by observe paths).
  void append_observation(const space::Configuration& config, double y);
  [[nodiscard]] double kernel(std::span<const double> a,
                              std::span<const double> b) const;
  [[nodiscard]] double expected_improvement(const space::Configuration& c,
                                            double y_best) const;
  [[nodiscard]] Posterior posterior_encoded(std::span<const double> x) const;

  space::SpacePtr space_;
  GpConfig config_;
  Rng rng_;
  std::shared_ptr<const std::vector<space::Configuration>> pool_;
  std::unordered_set<std::uint64_t> evaluated_;

  std::vector<std::vector<double>> x_;  // encoded observations
  std::vector<double> y_;               // raw objective values
  // Fitted state (standardized y):
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  linalg::Matrix chol_;
  linalg::Vector alpha_;  // K⁻¹ (y - mean)
  bool fitted_ = false;
};

}  // namespace hpb::baselines
