#include "baselines/camlp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpb::baselines {

std::vector<double> camlp_propagate(const ConfigGraph& graph,
                                    const Labels& labels,
                                    const CamlpConfig& config) {
  const std::size_t n = graph.num_nodes();
  HPB_REQUIRE(labels.size() == n, "camlp_propagate: label size mismatch");
  HPB_REQUIRE(config.beta > 0.0, "camlp_propagate: beta must be positive");

  // Priors b_i: one-hot for labeled nodes, uniform (0.5) otherwise.
  std::vector<double> prior(n);
  for (std::size_t i = 0; i < n; ++i) {
    prior[i] = labels[i] < 0 ? 0.5 : static_cast<double>(labels[i]);
  }

  std::vector<double> belief = prior;
  std::vector<double> next(n);
  for (std::size_t iter = 0; iter < config.max_iters; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = prior[i];
      for (std::uint32_t j : graph.neighbors(i)) {
        acc += config.beta * belief[j];
      }
      next[i] = acc / (1.0 + config.beta * static_cast<double>(graph.degree(i)));
      max_delta = std::max(max_delta, std::abs(next[i] - belief[i]));
    }
    belief.swap(next);
    if (max_delta < config.tolerance) {
      break;
    }
  }
  return belief;
}

}  // namespace hpb::baselines
