#include "baselines/perfnet.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "stats/quantile.hpp"
#include "stats/summary.hpp"

namespace hpb::baselines {

PerfNet::PerfNet(PerfNetConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {}

double PerfNet::normalize(double y) const {
  return (std::log(std::max(y, 1e-12)) - log_mean_) / log_std_;
}

void PerfNet::train(const tabular::TabularObjective& source,
                    const tabular::TabularObjective& target,
                    std::size_t budget) {
  HPB_REQUIRE(source.space().encoded_size() == target.space().encoded_size(),
              "PerfNet: source/target encoding width mismatch");
  HPB_REQUIRE(budget >= 2, "PerfNet: budget must be >= 2");
  HPB_REQUIRE(budget <= target.size(), "PerfNet: budget exceeds target size");
  target_ = &target;

  // Normalization statistics from the (cheap, fully observed) source domain.
  {
    stats::RunningStats log_stats;
    for (std::size_t i = 0; i < source.size(); ++i) {
      log_stats.add(std::log(std::max(source.value(i), 1e-12)));
    }
    log_mean_ = log_stats.mean();
    log_std_ = std::max(log_stats.stddev(), 1e-12);
  }

  // Build the pre-training matrix from (possibly subsampled) source rows.
  std::vector<std::size_t> source_rows;
  if (config_.max_source_rows > 0 && source.size() > config_.max_source_rows) {
    source_rows =
        rng_.sample_without_replacement(source.size(), config_.max_source_rows);
  } else {
    source_rows.resize(source.size());
    for (std::size_t i = 0; i < source.size(); ++i) {
      source_rows[i] = i;
    }
  }
  const std::size_t width = source.space().encoded_size();
  linalg::Matrix x_src(source_rows.size(), width);
  std::vector<double> y_src(source_rows.size());
  for (std::size_t r = 0; r < source_rows.size(); ++r) {
    const auto enc = source.space().encode(source.config(source_rows[r]));
    std::copy(enc.begin(), enc.end(), x_src.row(r).begin());
    y_src[r] = normalize(source.value(source_rows[r]));
  }

  std::vector<std::size_t> sizes;
  sizes.push_back(width);
  for (std::size_t h : config_.hidden_sizes) {
    sizes.push_back(h);
  }
  sizes.push_back(1);
  net_ = std::make_unique<nn::Mlp>(sizes, rng_);
  net_->fit(x_src, y_src, config_.pretrain, rng_);

  // Fine-tune on randomly observed target samples.
  const std::size_t n_observe = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.observe_fraction *
                                  static_cast<double>(budget)));
  const std::vector<std::size_t> observed =
      rng_.sample_without_replacement(target.size(),
                                      std::min(n_observe, budget));
  linalg::Matrix x_tgt(observed.size(), width);
  std::vector<double> y_tgt(observed.size());
  for (std::size_t r = 0; r < observed.size(); ++r) {
    const auto enc = target.space().encode(target.config(observed[r]));
    std::copy(enc.begin(), enc.end(), x_tgt.row(r).begin());
    y_tgt[r] = normalize(target.value(observed[r]));
  }
  net_->fit(x_tgt, y_tgt, config_.finetune, rng_);

  // Selection: observed samples + top-predicted remainder.
  selection_ = observed;
  std::unordered_set<std::size_t> taken(observed.begin(), observed.end());
  std::vector<double> predicted(target.size());
  for (std::size_t i = 0; i < target.size(); ++i) {
    predicted[i] = taken.contains(i)
                       ? std::numeric_limits<double>::infinity()
                       : net_->predict(target.space().encode(target.config(i)));
  }
  const std::size_t remaining = budget - selection_.size();
  for (std::size_t idx : stats::smallest_k_indices(predicted, remaining)) {
    selection_.push_back(idx);
  }
}

double PerfNet::predict(const space::Configuration& c) const {
  HPB_REQUIRE(net_ != nullptr, "PerfNet::predict: call train() first");
  HPB_REQUIRE(target_ != nullptr, "PerfNet::predict: call train() first");
  return net_->predict(target_->space().encode(c));
}

}  // namespace hpb::baselines
