#include "baselines/config_graph.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace hpb::baselines {

ConfigGraph::ConfigGraph(const space::ParameterSpace& space,
                         std::span<const space::Configuration> pool) {
  HPB_REQUIRE(space.is_finite(), "ConfigGraph: space must be finite");
  HPB_REQUIRE(!pool.empty(), "ConfigGraph: empty pool");
  HPB_REQUIRE(pool.size() < (1ULL << 32), "ConfigGraph: pool too large");

  std::unordered_map<std::uint64_t, std::uint32_t> by_ordinal;
  by_ordinal.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto [it, inserted] =
        by_ordinal.emplace(space.ordinal_of(pool[i]),
                           static_cast<std::uint32_t>(i));
    HPB_REQUIRE(inserted, "ConfigGraph: duplicate configuration in pool");
  }

  // Two passes: count degrees, then fill the CSR arrays.
  const std::size_t n = pool.size();
  std::vector<std::size_t> degree(n, 0);
  auto for_each_neighbor = [&](std::size_t i, auto&& fn) {
    space::Configuration probe = pool[i];
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      const std::size_t original = probe.level(p);
      const std::size_t levels = space.param(p).num_levels();
      for (std::size_t l = 0; l < levels; ++l) {
        if (l == original) {
          continue;
        }
        probe.set_level(p, l);
        const auto it = by_ordinal.find(space.ordinal_of(probe));
        if (it != by_ordinal.end()) {
          fn(it->second);
        }
      }
      probe.set_level(p, original);
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    for_each_neighbor(i, [&](std::uint32_t) { ++degree[i]; });
  }
  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + degree[i];
  }
  neighbors_.resize(offsets_.back());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for_each_neighbor(i, [&](std::uint32_t j) {
      neighbors_[cursor[i]++] = j;
    });
  }
}

}  // namespace hpb::baselines
