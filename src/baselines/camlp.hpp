// CAMLP: Confidence-Aware Modulated Label Propagation [Yamaguchi, Faloutsos,
// Kitagawa, SDM'16], the propagation engine inside GEIST.
//
// For two classes (good / bad) with a homophilous modulation matrix, the
// belief of node i is iterated as
//
//   F_i ← (b_i + β Σ_{j ∈ N(i)} F_j) / (1 + β d_i)
//
// where b_i is the one-hot prior of labeled nodes (uniform for unlabeled
// nodes) and d_i the degree. Iteration converges because the update is a
// contraction; we stop at max_iters or when the max belief change falls
// below tolerance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/config_graph.hpp"

namespace hpb::baselines {

struct CamlpConfig {
  double beta = 0.1;          // propagation strength
  std::size_t max_iters = 30;
  double tolerance = 1e-6;
};

/// Node label: -1 unlabeled, 0 bad, 1 good.
using Labels = std::vector<std::int8_t>;

/// Run CAMLP and return each node's belief of being "good" in [0, 1].
[[nodiscard]] std::vector<double> camlp_propagate(const ConfigGraph& graph,
                                                  const Labels& labels,
                                                  const CamlpConfig& config);

}  // namespace hpb::baselines
