#include "baselines/ridge_tuner.hpp"

#include <algorithm>

#include "baselines/batch_util.hpp"

namespace hpb::baselines {

RidgeTuner::RidgeTuner(space::SpacePtr space, RidgeConfig config,
                       std::uint64_t seed)
    : RidgeTuner(space, config, seed,
                 std::make_shared<const std::vector<space::Configuration>>(
                     space->enumerate())) {}

RidgeTuner::RidgeTuner(
    space::SpacePtr space, RidgeConfig config, std::uint64_t seed,
    std::shared_ptr<const std::vector<space::Configuration>> pool)
    : space_(std::move(space)),
      config_(config),
      rng_(seed),
      pool_(std::move(pool)) {
  HPB_REQUIRE(space_ != nullptr, "RidgeTuner: null space");
  HPB_REQUIRE(pool_ != nullptr && !pool_->empty(), "RidgeTuner: empty pool");
  HPB_REQUIRE(config_.initial_samples >= 2, "RidgeTuner: need >= 2 initial");
  HPB_REQUIRE(config_.regularization > 0.0,
              "RidgeTuner: regularization must be > 0");
  HPB_REQUIRE(config_.epsilon >= 0.0 && config_.epsilon <= 1.0,
              "RidgeTuner: epsilon in [0,1]");
  HPB_REQUIRE(config_.refit_every >= 1, "RidgeTuner: refit_every >= 1");
}

space::Configuration RidgeTuner::random_unevaluated() {
  HPB_REQUIRE(evaluated_.size() < pool_->size(), "RidgeTuner: pool exhausted");
  for (;;) {
    const auto& c = (*pool_)[rng_.index(pool_->size())];
    if (!evaluated_.contains(space_->ordinal_of(c))) {
      return c;
    }
  }
}

void RidgeTuner::refit() {
  const std::size_t n = x_.size();
  const std::size_t d = space_->encoded_size() + 1;  // + intercept
  // Normal equations with ridge: (XᵀX + λI) β = Xᵀ y.
  linalg::Matrix gram(d, d, 0.0);
  linalg::Vector xty(d, 0.0);
  std::vector<double> row(d, 1.0);  // last slot stays 1 (intercept)
  for (std::size_t r = 0; r < n; ++r) {
    std::copy(x_[r].begin(), x_[r].end(), row.begin());
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        gram(i, j) += row[i] * row[j];
      }
      xty[i] += row[i] * y_[r];
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      gram(i, j) = gram(j, i);
    }
    gram(i, i) += config_.regularization;
  }
  beta_ = linalg::cholesky_solve(linalg::cholesky(gram), xty);
  fitted_ = true;
  observations_at_fit_ = n;

  // Export refit internals (reads only; suggestion order is unaffected).
  if (recorder_ != nullptr && recorder_->active()) {
    double beta_norm2 = 0.0;
    for (std::size_t i = 0; i < beta_.size(); ++i) {
      beta_norm2 += beta_[i] * beta_[i];
    }
    if (recorder_->metrics != nullptr) {
      recorder_->metrics->counter("ridge.refits").add(1);
      recorder_->metrics->gauge("ridge.history").set(static_cast<double>(n));
      recorder_->metrics->gauge("ridge.beta_norm2").set(beta_norm2);
      recorder_->metrics->gauge("ridge.intercept").set(beta_.back());
    }
    if (recorder_->trace != nullptr) {
      const std::uint64_t now = recorder_->now_ns();
      const obs::TraceAttr attrs[] = {
          obs::TraceAttr::uint("history", n),
          obs::TraceAttr::uint("features", d),
          obs::TraceAttr::num("beta_norm2", beta_norm2),
          obs::TraceAttr::num("intercept", beta_.back()),
      };
      recorder_->trace->emit({.name = "ridge.refit",
                              .id = recorder_->trace->next_id(),
                              .parent = 0,
                              .start_ns = now,
                              .end_ns = now,
                              .attrs = attrs});
    }
  }
}

double RidgeTuner::predict(const space::Configuration& c) const {
  HPB_REQUIRE(fitted_, "RidgeTuner::predict: not fitted yet");
  const auto enc = space_->encode(c);
  double acc = beta_.back();  // intercept
  for (std::size_t i = 0; i < enc.size(); ++i) {
    acc += beta_[i] * enc[i];
  }
  return acc;
}

space::Configuration RidgeTuner::suggest() {
  if (y_.size() < config_.initial_samples || rng_.bernoulli(config_.epsilon)) {
    return random_unevaluated();
  }
  if (!fitted_ || y_.size() >= observations_at_fit_ + config_.refit_every) {
    refit();
  }
  const space::Configuration* best = nullptr;
  double best_pred = 0.0;
  for (const auto& c : *pool_) {
    if (evaluated_.contains(space_->ordinal_of(c))) {
      continue;
    }
    const double pred = predict(c);
    if (best == nullptr || pred < best_pred) {
      best = &c;
      best_pred = pred;
    }
  }
  HPB_REQUIRE(best != nullptr, "RidgeTuner: pool exhausted");
  return *best;
}

std::vector<space::Configuration> RidgeTuner::suggest_batch(std::size_t k) {
  if (k == 1) {
    return {suggest()};
  }
  return detail::greedy_argmin_batch(
      k, *pool_, *space_, evaluated_, rng_,
      [&] {
        return y_.size() < config_.initial_samples ||
               rng_.bernoulli(config_.epsilon);
      },
      [&] {
        if (!fitted_ ||
            y_.size() >= observations_at_fit_ + config_.refit_every) {
          refit();
        }
      },
      [&](const space::Configuration& c) { return predict(c); });
}

void RidgeTuner::observe(const space::Configuration& config, double y) {
  evaluated_.insert(space_->ordinal_of(config));
  x_.push_back(space_->encode(config));
  y_.push_back(y);
}

void RidgeTuner::observe_failure(const space::Configuration& config,
                                 core::EvalStatus status) {
  HPB_REQUIRE(status != core::EvalStatus::kOk,
              "RidgeTuner::observe_failure: status must be a failure");
  evaluated_.insert(space_->ordinal_of(config));
}

ExhaustiveTuner::ExhaustiveTuner(space::SpacePtr space)
    : ExhaustiveTuner(space,
                      std::make_shared<const std::vector<space::Configuration>>(
                          space->enumerate())) {}

ExhaustiveTuner::ExhaustiveTuner(
    space::SpacePtr space,
    std::shared_ptr<const std::vector<space::Configuration>> pool)
    : pool_(std::move(pool)) {
  HPB_REQUIRE(space != nullptr, "ExhaustiveTuner: null space");
  HPB_REQUIRE(pool_ != nullptr && !pool_->empty(),
              "ExhaustiveTuner: empty pool");
}

space::Configuration ExhaustiveTuner::suggest() {
  HPB_REQUIRE(next_ < pool_->size(), "ExhaustiveTuner: pool exhausted");
  return (*pool_)[next_++];
}

std::vector<space::Configuration> ExhaustiveTuner::suggest_batch(
    std::size_t k) {
  HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
  HPB_REQUIRE(next_ < pool_->size(), "ExhaustiveTuner: pool exhausted");
  const std::size_t take = std::min(k, pool_->size() - next_);
  std::vector<space::Configuration> batch(
      pool_->begin() + static_cast<std::ptrdiff_t>(next_),
      pool_->begin() + static_cast<std::ptrdiff_t>(next_ + take));
  next_ += take;
  return batch;
}

void ExhaustiveTuner::observe(const space::Configuration&, double) {}

}  // namespace hpb::baselines
