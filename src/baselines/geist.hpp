// GEIST baseline [Thiagarajan et al., ICS'18]: semi-supervised adaptive
// sampling over the parameter-space graph.
//
// Bootstraps with uniformly random evaluations, labels evaluated nodes good
// or bad by a quantile threshold on the observed objective values, runs
// CAMLP label propagation over the Hamming-1 configuration graph, and
// selects the next batch of samples as the unlabeled nodes with the highest
// propagated "good" belief.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/camlp.hpp"
#include "baselines/config_graph.hpp"
#include "common/rng.hpp"
#include "core/tuner.hpp"
#include "space/parameter_space.hpp"

namespace hpb::baselines {

struct GeistConfig {
  std::size_t initial_samples = 20;
  /// Quantile of observed values labeling a node "good".
  double quantile = 0.2;
  /// Nodes selected per propagation round. GEIST is a batch method (its
  /// published protocol refreshes labels between batches of samples);
  /// larger batches amortize the propagation cost.
  std::size_t batch_size = 16;
  CamlpConfig camlp;
};

class Geist final : public core::Tuner {
 public:
  /// Builds the configuration graph internally.
  Geist(space::SpacePtr space, GeistConfig config, std::uint64_t seed);

  /// Reuses a pre-built pool + graph (replicated experiment runs share one
  /// graph; building it is the dominant cost on large datasets).
  Geist(space::SpacePtr space, GeistConfig config, std::uint64_t seed,
        std::shared_ptr<const std::vector<space::Configuration>> pool,
        std::shared_ptr<const ConfigGraph> graph);

  [[nodiscard]] space::Configuration suggest() override;
  /// GEIST is natively a batch method (labels refresh between propagation
  /// rounds); batch members are tracked as pending until observed so
  /// neither the random bootstrap nor a re-propagation repeats them.
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;
  void observe(const space::Configuration& config, double y) override;
  /// A failed configuration is labeled hard-"bad" for label propagation and
  /// excluded from every future suggestion; it does not count toward the
  /// random bootstrap (which needs observed *values* for its quantile
  /// threshold).
  void observe_failure(const space::Configuration& config,
                       core::EvalStatus status) override;
  /// Release an outstanding suggestion that will never be observed: the
  /// node leaves the pending set and may be proposed again later.
  void abandon(const space::Configuration& config) override;
  [[nodiscard]] std::string name() const override { return "GEIST"; }

  /// Latest propagated good-beliefs (empty before the first propagation).
  [[nodiscard]] const std::vector<double>& beliefs() const noexcept {
    return beliefs_;
  }

 private:
  void propagate_and_refill_queue();

  space::SpacePtr space_;
  GeistConfig config_;
  Rng rng_;
  std::shared_ptr<const std::vector<space::Configuration>> pool_;
  std::shared_ptr<const ConfigGraph> graph_;
  std::unordered_map<std::uint64_t, std::uint32_t> node_of_ordinal_;
  std::vector<double> observed_;      // value per node (NaN = unobserved)
  std::vector<std::uint32_t> observed_nodes_;
  std::vector<double> beliefs_;
  std::deque<std::uint32_t> queue_;   // planned suggestions
  std::unordered_set<std::uint32_t> pending_;  // batched, not yet observed
  std::unordered_set<std::uint32_t> failed_;   // failed evaluations
};

}  // namespace hpb::baselines
