#include "baselines/batch_util.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace hpb::baselines::detail {

std::vector<space::Configuration> greedy_argmin_batch(
    std::size_t k, const std::vector<space::Configuration>& pool,
    const space::ParameterSpace& space,
    const std::unordered_set<std::uint64_t>& evaluated, Rng& rng,
    const std::function<bool()>& explore_slot,
    const std::function<void()>& ensure_fitted,
    const std::function<double(const space::Configuration&)>& predict) {
  HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
  HPB_REQUIRE(evaluated.size() < pool.size(),
              "suggest_batch: candidate pool exhausted");
  const std::size_t want = std::min(k, pool.size() - evaluated.size());

  std::vector<space::Configuration> batch;
  batch.reserve(want);
  std::unordered_set<std::uint64_t> taken;
  auto excluded = [&](const space::Configuration& c) {
    const std::uint64_t ordinal = space.ordinal_of(c);
    return evaluated.contains(ordinal) || taken.contains(ordinal);
  };

  // Lazily built on the first model slot: the `want` best unevaluated
  // candidates by predicted objective, in one scan.
  std::vector<const space::Configuration*> ranked;
  std::size_t ranked_next = 0;
  bool ranked_ready = false;

  while (batch.size() < want) {
    const space::Configuration* pick = nullptr;
    if (!explore_slot()) {
      ensure_fitted();
      if (!ranked_ready) {
        std::vector<std::pair<double, const space::Configuration*>> scored;
        for (const auto& c : pool) {
          if (!evaluated.contains(space.ordinal_of(c))) {
            scored.emplace_back(predict(c), &c);
          }
        }
        const std::size_t take_n = std::min(want, scored.size());
        std::partial_sort(scored.begin(),
                          scored.begin() + static_cast<std::ptrdiff_t>(take_n),
                          scored.end(), [](const auto& a, const auto& b) {
                            return a.first < b.first;
                          });
        ranked.reserve(take_n);
        for (std::size_t i = 0; i < take_n; ++i) {
          ranked.push_back(scored[i].second);
        }
        ranked_ready = true;
      }
      // Skip candidates an exploration slot already claimed.
      while (ranked_next < ranked.size() &&
             taken.contains(space.ordinal_of(*ranked[ranked_next]))) {
        ++ranked_next;
      }
      if (ranked_next < ranked.size()) {
        pick = ranked[ranked_next++];
      }
    }
    if (pick == nullptr) {
      // Exploration slot, or the ranking ran dry: distinct uniform draw
      // (terminates because want <= pool - evaluated).
      for (;;) {
        const auto& c = pool[rng.index(pool.size())];
        if (!excluded(c)) {
          pick = &c;
          break;
        }
      }
    }
    taken.insert(space.ordinal_of(*pick));
    batch.push_back(*pick);
  }
  return batch;
}

}  // namespace hpb::baselines::detail
