#include "baselines/random_search.hpp"

namespace hpb::baselines {

RandomSearch::RandomSearch(space::SpacePtr space, std::uint64_t seed)
    : RandomSearch(space, seed, nullptr) {}

RandomSearch::RandomSearch(
    space::SpacePtr space, std::uint64_t seed,
    std::shared_ptr<const std::vector<space::Configuration>> pool)
    : space_(std::move(space)), rng_(seed), pool_(std::move(pool)) {
  HPB_REQUIRE(space_ != nullptr, "RandomSearch: null space");
}

space::Configuration RandomSearch::suggest() {
  if (pool_ != nullptr) {
    HPB_REQUIRE(evaluated_.size() < pool_->size(),
                "RandomSearch: pool exhausted");
    for (;;) {
      const auto& c = (*pool_)[rng_.index(pool_->size())];
      if (!evaluated_.contains(space_->ordinal_of(c))) {
        return c;
      }
    }
  }
  if (space_->is_finite()) {
    for (int attempt = 0; attempt < 100000; ++attempt) {
      space::Configuration c = space_->sample_uniform(rng_);
      if (!evaluated_.contains(space_->ordinal_of(c))) {
        return c;
      }
    }
    HPB_REQUIRE(false, "RandomSearch: space exhausted");
  }
  return space_->sample_uniform(rng_);
}

std::vector<space::Configuration> RandomSearch::suggest_batch(std::size_t k) {
  HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
  if (k == 1) {
    return {suggest()};
  }
  std::vector<space::Configuration> batch;
  batch.reserve(k);
  std::unordered_set<std::uint64_t> taken;
  // Cap at the remaining pool; without a pool fall back to a bounded number
  // of redraws per slot (continuous spaces never collide in practice).
  std::size_t available = k;
  if (pool_ != nullptr) {
    available = pool_->size() - evaluated_.size();
  }
  while (batch.size() < std::min(k, available)) {
    space::Configuration c = suggest();
    bool fresh = true;
    if (space_->is_finite()) {
      fresh = taken.insert(space_->ordinal_of(c)).second;
    }
    if (fresh) {
      batch.push_back(std::move(c));
    }
  }
  return batch;
}

void RandomSearch::observe(const space::Configuration& config, double) {
  if (space_->is_finite()) {
    evaluated_.insert(space_->ordinal_of(config));
  }
}

void RandomSearch::observe_failure(const space::Configuration& config,
                                   core::EvalStatus status) {
  HPB_REQUIRE(status != core::EvalStatus::kOk,
              "RandomSearch::observe_failure: status must be a failure");
  if (space_->is_finite()) {
    evaluated_.insert(space_->ordinal_of(config));
  }
}

}  // namespace hpb::baselines
