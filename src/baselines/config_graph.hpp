// Parameter-space graph used by the GEIST baseline [Thiagarajan et al.,
// ICS'18]: one node per valid configuration, edges between configurations
// that differ in exactly one parameter level (Hamming distance 1).
// Stored in CSR form for cache-friendly label propagation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "space/parameter_space.hpp"

namespace hpb::baselines {

class ConfigGraph {
 public:
  /// Build the Hamming-1 graph over the given pool of configurations. The
  /// pool must contain distinct configurations of the (finite) space.
  ConfigGraph(const space::ParameterSpace& space,
              std::span<const space::Configuration> pool);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return neighbors_.size() / 2;  // undirected; stored both directions
  }

  /// Neighbor node ids of node i.
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) const {
    return {neighbors_.data() + offsets_[i],
            offsets_[i + 1] - offsets_[i]};
  }

  [[nodiscard]] std::size_t degree(std::size_t i) const noexcept {
    return offsets_[i + 1] - offsets_[i];
  }

 private:
  std::vector<std::size_t> offsets_;    // CSR row offsets (num_nodes + 1)
  std::vector<std::uint32_t> neighbors_;
};

}  // namespace hpb::baselines
