#include "space/sampling.hpp"

#include <numeric>

namespace hpb::space {

std::vector<Configuration> latin_hypercube(const ParameterSpace& space,
                                           std::size_t n, Rng& rng) {
  HPB_REQUIRE(n > 0, "latin_hypercube: n must be positive");
  HPB_REQUIRE(space.num_params() > 0, "latin_hypercube: empty space");

  // One stratified, shuffled column per parameter.
  std::vector<std::vector<double>> columns(space.num_params());
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    auto& column = columns[p];
    column.resize(n);
    const auto& param = space.param(p);
    if (param.is_discrete()) {
      // Cycle through the levels so each appears floor(n/L) or ceil(n/L)
      // times, then shuffle the assignment across rows.
      const std::size_t levels = param.num_levels();
      for (std::size_t i = 0; i < n; ++i) {
        column[i] = static_cast<double>(i % levels);
      }
    } else {
      // One uniform draw inside each of n equal strata of [lo, hi].
      const double width = (param.hi() - param.lo()) / static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) {
        column[i] = param.lo() + (static_cast<double>(i) + rng.uniform()) * width;
      }
    }
    rng.shuffle(column);
  }

  std::vector<Configuration> design;
  design.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(space.num_params());
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      values[p] = columns[p][i];
    }
    Configuration c(std::move(values));
    if (!space.satisfies(c)) {
      // Constraint violation: fall back to a uniform valid sample for this
      // row rather than failing the whole design.
      c = space.sample_uniform(rng);
    }
    design.push_back(std::move(c));
  }
  return design;
}

}  // namespace hpb::space
