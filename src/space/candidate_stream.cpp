#include "space/candidate_stream.hpp"

#include <unordered_set>

#include "common/rng.hpp"

namespace hpb::space {

CandidateStream::CandidateStream(SpacePtr space, std::uint64_t seed,
                                 StreamConfig config)
    : space_(std::move(space)), seed_(seed), config_(config) {
  HPB_REQUIRE(space_ != nullptr, "CandidateStream: null space");
  HPB_REQUIRE(space_->is_finite(),
              "CandidateStream: space must be finite (all-discrete)");
  HPB_REQUIRE(config_.chunk > 0, "CandidateStream: chunk must be positive");
  HPB_REQUIRE(config_.pass_raw_budget > 0,
              "CandidateStream: pass_raw_budget must be positive");
  raw_size_ = space_->cross_product_size();  // throws on 2^64 overflow
  exhaustive_ = raw_size_ <= config_.max_exhaustive;
  pass_length_ =
      exhaustive_ ? raw_size_ : std::min(raw_size_, config_.pass_raw_budget);
  num_chunks_ = static_cast<std::size_t>(
      (pass_length_ + config_.chunk - 1) / config_.chunk);
  // Smallest balanced Feistel domain 2^(2*half_bits_) covering raw_size_.
  half_bits_ = 1;
  while (half_bits_ < 32 && (1ULL << (2 * half_bits_)) < raw_size_) {
    ++half_bits_;
  }
}

CandidateStream::FeistelKeys CandidateStream::keys_for(
    std::uint64_t pass) const {
  const std::uint64_t key = hash_combine(seed_, pass);
  FeistelKeys keys;
  for (std::uint64_t r = 0; r < 4; ++r) {
    keys.round[r] = hash_combine(key, r + 1);
  }
  return keys;
}

std::uint64_t CandidateStream::feistel_once(const FeistelKeys& keys,
                                            std::uint64_t v) const noexcept {
  const std::uint64_t mask = (1ULL << half_bits_) - 1;
  std::uint64_t left = v >> half_bits_;
  std::uint64_t right = v & mask;
  for (const std::uint64_t round_key : keys.round) {
    const std::uint64_t mixed = splitmix64(round_key ^ right) & mask;
    const std::uint64_t next = left ^ mixed;
    left = right;
    right = next;
  }
  return (left << half_bits_) | right;
}

std::uint64_t CandidateStream::permute(const FeistelKeys& keys,
                                       std::uint64_t raw) const noexcept {
  if (exhaustive_) {
    return raw;
  }
  // Cycle-walk: the Feistel network permutes [0, 2^(2*half_bits_)); re-apply
  // until the image lands below raw_size_. Since the domain is < 4x the
  // range, this needs ~1.3 applications on average and always terminates
  // (it walks a cycle of a permutation that contains `raw`).
  std::uint64_t v = raw;
  do {
    v = feistel_once(keys, v);
  } while (v >= raw_size_);
  return v;
}

void CandidateStream::chunk_candidates(std::uint64_t pass, std::size_t chunk,
                                       std::vector<Candidate>& out) const {
  HPB_REQUIRE(chunk < num_chunks_, "chunk_candidates: chunk out of range");
  out.clear();
  const FeistelKeys keys = keys_for(pass);
  const std::uint64_t begin = static_cast<std::uint64_t>(chunk) * config_.chunk;
  const std::uint64_t end = std::min<std::uint64_t>(
      begin + config_.chunk, pass_length_);
  for (std::uint64_t raw = begin; raw < end; ++raw) {
    const std::uint64_t ordinal = permute(keys, raw);
    Configuration c = space_->configuration_at(ordinal);
    if (space_->satisfies(c)) {
      out.push_back(Candidate{std::move(c), raw, ordinal});
    }
  }
}

std::vector<CandidateStream::Candidate> CandidateStream::pass_candidates(
    std::uint64_t pass, ThreadPool* pool) const {
  std::vector<std::vector<Candidate>> chunks(num_chunks_);
  parallel_for_indexed(pool, num_chunks_, [&](std::size_t i) {
    chunk_candidates(pass, i, chunks[i]);
  });
  std::size_t total = 0;
  for (const auto& chunk : chunks) {
    total += chunk.size();
  }
  std::vector<Candidate> out;
  out.reserve(total);
  for (auto& chunk : chunks) {
    for (auto& candidate : chunk) {
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

std::vector<Configuration> CandidateStream::sample_pool(
    std::size_t k, std::uint64_t max_passes) const {
  HPB_REQUIRE(k > 0, "sample_pool: k must be positive");
  std::vector<Configuration> out;
  out.reserve(k);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(k * 2);
  const std::uint64_t passes = exhaustive_ ? 1 : max_passes;
  std::vector<Candidate> chunk;
  for (std::uint64_t pass = 0; pass < passes && out.size() < k; ++pass) {
    for (std::size_t ci = 0; ci < num_chunks_ && out.size() < k; ++ci) {
      chunk_candidates(pass, ci, chunk);
      for (auto& candidate : chunk) {
        if (seen.insert(candidate.ordinal).second) {
          out.push_back(std::move(candidate.config));
          if (out.size() == k) {
            break;
          }
        }
      }
    }
  }
  HPB_REQUIRE(out.size() == k,
              "sample_pool: space yielded only " +
                  std::to_string(out.size()) + " of " + std::to_string(k) +
                  " distinct valid configurations");
  return out;
}

}  // namespace hpb::space
