// Space-filling initial designs. The paper's algorithm seeds the surrogate
// with uniform random samples (§III-C step 1); Latin hypercube sampling is
// the standard space-filling alternative and is offered as an option
// (ablated in bench/ablation_initial_design).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "space/parameter_space.hpp"

namespace hpb::space {

/// Latin hypercube design of `n` configurations: each parameter's levels
/// (or range strata, for continuous parameters) are covered as evenly as
/// possible, with independent random pairing across parameters. Rows that
/// violate a constraint are replaced by uniform valid samples, so the
/// result always holds `n` valid configurations (the stratification is then
/// only approximate on heavily constrained spaces). Duplicates are possible
/// on small discrete spaces and are not filtered here.
[[nodiscard]] std::vector<Configuration> latin_hypercube(
    const ParameterSpace& space, std::size_t n, Rng& rng);

}  // namespace hpb::space
