#include "space/parameter_space.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace hpb::space {

ParameterSpace& ParameterSpace::add(Parameter p) {
  for (const auto& existing : params_) {
    HPB_REQUIRE(existing.name() != p.name(),
                "add: duplicate parameter name '" + p.name() + "'");
  }
  params_.push_back(std::move(p));
  rules_.emplace_back(std::nullopt);
  return *this;
}

ParameterSpace& ParameterSpace::add_conditional_levels(
    Parameter p, const std::string& parent, std::vector<char> active_at,
    std::size_t num_active) {
  const std::size_t parent_index = index_of(parent);
  HPB_REQUIRE(params_[parent_index].is_discrete(),
              "add_conditional: parent '" + parent + "' must be discrete");
  HPB_REQUIRE(num_active > 0,
              "add_conditional: no activating level of '" + parent +
                  "' for parameter '" + p.name() + "'");
  HPB_REQUIRE(num_active < params_[parent_index].num_levels(),
              "add_conditional: parameter '" + p.name() +
                  "' would be active under every value of '" + parent + "'");
  add(std::move(p));
  rules_.back() = ConditionalRule{parent_index, std::move(active_at)};
  has_conditionals_ = true;
  return *this;
}

ParameterSpace& ParameterSpace::add_conditional(
    Parameter p, const std::string& parent,
    const std::vector<double>& active_values) {
  const std::size_t parent_index = index_of(parent);
  const Parameter& pp = params_[parent_index];
  HPB_REQUIRE(pp.is_discrete(),
              "add_conditional: parent '" + parent + "' must be discrete");
  std::vector<char> active_at(pp.num_levels(), 0);
  std::size_t num_active = 0;
  for (const double v : active_values) {
    bool found = false;
    for (std::size_t l = 0; l < pp.num_levels(); ++l) {
      if (pp.level_value(l) == v) {
        if (active_at[l] == 0) {
          active_at[l] = 1;
          ++num_active;
        }
        found = true;
      }
    }
    HPB_REQUIRE(found, "add_conditional: '" + parent +
                           "' has no level with value " + std::to_string(v));
  }
  return add_conditional_levels(std::move(p), parent, std::move(active_at),
                                num_active);
}

ParameterSpace& ParameterSpace::add_conditional(
    Parameter p, const std::string& parent,
    const std::vector<std::string>& active_labels) {
  const std::size_t parent_index = index_of(parent);
  const Parameter& pp = params_[parent_index];
  HPB_REQUIRE(pp.is_discrete(),
              "add_conditional: parent '" + parent + "' must be discrete");
  std::vector<char> active_at(pp.num_levels(), 0);
  std::size_t num_active = 0;
  for (const std::string& label : active_labels) {
    bool found = false;
    for (std::size_t l = 0; l < pp.num_levels(); ++l) {
      if (pp.level_label(l) == label) {
        if (active_at[l] == 0) {
          active_at[l] = 1;
          ++num_active;
        }
        found = true;
      }
    }
    HPB_REQUIRE(found, "add_conditional: '" + parent +
                           "' has no level labeled '" + label + "'");
  }
  return add_conditional_levels(std::move(p), parent, std::move(active_at),
                                num_active);
}

ParameterSpace& ParameterSpace::add_divisibility(const std::string& divisor,
                                                 const std::string& dividend) {
  const std::size_t a = index_of(divisor);
  const std::size_t b = index_of(dividend);
  HPB_REQUIRE(a != b, "add_divisibility: parameter divides itself");
  HPB_REQUIRE(params_[a].is_discrete() && params_[b].is_discrete(),
              "add_divisibility: both parameters must be discrete");
  return add_constraint(
      [a, b](const ParameterSpace& s, const Configuration& c) {
        if (!s.is_active(c, a) || !s.is_active(c, b)) {
          return true;  // vacuous when either side is switched off
        }
        const double da = s.param(a).level_value(c.level(a));
        const double db = s.param(b).level_value(c.level(b));
        return da != 0.0 && std::fmod(db, da) == 0.0;
      },
      divisor + " divides " + dividend);
}

ParameterSpace& ParameterSpace::add_constraint(Constraint c,
                                               std::string description) {
  HPB_REQUIRE(static_cast<bool>(c), "add_constraint: empty predicate");
  constraints_.push_back(std::move(c));
  constraint_descriptions_.push_back(std::move(description));
  return *this;
}

std::size_t ParameterSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name() == name) {
      return i;
    }
  }
  HPB_REQUIRE(false, "index_of: no parameter named '" + name + "'");
  return 0;  // unreachable
}

bool ParameterSpace::is_finite() const noexcept {
  for (const auto& p : params_) {
    if (!p.is_discrete()) {
      return false;
    }
  }
  return !params_.empty();
}

std::uint64_t ParameterSpace::cross_product_size() const {
  HPB_REQUIRE(is_finite(), "cross_product_size: space must be finite");
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t total = 1;
  for (const auto& p : params_) {
    const auto levels = static_cast<std::uint64_t>(p.num_levels());
    if (total > kMax / levels) {
      throw SpaceTooLargeError(
          "cross_product_size: unconstrained cross product exceeds 2^64; "
          "ordinals cannot index this space",
          kMax, kMax);
    }
    total *= levels;
  }
  return total;
}

bool ParameterSpace::cross_product_exceeds(std::uint64_t limit) const {
  HPB_REQUIRE(is_finite(), "cross_product_exceeds: space must be finite");
  std::uint64_t total = 1;
  for (const auto& p : params_) {
    const auto levels = static_cast<std::uint64_t>(p.num_levels());
    if (total > limit / levels) {
      return true;
    }
    total *= levels;
  }
  return total > limit;
}

std::uint64_t ParameterSpace::ordinal_of(const Configuration& c) const {
  HPB_REQUIRE(is_finite(), "ordinal_of: space must be finite");
  HPB_REQUIRE(c.size() == params_.size(), "ordinal_of: size mismatch");
  std::uint64_t ordinal = 0;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const std::size_t level = c.level(i);
    HPB_REQUIRE(level < params_[i].num_levels(),
                "ordinal_of: level out of range");
    ordinal = ordinal * params_[i].num_levels() + level;
  }
  return ordinal;
}

Configuration ParameterSpace::configuration_at(std::uint64_t ordinal) const {
  HPB_REQUIRE(is_finite(), "configuration_at: space must be finite");
  std::vector<double> values(params_.size(), 0.0);
  for (std::size_t ii = params_.size(); ii-- > 0;) {
    const auto radix = static_cast<std::uint64_t>(params_[ii].num_levels());
    values[ii] = static_cast<double>(ordinal % radix);
    ordinal /= radix;
  }
  HPB_REQUIRE(ordinal == 0, "configuration_at: ordinal out of range");
  return Configuration(std::move(values));
}

bool ParameterSpace::is_conditional(std::size_t i) const {
  HPB_REQUIRE(i < params_.size(), "is_conditional: index out of range");
  return rules_[i].has_value();
}

std::size_t ParameterSpace::parent_of(std::size_t i) const {
  HPB_REQUIRE(i < params_.size(), "parent_of: index out of range");
  HPB_REQUIRE(rules_[i].has_value(),
              "parent_of: '" + params_[i].name() + "' is unconditional");
  return rules_[i]->parent;
}

bool ParameterSpace::is_active(const Configuration& c, std::size_t i) const {
  HPB_REQUIRE(i < params_.size(), "is_active: index out of range");
  // Walk the ancestor chain (parents always precede children, so this
  // terminates in at most num_params steps).
  while (rules_[i].has_value()) {
    const ConditionalRule& r = *rules_[i];
    const std::size_t level = c.level(r.parent);
    if (level >= r.active_at.size() || r.active_at[level] == 0) {
      return false;
    }
    i = r.parent;
  }
  return true;
}

double ParameterSpace::sentinel_value(std::size_t i) const {
  HPB_REQUIRE(i < params_.size(), "sentinel_value: index out of range");
  return params_[i].is_discrete() ? 0.0 : params_[i].lo();
}

bool ParameterSpace::is_canonical(const Configuration& c) const {
  if (!has_conditionals_) {
    return true;
  }
  HPB_REQUIRE(c.size() == params_.size(), "is_canonical: size mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (rules_[i].has_value() && !is_active(c, i) &&
        c[i] != sentinel_value(i)) {
      return false;
    }
  }
  return true;
}

Configuration ParameterSpace::canonicalize(Configuration c) const {
  HPB_REQUIRE(c.size() == params_.size(), "canonicalize: size mismatch");
  if (!has_conditionals_) {
    return c;
  }
  // Index order: a parent forced to its sentinel deactivates its children
  // before they are visited, so the whole subtree collapses in one pass.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (rules_[i].has_value() && !is_active(c, i)) {
      c[i] = sentinel_value(i);
    }
  }
  return c;
}

bool ParameterSpace::satisfies(const Configuration& c) const {
  if (has_conditionals_ && !is_canonical(c)) {
    return false;
  }
  for (const auto& constraint : constraints_) {
    if (!constraint(*this, c)) {
      return false;
    }
  }
  return true;
}

std::vector<Configuration> ParameterSpace::enumerate() const {
  HPB_REQUIRE(is_finite(), "enumerate: space must be finite");
  if (cross_product_exceeds(kMaxEnumerate)) {
    constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();
    const bool overflows = cross_product_exceeds(kU64Max);
    const std::uint64_t size = overflows ? kU64Max : cross_product_size();
    std::ostringstream os;
    os << "enumerate: unconstrained cross product (";
    if (overflows) {
      os << "over 2^64";
    } else {
      os << size;
    }
    os << " configurations) exceeds the " << kMaxEnumerate
       << "-point enumeration limit; use space::CandidateStream to sweep "
          "this space without materializing it";
    throw SpaceTooLargeError(os.str(), size, kMaxEnumerate);
  }
  const std::uint64_t total = cross_product_size();
  std::vector<Configuration> configs;
  configs.reserve(static_cast<std::size_t>(total));
  for (std::uint64_t ord = 0; ord < total; ++ord) {
    Configuration c = configuration_at(ord);
    if (satisfies(c)) {
      configs.push_back(std::move(c));
    }
  }
  return configs;
}

Configuration ParameterSpace::sample_uniform(Rng& rng) const {
  HPB_REQUIRE(!params_.empty(), "sample_uniform: empty space");
  constexpr int kMaxRejections = 100000;
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    std::vector<double> values(params_.size(), 0.0);
    Configuration c(std::move(values));
    // Draw in index order so a parameter's activity is decided by the time
    // it is visited; inactive parameters take their sentinel directly, so
    // every draw is canonical by construction. Flat spaces consume the RNG
    // exactly as before (every parameter is unconditionally active).
    for (std::size_t i = 0; i < params_.size(); ++i) {
      const auto& p = params_[i];
      if (has_conditionals_ && !is_active(c, i)) {
        c[i] = sentinel_value(i);
      } else if (p.is_discrete()) {
        c[i] = static_cast<double>(rng.index(p.num_levels()));
      } else {
        c[i] = rng.uniform(p.lo(), p.hi());
      }
    }
    if (satisfies(c)) {
      return c;
    }
  }
  HPB_REQUIRE(false, "sample_uniform: constraints reject too many samples");
  return Configuration{};  // unreachable
}

std::size_t ParameterSpace::encoded_size() const noexcept {
  std::size_t total = 0;
  for (const auto& p : params_) {
    total += p.is_discrete() ? p.num_levels() : 1;
  }
  return total;
}

void ParameterSpace::encode(const Configuration& c,
                            std::vector<double>& out) const {
  HPB_REQUIRE(c.size() == params_.size(), "encode: size mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& p = params_[i];
    if (p.is_discrete()) {
      const std::size_t level = c.level(i);
      HPB_REQUIRE(level < p.num_levels(), "encode: level out of range");
      for (std::size_t l = 0; l < p.num_levels(); ++l) {
        out.push_back(l == level ? 1.0 : 0.0);
      }
    } else {
      out.push_back((c[i] - p.lo()) / (p.hi() - p.lo()));
    }
  }
}

std::vector<double> ParameterSpace::encode(const Configuration& c) const {
  std::vector<double> out;
  out.reserve(encoded_size());
  encode(c, out);
  return out;
}

std::string ParameterSpace::to_string(const Configuration& c) const {
  HPB_REQUIRE(c.size() == params_.size(), "to_string: size mismatch");
  std::ostringstream os;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i != 0) {
      os << ", ";
    }
    os << params_[i].name() << '=';
    if (params_[i].is_discrete()) {
      os << params_[i].level_label(c.level(i));
    } else {
      os << c[i];
    }
  }
  return os.str();
}

}  // namespace hpb::space
