#include "space/parameter_space.hpp"

#include <sstream>

namespace hpb::space {

ParameterSpace& ParameterSpace::add(Parameter p) {
  for (const auto& existing : params_) {
    HPB_REQUIRE(existing.name() != p.name(),
                "add: duplicate parameter name '" + p.name() + "'");
  }
  params_.push_back(std::move(p));
  return *this;
}

ParameterSpace& ParameterSpace::add_constraint(Constraint c,
                                               std::string description) {
  HPB_REQUIRE(static_cast<bool>(c), "add_constraint: empty predicate");
  constraints_.push_back(std::move(c));
  constraint_descriptions_.push_back(std::move(description));
  return *this;
}

std::size_t ParameterSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name() == name) {
      return i;
    }
  }
  HPB_REQUIRE(false, "index_of: no parameter named '" + name + "'");
  return 0;  // unreachable
}

bool ParameterSpace::is_finite() const noexcept {
  for (const auto& p : params_) {
    if (!p.is_discrete()) {
      return false;
    }
  }
  return !params_.empty();
}

std::uint64_t ParameterSpace::cross_product_size() const {
  HPB_REQUIRE(is_finite(), "cross_product_size: space must be finite");
  std::uint64_t total = 1;
  for (const auto& p : params_) {
    total *= static_cast<std::uint64_t>(p.num_levels());
  }
  return total;
}

std::uint64_t ParameterSpace::ordinal_of(const Configuration& c) const {
  HPB_REQUIRE(is_finite(), "ordinal_of: space must be finite");
  HPB_REQUIRE(c.size() == params_.size(), "ordinal_of: size mismatch");
  std::uint64_t ordinal = 0;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const std::size_t level = c.level(i);
    HPB_REQUIRE(level < params_[i].num_levels(),
                "ordinal_of: level out of range");
    ordinal = ordinal * params_[i].num_levels() + level;
  }
  return ordinal;
}

Configuration ParameterSpace::configuration_at(std::uint64_t ordinal) const {
  HPB_REQUIRE(is_finite(), "configuration_at: space must be finite");
  std::vector<double> values(params_.size(), 0.0);
  for (std::size_t ii = params_.size(); ii-- > 0;) {
    const auto radix = static_cast<std::uint64_t>(params_[ii].num_levels());
    values[ii] = static_cast<double>(ordinal % radix);
    ordinal /= radix;
  }
  HPB_REQUIRE(ordinal == 0, "configuration_at: ordinal out of range");
  return Configuration(std::move(values));
}

bool ParameterSpace::satisfies(const Configuration& c) const {
  for (const auto& constraint : constraints_) {
    if (!constraint(*this, c)) {
      return false;
    }
  }
  return true;
}

std::vector<Configuration> ParameterSpace::enumerate() const {
  HPB_REQUIRE(is_finite(), "enumerate: space must be finite");
  const std::uint64_t total = cross_product_size();
  HPB_REQUIRE(total <= (1ULL << 26),
              "enumerate: cross product too large to enumerate");
  std::vector<Configuration> configs;
  configs.reserve(static_cast<std::size_t>(total));
  for (std::uint64_t ord = 0; ord < total; ++ord) {
    Configuration c = configuration_at(ord);
    if (satisfies(c)) {
      configs.push_back(std::move(c));
    }
  }
  return configs;
}

Configuration ParameterSpace::sample_uniform(Rng& rng) const {
  HPB_REQUIRE(!params_.empty(), "sample_uniform: empty space");
  constexpr int kMaxRejections = 100000;
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    std::vector<double> values(params_.size(), 0.0);
    for (std::size_t i = 0; i < params_.size(); ++i) {
      const auto& p = params_[i];
      if (p.is_discrete()) {
        values[i] = static_cast<double>(rng.index(p.num_levels()));
      } else {
        values[i] = rng.uniform(p.lo(), p.hi());
      }
    }
    Configuration c(std::move(values));
    if (satisfies(c)) {
      return c;
    }
  }
  HPB_REQUIRE(false, "sample_uniform: constraints reject too many samples");
  return Configuration{};  // unreachable
}

std::size_t ParameterSpace::encoded_size() const noexcept {
  std::size_t total = 0;
  for (const auto& p : params_) {
    total += p.is_discrete() ? p.num_levels() : 1;
  }
  return total;
}

void ParameterSpace::encode(const Configuration& c,
                            std::vector<double>& out) const {
  HPB_REQUIRE(c.size() == params_.size(), "encode: size mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& p = params_[i];
    if (p.is_discrete()) {
      const std::size_t level = c.level(i);
      HPB_REQUIRE(level < p.num_levels(), "encode: level out of range");
      for (std::size_t l = 0; l < p.num_levels(); ++l) {
        out.push_back(l == level ? 1.0 : 0.0);
      }
    } else {
      out.push_back((c[i] - p.lo()) / (p.hi() - p.lo()));
    }
  }
}

std::vector<double> ParameterSpace::encode(const Configuration& c) const {
  std::vector<double> out;
  out.reserve(encoded_size());
  encode(c, out);
  return out;
}

std::string ParameterSpace::to_string(const Configuration& c) const {
  HPB_REQUIRE(c.size() == params_.size(), "to_string: size mismatch");
  std::ostringstream os;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i != 0) {
      os << ", ";
    }
    os << params_[i].name() << '=';
    if (params_[i].is_discrete()) {
      os << params_[i].level_label(c.level(i));
    } else {
      os << c[i];
    }
  }
  return os.str();
}

}  // namespace hpb::space
