#include "space/parameter.hpp"

#include <sstream>

namespace hpb::space {

Parameter Parameter::categorical(std::string name,
                                 std::vector<std::string> labels) {
  HPB_REQUIRE(!labels.empty(), "categorical: need at least one level");
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::kCategorical;
  p.levels_.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    p.levels_.push_back({std::move(labels[i]), static_cast<double>(i)});
  }
  return p;
}

Parameter Parameter::categorical_numeric(std::string name,
                                         std::vector<double> values) {
  HPB_REQUIRE(!values.empty(), "categorical_numeric: need at least one level");
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::kCategorical;
  p.levels_.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << v;
    p.levels_.push_back({os.str(), v});
  }
  return p;
}

Parameter Parameter::integer(std::string name, std::int64_t lo,
                             std::int64_t hi) {
  HPB_REQUIRE(lo <= hi, "integer: lo must be <= hi");
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::kInteger;
  p.int_lo_ = lo;
  p.int_hi_ = hi;
  return p;
}

Parameter Parameter::continuous(std::string name, double lo, double hi) {
  HPB_REQUIRE(lo < hi, "continuous: lo must be < hi");
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParamKind::kContinuous;
  p.cont_lo_ = lo;
  p.cont_hi_ = hi;
  return p;
}

std::size_t Parameter::num_levels() const {
  switch (kind_) {
    case ParamKind::kCategorical:
      return levels_.size();
    case ParamKind::kInteger:
      return static_cast<std::size_t>(int_hi_ - int_lo_ + 1);
    case ParamKind::kContinuous:
      break;
  }
  HPB_REQUIRE(false, "num_levels: continuous parameter has no levels");
  return 0;  // unreachable
}

double Parameter::level_value(std::size_t level) const {
  HPB_REQUIRE(is_discrete(), "level_value: discrete parameters only");
  HPB_REQUIRE(level < num_levels(), "level_value: level out of range");
  if (kind_ == ParamKind::kCategorical) {
    return levels_[level].numeric;
  }
  return static_cast<double>(int_lo_ + static_cast<std::int64_t>(level));
}

std::string Parameter::level_label(std::size_t level) const {
  HPB_REQUIRE(is_discrete(), "level_label: discrete parameters only");
  HPB_REQUIRE(level < num_levels(), "level_label: level out of range");
  if (kind_ == ParamKind::kCategorical) {
    return levels_[level].label;
  }
  return std::to_string(int_lo_ + static_cast<std::int64_t>(level));
}

double Parameter::lo() const {
  HPB_REQUIRE(kind_ == ParamKind::kContinuous, "lo: continuous only");
  return cont_lo_;
}

double Parameter::hi() const {
  HPB_REQUIRE(kind_ == ParamKind::kContinuous, "hi: continuous only");
  return cont_hi_;
}

}  // namespace hpb::space
