// CandidateStream: deterministic, chunked generation of valid configurations
// from a finite ParameterSpace, without materializing the cross product.
//
// The stream walks *passes*. Within a pass, raw indices 0..pass_length-1 are
// mapped through a bijection over [0, cross_product_size) — the identity for
// small spaces (so a pass reproduces enumerate() in ordinal order, bitwise),
// a seeded 4-round Feistel permutation with cycle-walking for huge ones (so
// no ordinal repeats within a pass). Each raw index decodes to a
// configuration which is emitted only if ParameterSpace::satisfies()
// accepts it: every streamed candidate is canonical and constraint-clean by
// construction.
//
// Determinism contract: chunk_candidates(pass, chunk) is a pure function of
// (space, seed, pass, chunk) with a fixed chunk size, so generating a pass
// with 1 thread or N threads yields the same candidate sequence, and a
// chunk-local top-k reduction merged in chunk order is thread-count
// independent (see core/acquisition.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "space/parameter_space.hpp"

namespace hpb::space {

/// Generation knobs. The defaults match HiPerBOt's pooled sweep so a
/// streamed sweep over a flat unconstrained space is bitwise-identical to
/// the materialized-pool path.
struct StreamConfig {
  /// Raw indices per chunk; must equal core::kSweepChunk for pooled parity.
  std::size_t chunk = 8192;

  /// Spaces with cross product <= this use the identity permutation and a
  /// full-enumeration pass (streaming == enumerate()); larger spaces sample
  /// pass_raw_budget raw points per pass through the Feistel permutation.
  std::uint64_t max_exhaustive = 1ULL << 20;

  /// Raw indices visited per sampled pass on huge spaces. The number of
  /// *valid* candidates per pass is this times the space's acceptance rate.
  std::uint64_t pass_raw_budget = 1ULL << 16;
};

class CandidateStream {
 public:
  /// One streamed candidate: the decoded configuration, its raw position
  /// within the pass (the deterministic tie-break key for top-k merges),
  /// and its stable cross-product ordinal (the dedup identity).
  struct Candidate {
    Configuration config;
    std::uint64_t pass_index = 0;
    std::uint64_t ordinal = 0;
  };

  /// The space must be finite and its cross product must fit in 64 bits
  /// (cross_product_size() throws SpaceTooLargeError otherwise).
  CandidateStream(SpacePtr space, std::uint64_t seed, StreamConfig config = {});

  [[nodiscard]] const ParameterSpace& space() const noexcept { return *space_; }
  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// True when passes cover the whole cross product via the identity
  /// permutation (pass == enumerate() in ordinal order).
  [[nodiscard]] bool exhaustive() const noexcept { return exhaustive_; }

  /// Unconstrained cross-product size of the space.
  [[nodiscard]] std::uint64_t raw_size() const noexcept { return raw_size_; }

  /// Raw indices visited per pass (before validity filtering).
  [[nodiscard]] std::uint64_t pass_length() const noexcept {
    return pass_length_;
  }

  /// Number of fixed-size chunks a pass is split into.
  [[nodiscard]] std::size_t num_chunks() const noexcept { return num_chunks_; }

  /// Valid candidates of one chunk of one pass, in raw-index order.
  /// Pure in (space, seed, pass, chunk): thread-count independent.
  void chunk_candidates(std::uint64_t pass, std::size_t chunk,
                        std::vector<Candidate>& out) const;

  /// All valid candidates of a pass, in raw-index order. Chunks are
  /// generated in parallel on `pool` (serial when null) and concatenated in
  /// chunk order, so the sequence is identical for every thread count.
  [[nodiscard]] std::vector<Candidate> pass_candidates(
      std::uint64_t pass, ThreadPool* pool = nullptr) const;

  /// First k distinct valid configurations drawn from passes 0, 1, ... —
  /// a seeded, deterministic stand-in pool for pool-bound tuners on spaces
  /// too large to enumerate. Dedups by ordinal across passes; throws if
  /// `max_passes` passes cannot produce k distinct candidates.
  [[nodiscard]] std::vector<Configuration> sample_pool(
      std::size_t k, std::uint64_t max_passes = 64) const;

 private:
  struct FeistelKeys {
    std::uint64_t round[4] = {0, 0, 0, 0};
  };

  [[nodiscard]] FeistelKeys keys_for(std::uint64_t pass) const;
  [[nodiscard]] std::uint64_t feistel_once(const FeistelKeys& keys,
                                           std::uint64_t v) const noexcept;
  /// Bijection over [0, raw_size): identity when exhaustive, otherwise the
  /// Feistel permutation cycle-walked back into range.
  [[nodiscard]] std::uint64_t permute(const FeistelKeys& keys,
                                      std::uint64_t raw) const noexcept;

  SpacePtr space_;
  std::uint64_t seed_ = 0;
  StreamConfig config_;
  std::uint64_t raw_size_ = 0;
  bool exhaustive_ = false;
  std::uint64_t pass_length_ = 0;
  std::size_t num_chunks_ = 0;
  unsigned half_bits_ = 0;  // Feistel half-width; domain is 2^(2*half_bits_)
};

}  // namespace hpb::space
