// A Configuration is one point in a ParameterSpace: for each parameter it
// stores the level index (discrete) or the real value (continuous).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hpb::space {

class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<double> values)
      : values_(std::move(values)) {}

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] double operator[](std::size_t i) const noexcept {
    return values_[i];
  }
  [[nodiscard]] double& operator[](std::size_t i) noexcept {
    return values_[i];
  }

  /// Level index of a discrete parameter (value must be a small integer).
  [[nodiscard]] std::size_t level(std::size_t i) const noexcept {
    return static_cast<std::size_t>(values_[i]);
  }
  void set_level(std::size_t i, std::size_t level) noexcept {
    values_[i] = static_cast<double>(level);
  }

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::vector<double>& values() noexcept { return values_; }

  friend bool operator==(const Configuration& a,
                         const Configuration& b) = default;

 private:
  std::vector<double> values_;
};

}  // namespace hpb::space
