// Tunable parameter descriptions.
//
// A parameter is categorical (named levels, optionally carrying numeric
// values such as thread counts), integer (a contiguous range, still treated
// as discrete by the surrogate per §III-B1), or continuous (a real interval,
// modeled by KDE per §III-B2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace hpb::space {

enum class ParamKind { kCategorical, kInteger, kContinuous };

/// One level of a categorical parameter: a display label plus the numeric
/// value it denotes (defaults to the level index when labels are symbolic).
struct CategoricalLevel {
  std::string label;
  double numeric = 0.0;
};

class Parameter {
 public:
  /// Categorical parameter from labels; numeric values default to indices.
  static Parameter categorical(std::string name,
                               std::vector<std::string> labels);

  /// Categorical parameter whose levels carry meaningful numeric values
  /// (e.g. OMP threads {1,2,4,8}); labels are derived from the numbers.
  static Parameter categorical_numeric(std::string name,
                                       std::vector<double> values);

  /// Integer parameter over the inclusive range [lo, hi].
  static Parameter integer(std::string name, std::int64_t lo, std::int64_t hi);

  /// Continuous parameter over [lo, hi].
  static Parameter continuous(std::string name, double lo, double hi);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ParamKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_discrete() const noexcept {
    return kind_ != ParamKind::kContinuous;
  }

  /// Number of levels (discrete kinds only).
  [[nodiscard]] std::size_t num_levels() const;

  /// Numeric value of a discrete level (categorical: its assigned numeric;
  /// integer: lo + level).
  [[nodiscard]] double level_value(std::size_t level) const;

  /// Display label of a discrete level.
  [[nodiscard]] std::string level_label(std::size_t level) const;

  /// Continuous bounds (continuous kind only).
  [[nodiscard]] double lo() const;
  [[nodiscard]] double hi() const;

 private:
  Parameter() = default;

  std::string name_;
  ParamKind kind_ = ParamKind::kCategorical;
  std::vector<CategoricalLevel> levels_;  // categorical
  std::int64_t int_lo_ = 0, int_hi_ = 0;  // integer
  double cont_lo_ = 0.0, cont_hi_ = 1.0;  // continuous
};

}  // namespace hpb::space
