// ParameterSpace: an ordered collection of Parameters plus optional
// constraint predicates, with enumeration (finite spaces), uniform sampling,
// ordinal <-> configuration mapping, and pretty-printing.
//
// Spaces may be *conditional* (tree-structured): add_conditional() registers
// a parameter that is active only under given values of an earlier discrete
// parent. Inactive parameters always hold a canonical sentinel (level 0 for
// discrete, lo() for continuous), so two configurations that agree on every
// active parameter are bitwise-equal — Configuration equality, ordinals,
// journaling, and CSV round-trips need no special casing. satisfies()
// rejects non-canonical configurations, which keeps enumerate(), sampling,
// and streamed candidate generation consistent without touching callers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "space/configuration.hpp"
#include "space/parameter.hpp"

namespace hpb::space {

class ParameterSpace;

/// Predicate deciding whether a configuration is valid (e.g. "ranks × omp
/// must not exceed the node's core count"). Invalid configurations are
/// excluded from enumeration and rejected by sampling.
using Constraint = std::function<bool(const ParameterSpace&,
                                      const Configuration&)>;

class ParameterSpace {
 public:
  /// Largest unconstrained cross product enumerate() will walk; larger
  /// spaces throw SpaceTooLargeError and must use streamed generation.
  static constexpr std::uint64_t kMaxEnumerate = 1ULL << 26;

  ParameterSpace& add(Parameter p);
  ParameterSpace& add_constraint(Constraint c, std::string description = "");

  /// Add a parameter that is active only when the (earlier, discrete)
  /// parent parameter takes one of `active_values` (matched against the
  /// parent's level_value()s). When inactive the parameter holds its
  /// canonical sentinel. Parents may themselves be conditional; a child is
  /// active only if its whole ancestor chain is.
  ParameterSpace& add_conditional(Parameter p, const std::string& parent,
                                  const std::vector<double>& active_values);

  /// Label-matched overload for categorical parents.
  ParameterSpace& add_conditional(Parameter p, const std::string& parent,
                                  const std::vector<std::string>& active_labels);

  /// Register the constraint "value(divisor) divides value(dividend)"
  /// between two discrete numeric parameters. Vacuously true whenever
  /// either side is inactive, so it composes with add_conditional().
  ParameterSpace& add_divisibility(const std::string& divisor,
                                   const std::string& dividend);

  [[nodiscard]] std::size_t num_params() const noexcept {
    return params_.size();
  }
  [[nodiscard]] const Parameter& param(std::size_t i) const {
    HPB_REQUIRE(i < params_.size(), "param: index out of range");
    return params_[i];
  }
  /// Index of the parameter with the given name; throws if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// True when every parameter is discrete, so the space can be enumerated.
  [[nodiscard]] bool is_finite() const noexcept;

  /// Product of level counts over all (discrete) parameters, ignoring
  /// constraints. Finite spaces only. Throws SpaceTooLargeError if the
  /// product does not fit in 64 bits (instead of silently wrapping).
  [[nodiscard]] std::uint64_t cross_product_size() const;

  /// Overflow-safe check whether the unconstrained cross product exceeds
  /// `limit`. Never throws on huge spaces — use this to route between the
  /// eager and streaming paths.
  [[nodiscard]] bool cross_product_exceeds(std::uint64_t limit) const;

  /// Mixed-radix ordinal of a configuration (finite spaces only). Ordinals
  /// index the unconstrained cross product; they are stable identifiers.
  [[nodiscard]] std::uint64_t ordinal_of(const Configuration& c) const;

  /// Inverse of ordinal_of.
  [[nodiscard]] Configuration configuration_at(std::uint64_t ordinal) const;

  /// True when the space has at least one conditional parameter.
  [[nodiscard]] bool has_conditionals() const noexcept {
    return has_conditionals_;
  }

  /// True when parameter i was registered via add_conditional().
  [[nodiscard]] bool is_conditional(std::size_t i) const;

  /// Parent index of a conditional parameter (throws for unconditional).
  [[nodiscard]] std::size_t parent_of(std::size_t i) const;

  /// True when parameter i is active in c: unconditional, or its whole
  /// ancestor chain is active and each parent holds an activating value.
  [[nodiscard]] bool is_active(const Configuration& c, std::size_t i) const;

  /// Canonical value an *inactive* parameter must hold: level 0 for
  /// discrete parameters, lo() for continuous ones.
  [[nodiscard]] double sentinel_value(std::size_t i) const;

  /// True when every inactive parameter holds its sentinel. Always true
  /// for spaces without conditionals.
  [[nodiscard]] bool is_canonical(const Configuration& c) const;

  /// Force every inactive parameter to its sentinel (in index order, so a
  /// deactivated subtree collapses deterministically).
  [[nodiscard]] Configuration canonicalize(Configuration c) const;

  /// True when the configuration is canonical and all constraints accept it.
  [[nodiscard]] bool satisfies(const Configuration& c) const;

  /// All valid configurations of a finite space, in ordinal order. Throws
  /// SpaceTooLargeError when the cross product exceeds kMaxEnumerate.
  [[nodiscard]] std::vector<Configuration> enumerate() const;

  /// One uniformly random valid configuration (rejection sampling over the
  /// constraints; throws after too many rejections).
  [[nodiscard]] Configuration sample_uniform(Rng& rng) const;

  /// Number of one-hot encoded features: Σ levels for discrete parameters
  /// plus one standardized slot per continuous parameter.
  [[nodiscard]] std::size_t encoded_size() const noexcept;

  /// One-hot encode a configuration (continuous values scaled to [0,1]).
  /// Appends to `out`, which must have room (or use the returning overload).
  void encode(const Configuration& c, std::vector<double>& out) const;
  [[nodiscard]] std::vector<double> encode(const Configuration& c) const;

  /// Human-readable rendering, e.g. "Nesting=DGZ, OMP=8, ...".
  [[nodiscard]] std::string to_string(const Configuration& c) const;

  [[nodiscard]] const std::vector<std::string>& constraint_descriptions()
      const noexcept {
    return constraint_descriptions_;
  }

 private:
  /// Activity rule of one conditional parameter: active iff the parent is
  /// itself active and its level is flagged in active_at.
  struct ConditionalRule {
    std::size_t parent = 0;
    std::vector<char> active_at;  // indexed by parent level; 1 = active
  };

  ParameterSpace& add_conditional_levels(Parameter p, const std::string& parent,
                                         std::vector<char> active_at,
                                         std::size_t num_active);

  std::vector<Parameter> params_;
  std::vector<std::optional<ConditionalRule>> rules_;  // parallel to params_
  bool has_conditionals_ = false;
  std::vector<Constraint> constraints_;
  std::vector<std::string> constraint_descriptions_;
};

using SpacePtr = std::shared_ptr<const ParameterSpace>;

}  // namespace hpb::space
