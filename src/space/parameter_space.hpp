// ParameterSpace: an ordered collection of Parameters plus optional
// constraint predicates, with enumeration (finite spaces), uniform sampling,
// ordinal <-> configuration mapping, and pretty-printing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "space/configuration.hpp"
#include "space/parameter.hpp"

namespace hpb::space {

class ParameterSpace;

/// Predicate deciding whether a configuration is valid (e.g. "ranks × omp
/// must not exceed the node's core count"). Invalid configurations are
/// excluded from enumeration and rejected by sampling.
using Constraint = std::function<bool(const ParameterSpace&,
                                      const Configuration&)>;

class ParameterSpace {
 public:
  ParameterSpace& add(Parameter p);
  ParameterSpace& add_constraint(Constraint c, std::string description = "");

  [[nodiscard]] std::size_t num_params() const noexcept {
    return params_.size();
  }
  [[nodiscard]] const Parameter& param(std::size_t i) const {
    HPB_REQUIRE(i < params_.size(), "param: index out of range");
    return params_[i];
  }
  /// Index of the parameter with the given name; throws if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// True when every parameter is discrete, so the space can be enumerated.
  [[nodiscard]] bool is_finite() const noexcept;

  /// Product of level counts over all (discrete) parameters, ignoring
  /// constraints. Finite spaces only.
  [[nodiscard]] std::uint64_t cross_product_size() const;

  /// Mixed-radix ordinal of a configuration (finite spaces only). Ordinals
  /// index the unconstrained cross product; they are stable identifiers.
  [[nodiscard]] std::uint64_t ordinal_of(const Configuration& c) const;

  /// Inverse of ordinal_of.
  [[nodiscard]] Configuration configuration_at(std::uint64_t ordinal) const;

  /// True when all constraints accept the configuration.
  [[nodiscard]] bool satisfies(const Configuration& c) const;

  /// All valid configurations of a finite space, in ordinal order.
  [[nodiscard]] std::vector<Configuration> enumerate() const;

  /// One uniformly random valid configuration (rejection sampling over the
  /// constraints; throws after too many rejections).
  [[nodiscard]] Configuration sample_uniform(Rng& rng) const;

  /// Number of one-hot encoded features: Σ levels for discrete parameters
  /// plus one standardized slot per continuous parameter.
  [[nodiscard]] std::size_t encoded_size() const noexcept;

  /// One-hot encode a configuration (continuous values scaled to [0,1]).
  /// Appends to `out`, which must have room (or use the returning overload).
  void encode(const Configuration& c, std::vector<double>& out) const;
  [[nodiscard]] std::vector<double> encode(const Configuration& c) const;

  /// Human-readable rendering, e.g. "Nesting=DGZ, OMP=8, ...".
  [[nodiscard]] std::string to_string(const Configuration& c) const;

  [[nodiscard]] const std::vector<std::string>& constraint_descriptions()
      const noexcept {
    return constraint_descriptions_;
  }

 private:
  std::vector<Parameter> params_;
  std::vector<Constraint> constraints_;
  std::vector<std::string> constraint_descriptions_;
};

using SpacePtr = std::shared_ptr<const ParameterSpace>;

}  // namespace hpb::space
