#include "common/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/error.hpp"

namespace hpb::fs {
namespace {

std::string errno_text(int err) { return std::strerror(err); }

[[noreturn]] void throw_io(const std::string& what, int err) {
  throw IoError(what + ": " + errno_text(err), err);
}

// ------------------------------------------------------- fault injection
//
// One process-wide plan behind a mutex: the seam is for tests and chaos
// benches, never on a hot path that matters (every guarded op already
// pays a syscall + fsync).

struct FaultState {
  std::mutex mutex;
  FaultPlan plan;
  std::uint64_t matched = 0;
  bool env_parsed = false;
};

FaultState& fault_state() {
  static FaultState state;
  return state;
}

/// HPB_FS_FAIL=enospc:<substring>[:skip] — strict parse, a malformed value
/// is a configuration error worth failing loudly on.
void parse_env_plan_locked(FaultState& state) {
  if (state.env_parsed) {
    return;
  }
  state.env_parsed = true;
  const char* env = std::getenv("HPB_FS_FAIL");
  if (env == nullptr || *env == '\0') {
    return;
  }
  const std::string value(env);
  const std::size_t first = value.find(':');
  HPB_REQUIRE(first != std::string::npos,
              "HPB_FS_FAIL must be <errno-name>:<path-substring>[:skip], got '" +
                  value + "'");
  const std::string name = value.substr(0, first);
  FaultPlan plan;
  if (name == "enospc") {
    plan.error_number = ENOSPC;
  } else if (name == "eio") {
    plan.error_number = EIO;
  } else {
    HPB_REQUIRE(false, "HPB_FS_FAIL: unknown errno name '" + name +
                           "' (expected enospc or eio)");
  }
  const std::size_t second = value.find(':', first + 1);
  if (second == std::string::npos) {
    plan.path_substring = value.substr(first + 1);
  } else {
    plan.path_substring = value.substr(first + 1, second - first - 1);
    const std::string skip = value.substr(second + 1);
    char* end = nullptr;
    plan.skip = std::strtoull(skip.c_str(), &end, 10);
    HPB_REQUIRE(end != nullptr && *end == '\0' && !skip.empty(),
                "HPB_FS_FAIL: skip must be a non-negative integer, got '" +
                    skip + "'");
  }
  state.plan = plan;
}

/// Throws the planned IoError when `path` matches and the skip budget is
/// spent. Called before the real syscall so an injected ENOSPC writes
/// nothing, like a truly full disk on an O_SYNC-style boundary.
void maybe_inject_fault(const std::string& path) {
  FaultState& state = fault_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  parse_env_plan_locked(state);
  if (state.plan.error_number == 0) {
    return;
  }
  if (path.find(state.plan.path_substring) == std::string::npos) {
    return;
  }
  const std::uint64_t index = state.matched++;
  if (index < state.plan.skip) {
    return;
  }
  const int err = state.plan.error_number;
  throw_io("injected fault on '" + path + "'", err);
}

std::string parent_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

}  // namespace

void set_fault_plan(const FaultPlan& plan) {
  FaultState& state = fault_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.plan = plan;
  state.matched = 0;
  state.env_parsed = true;  // an explicit plan overrides the environment
}

void clear_fault_plan() { set_fault_plan(FaultPlan{}); }

std::uint64_t fault_ops_matched() {
  FaultState& state = fault_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.matched;
}

void write_all(int fd, std::string_view data, const std::string& path) {
  maybe_inject_fault(path);
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_io("write '" + path + "'", errno);
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

void sync_fd(int fd, const std::string& path) {
  maybe_inject_fault(path);
  if (::fsync(fd) != 0) {
    throw_io("fsync '" + path + "'", errno);
  }
}

void sync_parent_dir(const std::string& path) {
  const std::string dir = parent_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    throw_io("open directory '" + dir + "'", errno);
  }
  try {
    sync_fd(fd, dir);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_io("open '" + tmp + "'", errno);
  }
  try {
    write_all(fd, contents, tmp);
    sync_fd(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw_io("rename '" + tmp + "' -> '" + path + "'", err);
  }
  sync_parent_dir(path);
}

bool dir_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

void ensure_dir(const std::string& path) {
  HPB_REQUIRE(!path.empty(), "ensure_dir: path must not be empty");
  // Walk the path a component at a time; EEXIST from a concurrent creator
  // is success, anything already present must actually be a directory.
  std::size_t pos = path.front() == '/' ? 1 : 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string prefix =
        slash == std::string::npos ? path : path.substr(0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      throw_io("mkdir '" + prefix + "'", errno);
    }
    if (!prefix.empty()) {
      HPB_REQUIRE(dir_exists(prefix),
                  "ensure_dir: '" + prefix + "' exists but is not a directory");
    }
    if (slash == std::string::npos) {
      break;
    }
    pos = slash + 1;
  }
}

}  // namespace hpb::fs
