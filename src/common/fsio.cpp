#include "common/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"

namespace hpb::fs {
namespace {

std::string errno_text() { return std::strerror(errno); }

std::string parent_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

void write_all(int fd, std::string_view data, const std::string& path) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      HPB_REQUIRE(false, "write '" + path + "': " + errno_text());
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

}  // namespace

void sync_fd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    HPB_REQUIRE(false, "fsync '" + path + "': " + errno_text());
  }
}

void sync_parent_dir(const std::string& path) {
  const std::string dir = parent_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  HPB_REQUIRE(fd >= 0, "open directory '" + dir + "': " + errno_text());
  const int rc = ::fsync(fd);
  ::close(fd);
  HPB_REQUIRE(rc == 0, "fsync directory '" + dir + "': " + errno_text());
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  HPB_REQUIRE(fd >= 0, "open '" + tmp + "': " + errno_text());
  try {
    write_all(fd, contents, tmp);
    sync_fd(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    HPB_REQUIRE(false, "rename '" + tmp + "' -> '" + path + "': " + why);
  }
  sync_parent_dir(path);
}

bool dir_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

void ensure_dir(const std::string& path) {
  HPB_REQUIRE(!path.empty(), "ensure_dir: path must not be empty");
  // Walk the path a component at a time; EEXIST from a concurrent creator
  // is success, anything already present must actually be a directory.
  std::size_t pos = path.front() == '/' ? 1 : 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string prefix =
        slash == std::string::npos ? path : path.substr(0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      HPB_REQUIRE(false, "mkdir '" + prefix + "': " + errno_text());
    }
    if (!prefix.empty()) {
      HPB_REQUIRE(dir_exists(prefix),
                  "ensure_dir: '" + prefix + "' exists but is not a directory");
    }
    if (slash == std::string::npos) {
      break;
    }
    pos = slash + 1;
  }
}

}  // namespace hpb::fs
