#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace hpb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  HPB_REQUIRE(static_cast<bool>(task), "ThreadPool::submit: empty task");
  {
    std::unique_lock lock(mutex_);
    HPB_REQUIRE(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (task_error_) {
    std::exception_ptr error = std::exchange(task_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::wait_idle_until(std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lock(mutex_);
  if (!idle_.wait_until(lock, deadline, [this] { return in_flight_ == 0; })) {
    return false;  // still busy; no error is consumed while work remains
  }
  if (task_error_) {
    std::exception_ptr error = std::exchange(task_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    // A throwing task must not terminate the process or leak in_flight_
    // (which would deadlock wait_idle); capture the first error and surface
    // it from the next wait_idle() instead.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      if (error && !task_error_) {
        task_error_ = error;
      }
      --in_flight_;
      if (in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void parallel_for_indexed(ThreadPool* pool, std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  HPB_REQUIRE(static_cast<bool>(fn), "parallel_for_indexed: empty function");
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) {
        return;
      }
      {
        std::scoped_lock lock(error_mutex);
        if (first_error) {
          return;  // stop starting new work after a failure
        }
      }
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };
  // One drain task per worker; each pulls indices from the shared counter.
  for (std::size_t t = 0; t < pool->size(); ++t) {
    pool->submit(drain);
  }
  pool->wait_idle();
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace hpb
