// Crash-safe file-system primitives shared by the observation journal and
// the history CSV writer: durable appends (write + fsync) and atomic
// whole-file replacement (write temp, fsync, rename, fsync directory).
// POSIX-only, like the rest of the repo's tooling.
//
// Every error path throws hpb::IoError carrying the errno, so callers can
// react per failure class (a full disk degrades one session; a missing
// directory is a configuration error) instead of the process aborting on
// the first ENOSPC.
//
// Fault injection: writes and fsyncs route through a deterministic
// injection seam so disk faults are testable without actually filling a
// disk. Arm it programmatically with set_fault_plan() or via the
// HPB_FS_FAIL environment variable:
//
//   HPB_FS_FAIL=enospc:<path-substring>[:skip]
//   HPB_FS_FAIL=eio:<path-substring>[:skip]
//
// Once armed, the (skip+1)-th write/fsync touching a path that contains
// <path-substring> — and every one after it — throws IoError with the
// named errno, exactly as a real full disk would at that point.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hpb::fs {

/// Deterministic disk-fault injection: write/fsync ops on paths containing
/// `path_substring` fail with `error_number` after `skip` matching ops
/// succeeded. An empty substring matches every path.
struct FaultPlan {
  std::string path_substring;
  int error_number = 0;  // e.g. ENOSPC or EIO
  std::uint64_t skip = 0;
};

/// Arm (or re-arm) the process-wide fault plan. Thread-safe. A plan with
/// error_number == 0 is equivalent to clear_fault_plan().
void set_fault_plan(const FaultPlan& plan);

/// Disarm fault injection and reset the matching-op counter.
void clear_fault_plan();

/// Matching write/fsync ops observed since the plan was armed (injected
/// ones included). Test hook.
[[nodiscard]] std::uint64_t fault_ops_matched();

/// Write all of `data` to `fd` (restarting on EINTR), honoring the fault
/// plan. Throws hpb::IoError on failure. Shared by the journal writer so
/// injected faults cover its appends too.
void write_all(int fd, std::string_view data, const std::string& path);

/// Flush a file descriptor's data and metadata to stable storage.
/// Throws hpb::IoError on failure.
void sync_fd(int fd, const std::string& path);

/// fsync the directory containing `path`, making a just-created or
/// just-renamed entry durable. Throws hpb::IoError on failure.
void sync_parent_dir(const std::string& path);

/// Replace `path` atomically with `contents`: write to `<path>.tmp`, fsync,
/// rename over `path`, fsync the directory. Readers either see the old file
/// or the complete new one — never a torn prefix. Throws hpb::IoError.
void write_file_atomic(const std::string& path, std::string_view contents);

/// mkdir -p: create `path` and any missing ancestors (mode 0755). A path
/// that already exists as a directory is fine; anything else (a component
/// exists as a file, permission denied, ...) throws hpb::Error/IoError.
void ensure_dir(const std::string& path);

/// True when `path` names an existing directory.
[[nodiscard]] bool dir_exists(const std::string& path);

}  // namespace hpb::fs
