// Crash-safe file-system primitives shared by the observation journal and
// the history CSV writer: durable appends (write + fsync) and atomic
// whole-file replacement (write temp, fsync, rename, fsync directory).
// POSIX-only, like the rest of the repo's tooling.
#pragma once

#include <string>
#include <string_view>

namespace hpb::fs {

/// Flush a file descriptor's data and metadata to stable storage.
/// Throws hpb::Error on failure.
void sync_fd(int fd, const std::string& path);

/// fsync the directory containing `path`, making a just-created or
/// just-renamed entry durable. Throws hpb::Error on failure.
void sync_parent_dir(const std::string& path);

/// Replace `path` atomically with `contents`: write to `<path>.tmp`, fsync,
/// rename over `path`, fsync the directory. Readers either see the old file
/// or the complete new one — never a torn prefix. Throws hpb::Error.
void write_file_atomic(const std::string& path, std::string_view contents);

/// mkdir -p: create `path` and any missing ancestors (mode 0755). A path
/// that already exists as a directory is fine; anything else (a component
/// exists as a file, permission denied, ...) throws hpb::Error.
void ensure_dir(const std::string& path);

/// True when `path` names an existing directory.
[[nodiscard]] bool dir_exists(const std::string& path);

}  // namespace hpb::fs
