// Minimal command-line flag parser for the tools and bench harnesses:
// typed --name value flags with defaults, boolean switches, positional
// arguments, and generated usage text. Throws hpb::Error on malformed or
// unknown input.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace hpb::cli {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  ArgParser& add_string(const std::string& name, std::string default_value,
                        std::string help);
  ArgParser& add_size(const std::string& name, std::size_t default_value,
                      std::string help);
  ArgParser& add_double(const std::string& name, double default_value,
                        std::string help);
  /// Boolean switch: present => true; also accepts --name true/false.
  ArgParser& add_bool(const std::string& name, bool default_value,
                      std::string help);

  /// Parse argv-style input (argv[0] is skipped). Throws on unknown flags,
  /// missing values, or type errors. `--` ends flag parsing.
  void parse(int argc, const char* const* argv);
  void parse(const std::vector<std::string>& args);

  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] std::size_t get_size(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True when the flag was explicitly provided (vs its default).
  [[nodiscard]] bool was_set(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kString, kSize, kDouble, kBool };
  struct Option {
    Kind kind;
    std::string value;  // canonical string form
    std::string default_value;
    std::string help;
    bool set = false;
  };

  Option& find(const std::string& name, Kind kind);
  [[nodiscard]] const Option& find(const std::string& name, Kind kind) const;
  ArgParser& add(const std::string& name, Kind kind, std::string default_value,
                 std::string help);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace hpb::cli
