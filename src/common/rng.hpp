// Deterministic random number generation.
//
// All stochastic components in hiperbot draw from hpb::Rng so that every
// experiment is exactly reproducible from a single 64-bit seed. Seeds are
// derived (never reused) via splitmix64, which also powers the deterministic
// per-configuration noise in the synthetic performance surfaces.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/error.hpp"

namespace hpb {

/// splitmix64 step: maps a 64-bit state to a well-mixed 64-bit output.
/// Used for seed derivation and for hash-based deterministic noise.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit values into one (order-sensitive), for keyed noise.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Map a 64-bit hash to a uniform double in [0, 1).
[[nodiscard]] constexpr double hash_to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Standard-normal variate derived deterministically from a 64-bit key
/// (Box–Muller on two splitmix64 streams). Used for frozen dataset noise.
[[nodiscard]] double hash_to_normal(std::uint64_t key) noexcept;

/// Seeded pseudo-random generator wrapping mt19937_64 with convenience
/// sampling methods. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL)
      : engine_(splitmix64(seed)) {}

  /// Derive an independent child generator; successive calls give distinct
  /// streams (used to hand sub-seeds to replicated experiment runs).
  [[nodiscard]] Rng split() { return Rng(next_u64()); }

  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return hash_to_unit(engine_());
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    HPB_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::size_t index(std::size_t n) {
    HPB_REQUIRE(n > 0, "index: n must be positive");
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_));
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    HPB_REQUIRE(lo <= hi, "integer: lo must be <= hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal variate.
  [[nodiscard]] double normal() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  [[nodiscard]] double normal(double mean, double stddev) {
    HPB_REQUIRE(stddev >= 0.0, "normal: stddev must be non-negative");
    return mean + stddev * normal();
  }

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Sample an index from unnormalized non-negative weights.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights);

  /// Sample k distinct indices from [0, n) uniformly (partial Fisher–Yates).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hpb
