#include "common/error.hpp"

#include <sstream>

namespace hpb::detail {

void throw_error(const char* cond, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "hiperbot: requirement failed: (" << cond << ") at " << file << ':'
     << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace hpb::detail
