// Minimal fixed-size thread pool and a deterministic parallel-for.
//
// The replicated experiment runner executes independent tuning runs (one
// per seed); parallel_for_indexed distributes them across workers while
// each index writes only its own output slot, so results are bitwise
// identical to the serial order regardless of scheduling. Exceptions from
// tasks are captured and rethrown on the caller's thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hpb {

class ThreadPool {
 public:
  /// Start `threads` workers; 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue one task; returns immediately. A task that throws does not
  /// terminate the process: the first uncaught exception is captured and
  /// rethrown from the next wait_idle(). parallel_for_indexed does its own
  /// per-index capture and never lets exceptions reach the pool.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows (and clears)
  /// the first exception any task threw since the last wait_idle().
  void wait_idle();

  /// Deadline-aware wait: block until every submitted task has finished or
  /// the deadline passes, whichever comes first. Returns true when the pool
  /// went idle (rethrowing any captured task error, like wait_idle); false
  /// when tasks are still in flight at the deadline — the caller keeps
  /// ownership of the timeout decision and the stragglers keep running.
  [[nodiscard]] bool wait_idle_until(
      std::chrono::steady_clock::time_point deadline);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr task_error_;  // first error from a submitted task
};

/// Run fn(0) … fn(n-1) across the pool and wait for completion. Each index
/// runs exactly once; the first exception (by completion order) is
/// rethrown on the calling thread after all indices finish or are skipped.
/// With a null pool (or a single worker) execution is serial in order.
void parallel_for_indexed(ThreadPool* pool, std::size_t n,
                          const std::function<void(std::size_t)>& fn);

}  // namespace hpb
