#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

namespace hpb {

double hash_to_normal(std::uint64_t key) noexcept {
  const double u1 = hash_to_unit(splitmix64(key));
  const double u2 = hash_to_unit(splitmix64(key ^ 0xabcdef0123456789ULL));
  // Guard u1 away from zero so log() is finite.
  const double r = std::sqrt(-2.0 * std::log(u1 + 1e-300));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  HPB_REQUIRE(!weights.empty(), "categorical: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    HPB_REQUIRE(w >= 0.0, "categorical: weights must be non-negative");
    total += w;
  }
  HPB_REQUIRE(total > 0.0, "categorical: weights must not all be zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack: return the last index.
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  HPB_REQUIRE(k <= n, "sample_without_replacement: k must be <= n");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(pool[i], pool[i + index(n - i)]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace hpb
