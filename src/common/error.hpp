// Error-handling utilities shared across all hiperbot libraries.
//
// Library code reports contract violations with HPB_REQUIRE (throws
// hpb::Error) rather than asserting, so harnesses and tests can observe and
// recover from misuse.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hpb {

/// Exception type thrown on any contract violation inside hiperbot.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A filesystem operation failed (ENOSPC, EIO, EPERM, ...). Carries the
/// errno so callers can distinguish a full disk from a missing directory
/// and react per class instead of taking the process down: the tuning
/// service marks only the affected session degraded and keeps serving
/// everyone else.
class IoError : public Error {
 public:
  IoError(const std::string& what, int error_number)
      : Error(what), error_number_(error_number) {}

  /// The errno of the failed operation (e.g. ENOSPC, EIO).
  [[nodiscard]] int error_number() const noexcept { return error_number_; }

 private:
  int error_number_ = 0;
};

/// The service refused work it could not absorb (connection cap, pending
/// cap). Deliberately distinct from Error-as-client-bug: the request was
/// well formed, the server is shedding load, and the client should back
/// off and retry later.
class OverloadError : public Error {
 public:
  explicit OverloadError(const std::string& what) : Error(what) {}
};

/// A finite space's unconstrained cross product exceeds what the requested
/// operation can materialize (enumerate(), an eager candidate pool, or even
/// representing the product in 64 bits). Carries the size estimate (saturated
/// to 2^64-1 on overflow) and the limit that was exceeded, so callers can
/// route to the streaming sweep path or print a precise diagnostic instead
/// of OOM-ing.
class SpaceTooLargeError : public Error {
 public:
  SpaceTooLargeError(const std::string& what, std::uint64_t estimated_size,
                     std::uint64_t limit)
      : Error(what), estimated_size_(estimated_size), limit_(limit) {}

  /// Unconstrained cross-product size, saturated to 2^64-1 on overflow.
  [[nodiscard]] std::uint64_t estimated_size() const noexcept {
    return estimated_size_;
  }

  /// The limit the operation enforces (e.g. ParameterSpace::kMaxEnumerate).
  [[nodiscard]] std::uint64_t limit() const noexcept { return limit_; }

 private:
  std::uint64_t estimated_size_ = 0;
  std::uint64_t limit_ = 0;
};

namespace detail {
[[noreturn]] void throw_error(const char* cond, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace hpb

/// Check a precondition; throws hpb::Error with location info on failure.
#define HPB_REQUIRE(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::hpb::detail::throw_error(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                 \
  } while (false)
