// Error-handling utilities shared across all hiperbot libraries.
//
// Library code reports contract violations with HPB_REQUIRE (throws
// hpb::Error) rather than asserting, so harnesses and tests can observe and
// recover from misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace hpb {

/// Exception type thrown on any contract violation inside hiperbot.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* cond, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace hpb

/// Check a precondition; throws hpb::Error with location info on failure.
#define HPB_REQUIRE(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::hpb::detail::throw_error(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                 \
  } while (false)
