#include "common/cli.hpp"

#include <charconv>
#include <sstream>

namespace hpb::cli {
namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0:
      return "string";
    case 1:
      return "size";
    case 2:
      return "double";
    default:
      return "bool";
  }
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add(const std::string& name, Kind kind,
                          std::string default_value, std::string help) {
  HPB_REQUIRE(!name.empty() && name[0] != '-',
              "ArgParser: flag names must not start with '-'");
  const auto [it, inserted] = options_.emplace(
      name, Option{kind, default_value, std::move(default_value),
                   std::move(help), false});
  HPB_REQUIRE(inserted, "ArgParser: duplicate flag --" + name);
  return *this;
}

ArgParser& ArgParser::add_string(const std::string& name,
                                 std::string default_value, std::string help) {
  return add(name, Kind::kString, std::move(default_value), std::move(help));
}

ArgParser& ArgParser::add_size(const std::string& name,
                               std::size_t default_value, std::string help) {
  return add(name, Kind::kSize, std::to_string(default_value),
             std::move(help));
}

ArgParser& ArgParser::add_double(const std::string& name, double default_value,
                                 std::string help) {
  std::ostringstream os;
  os << default_value;
  return add(name, Kind::kDouble, os.str(), std::move(help));
}

ArgParser& ArgParser::add_bool(const std::string& name, bool default_value,
                               std::string help) {
  return add(name, Kind::kBool, default_value ? "true" : "false",
             std::move(help));
}

void ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  parse(args);
}

void ArgParser::parse(const std::vector<std::string>& args) {
  bool flags_done = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.empty() || arg[0] != '-' || arg == "-") {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    HPB_REQUIRE(arg.size() > 2 && arg[1] == '-',
                "ArgParser: expected --flag, got '" + arg + "'");
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const auto it = options_.find(name);
    HPB_REQUIRE(it != options_.end(), "ArgParser: unknown flag --" + name);
    Option& option = it->second;

    if (!has_inline_value) {
      if (option.kind == Kind::kBool) {
        // Optional value: --flag or --flag true/false.
        if (i + 1 < args.size() &&
            (args[i + 1] == "true" || args[i + 1] == "false")) {
          value = args[++i];
        } else {
          value = "true";
        }
      } else {
        HPB_REQUIRE(i + 1 < args.size(),
                    "ArgParser: --" + name + " needs a value");
        value = args[++i];
      }
    }

    // Validate by type.
    switch (option.kind) {
      case Kind::kString:
        break;
      case Kind::kSize: {
        std::size_t parsed = 0;
        const auto [ptr, ec] = std::from_chars(
            value.data(), value.data() + value.size(), parsed);
        HPB_REQUIRE(ec == std::errc{} && ptr == value.data() + value.size(),
                    "ArgParser: --" + name + " expects a non-negative "
                    "integer, got '" + value + "'");
        break;
      }
      case Kind::kDouble: {
        double parsed = 0.0;
        const auto [ptr, ec] = std::from_chars(
            value.data(), value.data() + value.size(), parsed);
        HPB_REQUIRE(ec == std::errc{} && ptr == value.data() + value.size(),
                    "ArgParser: --" + name + " expects a number, got '" +
                        value + "'");
        break;
      }
      case Kind::kBool:
        HPB_REQUIRE(value == "true" || value == "false",
                    "ArgParser: --" + name + " expects true/false");
        break;
    }
    option.value = value;
    option.set = true;
  }
}

ArgParser::Option& ArgParser::find(const std::string& name, Kind kind) {
  const auto it = options_.find(name);
  HPB_REQUIRE(it != options_.end(), "ArgParser: no flag --" + name);
  HPB_REQUIRE(it->second.kind == kind,
              "ArgParser: --" + name + " is not a " +
                  kind_name(static_cast<int>(kind)) + " flag");
  return it->second;
}

const ArgParser::Option& ArgParser::find(const std::string& name,
                                         Kind kind) const {
  return const_cast<ArgParser*>(this)->find(name, kind);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::size_t ArgParser::get_size(const std::string& name) const {
  const std::string& value = find(name, Kind::kSize).value;
  std::size_t parsed = 0;
  (void)std::from_chars(value.data(), value.data() + value.size(), parsed);
  return parsed;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& value = find(name, Kind::kDouble).value;
  double parsed = 0.0;
  (void)std::from_chars(value.data(), value.data() + value.size(), parsed);
  return parsed;
}

bool ArgParser::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).value == "true";
}

bool ArgParser::was_set(const std::string& name) const {
  const auto it = options_.find(name);
  HPB_REQUIRE(it != options_.end(), "ArgParser: no flag --" + name);
  return it->second.set;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags] [args...]\n";
  if (!description_.empty()) {
    os << description_ << "\n";
  }
  os << "flags:\n";
  for (const auto& [name, option] : options_) {
    os << "  --" << name << " (default: " << option.default_value << ")  "
       << option.help << '\n';
  }
  return os.str();
}

}  // namespace hpb::cli
