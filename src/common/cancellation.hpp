// Cooperative cancellation for expensive evaluations.
//
// A CancellationToken bundles the two ways a long-running objective
// evaluation can be asked to give up: a wall-clock deadline (the engine's
// per-evaluation watchdog, EngineConfig.eval_deadline) and an external stop
// flag (a SIGINT/SIGTERM handler requesting graceful shutdown). The token
// is purely observational — cancellation is cooperative: objectives poll
// cancelled() between units of work and return early; nothing is ever
// interrupted forcibly, so no evaluation dies mid-write.
//
// A default-constructed token can never cancel (can_cancel() == false),
// which is the zero-overhead path for objectives that ignore it.
#pragma once

#include <atomic>
#include <chrono>

namespace hpb {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never cancels: no deadline, no stop flag.
  CancellationToken() = default;

  CancellationToken(Clock::time_point deadline,
                    const std::atomic<bool>* stop_flag) noexcept
      : deadline_(deadline), stop_(stop_flag) {}

  [[nodiscard]] static CancellationToken with_deadline(
      Clock::time_point deadline) noexcept {
    return {deadline, nullptr};
  }
  [[nodiscard]] static CancellationToken with_stop_flag(
      const std::atomic<bool>* stop_flag) noexcept {
    return {Clock::time_point::max(), stop_flag};
  }

  /// True when this token could ever report cancellation. Objectives that
  /// would block forever waiting for it (e.g. an injected hang) must check
  /// this first and fail fast instead of hanging unkillably.
  [[nodiscard]] bool can_cancel() const noexcept {
    return stop_ != nullptr || deadline_ != Clock::time_point::max();
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ != Clock::time_point::max();
  }
  [[nodiscard]] Clock::time_point deadline() const noexcept {
    return deadline_;
  }
  [[nodiscard]] bool deadline_passed() const noexcept {
    return has_deadline() && Clock::now() >= deadline_;
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  /// The cooperative check: stop requested or deadline exceeded.
  [[nodiscard]] bool cancelled() const noexcept {
    return stop_requested() || deadline_passed();
  }

 private:
  Clock::time_point deadline_ = Clock::time_point::max();
  const std::atomic<bool>* stop_ = nullptr;
};

}  // namespace hpb
