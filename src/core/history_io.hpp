// Persistence for observation histories: save a tuning session's
// (configuration, value) pairs as CSV and load them back to warm-start a
// later session (the CLI's --history-out / --warm-start flags). The format
// matches TabularObjective CSV: parameter columns (level labels), objective
// last.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/history.hpp"
#include "core/tuner.hpp"
#include "space/parameter_space.hpp"

namespace hpb::core {

/// Write a sequence of observations as CSV (header row from the space's
/// parameter names). Accepts History::observations() or TuneResult::history.
/// If any observation failed, a trailing "status" column records each row's
/// EvalStatus; failure-free histories keep the legacy layout.
/// The path overload replaces the file atomically (written to "<path>.tmp",
/// fsynced, then renamed) so readers never see a partial CSV.
void write_history_csv(const std::string& path,
                       const space::ParameterSpace& space,
                       std::span<const Observation> observations);
void write_history_csv(std::ostream& out, const space::ParameterSpace& space,
                       std::span<const Observation> observations);

/// Read a history CSV previously written by write_history_csv (or any CSV
/// whose parameter columns use the space's level labels / numeric values)
/// and replay each row into the tuner: successes via observe(), rows whose
/// optional trailing "status" column marks a failure via observe_failure().
/// The column after the parameters must be named "objective".
/// Returns the number of rows replayed (successes plus failures).
std::size_t warm_start_from_csv(const std::string& path,
                                const space::ParameterSpace& space,
                                Tuner& tuner);
std::size_t warm_start_from_csv(std::istream& in,
                                const space::ParameterSpace& space,
                                Tuner& tuner);

}  // namespace hpb::core
