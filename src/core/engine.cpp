#include "core/engine.hpp"

#include <cmath>
#include <utility>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "core/journal.hpp"

namespace hpb::core {

TuningEngine::TuningEngine(EngineConfig config) : config_(config) {
  HPB_REQUIRE(config_.batch_size > 0,
              "TuningEngine: batch_size must be positive");
  HPB_REQUIRE(config_.eval_deadline.count() >= 0,
              "TuningEngine: eval_deadline must be >= 0");
}

std::vector<Observation> TuningEngine::run_round(Tuner& tuner,
                                                 tabular::Objective& objective,
                                                 std::size_t k) const {
  std::vector<space::Configuration> batch = tuner.suggest_batch(k);
  HPB_REQUIRE(!batch.empty(), "TuningEngine: tuner returned an empty batch");
  HPB_REQUIRE(batch.size() <= k,
              "TuningEngine: tuner returned more configurations than asked");
  // The round marker goes out before evaluation starts: a crash mid-round
  // leaves an incomplete round the reader drops and re-evaluates.
  if (config_.journal != nullptr) {
    config_.journal->begin_round(k, batch.size());
  }
  // The watchdog path only engages when a deadline or stop flag exists;
  // otherwise the historical call path runs untouched.
  const bool watched =
      config_.eval_deadline.count() > 0 || config_.stop_flag != nullptr;
  std::vector<tabular::EvalResult> results(batch.size());
  parallel_for_indexed(
      batch.size() > 1 ? config_.pool : nullptr, batch.size(),
      [&](std::size_t i) {
        tabular::EvalResult r;
        if (watched) {
          const CancellationToken token(
              config_.eval_deadline.count() > 0
                  ? CancellationToken::Clock::now() + config_.eval_deadline
                  : CancellationToken::Clock::time_point::max(),
              config_.stop_flag);
          r = objective.evaluate_result(batch[i], token);
          // Only kCrashed is plausibly transient; bounded retries occupy
          // the same budget slot — but not once the token fired: the time
          // allocation is spent.
          for (std::size_t retry = 0;
               r.status == EvalStatus::kCrashed &&
               retry < config_.failure.max_retries && !token.cancelled();
               ++retry) {
            r = objective.evaluate_result(batch[i], token);
          }
          // An evaluation that comes back after its deadline exceeded its
          // time allocation, whatever it returned. (Stop-flag cancellation
          // does not rewrite results: the round drains and the session
          // reports kInterrupted.)
          if (token.deadline_passed()) {
            r = tabular::EvalResult::failure(EvalStatus::kTimeout);
          }
        } else {
          r = objective.evaluate_result(batch[i]);
          // Only kCrashed is plausibly transient; bounded retries occupy
          // the same budget slot.
          for (std::size_t retry = 0;
               r.status == EvalStatus::kCrashed &&
               retry < config_.failure.max_retries;
               ++retry) {
            r = objective.evaluate_result(batch[i]);
          }
        }
        HPB_REQUIRE(!r.ok() || std::isfinite(r.value),
                    "TuningEngine: objective returned a non-finite value "
                    "with status ok");
        results[i] = r;
      });
  std::vector<Observation> observations;
  observations.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    observations.push_back(
        {std::move(batch[i]), results[i].value, results[i].status});
  }
  // Records hit the disk before the tuner sees them: on-disk state always
  // leads in-memory state, so replay can reconstruct the tuner exactly.
  if (config_.journal != nullptr) {
    for (const Observation& o : observations) {
      config_.journal->append_observation(o);
    }
  }
  tuner.observe_batch(observations);
  return observations;
}

void TuningEngine::record(TuneResult& result, Observation o) {
  if (o.ok()) {
    if (result.history.size() == result.num_failed ||
        o.y < result.best_value) {
      result.best_value = o.y;
      result.best_config = o.config;
    }
  } else {
    ++result.num_failed;
  }
  result.history.push_back(std::move(o));
  result.best_so_far.push_back(result.best_value);
}

TuneResult TuningEngine::run(Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget) const {
  return run(tuner, objective, budget, {});
}

TuneResult TuningEngine::run(Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget,
                             std::span<const Observation> replayed) const {
  HPB_REQUIRE(budget > 0, "run_tuning: budget must be positive");
  TuneResult result;
  result.history.reserve(std::max(budget, replayed.size()));
  result.best_so_far.reserve(std::max(budget, replayed.size()));
  for (const Observation& o : replayed) {
    record(result, o);
  }
  while (result.history.size() < budget) {
    const std::size_t k =
        std::min(config_.batch_size, budget - result.history.size());
    for (Observation& o : run_round(tuner, objective, k)) {
      record(result, std::move(o));
    }
  }
  if (config_.journal != nullptr) {
    config_.journal->finalize(
        stop_reason_name(StopReason::kBudgetExhausted));
  }
  return result;
}

StoppedTuneResult TuningEngine::run_until(Tuner& tuner,
                                          tabular::Objective& objective,
                                          const StopConfig& config) const {
  return run_until(tuner, objective, config, {});
}

StoppedTuneResult TuningEngine::run_until(
    Tuner& tuner, tabular::Objective& objective, const StopConfig& config,
    std::span<const Observation> replayed) const {
  HPB_REQUIRE(config.max_evaluations > 0,
              "run_tuning_until: max_evaluations must be positive");
  HPB_REQUIRE(config.min_relative_improvement >= 0.0,
              "run_tuning_until: min_relative_improvement must be >= 0");
  HPB_REQUIRE(config.max_wall_time_seconds >= 0.0,
              "run_tuning_until: max_wall_time_seconds must be >= 0");
  StoppedTuneResult out;
  TuneResult& result = out.result;
  result.history.reserve(config.max_evaluations);
  result.best_so_far.reserve(config.max_evaluations);

  std::size_t since_improvement = 0;
  bool stopped = false;
  // One observation's worth of stopping bookkeeping — identical for a
  // replayed and a freshly evaluated observation, which is what makes a
  // resumed session stop exactly where the uninterrupted one would.
  auto apply = [&](Observation o) {
    // A failed evaluation never improves and can never hit the target; a
    // first success "improves" by definition.
    const bool first_success =
        o.ok() && result.history.size() == result.num_failed;
    const bool improved =
        o.ok() &&
        (first_success ||
         o.y < result.best_value - config.min_relative_improvement *
                                       std::abs(result.best_value));
    record(result, std::move(o));

    // Stopping conditions are evaluated per observation (stagnation
    // patience counts within a batch too), but the rest of the round is
    // still recorded above before we return: those evaluations already
    // happened and were observe_batch()ed into the tuner.
    if (stopped) {
      return;
    }
    if (result.best_value <= config.target_value) {
      out.reason = StopReason::kTargetReached;
      stopped = true;
      return;
    }
    since_improvement = improved ? 0 : since_improvement + 1;
    if (config.stagnation_patience > 0 &&
        since_improvement >= config.stagnation_patience) {
      out.reason = StopReason::kStagnation;
      stopped = true;
    }
  };

  auto finish = [&]() -> StoppedTuneResult {
    // kInterrupted deliberately leaves the journal unfinalized: an
    // interrupted session is exactly what --resume expects to find.
    if (config_.journal != nullptr && out.reason != StopReason::kInterrupted) {
      config_.journal->finalize(stop_reason_name(out.reason));
    }
    return std::move(out);
  };

  for (const Observation& o : replayed) {
    apply(o);
  }
  if (stopped) {
    return finish();
  }

  const auto started = std::chrono::steady_clock::now();
  while (result.history.size() < config.max_evaluations) {
    if (config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_relaxed)) {
      out.reason = StopReason::kInterrupted;
      return finish();
    }
    if (config.max_wall_time_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - started;
      if (elapsed.count() >= config.max_wall_time_seconds) {
        out.reason = StopReason::kWallTime;
        return finish();
      }
    }
    const std::size_t k = std::min(
        config_.batch_size, config.max_evaluations - result.history.size());
    for (Observation& o : run_round(tuner, objective, k)) {
      apply(std::move(o));
    }
    if (stopped) {
      return finish();
    }
  }
  out.reason = StopReason::kBudgetExhausted;
  return finish();
}

}  // namespace hpb::core
