#include "core/engine.hpp"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "core/journal.hpp"

namespace hpb::core {

TuningEngine::TuningEngine(EngineConfig config) : config_(std::move(config)) {
  HPB_REQUIRE(config_.batch_size > 0,
              "TuningEngine: batch_size must be positive");
  HPB_REQUIRE(config_.eval_deadline.count() >= 0,
              "TuningEngine: eval_deadline must be >= 0");
}

std::vector<Observation> TuningEngine::run_round(Tuner& tuner,
                                                 tabular::Objective& objective,
                                                 std::size_t k,
                                                 std::size_t round_index) const {
  const obs::Recorder& rec = config_.recorder;
  const bool tracing = rec.tracing();
  // The round span id is allocated before any child span so children can
  // point at it; the span record itself is emitted last, when its duration
  // is known.
  std::uint64_t round_id = 0;
  std::uint64_t round_start = 0;
  if (tracing) {
    round_id = rec.trace->next_id();
    round_start = rec.now_ns();
  }

  const std::uint64_t suggest_start = tracing ? rec.now_ns() : 0;
  std::vector<space::Configuration> batch = tuner.suggest_batch(k);
  HPB_REQUIRE(!batch.empty(), "TuningEngine: tuner returned an empty batch");
  HPB_REQUIRE(batch.size() <= k,
              "TuningEngine: tuner returned more configurations than asked");
  if (tracing) {
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::uint("requested", k),
        obs::TraceAttr::uint("actual", batch.size())};
    rec.trace->emit({.name = "suggest",
                     .id = rec.trace->next_id(),
                     .parent = round_id,
                     .start_ns = suggest_start,
                     .end_ns = rec.now_ns(),
                     .attrs = attrs});
  }
  // The round marker goes out before evaluation starts: a crash mid-round
  // leaves an incomplete round the reader drops and re-evaluates.
  if (config_.journal != nullptr) {
    config_.journal->begin_round(k, batch.size());
  }
  // The watchdog path only engages when a deadline or stop flag exists;
  // otherwise the historical call path runs untouched.
  const bool watched =
      config_.eval_deadline.count() > 0 || config_.stop_flag != nullptr;
  // Per-evaluation wall time and attempt counts, captured on the worker
  // that ran the evaluation but only when a recorder is attached — the
  // default path performs no clock reads at all.
  struct EvalMeter {
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t attempts = 1;
  };
  std::vector<EvalMeter> meters(rec.active() ? batch.size() : 0);
  std::vector<tabular::EvalResult> results(batch.size());
  parallel_for_indexed(
      batch.size() > 1 ? config_.pool : nullptr, batch.size(),
      [&](std::size_t i) {
        if (!meters.empty()) {
          meters[i].start_ns = rec.now_ns();
        }
        std::uint64_t attempts = 1;
        tabular::EvalResult r;
        if (watched) {
          const CancellationToken token(
              config_.eval_deadline.count() > 0
                  ? CancellationToken::Clock::now() + config_.eval_deadline
                  : CancellationToken::Clock::time_point::max(),
              config_.stop_flag);
          r = objective.evaluate_result(batch[i], token);
          // Only kCrashed is plausibly transient; bounded retries occupy
          // the same budget slot — but not once the token fired: the time
          // allocation is spent.
          for (std::size_t retry = 0;
               r.status == EvalStatus::kCrashed &&
               retry < config_.failure.max_retries && !token.cancelled();
               ++retry) {
            r = objective.evaluate_result(batch[i], token);
            ++attempts;
          }
          // An evaluation that comes back after its deadline exceeded its
          // time allocation, whatever it returned. (Stop-flag cancellation
          // does not rewrite results: the round drains and the session
          // reports kInterrupted.)
          if (token.deadline_passed()) {
            r = tabular::EvalResult::failure(EvalStatus::kTimeout);
          }
        } else {
          r = objective.evaluate_result(batch[i]);
          // Only kCrashed is plausibly transient; bounded retries occupy
          // the same budget slot.
          for (std::size_t retry = 0;
               r.status == EvalStatus::kCrashed &&
               retry < config_.failure.max_retries;
               ++retry) {
            r = objective.evaluate_result(batch[i]);
            ++attempts;
          }
        }
        HPB_REQUIRE(!r.ok() || std::isfinite(r.value),
                    "TuningEngine: objective returned a non-finite value "
                    "with status ok");
        results[i] = r;
        if (!meters.empty()) {
          meters[i].end_ns = rec.now_ns();
          meters[i].attempts = attempts;
        }
      });
  // Evaluation spans and meters are reduced in suggestion order on the
  // caller's thread: trace files stay deterministic under a fake clock
  // even though the evaluations themselves may have run on pool workers.
  std::size_t failed = 0;
  std::uint64_t retries = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!results[i].ok()) {
      ++failed;
    }
    if (!meters.empty()) {
      retries += meters[i].attempts - 1;
    }
    if (tracing) {
      std::vector<obs::TraceAttr> attrs;
      attrs.reserve(4);
      attrs.push_back(obs::TraceAttr::uint("index", i));
      attrs.push_back(obs::TraceAttr::str(
          "status", tabular::status_name(results[i].status)));
      if (results[i].ok()) {
        attrs.push_back(obs::TraceAttr::num("value", results[i].value));
      }
      attrs.push_back(obs::TraceAttr::uint("attempts", meters[i].attempts));
      rec.trace->emit({.name = "evaluate",
                       .id = rec.trace->next_id(),
                       .parent = round_id,
                       .start_ns = meters[i].start_ns,
                       .end_ns = meters[i].end_ns,
                       .attrs = attrs});
    }
  }
  if (rec.metrics != nullptr) {
    rec.metrics->counter("engine.rounds").add(1);
    rec.metrics->counter("engine.evaluations").add(batch.size());
    rec.metrics->counter("engine.failures").add(failed);
    rec.metrics->counter("engine.eval_retries").add(retries);
    obs::Histogram& eval_ms = rec.metrics->histogram(
        "engine.eval_ms", obs::default_latency_buckets_ms());
    for (const EvalMeter& m : meters) {
      eval_ms.record(static_cast<double>(m.end_ns - m.start_ns) * 1e-6);
    }
  }
  std::vector<Observation> observations;
  observations.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    observations.push_back(
        {std::move(batch[i]), results[i].value, results[i].status});
  }
  // Records hit the disk before the tuner sees them: on-disk state always
  // leads in-memory state, so replay can reconstruct the tuner exactly.
  if (config_.journal != nullptr) {
    for (std::size_t i = 0; i < observations.size(); ++i) {
      config_.journal->append_observation(observations[i]);
      if (tracing) {
        const std::uint64_t ts = rec.now_ns();
        const obs::TraceAttr attrs[] = {obs::TraceAttr::uint("index", i)};
        rec.trace->emit({.name = "journal.append",
                         .id = rec.trace->next_id(),
                         .parent = round_id,
                         .start_ns = ts,
                         .end_ns = ts,
                         .attrs = attrs});
      }
    }
  }
  const std::uint64_t observe_start = tracing ? rec.now_ns() : 0;
  tuner.observe_batch(observations);
  if (tracing) {
    rec.trace->emit({.name = "observe",
                     .id = rec.trace->next_id(),
                     .parent = round_id,
                     .start_ns = observe_start,
                     .end_ns = rec.now_ns(),
                     .attrs = {}});
    const std::uint64_t round_end = rec.now_ns();
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::uint("round", round_index),
        obs::TraceAttr::uint("requested", k),
        obs::TraceAttr::uint("actual", observations.size()),
        obs::TraceAttr::uint("failed", failed)};
    rec.trace->emit({.name = "round",
                     .id = round_id,
                     .parent = 0,
                     .start_ns = round_start,
                     .end_ns = round_end,
                     .attrs = attrs});
  }
  if (rec.metrics != nullptr && !meters.empty()) {
    // Round wall time: the traced span when available, else the envelope
    // of the evaluation meters (metrics-only runs make no round-level
    // clock reads).
    std::uint64_t start = meters.front().start_ns;
    std::uint64_t end = meters.front().end_ns;
    for (const EvalMeter& m : meters) {
      start = std::min(start, m.start_ns);
      end = std::max(end, m.end_ns);
    }
    if (tracing) {
      start = round_start;
      end = rec.now_ns();
    }
    rec.metrics
        ->histogram("engine.round_ms", obs::default_latency_buckets_ms())
        .record(static_cast<double>(end - start) * 1e-6);
  }
  return observations;
}

void TuningEngine::record(TuneResult& result, Observation o) const {
  if (o.ok()) {
    if (result.history.size() == result.num_failed ||
        o.y < result.best_value) {
      result.best_value = o.y;
      result.best_config = o.config;
    }
  } else {
    ++result.num_failed;
  }
  result.history.push_back(std::move(o));
  result.best_so_far.push_back(result.best_value);
  if (config_.recorder.metrics != nullptr &&
      result.best_value != std::numeric_limits<double>::infinity()) {
    config_.recorder.metrics->gauge("engine.best_value")
        .set(result.best_value);
  }
}

TuneResult TuningEngine::run(Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget) const {
  return run(tuner, objective, budget, {});
}

TuneResult TuningEngine::run(Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget,
                             std::span<const Observation> replayed) const {
  HPB_REQUIRE(budget > 0, "run_tuning: budget must be positive");
  if (config_.recorder.active()) {
    tuner.set_recorder(&config_.recorder);
  }
  TuneResult result;
  result.history.reserve(std::max(budget, replayed.size()));
  result.best_so_far.reserve(std::max(budget, replayed.size()));
  for (const Observation& o : replayed) {
    record(result, o);
  }
  std::size_t round_index = 0;
  while (result.history.size() < budget) {
    const std::size_t k =
        std::min(config_.batch_size, budget - result.history.size());
    for (Observation& o : run_round(tuner, objective, k, round_index)) {
      record(result, std::move(o));
    }
    ++round_index;
  }
  if (config_.journal != nullptr) {
    config_.journal->finalize(
        stop_reason_name(StopReason::kBudgetExhausted));
  }
  return result;
}

StoppedTuneResult TuningEngine::run_until(Tuner& tuner,
                                          tabular::Objective& objective,
                                          const StopConfig& config) const {
  return run_until(tuner, objective, config, {});
}

StoppedTuneResult TuningEngine::run_until(
    Tuner& tuner, tabular::Objective& objective, const StopConfig& config,
    std::span<const Observation> replayed) const {
  HPB_REQUIRE(config.max_evaluations > 0,
              "run_tuning_until: max_evaluations must be positive");
  HPB_REQUIRE(config.min_relative_improvement >= 0.0,
              "run_tuning_until: min_relative_improvement must be >= 0");
  HPB_REQUIRE(config.max_wall_time_seconds >= 0.0,
              "run_tuning_until: max_wall_time_seconds must be >= 0");
  if (config_.recorder.active()) {
    tuner.set_recorder(&config_.recorder);
  }
  StoppedTuneResult out;
  TuneResult& result = out.result;
  result.history.reserve(config.max_evaluations);
  result.best_so_far.reserve(config.max_evaluations);

  std::size_t since_improvement = 0;
  bool stopped = false;
  // One observation's worth of stopping bookkeeping — identical for a
  // replayed and a freshly evaluated observation, which is what makes a
  // resumed session stop exactly where the uninterrupted one would.
  auto apply = [&](Observation o) {
    // A failed evaluation never improves and can never hit the target; a
    // first success "improves" by definition.
    const bool first_success =
        o.ok() && result.history.size() == result.num_failed;
    const bool improved =
        o.ok() &&
        (first_success ||
         o.y < result.best_value - config.min_relative_improvement *
                                       std::abs(result.best_value));
    record(result, std::move(o));

    // Stopping conditions are evaluated per observation (stagnation
    // patience counts within a batch too), but the rest of the round is
    // still recorded above before we return: those evaluations already
    // happened and were observe_batch()ed into the tuner.
    if (stopped) {
      return;
    }
    if (result.best_value <= config.target_value) {
      out.reason = StopReason::kTargetReached;
      stopped = true;
      return;
    }
    since_improvement = improved ? 0 : since_improvement + 1;
    if (config.stagnation_patience > 0 &&
        since_improvement >= config.stagnation_patience) {
      out.reason = StopReason::kStagnation;
      stopped = true;
    }
  };

  auto finish = [&]() -> StoppedTuneResult {
    // kInterrupted deliberately leaves the journal unfinalized: an
    // interrupted session is exactly what --resume expects to find.
    if (config_.journal != nullptr && out.reason != StopReason::kInterrupted) {
      config_.journal->finalize(stop_reason_name(out.reason));
    }
    return std::move(out);
  };

  for (const Observation& o : replayed) {
    apply(o);
  }
  if (stopped) {
    return finish();
  }

  const auto started = std::chrono::steady_clock::now();
  std::size_t round_index = 0;
  while (result.history.size() < config.max_evaluations) {
    if (config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_relaxed)) {
      out.reason = StopReason::kInterrupted;
      return finish();
    }
    if (config.max_wall_time_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - started;
      if (elapsed.count() >= config.max_wall_time_seconds) {
        out.reason = StopReason::kWallTime;
        return finish();
      }
    }
    const std::size_t k = std::min(
        config_.batch_size, config.max_evaluations - result.history.size());
    for (Observation& o : run_round(tuner, objective, k, round_index)) {
      apply(std::move(o));
    }
    ++round_index;
    if (stopped) {
      return finish();
    }
  }
  out.reason = StopReason::kBudgetExhausted;
  return finish();
}

}  // namespace hpb::core
