#include "core/engine.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "core/journal.hpp"

namespace hpb::core {

TuningEngine::TuningEngine(EngineConfig config) : config_(std::move(config)) {
  HPB_REQUIRE(config_.batch_size > 0,
              "TuningEngine: batch_size must be positive");
  HPB_REQUIRE(config_.eval_deadline.count() >= 0,
              "TuningEngine: eval_deadline must be >= 0");
}

SessionConfig TuningEngine::session_config(StopConfig stop) const {
  return {.batch_size = config_.batch_size,
          .failure = config_.failure,
          .eval_deadline = config_.eval_deadline,
          .stop_flag = config_.stop_flag,
          .recorder = config_.recorder,
          .stop = stop};
}

void TuningEngine::drive_round(Session& session, tabular::Objective& objective,
                               std::size_t k) const {
  const obs::Recorder& rec = config_.recorder;
  std::vector<space::Configuration> batch = session.suggest(k);
  // The watchdog path only engages when a deadline or stop flag exists;
  // otherwise the historical call path runs untouched.
  const bool watched =
      config_.eval_deadline.count() > 0 || config_.stop_flag != nullptr;
  // Per-evaluation wall time and attempt counts, captured on the worker
  // that ran the evaluation but only when a recorder is attached — the
  // default path performs no clock reads at all.
  std::vector<EvalMeter> meters(rec.active() ? batch.size() : 0);
  std::vector<tabular::EvalResult> results(batch.size());
  parallel_for_indexed(
      batch.size() > 1 ? config_.pool : nullptr, batch.size(),
      [&](std::size_t i) {
        if (!meters.empty()) {
          meters[i].start_ns = rec.now_ns();
        }
        std::uint64_t attempts = 1;
        tabular::EvalResult r;
        if (watched) {
          const CancellationToken token(
              config_.eval_deadline.count() > 0
                  ? CancellationToken::Clock::now() + config_.eval_deadline
                  : CancellationToken::Clock::time_point::max(),
              config_.stop_flag);
          r = objective.evaluate_result(batch[i], token);
          // Only kCrashed is plausibly transient; bounded retries occupy
          // the same budget slot — but not once the token fired: the time
          // allocation is spent.
          for (std::size_t retry = 0;
               r.status == EvalStatus::kCrashed &&
               retry < config_.failure.max_retries && !token.cancelled();
               ++retry) {
            r = objective.evaluate_result(batch[i], token);
            ++attempts;
          }
          // An evaluation that comes back after its deadline exceeded its
          // time allocation, whatever it returned. (Stop-flag cancellation
          // does not rewrite results: the round drains and the session
          // reports kInterrupted.)
          if (token.deadline_passed()) {
            r = tabular::EvalResult::failure(EvalStatus::kTimeout);
          }
        } else {
          r = objective.evaluate_result(batch[i]);
          // Only kCrashed is plausibly transient; bounded retries occupy
          // the same budget slot.
          for (std::size_t retry = 0;
               r.status == EvalStatus::kCrashed &&
               retry < config_.failure.max_retries;
               ++retry) {
            r = objective.evaluate_result(batch[i]);
            ++attempts;
          }
        }
        HPB_REQUIRE(!r.ok() || std::isfinite(r.value),
                    "TuningEngine: objective returned a non-finite value "
                    "with status ok");
        results[i] = r;
        if (!meters.empty()) {
          meters[i].end_ns = rec.now_ns();
          meters[i].attempts = attempts;
        }
      });
  std::vector<Observation> observations;
  observations.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    observations.push_back(
        {std::move(batch[i]), results[i].value, results[i].status});
  }
  session.observe(std::move(observations), meters);
}

TuneResult TuningEngine::run(Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget) const {
  return run(tuner, objective, budget, {});
}

TuneResult TuningEngine::run(Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget,
                             std::span<const Observation> replayed) const {
  HPB_REQUIRE(budget > 0, "run_tuning: budget must be positive");
  if (config_.recorder.active()) {
    tuner.set_recorder(&config_.recorder);
  }
  // The fixed-budget driver ignores the session's stopping verdict (no
  // target / stagnation checks, exactly as before the session split); the
  // StopConfig below only sizes the bookkeeping.
  Session session(tuner, session_config({.max_evaluations = budget}),
                  config_.journal);
  session.reserve(std::max(budget, replayed.size()));
  session.replay(replayed);
  while (session.evaluations() < budget) {
    const std::size_t k =
        std::min(config_.batch_size, budget - session.evaluations());
    drive_round(session, objective, k);
  }
  session.finish(StopReason::kBudgetExhausted);
  return session.take_result();
}

StoppedTuneResult TuningEngine::run_until(Tuner& tuner,
                                          tabular::Objective& objective,
                                          const StopConfig& config) const {
  return run_until(tuner, objective, config, {});
}

StoppedTuneResult TuningEngine::run_until(
    Tuner& tuner, tabular::Objective& objective, const StopConfig& config,
    std::span<const Observation> replayed) const {
  HPB_REQUIRE(config.max_evaluations > 0,
              "run_tuning_until: max_evaluations must be positive");
  HPB_REQUIRE(config.min_relative_improvement >= 0.0,
              "run_tuning_until: min_relative_improvement must be >= 0");
  HPB_REQUIRE(config.max_wall_time_seconds >= 0.0,
              "run_tuning_until: max_wall_time_seconds must be >= 0");
  if (config_.recorder.active()) {
    tuner.set_recorder(&config_.recorder);
  }
  Session session(tuner, session_config(config), config_.journal);
  session.reserve(config.max_evaluations);

  auto finish = [&](StopReason reason) {
    // finish(kInterrupted) leaves the journal unfinalized: an interrupted
    // session is exactly what --resume expects to find.
    session.finish(reason);
    StoppedTuneResult out;
    out.reason = reason;
    out.result = session.take_result();
    return out;
  };

  session.replay(replayed);
  if (session.stopped()) {
    return finish(session.stop_reason());
  }

  const auto started = std::chrono::steady_clock::now();
  while (session.evaluations() < config.max_evaluations) {
    if (config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_relaxed)) {
      return finish(StopReason::kInterrupted);
    }
    if (config.max_wall_time_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - started;
      if (elapsed.count() >= config.max_wall_time_seconds) {
        return finish(StopReason::kWallTime);
      }
    }
    const std::size_t k = std::min(
        config_.batch_size, config.max_evaluations - session.evaluations());
    drive_round(session, objective, k);
    if (session.stopped()) {
      return finish(session.stop_reason());
    }
  }
  return finish(StopReason::kBudgetExhausted);
}

}  // namespace hpb::core
