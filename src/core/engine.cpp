#include "core/engine.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace hpb::core {

TuningEngine::TuningEngine(EngineConfig config) : config_(config) {
  HPB_REQUIRE(config_.batch_size > 0,
              "TuningEngine: batch_size must be positive");
}

std::vector<Observation> TuningEngine::run_round(Tuner& tuner,
                                                 tabular::Objective& objective,
                                                 std::size_t k) const {
  std::vector<space::Configuration> batch = tuner.suggest_batch(k);
  HPB_REQUIRE(!batch.empty(), "TuningEngine: tuner returned an empty batch");
  HPB_REQUIRE(batch.size() <= k,
              "TuningEngine: tuner returned more configurations than asked");
  std::vector<double> values(batch.size());
  parallel_for_indexed(batch.size() > 1 ? config_.pool : nullptr, batch.size(),
                       [&](std::size_t i) {
                         values[i] = objective.evaluate(batch[i]);
                       });
  std::vector<Observation> observations;
  observations.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    observations.push_back({std::move(batch[i]), values[i]});
  }
  tuner.observe_batch(observations);
  return observations;
}

TuneResult TuningEngine::run(Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget) const {
  HPB_REQUIRE(budget > 0, "run_tuning: budget must be positive");
  TuneResult result;
  result.history.reserve(budget);
  result.best_so_far.reserve(budget);
  while (result.history.size() < budget) {
    const std::size_t k =
        std::min(config_.batch_size, budget - result.history.size());
    for (Observation& o : run_round(tuner, objective, k)) {
      if (result.history.empty() || o.y < result.best_value) {
        result.best_value = o.y;
        result.best_config = o.config;
      }
      result.history.push_back(std::move(o));
      result.best_so_far.push_back(result.best_value);
    }
  }
  return result;
}

StoppedTuneResult TuningEngine::run_until(Tuner& tuner,
                                          tabular::Objective& objective,
                                          const StopConfig& config) const {
  HPB_REQUIRE(config.max_evaluations > 0,
              "run_tuning_until: max_evaluations must be positive");
  HPB_REQUIRE(config.min_relative_improvement >= 0.0,
              "run_tuning_until: min_relative_improvement must be >= 0");
  StoppedTuneResult out;
  TuneResult& result = out.result;
  result.history.reserve(config.max_evaluations);
  result.best_so_far.reserve(config.max_evaluations);

  std::size_t since_improvement = 0;
  while (result.history.size() < config.max_evaluations) {
    const std::size_t k = std::min(
        config_.batch_size, config.max_evaluations - result.history.size());
    for (Observation& o : run_round(tuner, objective, k)) {
      const bool first = result.history.empty();
      const bool improved =
          first ||
          o.y < result.best_value - config.min_relative_improvement *
                                        std::abs(result.best_value);
      if (first || o.y < result.best_value) {
        result.best_value = o.y;
        result.best_config = o.config;
      }
      result.history.push_back(std::move(o));
      result.best_so_far.push_back(result.best_value);

      if (result.best_value <= config.target_value) {
        out.reason = StopReason::kTargetReached;
        return out;
      }
      since_improvement = improved ? 0 : since_improvement + 1;
      if (config.stagnation_patience > 0 &&
          since_improvement >= config.stagnation_patience) {
        out.reason = StopReason::kStagnation;
        return out;
      }
    }
  }
  out.reason = StopReason::kBudgetExhausted;
  return out;
}

}  // namespace hpb::core
