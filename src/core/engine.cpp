#include "core/engine.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace hpb::core {

TuningEngine::TuningEngine(EngineConfig config) : config_(config) {
  HPB_REQUIRE(config_.batch_size > 0,
              "TuningEngine: batch_size must be positive");
}

std::vector<Observation> TuningEngine::run_round(Tuner& tuner,
                                                 tabular::Objective& objective,
                                                 std::size_t k) const {
  std::vector<space::Configuration> batch = tuner.suggest_batch(k);
  HPB_REQUIRE(!batch.empty(), "TuningEngine: tuner returned an empty batch");
  HPB_REQUIRE(batch.size() <= k,
              "TuningEngine: tuner returned more configurations than asked");
  std::vector<tabular::EvalResult> results(batch.size());
  parallel_for_indexed(
      batch.size() > 1 ? config_.pool : nullptr, batch.size(),
      [&](std::size_t i) {
        tabular::EvalResult r = objective.evaluate_result(batch[i]);
        // Only kCrashed is plausibly transient; bounded retries occupy the
        // same budget slot.
        for (std::size_t retry = 0;
             r.status == EvalStatus::kCrashed &&
             retry < config_.failure.max_retries;
             ++retry) {
          r = objective.evaluate_result(batch[i]);
        }
        HPB_REQUIRE(!r.ok() || std::isfinite(r.value),
                    "TuningEngine: objective returned a non-finite value "
                    "with status ok");
        results[i] = r;
      });
  std::vector<Observation> observations;
  observations.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    observations.push_back(
        {std::move(batch[i]), results[i].value, results[i].status});
  }
  tuner.observe_batch(observations);
  return observations;
}

void TuningEngine::record(TuneResult& result, Observation o) {
  if (o.ok()) {
    if (result.history.size() == result.num_failed ||
        o.y < result.best_value) {
      result.best_value = o.y;
      result.best_config = o.config;
    }
  } else {
    ++result.num_failed;
  }
  result.history.push_back(std::move(o));
  result.best_so_far.push_back(result.best_value);
}

TuneResult TuningEngine::run(Tuner& tuner, tabular::Objective& objective,
                             std::size_t budget) const {
  HPB_REQUIRE(budget > 0, "run_tuning: budget must be positive");
  TuneResult result;
  result.history.reserve(budget);
  result.best_so_far.reserve(budget);
  while (result.history.size() < budget) {
    const std::size_t k =
        std::min(config_.batch_size, budget - result.history.size());
    for (Observation& o : run_round(tuner, objective, k)) {
      record(result, std::move(o));
    }
  }
  return result;
}

StoppedTuneResult TuningEngine::run_until(Tuner& tuner,
                                          tabular::Objective& objective,
                                          const StopConfig& config) const {
  HPB_REQUIRE(config.max_evaluations > 0,
              "run_tuning_until: max_evaluations must be positive");
  HPB_REQUIRE(config.min_relative_improvement >= 0.0,
              "run_tuning_until: min_relative_improvement must be >= 0");
  StoppedTuneResult out;
  TuneResult& result = out.result;
  result.history.reserve(config.max_evaluations);
  result.best_so_far.reserve(config.max_evaluations);

  std::size_t since_improvement = 0;
  bool stopped = false;
  while (result.history.size() < config.max_evaluations) {
    const std::size_t k = std::min(
        config_.batch_size, config.max_evaluations - result.history.size());
    for (Observation& o : run_round(tuner, objective, k)) {
      // A failed evaluation never improves and can never hit the target; a
      // first success "improves" by definition.
      const bool first_success =
          o.ok() && result.history.size() == result.num_failed;
      const bool improved =
          o.ok() &&
          (first_success ||
           o.y < result.best_value - config.min_relative_improvement *
                                         std::abs(result.best_value));
      record(result, std::move(o));

      // Stopping conditions are evaluated per observation (stagnation
      // patience counts within a batch too), but the rest of the round is
      // still recorded above before we return: those evaluations already
      // happened and were observe_batch()ed into the tuner.
      if (stopped) {
        continue;
      }
      if (result.best_value <= config.target_value) {
        out.reason = StopReason::kTargetReached;
        stopped = true;
        continue;
      }
      since_improvement = improved ? 0 : since_improvement + 1;
      if (config.stagnation_patience > 0 &&
          since_improvement >= config.stagnation_patience) {
        out.reason = StopReason::kStagnation;
        stopped = true;
      }
    }
    if (stopped) {
      return out;
    }
  }
  out.reason = StopReason::kBudgetExhausted;
  return out;
}

}  // namespace hpb::core
