#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/fsio.hpp"

namespace hpb::core {
namespace {

constexpr std::string_view kMagic = "hpbj v1";

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double double_of(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string hex16(double v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits_of(v)));
  return buf;
}

bool parse_u64(std::string_view tok, std::uint64_t& out, int base = 10) {
  if (tok.empty()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out, base);
  return ec == std::errc{} && ptr == tok.data() + tok.size();
}

bool parse_bits(std::string_view tok, double& out) {
  std::uint64_t bits = 0;
  if (tok.size() != 16 || !parse_u64(tok, bits, 16)) {
    return false;
  }
  out = double_of(bits);
  return true;
}

/// Split a line into at most `max_tokens` space-separated tokens; the last
/// token keeps the rest of the line verbatim (meta values and end reasons
/// may contain spaces).
std::vector<std::string_view> tokenize(std::string_view line,
                                       std::size_t max_tokens) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start < line.size() && tokens.size() + 1 < max_tokens) {
    const std::size_t space = line.find(' ', start);
    if (space == std::string_view::npos) {
      break;
    }
    tokens.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  if (start <= line.size()) {
    tokens.push_back(line.substr(start));
  }
  return tokens;
}

std::vector<std::string_view> split_all(std::string_view line) {
  return tokenize(line, std::numeric_limits<std::size_t>::max());
}

std::string errno_text() { return std::strerror(errno); }

}  // namespace

// ---------------------------------------------------------------- writer

JournalWriter::JournalWriter(std::string path, int fd, std::size_t next_round)
    : path_(std::move(path)), fd_(fd), next_round_(next_round) {}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      next_round_(other.next_round_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    next_round_ = other.next_round_;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void JournalWriter::write_line(std::string_view line) {
  HPB_REQUIRE(fd_ >= 0, "JournalWriter: writer was moved from or closed");
  std::string buf(line);
  buf.push_back('\n');
  // fs::write_all + sync_fd throw hpb::IoError on a real (or injected)
  // disk fault; the session above marks itself degraded instead of the
  // process dying — the durable prefix on disk is still a valid journal.
  fs::write_all(fd_, buf, path_);
  fs::sync_fd(fd_, path_);
}

JournalWriter JournalWriter::create(const std::string& path,
                                    const JournalHeader& header) {
  HPB_REQUIRE(!header.method.empty(), "journal: header.method is empty");
  HPB_REQUIRE(header.num_params > 0, "journal: header.num_params must be > 0");
  HPB_REQUIRE(header.batch_size > 0, "journal: header.batch_size must be > 0");
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  // A missing parent directory is the one misconfiguration every caller
  // hits eventually (typo'd --journal / --session-dir); name it instead of
  // aborting the run with a bare ENOENT at the first append.
  HPB_REQUIRE(!(fd < 0 && errno == ENOENT),
              "journal open '" + path +
                  "': parent directory does not exist (create it first, or "
                  "check the --journal / --session-dir path)");
  if (fd < 0) {
    throw IoError("journal open '" + path + "': " + errno_text(), errno);
  }
  JournalWriter writer(path, fd, 0);
  // The whole header goes out in one durable write: it is either entirely
  // present or the journal is unusable — no torn-header states to handle.
  std::ostringstream head;
  head << kMagic << '\n'
       << "meta method " << header.method << '\n'
       << "meta dataset " << header.dataset << '\n';
  if (header.async) {
    head << "meta mode async\n";
  }
  if (!header.warm_start.empty()) {
    head << "meta warm_start " << header.warm_start << '\n';
  }
  if (!header.trace_path.empty()) {
    head << "meta trace " << header.trace_path << '\n';
  }
  head << "meta seed " << header.seed << '\n'
       << "meta batch " << header.batch_size << '\n'
       << "meta params " << header.num_params << '\n'
       << "meta budget " << header.max_evaluations << '\n'
       << "meta patience " << header.stagnation_patience << '\n'
       << "meta target " << hex16(header.target_value) << '\n'
       << "meta fail_rate " << hex16(header.fail_rate) << '\n'
       << "meta crash_rate " << hex16(header.crash_rate) << '\n'
       << "meta hang_rate " << hex16(header.hang_rate);
  writer.write_line(head.str());
  fs::sync_parent_dir(path);
  return writer;
}

JournalWriter JournalWriter::append(const std::string& path,
                                    const JournalContents& contents) {
  HPB_REQUIRE(contents.valid_bytes > 0,
              "journal append: contents carry no validated prefix");
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    throw IoError("journal open '" + path + "': " + errno_text(), errno);
  }
  // Drop the torn tail / incomplete round / end marker, then continue.
  if (::ftruncate(fd, static_cast<off_t>(contents.valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("journal truncate '" + path + "': " + std::strerror(err),
                  err);
  }
  JournalWriter writer(path, fd, contents.rounds.size());
  fs::sync_fd(fd, path);
  return writer;
}

void JournalWriter::begin_round(std::size_t requested, std::size_t actual) {
  HPB_REQUIRE(actual > 0 && actual <= requested,
              "journal begin_round: actual batch out of range");
  std::ostringstream line;
  line << "round " << next_round_ << ' ' << requested << ' ' << actual;
  write_line(line.str());
  ++next_round_;
}

void JournalWriter::append_observation(const Observation& o) {
  std::ostringstream line;
  line << "obs " << tabular::status_name(o.status) << ' ' << hex16(o.y);
  for (std::size_t p = 0; p < o.config.size(); ++p) {
    line << ' ' << hex16(o.config[p]);
  }
  write_line(line.str());
}

void JournalWriter::abandon_round() {
  HPB_REQUIRE(next_round_ > 0,
              "journal abandon_round: no round has been opened");
  write_line("abandon");
}

void JournalWriter::begin_ask(std::size_t requested,
                              std::uint64_t first_token,
                              std::span<const space::Configuration> batch) {
  HPB_REQUIRE(!batch.empty() && batch.size() <= requested,
              "journal begin_ask: actual batch out of range");
  HPB_REQUIRE(first_token > 0, "journal begin_ask: tokens start at 1");
  std::ostringstream line;
  line << "ask " << requested << ' ' << first_token << ' ' << batch.size();
  for (const space::Configuration& c : batch) {
    for (std::size_t p = 0; p < c.size(); ++p) {
      line << ' ' << hex16(c[p]);
    }
  }
  write_line(line.str());
}

void JournalWriter::append_async_observation(std::uint64_t token,
                                             const Observation& o) {
  std::ostringstream line;
  line << "aobs " << token << ' ' << tabular::status_name(o.status) << ' '
       << hex16(o.y);
  write_line(line.str());
}

void JournalWriter::append_cancel(std::uint64_t token) {
  std::ostringstream line;
  line << "acancel " << token;
  write_line(line.str());
}

void JournalWriter::finalize(std::string_view reason) {
  HPB_REQUIRE(!reason.empty() && reason.find('\n') == std::string_view::npos,
              "journal finalize: reason must be a single non-empty line");
  std::string line = "end ";
  line += reason;
  write_line(line);
}

// ---------------------------------------------------------------- reader

JournalContents read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HPB_REQUIRE(in.good(), "read_journal: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  JournalContents contents;
  std::size_t offset = 0;
  // Pull the next '\n'-terminated line; a line without its newline is a
  // torn tail and does not count.
  auto next_line = [&](std::string_view& line) {
    const std::size_t nl = data.find('\n', offset);
    if (nl == std::string::npos) {
      return false;
    }
    line = std::string_view(data).substr(offset, nl - offset);
    offset = nl + 1;
    return true;
  };

  std::string_view line;
  HPB_REQUIRE(next_line(line) && line == kMagic,
              "read_journal: '" + path + "' is not a v1 observation journal");

  JournalHeader& h = contents.header;
  bool in_header = true;
  contents.valid_bytes = offset;
  while (in_header) {
    const std::size_t line_start = offset;
    if (!next_line(line)) {
      break;  // header-only journal (valid: zero rounds)
    }
    const auto tokens = tokenize(line, 3);
    if (tokens.size() == 3 && tokens[0] == "meta") {
      const std::string_view key = tokens[1];
      const std::string_view value = tokens[2];
      std::uint64_t u = 0;
      bool ok = true;
      if (key == "method") {
        h.method = value;
      } else if (key == "dataset") {
        h.dataset = value;
      } else if (key == "warm_start") {
        h.warm_start = value;
      } else if (key == "trace") {
        h.trace_path = value;
      } else if (key == "seed") {
        ok = parse_u64(value, h.seed);
      } else if (key == "batch") {
        ok = parse_u64(value, u);
        h.batch_size = u;
      } else if (key == "params") {
        ok = parse_u64(value, u);
        h.num_params = u;
      } else if (key == "budget") {
        ok = parse_u64(value, u);
        h.max_evaluations = u;
      } else if (key == "patience") {
        ok = parse_u64(value, u);
        h.stagnation_patience = u;
      } else if (key == "target") {
        ok = parse_bits(value, h.target_value);
      } else if (key == "fail_rate") {
        ok = parse_bits(value, h.fail_rate);
      } else if (key == "crash_rate") {
        ok = parse_bits(value, h.crash_rate);
      } else if (key == "hang_rate") {
        ok = parse_bits(value, h.hang_rate);
      } else if (key == "mode") {
        ok = value == "async" || value == "sync";
        h.async = value == "async";
      }  // unknown meta keys are skipped for forward compatibility
      HPB_REQUIRE(ok, "read_journal: malformed header line '" +
                          std::string(line) + "'");
      contents.valid_bytes = offset;
    } else {
      // First non-meta line: the header is complete; rewind and leave.
      offset = line_start;
      in_header = false;
    }
  }
  HPB_REQUIRE(!h.method.empty() && h.num_params > 0 && h.batch_size > 0,
              "read_journal: incomplete header in '" + path + "'");

  if (h.async) {
    // Asynchronous body: one self-contained event line per verb. Every
    // valid line extends the durable prefix on its own — there is no
    // multi-line round to tear, only the final line.
    std::unordered_map<std::uint64_t, space::Configuration> outstanding;
    std::uint64_t next_token = 1;
    for (;;) {
      if (!next_line(line)) {
        break;
      }
      const auto tokens = split_all(line);
      if (tokens.size() == 2 && tokens[0] == "end") {
        contents.finalized = true;
        contents.finish_reason = tokens[1];
        break;  // valid_bytes deliberately excludes the end marker
      }
      AsyncEvent event;
      if (tokens.size() >= 4 && tokens[0] == "ask") {
        std::uint64_t requested = 0, first_token = 0, actual = 0;
        if (!parse_u64(tokens[1], requested) ||
            !parse_u64(tokens[2], first_token) ||
            !parse_u64(tokens[3], actual) || actual == 0 ||
            actual > requested || first_token != next_token ||
            tokens.size() != 4 + actual * h.num_params) {
          break;  // torn or foreign tail; the prefix so far stands
        }
        event.kind = AsyncEvent::Kind::kAsk;
        event.requested = static_cast<std::size_t>(requested);
        event.first_token = first_token;
        bool ok = true;
        for (std::uint64_t i = 0; i < actual && ok; ++i) {
          std::vector<double> values(h.num_params, 0.0);
          for (std::size_t p = 0; p < h.num_params && ok; ++p) {
            ok = parse_bits(tokens[4 + i * h.num_params + p], values[p]);
          }
          if (ok) {
            event.configs.emplace_back(std::move(values));
          }
        }
        if (!ok) {
          break;
        }
        for (std::uint64_t i = 0; i < actual; ++i) {
          outstanding.emplace(first_token + i, event.configs[i]);
        }
        next_token = first_token + actual;
      } else if (tokens.size() == 4 && tokens[0] == "aobs") {
        std::uint64_t token = 0;
        if (!parse_u64(tokens[1], token)) {
          break;
        }
        const auto it = outstanding.find(token);
        if (it == outstanding.end()) {
          break;  // unknown/already-resolved token: corruption, stop here
        }
        event.kind = AsyncEvent::Kind::kObserve;
        event.token = token;
        try {
          event.observation.status =
              tabular::status_from_name(std::string(tokens[2]));
        } catch (const Error&) {
          break;
        }
        if (!parse_bits(tokens[3], event.observation.y)) {
          break;
        }
        // NaN under an ok status is corruption, exactly as for sync obs
        // records; infinities stay legal.
        if (event.observation.status == tabular::EvalStatus::kOk &&
            std::isnan(event.observation.y)) {
          break;
        }
        event.observation.config = it->second;
        outstanding.erase(it);
      } else if (tokens.size() == 2 && tokens[0] == "acancel") {
        std::uint64_t token = 0;
        if (!parse_u64(tokens[1], token)) {
          break;
        }
        const auto it = outstanding.find(token);
        if (it == outstanding.end()) {
          break;
        }
        event.kind = AsyncEvent::Kind::kCancel;
        event.token = token;
        event.observation.config = it->second;
        outstanding.erase(it);
      } else {
        break;
      }
      contents.events.push_back(std::move(event));
      contents.valid_bytes = offset;
    }
    return contents;
  }

  // Rounds, until the end marker, EOF, or the first torn/malformed line.
  for (;;) {
    if (!next_line(line)) {
      break;
    }
    auto tokens = split_all(line);
    if (tokens.size() == 2 && tokens[0] == "end") {
      contents.finalized = true;
      contents.finish_reason = tokens[1];
      break;  // valid_bytes deliberately excludes the end marker
    }
    std::uint64_t index = 0, requested = 0, actual = 0;
    if (tokens.size() != 4 || tokens[0] != "round" ||
        !parse_u64(tokens[1], index) || !parse_u64(tokens[2], requested) ||
        !parse_u64(tokens[3], actual) || index != contents.rounds.size() ||
        actual == 0 || actual > requested) {
      break;  // torn or foreign tail; the prefix so far stands
    }
    JournalRound round;
    round.requested = static_cast<std::size_t>(requested);
    round.actual = static_cast<std::size_t>(actual);
    bool complete = true;
    for (std::uint64_t i = 0; i < actual; ++i) {
      if (!next_line(line)) {
        complete = false;
        break;
      }
      // A round marker directly followed by an abandon marker is a
      // cancelled round: no observations ever existed, and replay
      // re-suggests then abandons it instead of re-evaluating.
      if (i == 0 && line == "abandon") {
        round.abandoned = true;
        break;
      }
      tokens = split_all(line);
      if (tokens.size() != 3 + h.num_params || tokens[0] != "obs") {
        complete = false;
        break;
      }
      Observation o;
      try {
        o.status = tabular::status_from_name(std::string(tokens[1]));
      } catch (const Error&) {
        complete = false;
        break;
      }
      if (!parse_bits(tokens[2], o.y)) {
        complete = false;
        break;
      }
      // A successful observation never carries NaN (the writer reserves it
      // for failed records), so NaN bits under an ok status are corruption.
      // Infinities stay legal: extreme objective values round-trip exactly.
      if (o.status == tabular::EvalStatus::kOk && std::isnan(o.y)) {
        complete = false;
        break;
      }
      std::vector<double> values(h.num_params, 0.0);
      for (std::size_t p = 0; p < h.num_params; ++p) {
        if (!parse_bits(tokens[3 + p], values[p])) {
          complete = false;
          break;
        }
      }
      if (!complete) {
        break;
      }
      o.config = space::Configuration(std::move(values));
      round.observations.push_back(std::move(o));
    }
    if (!complete) {
      break;  // incomplete round: dropped, will be re-evaluated on resume
    }
    contents.rounds.push_back(std::move(round));
    contents.valid_bytes = offset;
  }
  return contents;
}

// ---------------------------------------------------------------- replay

std::vector<Observation> replay_journal(Tuner& tuner,
                                        const space::ParameterSpace& space,
                                        const JournalContents& contents) {
  HPB_REQUIRE(contents.header.num_params == space.num_params(),
              "replay_journal: journal has " +
                  std::to_string(contents.header.num_params) +
                  " parameters but the space has " +
                  std::to_string(space.num_params()));
  std::vector<Observation> replayed;
  replayed.reserve(contents.num_observations());
  for (std::size_t r = 0; r < contents.rounds.size(); ++r) {
    const JournalRound& round = contents.rounds[r];
    const std::vector<space::Configuration> batch =
        tuner.suggest_batch(round.requested);
    if (round.abandoned) {
      // The round was cancelled whole before any observation: re-suggesting
      // advanced the tuner (RNG, pending tracking) exactly as the original
      // suggest did; abandoning each member restores the cancelled state.
      HPB_REQUIRE(batch.size() == round.actual,
                  "replay_journal: abandoned round " + std::to_string(r) +
                      " diverged — tuner proposed " +
                      std::to_string(batch.size()) +
                      " configurations, journal recorded " +
                      std::to_string(round.actual) +
                      " (wrong method, seed, or dataset?)");
      for (const space::Configuration& c : batch) {
        tuner.abandon(c);
      }
      continue;
    }
    HPB_REQUIRE(batch.size() == round.observations.size(),
                "replay_journal: round " + std::to_string(r) +
                    " diverged — tuner proposed " +
                    std::to_string(batch.size()) + " configurations, journal "
                    "recorded " + std::to_string(round.observations.size()) +
                    " (wrong method, seed, or dataset?)");
    for (std::size_t i = 0; i < batch.size(); ++i) {
      HPB_REQUIRE(
          batch[i].values() == round.observations[i].config.values(),
          "replay_journal: round " + std::to_string(r) + " observation " +
              std::to_string(i) +
              " diverged — the tuner did not re-propose the journaled "
              "configuration (wrong method, seed, or dataset?)");
    }
    tuner.observe_batch(round.observations);
    replayed.insert(replayed.end(), round.observations.begin(),
                    round.observations.end());
  }
  return replayed;
}

AsyncReplayResult replay_journal_async(Tuner& tuner,
                                       const space::ParameterSpace& space,
                                       const JournalContents& contents) {
  HPB_REQUIRE(contents.header.async,
              "replay_journal_async: journal is not an async journal");
  HPB_REQUIRE(contents.header.num_params == space.num_params(),
              "replay_journal_async: journal has " +
                  std::to_string(contents.header.num_params) +
                  " parameters but the space has " +
                  std::to_string(space.num_params()));
  AsyncReplayResult result;
  // Ordered map: tokens are issued in increasing order, so iteration order
  // equals issue order — the resumed session re-exposes outstanding tokens
  // exactly as the original issued them.
  std::map<std::uint64_t, space::Configuration> outstanding;
  for (std::size_t e = 0; e < contents.events.size(); ++e) {
    const AsyncEvent& event = contents.events[e];
    switch (event.kind) {
      case AsyncEvent::Kind::kAsk: {
        const std::vector<space::Configuration> batch =
            tuner.suggest_batch(event.requested);
        HPB_REQUIRE(batch.size() == event.configs.size(),
                    "replay_journal_async: ask event " + std::to_string(e) +
                        " diverged — tuner proposed " +
                        std::to_string(batch.size()) +
                        " configurations, journal recorded " +
                        std::to_string(event.configs.size()) +
                        " (wrong method, seed, or dataset?)");
        for (std::size_t i = 0; i < batch.size(); ++i) {
          HPB_REQUIRE(batch[i].values() == event.configs[i].values(),
                      "replay_journal_async: ask event " + std::to_string(e) +
                          " configuration " + std::to_string(i) +
                          " diverged — the tuner did not re-propose the "
                          "journaled configuration (wrong method, seed, or "
                          "dataset?)");
          outstanding.emplace(event.first_token + i, batch[i]);
        }
        result.next_token = event.first_token + batch.size();
        break;
      }
      case AsyncEvent::Kind::kObserve: {
        outstanding.erase(event.token);
        if (event.observation.status == tabular::EvalStatus::kOk) {
          tuner.observe(event.observation.config, event.observation.y);
        } else {
          tuner.observe_failure(event.observation.config,
                                event.observation.status);
        }
        result.observations.push_back(event.observation);
        break;
      }
      case AsyncEvent::Kind::kCancel: {
        const auto it = outstanding.find(event.token);
        HPB_REQUIRE(it != outstanding.end(),
                    "replay_journal_async: cancel event " + std::to_string(e) +
                        " references an unknown token");
        tuner.abandon(it->second);
        outstanding.erase(it);
        break;
      }
    }
  }
  result.outstanding.assign(outstanding.begin(), outstanding.end());
  return result;
}

}  // namespace hpb::core
