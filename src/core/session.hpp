// Session: the reentrant per-run core of the tuning loop.
//
// A Session owns everything one tuning run carries between rounds — the
// tuner, the write-ahead journal, the observability recorder, the pending
// (suggested-but-unobserved) round, the stopping bookkeeping, and the
// best-so-far trajectory — behind explicit suggest / observe / status /
// checkpoint entry points. TuningEngine::run drives a single Session to
// completion (evaluating the objective itself); SessionManager hosts
// thousands of named Sessions whose clients evaluate remotely and come and
// go between verbs.
//
// The split is exact: Session::suggest performs everything run_round did up
// to (and including) the journal round marker, Session::observe performs
// everything after the evaluations returned, in the same order — trace span
// ids, clock reads, journal bytes, and metrics all match the pre-split
// driver bit for bit (pinned by tests/test_session.cpp).
//
// One round may be in flight at a time: suggest() with an unobserved round
// throws, observe() validates that the delivered results match the pending
// suggestions in order (an out-of-order observe is a client error, not a
// crash). Failure handling, stopping bookkeeping, and journal finalization
// semantics are unchanged from the engine they were extracted from. A stuck
// round (client died mid-evaluation) is released with cancel_round(), which
// journals an abandon marker so resume replays it as a cancelled round.
//
// Asynchronous sessions (SessionMode::kAsync) drop the round structure:
// suggest_async() issues per-suggestion tokens and never waits, results
// come back one token at a time in any order via observe_async(), and
// cancel_async() abandons tokens that will never resolve. Every verb is
// journaled write-ahead (the ask line is durable before its tokens are
// returned), so an async session is always evictable and a resumed one
// re-exposes exactly the outstanding tokens a client could hold.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/loop.hpp"
#include "core/stopping.hpp"
#include "core/tuner.hpp"
#include "obs/recorder.hpp"

namespace hpb::core {

/// How a driver treats failed evaluations (EvalStatus != kOk).
struct FailurePolicy {
  /// Immediate re-evaluations of a configuration whose attempt came back
  /// kCrashed (the one transient status) before it is recorded as failed.
  /// Retries are extra objective calls but occupy the same budget slot.
  /// kInvalid / kTimeout are deterministic verdicts and are never retried.
  std::size_t max_retries = 1;
};

/// Per-evaluation wall time and attempt count, captured by the driver on
/// the worker that ran the evaluation (only when a recorder is attached)
/// and reduced into trace spans / latency histograms by Session::observe.
struct EvalMeter {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t attempts = 1;
};

/// How a session hands out and takes back evaluations.
enum class SessionMode {
  /// Round-structured: one suggest_batch at a time, observed whole, in
  /// suggestion order.
  kSync,
  /// Token-structured: suggestions carry tokens, results resolve tokens in
  /// any order, suggest never waits on outstanding evaluations.
  kAsync,
};

/// One tokenized suggestion of an asynchronous session.
struct AsyncSuggestion {
  std::uint64_t token = 0;
  space::Configuration config;
};

/// One completed evaluation of an asynchronous session, identified by
/// token (the session resolves the configuration itself).
struct AsyncResult {
  std::uint64_t token = 0;
  tabular::EvalStatus status = tabular::EvalStatus::kOk;
  double y = 0.0;

  [[nodiscard]] bool ok() const noexcept {
    return status == tabular::EvalStatus::kOk;
  }
};

/// Everything a Session carries besides the tuner and the journal. The
/// evaluation-side knobs (failure, eval_deadline, stop_flag) are stored
/// here so the session fully describes its run, but they are consumed by
/// the driver that evaluates the objective — a remote client performs its
/// own evaluations and simply ignores them.
struct SessionConfig {
  /// Configurations suggested per round. 1 reproduces the serial ask/tell
  /// loop exactly.
  std::size_t batch_size = 1;
  /// Retry policy for transient failures (driver-side).
  FailurePolicy failure;
  /// Per-evaluation watchdog deadline (driver-side; zero disables).
  std::chrono::milliseconds eval_deadline{0};
  /// Graceful-shutdown flag, checked by the driver between rounds. Not
  /// owned.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Observability hooks (trace sink / metrics registry / clock), optional
  /// and not owned. The all-null default adds no work to the loop.
  obs::Recorder recorder;
  /// Stopping conditions. Session::observe applies the per-observation
  /// bookkeeping (target check, stagnation patience) and exposes the
  /// verdict via status(); drivers decide whether to honor it (run()
  /// ignores it, run_until() stops on it).
  StopConfig stop;
  /// Round-structured (default) or token-structured asynchronous session.
  SessionMode mode = SessionMode::kSync;
  /// Async sessions: cap on outstanding (suggested-but-unresolved) tokens.
  /// A suggest_async that would exceed it throws hpb::OverloadError before
  /// any state changes. 0 = unlimited. Sync rounds are naturally bounded
  /// by one batch and ignore this.
  std::size_t max_pending = 0;
};

/// Snapshot of a session's progress, cheap enough to take per verb.
struct SessionStatus {
  std::size_t evaluations = 0;
  std::size_t num_failed = 0;
  /// Completed suggest/observe rounds.
  std::size_t rounds = 0;
  /// Suggestions of the in-flight round still awaiting observe (0 when no
  /// round is in flight). Async sessions: the outstanding token count.
  std::size_t pending = 0;
  /// Async sessions only: the outstanding tokens in issue order. A client
  /// resuming after a crash reads these to pick up (or cancel) evaluations
  /// it no longer remembers.
  std::vector<std::uint64_t> pending_tokens;
  /// The session runs in asynchronous (token) mode.
  bool async = false;
  double best_value = 0.0;
  /// Raw values of the best successful configuration; empty until the
  /// first success.
  std::vector<double> best_config;
  /// A stopping condition fired (target reached / stagnation). The session
  /// still accepts observes for an in-flight round.
  bool stopped = false;
  StopReason reason = StopReason::kBudgetExhausted;
  /// finish()/close() was called; every further verb throws.
  bool finished = false;
  /// A journal append failed (disk fault): the session is read-only —
  /// status/checkpoint still serve, every mutating verb throws. The
  /// durable journal prefix is still valid; a daemon restart (with the
  /// disk healthy again) resumes the session from it.
  bool degraded = false;
  std::string degraded_reason;
};

/// Durability report for eviction decisions: what survives if the
/// in-memory session is dropped right now.
struct SessionCheckpoint {
  /// True when a write-ahead journal backs the session. The journal is
  /// fsync'd per record, so a journaled session is always durable up to
  /// its last completed observation — checkpoint() reports, it never has
  /// to flush.
  bool journaled = false;
  std::string journal_path;
  std::size_t rounds = 0;
  std::size_t observations = 0;
  /// An unobserved round is in flight; dropping the session now would
  /// orphan its suggestions (the journal holds only the round marker,
  /// which resume discards and re-suggests).
  bool round_in_flight = false;
};

class Session {
 public:
  /// Borrowing constructor, used by TuningEngine: the caller keeps
  /// ownership of the tuner and the journal (both must outlive the
  /// session) and is responsible for installing the recorder on the tuner
  /// (the engine points it at its own config, exactly as before the
  /// split).
  Session(Tuner& tuner, SessionConfig config, JournalWriter* journal = nullptr);

  /// Owning constructor, used by SessionManager: the session owns its
  /// tuner and journal, and installs its recorder on the tuner when one is
  /// attached.
  Session(std::unique_ptr<Tuner> tuner, SessionConfig config,
          std::unique_ptr<JournalWriter> journal);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Ask the tuner for up to `k` configurations and open a round: emits
  /// the suggest span, writes the journal round marker, and records the
  /// batch as pending. Throws if a round is already in flight or the
  /// session is finished.
  [[nodiscard]] std::vector<space::Configuration> suggest(std::size_t k);

  /// Deliver the evaluated round, in suggestion order. Validates that the
  /// observations match the pending suggestions (out-of-order or foreign
  /// results throw without corrupting the session), journals them, feeds
  /// the tuner, and applies best-so-far + stopping bookkeeping. `meters`
  /// (driver-side timing) feeds the evaluate spans and latency histograms;
  /// remote sessions pass none and get no evaluate spans.
  void observe(std::vector<Observation> observations,
               std::span<const EvalMeter> meters = {});

  /// Release the in-flight round without observing it (the client
  /// evaluating it died or gave up): journals the abandon marker, hands
  /// every pending suggestion back to the tuner via abandon(), and reopens
  /// the session for the next suggest. Returns the number of suggestions
  /// released. Sync sessions only.
  std::size_t cancel_round();

  /// Async: ask the tuner for up to `k` configurations and issue one token
  /// per suggestion. Never waits on outstanding evaluations — the ask is
  /// journaled write-ahead and the tokens join the outstanding set. Throws
  /// on sync sessions.
  [[nodiscard]] std::vector<AsyncSuggestion> suggest_async(std::size_t k);

  /// Async: deliver completed evaluations in any order and any subset.
  /// Every token must be outstanding and appear at most once per call;
  /// validation happens before any state changes, so a bad call leaves the
  /// session untouched.
  void observe_async(std::span<const AsyncResult> results);

  /// Async: abandon outstanding tokens that will never resolve. An empty
  /// span cancels every outstanding token (the un-wedge verb for a client
  /// that lost track). Returns the number of tokens cancelled.
  std::size_t cancel_async(std::span<const std::uint64_t> tokens);

  /// Apply already-journaled observations (from replay_journal, which
  /// drove them through the tuner) to the result and stopping bookkeeping.
  /// Only valid before the first suggest of a fresh session.
  void replay(std::span<const Observation> replayed);

  /// Async counterpart of replay(): apply the journaled observations and
  /// restore the outstanding-token set and the token counter from an
  /// AsyncReplayResult. Only valid before the first ask of a fresh async
  /// session.
  void replay_async(const AsyncReplayResult& replayed);

  [[nodiscard]] SessionStatus status() const;

  /// Report what is durable if the in-memory session is dropped now.
  [[nodiscard]] SessionCheckpoint checkpoint() const;

  /// Terminal bookkeeping for a driver-completed run: finalizes the
  /// journal with the stop reason — except kInterrupted, which leaves the
  /// journal resumable (that is what --resume expects to find).
  void finish(StopReason reason);

  /// Terminal bookkeeping for a service session: finalizes the journal
  /// with "closed". Throws when a round is in flight (its suggestions
  /// would be orphaned) or the session already finished.
  void close();

  [[nodiscard]] const SessionConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const TuneResult& result() const noexcept { return result_; }
  [[nodiscard]] TuneResult take_result() noexcept { return std::move(result_); }
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return result_.history.size();
  }
  [[nodiscard]] bool round_in_flight() const noexcept {
    return round_in_flight_;
  }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  [[nodiscard]] StopReason stop_reason() const noexcept { return reason_; }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  /// A journal append failed: the session is read-only (see
  /// SessionStatus::degraded).
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  [[nodiscard]] bool journaled() const noexcept { return journal_ != nullptr; }
  [[nodiscard]] Tuner& tuner() noexcept { return *tuner_; }

  /// Pre-size the history/best-so-far vectors (drivers know their budget).
  void reserve(std::size_t n);

 private:
  /// One observation's worth of result + stopping bookkeeping — identical
  /// for a replayed and a freshly evaluated observation, which is what
  /// makes a resumed session stop exactly where the uninterrupted one
  /// would.
  void apply(Observation o);

  void require_open(const char* verb) const;
  void require_mode(SessionMode mode, const char* verb) const;

  /// Run one journal mutation; an IoError marks the session degraded and
  /// rethrows as a structured hpb::Error naming the read-only contract.
  template <typename F>
  void journal_op(const char* what, F&& op);

  SessionConfig config_;
  Tuner* tuner_ = nullptr;
  JournalWriter* journal_ = nullptr;
  std::unique_ptr<Tuner> owned_tuner_;
  std::unique_ptr<JournalWriter> owned_journal_;

  TuneResult result_;
  std::size_t since_improvement_ = 0;
  bool stopped_ = false;
  StopReason reason_ = StopReason::kBudgetExhausted;
  bool finished_ = false;
  // Atomic so the manager's health/eviction scans can read it without the
  // per-session op mutex; the reason string is only read under that mutex.
  std::atomic<bool> degraded_{false};
  std::string degraded_reason_;

  // In-flight round state (sync mode).
  bool round_in_flight_ = false;
  std::vector<space::Configuration> pending_;
  std::size_t round_requested_ = 0;
  std::size_t round_index_ = 0;
  std::uint64_t round_id_ = 0;
  std::uint64_t round_start_ = 0;

  // Outstanding tokens (async mode), ordered by issue. The ordered map
  // keeps status().pending_tokens deterministic.
  std::map<std::uint64_t, space::Configuration> outstanding_;
  std::uint64_t next_token_ = 1;
};

}  // namespace hpb::core
