// HiPerBOt: the paper's Bayesian-optimization configuration-selection tuner
// (§III). Implements the full iterative algorithm of §III-C:
//
//   1. evaluate `initial_samples` configurations drawn uniformly at random;
//   2. split the history at the α-quantile, fit pg/pb densities;
//   3. pick the candidate maximizing the EI surrogate pg/pb —
//      *Ranking*: score every not-yet-evaluated configuration of a finite
//      space; *Proposal*: sample candidates from pg and keep the best
//      (§III-D);
//   4. evaluate, append to the history, repeat.
//
// Transfer learning (§III-E): give the tuner a TransferPrior built from the
// source domain and a weight w; the priors are mixed into pg/pb (eq. 9–10).
#pragma once

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/acquisition.hpp"
#include "core/surrogate.hpp"
#include "core/tuner.hpp"
#include "space/candidate_stream.hpp"

namespace hpb::core {

enum class SelectionStrategy {
  kRanking,   // exhaustive scoring of a finite candidate pool
  kProposal,  // sample candidates from pg(x)
};

enum class AcquisitionMode {
  /// Precomputed per-fit score tables swept over the structure-of-arrays
  /// pool mirror (core/acquisition.hpp); parallel when a sweep pool is
  /// installed. The default — scores, and therefore suggestions, are
  /// bitwise-identical to kDirect at any thread count.
  kTable,
  /// Per-candidate TpeSurrogate::acquisition calls, always serial. The
  /// pre-table reference path, kept as a test/bench hook.
  kDirect,
};

enum class InitialDesign {
  kUniform,         // the paper's protocol: i.i.d. uniform samples
  kLatinHypercube,  // space-filling alternative (ablation)
};

enum class SweepSource {
  /// Pooled when a pool is available; streamed when the space is finite but
  /// too large to enumerate. The default.
  kAuto,
  /// Force the materialized-pool sweep (throws when no pool can be built).
  kPooled,
  /// Force the streamed sweep even when a pool would fit, dropping any
  /// pool. The equivalence-test hook: on a flat unconstrained space the
  /// streamed path must produce bitwise-identical suggestions to kPooled.
  kStreamed,
};

struct HiPerBOtConfig {
  /// Number of uniformly random configurations before the surrogate kicks
  /// in (the paper uses 20; sensitivity in Fig. 7a).
  std::size_t initial_samples = 20;
  /// How the initial samples are drawn.
  InitialDesign initial_design = InitialDesign::kUniform;
  /// α-quantile splitting good from bad (the paper uses 0.2; Fig. 7b).
  double quantile = 0.2;
  SelectionStrategy strategy = SelectionStrategy::kRanking;
  /// Number of pg-samples scored per iteration under kProposal.
  std::size_t proposal_candidates = 64;
  /// Density estimation knobs (histogram smoothing, KDE bandwidth).
  DensityConfig density;
  /// How Ranking sweeps score the candidate pool (kTable = fast path;
  /// kDirect = per-candidate reference evaluation). Suggestions are
  /// identical either way.
  AcquisitionMode acquisition = AcquisitionMode::kTable;
  /// Where Ranking sweeps draw their candidates from: a materialized pool
  /// or a streamed CandidateStream over the space (Proposal ignores this).
  SweepSource sweep_source = SweepSource::kAuto;
  /// Candidate-generation knobs for streamed sweeps (chunk size, sampled
  /// pass budget). Defaults match the pooled sweep's chunking so flat
  /// unconstrained spaces are bitwise-identical either way.
  space::StreamConfig stream;
  /// Transfer-prior mixture weight w of eq. 9–10 (used only when a prior is
  /// installed via set_transfer_prior).
  double transfer_weight = 1.0;
  /// Fold outstanding (suggested-but-unobserved) configurations into the
  /// surrogate's bad density as constant-liar mass, so an asynchronous
  /// caller's next suggest is steered away from configurations already
  /// being evaluated elsewhere. Synchronous drivers observe every batch
  /// before the next fit, so their fits never see outstanding
  /// configurations and are bitwise-unchanged by this flag.
  bool pending_liar = true;
};

class HiPerBOt final : public Tuner {
 public:
  /// For small finite spaces the candidate pool is enumerated eagerly
  /// (Ranking sweeps it; Random-phase draws come from it so suggestions are
  /// never duplicated). Finite spaces too large to enumerate are swept via
  /// a streamed CandidateStream instead — valid candidates are generated
  /// chunk by chunk and never materialized. Non-finite spaces require the
  /// Proposal strategy.
  HiPerBOt(space::SpacePtr space, HiPerBOtConfig config, std::uint64_t seed);

  /// Reuse an existing enumeration (avoids re-enumerating a large space for
  /// every replicated run). Must contain only valid configurations.
  HiPerBOt(space::SpacePtr space, HiPerBOtConfig config, std::uint64_t seed,
           std::shared_ptr<const std::vector<space::Configuration>> pool);

  /// Install the transfer-learning prior (eq. 9–10); weight comes from
  /// config.transfer_weight.
  void set_transfer_prior(TransferPrior prior);

  /// Worker pool for the Ranking acquisition sweep (not owned; must outlive
  /// suggest calls). Null (the default) sweeps serially. The sweep uses
  /// fixed chunk boundaries and lowest-index tie-breaking, so suggestions
  /// are bitwise-identical for any pool size, including none.
  void set_sweep_pool(ThreadPool* pool) noexcept { sweep_pool_ = pool; }

  [[nodiscard]] space::Configuration suggest() override;

  /// Suggest up to k distinct configurations at once (for parallel
  /// evaluation on a batch scheduler). Under Ranking these are the top-k
  /// acquisition scores; under Proposal, the k best of the proposal set.
  /// Batch members are tracked as *pending* until observed, so later
  /// suggestions (single or batched) never repeat an outstanding
  /// configuration even if the caller observes only part of a batch.
  [[nodiscard]] std::vector<space::Configuration> suggest_batch(
      std::size_t k) override;

  void observe(const space::Configuration& config, double y) override;
  /// Failed configurations join the excluded-ordinal set (never re-proposed)
  /// and the surrogate's "bad" density group (§III-C's pb), steering pg/pb
  /// away from failure regions without poisoning the good density. They do
  /// not count toward the initial random design — the surrogate still waits
  /// for `initial_samples` *successful* observations.
  void observe_failure(const space::Configuration& config,
                       EvalStatus status) override;
  /// Release an outstanding suggestion that will never be observed: the
  /// configuration leaves the pending set (and the liar mass) and becomes
  /// suggestable again — the acquisition argmax may well re-propose it.
  void abandon(const space::Configuration& config) override;
  [[nodiscard]] std::string name() const override { return "HiPerBOt"; }

  [[nodiscard]] const History& history() const noexcept { return history_; }
  [[nodiscard]] const std::vector<space::Configuration>& failed_configs()
      const noexcept {
    return failed_;
  }
  [[nodiscard]] const HiPerBOtConfig& config() const noexcept {
    return config_;
  }

  /// Fit a surrogate to the current history (>= 2 observations required).
  [[nodiscard]] TpeSurrogate fit_surrogate() const;

  /// Per-parameter JS-divergence importance from the current history (§VI).
  [[nodiscard]] std::vector<double> parameter_importance() const;

 private:
  [[nodiscard]] bool is_evaluated(const space::Configuration& c) const;
  /// Evaluated, or suggested (serially or in a batch) and awaiting its
  /// observation.
  [[nodiscard]] bool is_excluded(const space::Configuration& c) const;
  [[nodiscard]] space::Configuration random_unevaluated();
  [[nodiscard]] space::Configuration initial_suggestion();
  [[nodiscard]] space::Configuration suggest_ranking(const TpeSurrogate& s);
  [[nodiscard]] space::Configuration suggest_proposal(const TpeSurrogate& s);
  /// The streamed Ranking sweep: top-k candidates of the next stream pass
  /// by acquisition score, best first, ties toward the lowest in-pass
  /// index. Scores come from a space-keyed AcquisitionTable, so they match
  /// the pooled table (and direct) path bit for bit.
  [[nodiscard]] std::vector<StreamHit> streamed_topk(const TpeSurrogate& s,
                                                     std::size_t k);
  /// The Ranking sweep: top-k unexcluded pool candidates by acquisition
  /// score, best first, ties toward the lowest pool index. Dispatches on
  /// config_.acquisition and emits the hiperbot.sweep span when tracing.
  [[nodiscard]] std::vector<SweepHit> ranked_topk(const TpeSurrogate& s,
                                                  std::size_t k);
  /// Build the structure-of-arrays pool mirror on first use.
  void ensure_columns();
  /// Drop the first pending configuration with these values, if present.
  void erase_pending_config(const space::Configuration& config);
  /// Export the internals of one surrogate fit (good/bad split sizes, KDE
  /// bandwidth, threshold, exclusion-set size, acquisition score of the
  /// chosen candidate) to the installed recorder. Pure reads: a traced run
  /// proposes exactly the configurations an untraced one would.
  void export_fit(const TpeSurrogate& s, double chosen_score) const;

  space::SpacePtr space_;
  HiPerBOtConfig config_;
  Rng rng_;
  History history_;
  std::shared_ptr<const std::vector<space::Configuration>> pool_;
  std::optional<PoolColumns> columns_;  // SoA pool mirror, built lazily
  /// Streamed candidate source for Ranking on spaces with no pool (or with
  /// sweep_source == kStreamed). Mutually exclusive with pool_.
  std::optional<space::CandidateStream> stream_;
  std::uint64_t stream_pass_ = 0;  // next stream pass to sweep
  ThreadPool* sweep_pool_ = nullptr;    // Ranking sweep workers, not owned
  std::unordered_set<std::uint64_t> evaluated_;  // ordinals, finite spaces
  std::unordered_set<std::uint64_t> pending_;    // batched, not yet observed
  /// The pending configurations themselves, in suggestion order: the
  /// constant-liar mass folded into fit_surrogate()'s bad group while any
  /// suggestion is outstanding (async callers), and the lookup for
  /// abandon(). Kept for every space (ordinals exist only for finite ones).
  std::vector<space::Configuration> pending_configs_;
  std::vector<space::Configuration> failed_;     // evaluations that failed
  /// Previous fit's acquisition table: consecutive fits reuse the columns
  /// of unchanged marginals (bitwise-identical scores either way).
  std::optional<AcquisitionTable> table_cache_;
  std::optional<TransferPrior> prior_;
  std::vector<space::Configuration> initial_queue_;  // LHS design, if any
};

}  // namespace hpb::core
