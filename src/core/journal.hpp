// Write-ahead observation journal: crash-tolerant persistence for tuning
// sessions.
//
// The TuningEngine appends one fsync'd record per observation, so the
// on-disk state is always a valid prefix of the run: kill -9 the process at
// any byte and what survives is the header plus zero or more complete
// rounds (a torn tail — a partial line or a half-written round — is
// detected and dropped by the reader). Resume is replay-based: tuners are
// deterministic given their suggest/observe call sequence, so driving a
// fresh tuner through the journal's rounds — suggest_batch(requested) per
// round, observations answered from the journal instead of re-evaluating
// the objective — reconstructs the exact in-memory state (including RNG
// position and pending-batch tracking) the session had when it died. The
// continued run is therefore bitwise identical to an uninterrupted one.
//
// Format (line-oriented text; doubles as 16-hex-digit IEEE-754 bit
// patterns so values round-trip exactly):
//
//   hpbj v1
//   meta <key> <value>            # session parameters, see JournalHeader
//   round <index> <requested> <actual>
//   obs <status> <y-bits> <v0-bits> <v1-bits> ...
//   ...                           # exactly <actual> obs lines per round
//   end <reason>                  # present only when the session completed
//
// The round marker is written after suggest_batch (so <actual> is known)
// and before evaluation; its records follow once the round is evaluated. A
// round with fewer than <actual> records is incomplete and is dropped on
// resume — its evaluations are re-run, which is safe because the tuner
// state that produced them is reconstructed exactly. A round marker may
// instead be followed by a single `abandon` line: the round was cancelled
// whole (client died mid-round), replay re-suggests it and abandons every
// member, and the session keeps going instead of wedging.
//
// Asynchronous sessions (`meta mode async` in the header) journal a
// different, event-oriented body — one self-contained fsync'd line per
// verb, in verb order:
//
//   ask <requested> <first_token> <actual> <cfg-bits ...>
//   aobs <token> <status> <y-bits>
//   acancel <token>
//
// `ask` lines carry the suggested configurations (actual * num_params
// 16-hex-digit values, configuration-major) and assign the consecutive
// tokens first_token .. first_token+actual-1; `aobs`/`acancel` resolve one
// token in completion order. The ask line is durable *before* its tokens
// are returned to any client, so a replayed journal's outstanding-token set
// always covers every token a client could have seen; completions arrive in
// any order and replay re-applies them in the exact journaled order, which
// is what makes an async resume bitwise-deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/tuner.hpp"
#include "space/parameter_space.hpp"

namespace hpb::core {

/// Session parameters stored in the journal header — everything needed to
/// reconstruct the run besides the dataset itself. `dataset` and
/// `num_params` guard against resuming over the wrong data.
struct JournalHeader {
  std::string method;
  std::string dataset;
  /// Warm-start CSV replayed into the tuner before the session, if any.
  std::string warm_start;
  /// JSON-lines trace file the session wrote, if any. A resumed session
  /// re-opens this file in append mode and continues its span ids, so the
  /// stitched trace reads as one uninterrupted session.
  std::string trace_path;
  std::uint64_t seed = 0;
  std::size_t batch_size = 1;
  std::size_t num_params = 0;
  std::size_t max_evaluations = 0;
  std::size_t stagnation_patience = 0;
  double target_value = -std::numeric_limits<double>::infinity();
  double fail_rate = 0.0;
  double crash_rate = 0.0;
  double hang_rate = 0.0;
  /// Asynchronous session: the journal body is ask/aobs/acancel event
  /// lines instead of round/obs blocks. Absent in older journals (= sync).
  bool async = false;
};

/// One engine round as journaled: the batch size the engine requested and
/// the observations (in suggestion order) the tuner's batch produced.
struct JournalRound {
  std::size_t requested = 0;
  /// Batch size the tuner actually returned (== observations.size() for
  /// observed rounds; abandoned rounds have no observations).
  std::size_t actual = 0;
  /// The round was cancelled whole (journaled `abandon` marker): replay
  /// re-suggests it to advance the tuner deterministically, then abandons
  /// every member instead of observing.
  bool abandoned = false;
  std::vector<Observation> observations;
};

/// One journaled verb of an asynchronous session, in journal (= verb)
/// order.
struct AsyncEvent {
  enum class Kind { kAsk, kObserve, kCancel };
  Kind kind = Kind::kAsk;
  /// kAsk: the requested batch size and the tokens/configurations issued.
  std::size_t requested = 0;
  std::uint64_t first_token = 0;
  std::vector<space::Configuration> configs;
  /// kObserve / kCancel: the token resolved by this event. For kObserve,
  /// `observation` carries the token's configuration (resolved by the
  /// reader from the issuing ask) and the journaled value/status.
  std::uint64_t token = 0;
  Observation observation;
};

/// A validated journal: header, every complete round, and whether the
/// session finished. `valid_bytes` is the length of the durable prefix
/// (excluding any torn tail and the end marker); appending resumes there.
struct JournalContents {
  JournalHeader header;
  std::vector<JournalRound> rounds;
  /// Asynchronous journals only: the validated verb sequence. Sync
  /// journals leave this empty (and vice versa).
  std::vector<AsyncEvent> events;
  bool finalized = false;
  std::string finish_reason;
  std::uint64_t valid_bytes = 0;

  [[nodiscard]] std::size_t num_observations() const noexcept {
    std::size_t n = 0;
    for (const JournalRound& r : rounds) {
      n += r.observations.size();
    }
    for (const AsyncEvent& e : events) {
      n += e.kind == AsyncEvent::Kind::kObserve ? 1 : 0;
    }
    return n;
  }
};

/// Appending writer. Every line is written with a single write(2) followed
/// by fsync, so a crash can only tear the final line — never reorder or
/// interleave records.
class JournalWriter {
 public:
  /// Start a fresh journal at `path` (truncating any existing file) and
  /// durably write the header.
  static JournalWriter create(const std::string& path,
                              const JournalHeader& header);

  /// Continue an interrupted session: truncate `path` to the validated
  /// prefix (dropping a torn tail, an incomplete round, and the end
  /// marker) and position round numbering after the last complete round.
  /// `contents` must be the result of read_journal(path).
  static JournalWriter append(const std::string& path,
                              const JournalContents& contents);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Open a round: the engine requested `requested` configurations and the
  /// tuner returned `actual`. Written before evaluation starts.
  void begin_round(std::size_t requested, std::size_t actual);

  /// Append one evaluated observation of the current round.
  void append_observation(const Observation& o);

  /// Abandon the round opened by the last begin_round before any of its
  /// observations were appended: the client evaluating it died or cancelled.
  /// Replay re-suggests the round and abandons every member.
  void abandon_round();

  /// Async sessions: durably record a suggest batch *before* its tokens are
  /// returned to the client — `batch.size()` consecutive tokens starting at
  /// `first_token`, with the configurations inline (replay verifies the
  /// re-suggested batch against them bitwise).
  void begin_ask(std::size_t requested, std::uint64_t first_token,
                 std::span<const space::Configuration> batch);

  /// Async sessions: durably record one completed evaluation (any order).
  void append_async_observation(std::uint64_t token, const Observation& o);

  /// Async sessions: durably record the cancellation of one token.
  void append_cancel(std::uint64_t token);

  /// Durably mark the session complete (e.g. "budget_exhausted"). Not
  /// called on interruption — an unfinalized journal is what resume
  /// expects.
  void finalize(std::string_view reason);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  JournalWriter(std::string path, int fd, std::size_t next_round);

  void write_line(std::string_view line);

  std::string path_;
  int fd_ = -1;
  std::size_t next_round_ = 0;
};

/// Read and validate a journal, stopping at the first torn or malformed
/// line: everything after the last complete round is ignored (and reported
/// via valid_bytes for truncation on append). Throws only when the file is
/// unreadable or the header itself is invalid.
[[nodiscard]] JournalContents read_journal(const std::string& path);

/// Deterministic resume: drive a fresh tuner through the journal's rounds
/// — suggest_batch(requested), observations answered from the journal —
/// without touching the objective. Throws if the tuner's suggestions
/// diverge from the journaled configurations (wrong method, seed, or
/// dataset). Returns all replayed observations in engine order, ready to
/// hand to TuningEngine::run/run_until as the replayed prefix.
[[nodiscard]] std::vector<Observation> replay_journal(
    Tuner& tuner, const space::ParameterSpace& space,
    const JournalContents& contents);

/// What an asynchronous replay reconstructs: the journaled observations in
/// completion order (for the session's best-so-far / stopping bookkeeping)
/// plus the still-outstanding tokens — asks whose completion or
/// cancellation never hit the journal. A resumed session re-exposes those
/// tokens, so a client (or an operator issuing `cancel`) can always resolve
/// them; a torn round never wedges the session.
struct AsyncReplayResult {
  std::vector<Observation> observations;
  std::vector<std::pair<std::uint64_t, space::Configuration>> outstanding;
  /// The next unissued token (one past the largest journaled token).
  std::uint64_t next_token = 1;
};

/// Deterministic async resume: drive a fresh tuner through the journal's
/// event sequence — suggest_batch per ask (verified bitwise against the
/// journaled configurations), observe/observe_failure per aobs, abandon per
/// acancel — in the exact journaled order.
[[nodiscard]] AsyncReplayResult replay_journal_async(
    Tuner& tuner, const space::ParameterSpace& space,
    const JournalContents& contents);

}  // namespace hpb::core
