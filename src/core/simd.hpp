// Runtime SIMD dispatch for the acquisition sweep's table-gather kernel.
//
// The sweep's hot loop — per candidate, gather one (log pg, log pb) table
// entry per parameter, accumulate each side in parameter order, subtract —
// is data-parallel across candidates with no cross-candidate dependencies,
// so it vectorizes lane-per-candidate: each SIMD lane executes the exact
// scalar float-op sequence (two parameter-ordered accumulators, one final
// subtraction), and the produced doubles are bitwise-identical to the
// scalar reference for every tier. Reduction order never changes; only
// how many candidates are in flight at once does.
//
// Tier selection is a runtime decision: kernels are compiled per-ISA
// behind compile-time gates (CMake probes the compiler; see
// HPB_SIMD_AVX2 / HPB_SIMD_NEON) and picked per-process by CPU detection,
// overridable with HPB_SIMD=off|avx2|neon (strict: requesting a tier the
// binary or CPU cannot run is an error, not a silent fallback).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hpb::core {

/// Vector widths the sweep kernel exists for. kScalar is the reference
/// path; every other tier must match it bit for bit.
enum class SimdTier {
  kScalar = 0,
  kAvx2 = 1,  // x86-64: 4 candidates per iteration via vgatherdpd
  kNeon = 2,  // aarch64: 2 candidates per iteration, paired loads
};

/// Stable lowercase tier name ("scalar", "avx2", "neon") for traces,
/// bench JSON, and error messages.
[[nodiscard]] std::string_view simd_tier_name(SimdTier tier) noexcept;

/// True when this binary carries the tier's kernel AND the running CPU
/// can execute it. kScalar is always runnable.
[[nodiscard]] bool simd_tier_available(SimdTier tier) noexcept;

/// Best available tier on this machine (hardware detection only, no env).
[[nodiscard]] SimdTier detected_simd_tier() noexcept;

/// Tier the sweeps actually use: detected_simd_tier() unless HPB_SIMD
/// overrides it. Parsed strictly on first use and cached; an unknown
/// value or an unavailable tier throws hpb::Error.
[[nodiscard]] SimdTier active_simd_tier();

/// Drop the cached HPB_SIMD decision so the next active_simd_tier() call
/// re-reads the environment. Test hook for in-process setenv overrides.
void refresh_simd_tier();

/// Score candidates [begin, end) of a column-indexed pool into
/// out[0 .. end-begin). cols[i] points at parameter i's per-candidate
/// index column; log_good / log_bad are the flat per-parameter score
/// tables and offsets[i] the start of parameter i's rows. All tiers
/// produce bitwise-identical doubles (see file comment); the tier only
/// changes throughput.
void score_block(SimdTier tier, const double* log_good, const double* log_bad,
                 const std::size_t* offsets, const std::uint32_t* const* cols,
                 std::size_t num_params, std::size_t begin, std::size_t end,
                 double* out);

}  // namespace hpb::core
