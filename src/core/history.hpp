// Observation history H_t and its α-quantile good/bad split (§III-C step 2).
#pragma once

#include <cstddef>
#include <vector>

#include "core/tuner.hpp"

namespace hpb::core {

/// Result of splitting a history at the α-quantile threshold y(τ): indices
/// of "good" observations (y < y(τ)) and "bad" observations (y >= y(τ)).
struct HistorySplit {
  std::vector<std::size_t> good;
  std::vector<std::size_t> bad;
  double threshold = 0.0;  // y(τ)
};

class History {
 public:
  void add(space::Configuration config, double y);

  [[nodiscard]] std::size_t size() const noexcept { return obs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return obs_.empty(); }
  [[nodiscard]] const Observation& operator[](std::size_t i) const {
    return obs_[i];
  }
  [[nodiscard]] const std::vector<Observation>& observations() const noexcept {
    return obs_;
  }

  /// Best (smallest) observed objective value; throws when empty.
  [[nodiscard]] double best_value() const;
  [[nodiscard]] const space::Configuration& best_config() const;

  /// Split at the α-quantile. The good group always receives at least one
  /// and at most size()-1 observations (ranked by value, ties broken by
  /// insertion order), matching the paper's "y(τ) defined via α-quantile for
  /// stability".
  [[nodiscard]] HistorySplit split(double alpha) const;

 private:
  std::vector<Observation> obs_;
  std::size_t best_index_ = 0;
};

}  // namespace hpb::core
