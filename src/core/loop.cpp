#include "core/loop.hpp"

#include "core/engine.hpp"

namespace hpb::core {

TuneResult run_tuning(Tuner& tuner, tabular::Objective& objective,
                      std::size_t budget) {
  return TuningEngine().run(tuner, objective, budget);
}

}  // namespace hpb::core
