#include "core/loop.hpp"

#include "common/error.hpp"

namespace hpb::core {

TuneResult run_tuning(Tuner& tuner, tabular::Objective& objective,
                      std::size_t budget) {
  HPB_REQUIRE(budget > 0, "run_tuning: budget must be positive");
  TuneResult result;
  result.history.reserve(budget);
  result.best_so_far.reserve(budget);
  for (std::size_t t = 0; t < budget; ++t) {
    space::Configuration c = tuner.suggest();
    const double y = objective.evaluate(c);
    tuner.observe(c, y);
    if (result.history.empty() || y < result.best_value) {
      result.best_value = y;
      result.best_config = c;
    }
    result.history.push_back({std::move(c), y});
    result.best_so_far.push_back(result.best_value);
  }
  return result;
}

}  // namespace hpb::core
