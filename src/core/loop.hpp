// Serial tuning-loop entry point: wires any Tuner to any Objective for a
// fixed evaluation budget and records the trajectory needed by the paper's
// metrics (best-so-far curve and the full selected-sample set H).
//
// run_tuning is a compatibility shim over core::TuningEngine with
// batch_size == 1 (see core/engine.hpp); new code that wants batched or
// parallel evaluation should construct the engine directly.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "core/tuner.hpp"
#include "tabular/objective.hpp"

namespace hpb::core {

struct TuneResult {
  /// All evaluated observations in evaluation order (the set H of eq. 11),
  /// including failed evaluations (status != kOk, y == NaN) — they spent
  /// budget and belong to the record.
  std::vector<Observation> history;
  /// best_so_far[t] = min objective value over the first t+1 evaluations
  /// (the "Best Performing Configuration" metric, §IV-B1). Entries before
  /// the first *successful* evaluation are +inf.
  std::vector<double> best_so_far;
  /// Best successful observation; best_value stays +inf (and best_config
  /// empty) when every evaluation failed. A failed configuration is never
  /// reported here.
  space::Configuration best_config;
  double best_value = std::numeric_limits<double>::infinity();
  /// Number of failed evaluations in `history`.
  std::size_t num_failed = 0;
};

/// Run `budget` evaluations of the objective, driven by the tuner.
/// Equivalent to TuningEngine{{.batch_size = 1}}.run(...).
[[nodiscard]] TuneResult run_tuning(Tuner& tuner, tabular::Objective& objective,
                                    std::size_t budget);

}  // namespace hpb::core
