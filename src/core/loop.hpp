// Serial tuning-loop entry point: wires any Tuner to any Objective for a
// fixed evaluation budget and records the trajectory needed by the paper's
// metrics (best-so-far curve and the full selected-sample set H).
//
// run_tuning is a compatibility shim over core::TuningEngine with
// batch_size == 1 (see core/engine.hpp); new code that wants batched or
// parallel evaluation should construct the engine directly.
#pragma once

#include <cstddef>
#include <vector>

#include "core/tuner.hpp"
#include "tabular/objective.hpp"

namespace hpb::core {

struct TuneResult {
  /// All evaluated observations in evaluation order (the set H of eq. 11).
  std::vector<Observation> history;
  /// best_so_far[t] = min objective value over the first t+1 evaluations
  /// (the "Best Performing Configuration" metric, §IV-B1).
  std::vector<double> best_so_far;
  space::Configuration best_config;
  double best_value = 0.0;
};

/// Run `budget` evaluations of the objective, driven by the tuner.
/// Equivalent to TuningEngine{{.batch_size = 1}}.run(...).
[[nodiscard]] TuneResult run_tuning(Tuner& tuner, tabular::Objective& objective,
                                    std::size_t budget);

}  // namespace hpb::core
