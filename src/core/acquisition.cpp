#include "core/acquisition.hpp"

#include <cmath>

namespace hpb::core {

PoolColumns::PoolColumns(const space::ParameterSpace& space,
                         std::span<const space::Configuration> pool)
    : size_(pool.size()) {
  const std::size_t n_params = space.num_params();
  for (const auto& c : pool) {
    HPB_REQUIRE(c.size() == n_params,
                "PoolColumns: configuration size mismatch");
  }
  columns_.resize(n_params);
  distinct_.resize(n_params);
  table_sizes_.assign(n_params, 0);
  continuous_.assign(n_params, 0);
  for (std::size_t i = 0; i < n_params; ++i) {
    std::vector<std::uint32_t>& col = columns_[i];
    col.resize(size_);
    const space::Parameter& p = space.param(i);
    if (p.is_discrete()) {
      const std::size_t levels = p.num_levels();
      table_sizes_[i] = levels;
      for (std::size_t j = 0; j < size_; ++j) {
        const std::size_t level = pool[j].level(i);
        HPB_REQUIRE(level < levels, "PoolColumns: level out of range");
        col[j] = static_cast<std::uint32_t>(level);
      }
    } else {
      continuous_[i] = 1;
      std::vector<double>& distinct = distinct_[i];
      distinct.reserve(size_);
      for (std::size_t j = 0; j < size_; ++j) {
        const double v = pool[j][i];
        HPB_REQUIRE(std::isfinite(v),
                    "PoolColumns: non-finite continuous value");
        distinct.push_back(v);
      }
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      table_sizes_[i] = distinct.size();
      for (std::size_t j = 0; j < size_; ++j) {
        const auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                         pool[j][i]);
        col[j] = static_cast<std::uint32_t>(it - distinct.begin());
      }
    }
  }
  if (space.is_finite()) {
    ordinals_.resize(size_);
    for (std::size_t j = 0; j < size_; ++j) {
      ordinals_[j] = space.ordinal_of(pool[j]);
    }
  }
}

AcquisitionTable::AcquisitionTable(const TpeSurrogate& surrogate,
                                   const PoolColumns& columns) {
  const std::size_t n_params = columns.num_params();
  HPB_REQUIRE(surrogate.good().num_params() == n_params,
              "AcquisitionTable: parameter count mismatch");
  offsets_.resize(n_params);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_params; ++i) {
    offsets_[i] = total;
    total += columns.table_size(i);
  }
  log_good_.reserve(total);
  log_bad_.reserve(total);
  for (std::size_t i = 0; i < n_params; ++i) {
    // Entries are computed by the exact marginal calls the direct path
    // makes (log_pmf / log_pdf), so a table lookup reproduces the direct
    // score bit for bit.
    std::vector<double> good;
    std::vector<double> bad;
    if (columns.is_continuous(i)) {
      const std::span<const double> values = columns.distinct_values(i);
      good = surrogate.good().kernel(i).log_pdf_many(values);
      bad = surrogate.bad().kernel(i).log_pdf_many(values);
    } else {
      good = surrogate.good().histogram(i).log_pmf_table();
      bad = surrogate.bad().histogram(i).log_pmf_table();
    }
    HPB_REQUIRE(good.size() == columns.table_size(i) &&
                    bad.size() == columns.table_size(i),
                "AcquisitionTable: table size mismatch");
    log_good_.insert(log_good_.end(), good.begin(), good.end());
    log_bad_.insert(log_bad_.end(), bad.begin(), bad.end());
  }
}

}  // namespace hpb::core
