#include "core/acquisition.hpp"

#include <cmath>
#include <cstring>

namespace hpb::core {

PoolColumns::PoolColumns(const space::ParameterSpace& space,
                         std::span<const space::Configuration> pool)
    : size_(pool.size()) {
  const std::size_t n_params = space.num_params();
  for (const auto& c : pool) {
    HPB_REQUIRE(c.size() == n_params,
                "PoolColumns: configuration size mismatch");
  }
  columns_.resize(n_params);
  distinct_.resize(n_params);
  table_sizes_.assign(n_params, 0);
  continuous_.assign(n_params, 0);
  for (std::size_t i = 0; i < n_params; ++i) {
    std::vector<std::uint32_t>& col = columns_[i];
    col.resize(size_);
    const space::Parameter& p = space.param(i);
    if (p.is_discrete()) {
      const std::size_t levels = p.num_levels();
      table_sizes_[i] = levels;
      for (std::size_t j = 0; j < size_; ++j) {
        const std::size_t level = pool[j].level(i);
        HPB_REQUIRE(level < levels, "PoolColumns: level out of range");
        col[j] = static_cast<std::uint32_t>(level);
      }
    } else {
      continuous_[i] = 1;
      std::vector<double>& distinct = distinct_[i];
      distinct.reserve(size_);
      for (std::size_t j = 0; j < size_; ++j) {
        const double v = pool[j][i];
        HPB_REQUIRE(std::isfinite(v),
                    "PoolColumns: non-finite continuous value");
        distinct.push_back(v);
      }
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      table_sizes_[i] = distinct.size();
      for (std::size_t j = 0; j < size_; ++j) {
        const auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                         pool[j][i]);
        col[j] = static_cast<std::uint32_t>(it - distinct.begin());
      }
    }
  }
  if (space.is_finite()) {
    ordinals_.resize(size_);
    for (std::size_t j = 0; j < size_; ++j) {
      ordinals_[j] = space.ordinal_of(pool[j]);
    }
  }
}

namespace {

/// Bitwise equality of double vectors (memcmp: distinguishes -0.0 from 0.0
/// and never equates NaNs, so a "match" can only mean an identical
/// recomputation — mismatches merely cost a recompute).
bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool scalar_bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

bool AcquisitionTable::MarginalKey::matches(
    const MarginalKey& other) const noexcept {
  return continuous == other.continuous &&
         scalar_bits_equal(smoothing, other.smoothing) &&
         scalar_bits_equal(bandwidth, other.bandwidth) &&
         scalar_bits_equal(lo, other.lo) && scalar_bits_equal(hi, other.hi) &&
         bits_equal(values, other.values) &&
         bits_equal(weights, other.weights);
}

AcquisitionTable::AcquisitionTable(const TpeSurrogate& surrogate,
                                   const PoolColumns& columns,
                                   const AcquisitionTable* prev) {
  const std::size_t n_params = columns.num_params();
  HPB_REQUIRE(surrogate.good().num_params() == n_params,
              "AcquisitionTable: parameter count mismatch");
  offsets_.resize(n_params);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_params; ++i) {
    offsets_[i] = total;
    total += columns.table_size(i);
  }
  // An incremental rebuild requires the previous table to cover the same
  // pool layout; anything else falls back to a full build.
  if (prev != nullptr &&
      (prev->offsets_ != offsets_ || prev->log_good_.size() != total)) {
    prev = nullptr;
  }
  log_good_.reserve(total);
  log_bad_.reserve(total);
  good_keys_.resize(n_params);
  bad_keys_.resize(n_params);
  auto key_of = [&](const FactorizedDensity& density, std::size_t i) {
    MarginalKey key;
    if (columns.is_continuous(i)) {
      const stats::KernelDensity& k = density.kernel(i);
      key.continuous = true;
      key.bandwidth = k.bandwidth();
      key.lo = k.lo();
      key.hi = k.hi();
      key.values.assign(k.centers().begin(), k.centers().end());
      key.weights.assign(k.kernel_weights().begin(), k.kernel_weights().end());
    } else {
      const stats::HistogramDensity& h = density.histogram(i);
      key.smoothing = h.smoothing();
      key.values.assign(h.counts().begin(), h.counts().end());
    }
    return key;
  };
  for (std::size_t i = 0; i < n_params; ++i) {
    good_keys_[i] = key_of(surrogate.good(), i);
    bad_keys_[i] = key_of(surrogate.bad(), i);
    const bool reuse_good =
        prev != nullptr && good_keys_[i].matches(prev->good_keys_[i]);
    const bool reuse_bad =
        prev != nullptr && bad_keys_[i].matches(prev->bad_keys_[i]);
    // Entries are computed by the exact marginal calls the direct path
    // makes (log_pmf / log_pdf), so a table lookup reproduces the direct
    // score bit for bit. A column reused from `prev` was computed from a
    // bitwise-identical marginal, so it is the same doubles either way.
    auto column = [&](const FactorizedDensity& density) {
      if (columns.is_continuous(i)) {
        return density.kernel(i).log_pdf_many(columns.distinct_values(i));
      }
      return density.histogram(i).log_pmf_table();
    };
    std::vector<double> good;
    std::vector<double> bad;
    if (reuse_good) {
      const double* at = prev->log_good_.data() + offsets_[i];
      good.assign(at, at + columns.table_size(i));
      ++reused_columns_;
    } else {
      good = column(surrogate.good());
    }
    if (reuse_bad) {
      const double* at = prev->log_bad_.data() + offsets_[i];
      bad.assign(at, at + columns.table_size(i));
      ++reused_columns_;
    } else {
      bad = column(surrogate.bad());
    }
    HPB_REQUIRE(good.size() == columns.table_size(i) &&
                    bad.size() == columns.table_size(i),
                "AcquisitionTable: table size mismatch");
    log_good_.insert(log_good_.end(), good.begin(), good.end());
    log_bad_.insert(log_bad_.end(), bad.begin(), bad.end());
  }
}

AcquisitionTable::AcquisitionTable(const TpeSurrogate& surrogate,
                                   const space::ParameterSpace& space,
                                   const AcquisitionTable* prev) {
  HPB_REQUIRE(space.is_finite(),
              "AcquisitionTable: space-keyed tables require an all-discrete "
              "space (streamed sweeps only serve finite spaces)");
  const std::size_t n_params = space.num_params();
  HPB_REQUIRE(surrogate.good().num_params() == n_params,
              "AcquisitionTable: parameter count mismatch");
  offsets_.resize(n_params);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_params; ++i) {
    offsets_[i] = total;
    total += space.param(i).num_levels();
  }
  if (prev != nullptr &&
      (prev->offsets_ != offsets_ || prev->log_good_.size() != total)) {
    prev = nullptr;
  }
  log_good_.reserve(total);
  log_bad_.reserve(total);
  good_keys_.resize(n_params);
  bad_keys_.resize(n_params);
  // All-discrete layout: every column is the histogram's log_pmf_table(),
  // computed (or reused) exactly as in the pooled constructor's discrete
  // branch, so streamed scores match pooled scores bit for bit.
  auto key_of = [&](const FactorizedDensity& density, std::size_t i) {
    MarginalKey key;
    const stats::HistogramDensity& h = density.histogram(i);
    key.smoothing = h.smoothing();
    key.values.assign(h.counts().begin(), h.counts().end());
    return key;
  };
  for (std::size_t i = 0; i < n_params; ++i) {
    good_keys_[i] = key_of(surrogate.good(), i);
    bad_keys_[i] = key_of(surrogate.bad(), i);
    const bool reuse_good =
        prev != nullptr && good_keys_[i].matches(prev->good_keys_[i]);
    const bool reuse_bad =
        prev != nullptr && bad_keys_[i].matches(prev->bad_keys_[i]);
    const std::size_t levels = space.param(i).num_levels();
    std::vector<double> good;
    std::vector<double> bad;
    if (reuse_good) {
      const double* at = prev->log_good_.data() + offsets_[i];
      good.assign(at, at + levels);
      ++reused_columns_;
    } else {
      good = surrogate.good().histogram(i).log_pmf_table();
    }
    if (reuse_bad) {
      const double* at = prev->log_bad_.data() + offsets_[i];
      bad.assign(at, at + levels);
      ++reused_columns_;
    } else {
      bad = surrogate.bad().histogram(i).log_pmf_table();
    }
    HPB_REQUIRE(good.size() == levels && bad.size() == levels,
                "AcquisitionTable: table size mismatch");
    log_good_.insert(log_good_.end(), good.begin(), good.end());
    log_bad_.insert(log_bad_.end(), bad.begin(), bad.end());
  }
}

}  // namespace hpb::core
