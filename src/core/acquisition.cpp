#include "core/acquisition.hpp"

#include <cmath>
#include <cstring>

namespace hpb::core {

PoolColumns::PoolColumns(const space::ParameterSpace& space,
                         std::span<const space::Configuration> pool)
    : size_(pool.size()) {
  const std::size_t n_params = space.num_params();
  for (const auto& c : pool) {
    HPB_REQUIRE(c.size() == n_params,
                "PoolColumns: configuration size mismatch");
  }
  columns_.resize(n_params);
  distinct_.resize(n_params);
  table_sizes_.assign(n_params, 0);
  continuous_.assign(n_params, 0);
  for (std::size_t i = 0; i < n_params; ++i) {
    std::vector<std::uint32_t>& col = columns_[i];
    col.resize(size_);
    const space::Parameter& p = space.param(i);
    if (p.is_discrete()) {
      const std::size_t levels = p.num_levels();
      table_sizes_[i] = levels;
      for (std::size_t j = 0; j < size_; ++j) {
        const std::size_t level = pool[j].level(i);
        HPB_REQUIRE(level < levels, "PoolColumns: level out of range");
        col[j] = static_cast<std::uint32_t>(level);
      }
    } else {
      continuous_[i] = 1;
      std::vector<double>& distinct = distinct_[i];
      distinct.reserve(size_);
      for (std::size_t j = 0; j < size_; ++j) {
        const double v = pool[j][i];
        HPB_REQUIRE(std::isfinite(v),
                    "PoolColumns: non-finite continuous value");
        distinct.push_back(v);
      }
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      table_sizes_[i] = distinct.size();
      for (std::size_t j = 0; j < size_; ++j) {
        const auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                         pool[j][i]);
        col[j] = static_cast<std::uint32_t>(it - distinct.begin());
      }
    }
  }
  column_ptrs_.resize(n_params);
  for (std::size_t i = 0; i < n_params; ++i) {
    column_ptrs_[i] = columns_[i].data();
  }
  if (space.is_finite()) {
    ordinals_.resize(size_);
    for (std::size_t j = 0; j < size_; ++j) {
      ordinals_[j] = space.ordinal_of(pool[j]);
    }
  }
}

namespace {

/// Bitwise equality of double vectors (memcmp: distinguishes -0.0 from 0.0
/// and never equates NaNs, so a "match" can only mean an identical
/// recomputation — mismatches merely cost a recompute).
bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool scalar_bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

bool AcquisitionTable::MarginalKey::matches(
    const MarginalKey& other) const noexcept {
  return continuous == other.continuous &&
         scalar_bits_equal(smoothing, other.smoothing) &&
         scalar_bits_equal(bandwidth, other.bandwidth) &&
         scalar_bits_equal(lo, other.lo) && scalar_bits_equal(hi, other.hi) &&
         bits_equal(values, other.values) &&
         bits_equal(weights, other.weights);
}

template <class RebuildGood, class RebuildBad>
void AcquisitionTable::fill_column(std::size_t i, std::size_t rows,
                                   const AcquisitionTable* prev,
                                   const RebuildGood& good,
                                   const RebuildBad& bad) {
  if (rows == 0) {
    return;
  }
  // A column reused from `prev` was computed from a bitwise-identical
  // marginal, so it is the same doubles either way — copy it straight into
  // the flat table. The recompute path also writes in place: the old
  // build-into-temporaries-then-append flow cost one allocation plus a
  // second copy per column, which made the incremental path *slower* than
  // a full build on all-discrete tables (refit speedup 0.91 at pool 2^20).
  double* good_dst = log_good_.data() + offsets_[i];
  double* bad_dst = log_bad_.data() + offsets_[i];
  if (prev != nullptr && good_keys_[i].matches(prev->good_keys_[i])) {
    std::memcpy(good_dst, prev->log_good_.data() + offsets_[i],
                rows * sizeof(double));
    ++reused_columns_;
  } else {
    good(std::span<double>(good_dst, rows));
  }
  if (prev != nullptr && bad_keys_[i].matches(prev->bad_keys_[i])) {
    std::memcpy(bad_dst, prev->log_bad_.data() + offsets_[i],
                rows * sizeof(double));
    ++reused_columns_;
  } else {
    bad(std::span<double>(bad_dst, rows));
  }
}

AcquisitionTable::AcquisitionTable(const TpeSurrogate& surrogate,
                                   const PoolColumns& columns,
                                   const AcquisitionTable* prev) {
  const std::size_t n_params = columns.num_params();
  HPB_REQUIRE(surrogate.good().num_params() == n_params,
              "AcquisitionTable: parameter count mismatch");
  offsets_.resize(n_params);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_params; ++i) {
    offsets_[i] = total;
    total += columns.table_size(i);
  }
  // An incremental rebuild requires the previous table to cover the same
  // pool layout; anything else falls back to a full build.
  if (prev != nullptr &&
      (prev->offsets_ != offsets_ || prev->log_good_.size() != total)) {
    prev = nullptr;
  }
  log_good_.resize(total);
  log_bad_.resize(total);
  good_keys_.resize(n_params);
  bad_keys_.resize(n_params);
  auto key_of = [&](const FactorizedDensity& density, std::size_t i) {
    MarginalKey key;
    if (columns.is_continuous(i)) {
      const stats::KernelDensity& k = density.kernel(i);
      key.continuous = true;
      key.bandwidth = k.bandwidth();
      key.lo = k.lo();
      key.hi = k.hi();
      key.values.assign(k.centers().begin(), k.centers().end());
      key.weights.assign(k.kernel_weights().begin(), k.kernel_weights().end());
    } else {
      const stats::HistogramDensity& h = density.histogram(i);
      key.smoothing = h.smoothing();
      key.values.assign(h.counts().begin(), h.counts().end());
    }
    return key;
  };
  for (std::size_t i = 0; i < n_params; ++i) {
    good_keys_[i] = key_of(surrogate.good(), i);
    bad_keys_[i] = key_of(surrogate.bad(), i);
    // Entries are computed by the exact marginal calls the direct path
    // makes (log_pmf / log_pdf), so a table lookup reproduces the direct
    // score bit for bit.
    auto column = [&](const FactorizedDensity& density) {
      return [&density, &columns, i](std::span<double> out) {
        if (columns.is_continuous(i)) {
          density.kernel(i).log_pdf_many(columns.distinct_values(i), out);
        } else {
          density.histogram(i).log_pmf_table(out);
        }
      };
    };
    fill_column(i, columns.table_size(i), prev, column(surrogate.good()),
                column(surrogate.bad()));
  }
}

AcquisitionTable::AcquisitionTable(const TpeSurrogate& surrogate,
                                   const space::ParameterSpace& space,
                                   const AcquisitionTable* prev) {
  HPB_REQUIRE(space.is_finite(),
              "AcquisitionTable: space-keyed tables require an all-discrete "
              "space (streamed sweeps only serve finite spaces)");
  const std::size_t n_params = space.num_params();
  HPB_REQUIRE(surrogate.good().num_params() == n_params,
              "AcquisitionTable: parameter count mismatch");
  offsets_.resize(n_params);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_params; ++i) {
    offsets_[i] = total;
    total += space.param(i).num_levels();
  }
  if (prev != nullptr &&
      (prev->offsets_ != offsets_ || prev->log_good_.size() != total)) {
    prev = nullptr;
  }
  log_good_.resize(total);
  log_bad_.resize(total);
  good_keys_.resize(n_params);
  bad_keys_.resize(n_params);
  // All-discrete layout: every column is the histogram's log_pmf_table(),
  // computed (or reused) exactly as in the pooled constructor's discrete
  // branch, so streamed scores match pooled scores bit for bit.
  auto key_of = [&](const FactorizedDensity& density, std::size_t i) {
    MarginalKey key;
    const stats::HistogramDensity& h = density.histogram(i);
    key.smoothing = h.smoothing();
    key.values.assign(h.counts().begin(), h.counts().end());
    return key;
  };
  for (std::size_t i = 0; i < n_params; ++i) {
    good_keys_[i] = key_of(surrogate.good(), i);
    bad_keys_[i] = key_of(surrogate.bad(), i);
    const auto column = [&](const FactorizedDensity& density) {
      return [&density, i](std::span<double> out) {
        density.histogram(i).log_pmf_table(out);
      };
    };
    fill_column(i, space.param(i).num_levels(), prev,
                column(surrogate.good()), column(surrogate.bad()));
  }
}

void AcquisitionTable::score_block(const PoolColumns& columns,
                                   std::size_t begin, std::size_t end,
                                   double* out, SimdTier tier) const {
  HPB_REQUIRE(columns.num_params() == offsets_.size(),
              "AcquisitionTable::score_block: parameter count mismatch");
  HPB_REQUIRE(end <= columns.size(),
              "AcquisitionTable::score_block: range out of bounds");
  core::score_block(tier, log_good_.data(), log_bad_.data(), offsets_.data(),
                    columns.column_data().data(), offsets_.size(), begin, end,
                    out);
}

void AcquisitionTable::score_block_cols(const std::uint32_t* const* cols,
                                        std::size_t count, double* out,
                                        SimdTier tier) const {
  core::score_block(tier, log_good_.data(), log_bad_.data(), offsets_.data(),
                    cols, offsets_.size(), 0, count, out);
}

}  // namespace hpb::core
