#include "core/history.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "stats/quantile.hpp"

namespace hpb::core {

void History::add(space::Configuration config, double y) {
  HPB_REQUIRE(std::isfinite(y), "History::add: objective must be finite");
  if (obs_.empty() || y < obs_[best_index_].y) {
    best_index_ = obs_.size();
  }
  obs_.push_back({std::move(config), y});
}

double History::best_value() const {
  HPB_REQUIRE(!obs_.empty(), "History::best_value: empty history");
  return obs_[best_index_].y;
}

const space::Configuration& History::best_config() const {
  HPB_REQUIRE(!obs_.empty(), "History::best_config: empty history");
  return obs_[best_index_].config;
}

HistorySplit History::split(double alpha) const {
  HPB_REQUIRE(alpha > 0.0 && alpha < 1.0, "History::split: alpha in (0,1)");
  HPB_REQUIRE(obs_.size() >= 2, "History::split: need >= 2 observations");
  std::vector<double> ys;
  ys.reserve(obs_.size());
  for (const Observation& o : obs_) {
    ys.push_back(o.y);
  }
  stats::RankSplit split = stats::rank_split(ys, alpha);
  return HistorySplit{std::move(split.good), std::move(split.bad),
                      split.threshold};
}

}  // namespace hpb::core
