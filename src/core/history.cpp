#include "core/history.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hpb::core {

void History::add(space::Configuration config, double y) {
  HPB_REQUIRE(std::isfinite(y), "History::add: objective must be finite");
  if (obs_.empty() || y < obs_[best_index_].y) {
    best_index_ = obs_.size();
  }
  obs_.push_back({std::move(config), y});
}

double History::best_value() const {
  HPB_REQUIRE(!obs_.empty(), "History::best_value: empty history");
  return obs_[best_index_].y;
}

const space::Configuration& History::best_config() const {
  HPB_REQUIRE(!obs_.empty(), "History::best_config: empty history");
  return obs_[best_index_].config;
}

HistorySplit History::split(double alpha) const {
  HPB_REQUIRE(alpha > 0.0 && alpha < 1.0, "History::split: alpha in (0,1)");
  HPB_REQUIRE(obs_.size() >= 2, "History::split: need >= 2 observations");
  const std::size_t n = obs_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a,
                                                      std::size_t b) {
    return obs_[a].y < obs_[b].y;
  });
  std::size_t n_good = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(alpha * static_cast<double>(n))));
  n_good = std::min(n_good, n - 1);

  HistorySplit split;
  split.good.assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(n_good));
  split.bad.assign(order.begin() + static_cast<std::ptrdiff_t>(n_good),
                   order.end());
  split.threshold = obs_[order[n_good]].y;  // first value ranked "bad"
  return split;
}

}  // namespace hpb::core
