// Termination conditions for the tuning loop (§III-C step 5): "determined
// either by the number of objective function evaluations that can be
// performed, or based on the quality of the samples obtained as the
// iteration progresses."
#pragma once

#include <cstddef>
#include <limits>

#include "core/loop.hpp"

namespace hpb::core {

struct StopConfig {
  /// Hard cap on evaluations (always enforced).
  std::size_t max_evaluations = 100;
  /// Stop after this many consecutive evaluations without a (relative)
  /// improvement of the best value; 0 disables stagnation detection.
  std::size_t stagnation_patience = 0;
  /// An improvement counts only if it shrinks the best value by at least
  /// this relative fraction (guards against epsilon-sized "improvements"
  /// resetting the patience forever).
  double min_relative_improvement = 1e-6;
  /// Stop as soon as the best value is <= target (-inf disables).
  double target_value = -std::numeric_limits<double>::infinity();
  /// Stop once the session has run this many wall-clock seconds, checked
  /// between rounds (an in-flight round always drains); 0 disables. The
  /// session still ends with a consistent journal and partial result.
  double max_wall_time_seconds = 0.0;
};

enum class StopReason {
  kBudgetExhausted,
  kStagnation,
  kTargetReached,
  /// StopConfig::max_wall_time_seconds elapsed. A completion, not a crash:
  /// the journal (if any) is finalized.
  kWallTime,
  /// The engine's stop flag was raised (SIGINT/SIGTERM). The journal is
  /// left unfinalized so the session can be resumed.
  kInterrupted,
};

/// Stable lower-snake-case label ("budget_exhausted", ...) used in reports
/// and journal end markers.
[[nodiscard]] const char* stop_reason_name(StopReason reason) noexcept;

struct StoppedTuneResult {
  TuneResult result;
  StopReason reason = StopReason::kBudgetExhausted;
};

/// Run the tuning loop until a stopping condition fires. Compatibility
/// shim over TuningEngine{{.batch_size = 1}}.run_until(...).
[[nodiscard]] StoppedTuneResult run_tuning_until(Tuner& tuner,
                                                 tabular::Objective& objective,
                                                 const StopConfig& config);

}  // namespace hpb::core
