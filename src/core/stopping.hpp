// Termination conditions for the tuning loop (§III-C step 5): "determined
// either by the number of objective function evaluations that can be
// performed, or based on the quality of the samples obtained as the
// iteration progresses."
#pragma once

#include <cstddef>
#include <limits>

#include "core/loop.hpp"

namespace hpb::core {

struct StopConfig {
  /// Hard cap on evaluations (always enforced).
  std::size_t max_evaluations = 100;
  /// Stop after this many consecutive evaluations without a (relative)
  /// improvement of the best value; 0 disables stagnation detection.
  std::size_t stagnation_patience = 0;
  /// An improvement counts only if it shrinks the best value by at least
  /// this relative fraction (guards against epsilon-sized "improvements"
  /// resetting the patience forever).
  double min_relative_improvement = 1e-6;
  /// Stop as soon as the best value is <= target (-inf disables).
  double target_value = -std::numeric_limits<double>::infinity();
};

enum class StopReason { kBudgetExhausted, kStagnation, kTargetReached };

struct StoppedTuneResult {
  TuneResult result;
  StopReason reason = StopReason::kBudgetExhausted;
};

/// Run the tuning loop until a stopping condition fires. Compatibility
/// shim over TuningEngine{{.batch_size = 1}}.run_until(...).
[[nodiscard]] StoppedTuneResult run_tuning_until(Tuner& tuner,
                                                 tabular::Objective& objective,
                                                 const StopConfig& config);

}  // namespace hpb::core
