// Dataset-level parameter-importance analysis (§VI, Table I).
//
// The surrogate's good/bad densities give a JS-divergence importance score
// per parameter. Table I reports this both from a partial sample (10% of
// the dataset, surrogate-selected) and from the full dataset ("actual
// ranking"); these helpers compute either.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/density.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::core {

struct ImportanceEntry {
  std::string parameter;
  double js_divergence = 0.0;
};

/// Importance from an arbitrary sample of (configuration, value) pairs:
/// split at alpha, estimate pg/pb, return JS divergence per parameter,
/// sorted descending (Table I's presentation order).
[[nodiscard]] std::vector<ImportanceEntry> parameter_importance(
    space::SpacePtr space, std::span<const space::Configuration> configs,
    std::span<const double> values, double alpha,
    const DensityConfig& density_config = {});

/// Importance from the full dataset (Table I's "All samples" column).
[[nodiscard]] std::vector<ImportanceEntry> dataset_importance(
    const tabular::TabularObjective& dataset, double alpha,
    const DensityConfig& density_config = {});

}  // namespace hpb::core
