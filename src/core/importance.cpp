#include "core/importance.hpp"

#include <algorithm>

#include "stats/divergence.hpp"
#include "stats/quantile.hpp"

namespace hpb::core {

std::vector<ImportanceEntry> parameter_importance(
    space::SpacePtr space, std::span<const space::Configuration> configs,
    std::span<const double> values, double alpha,
    const DensityConfig& density_config) {
  HPB_REQUIRE(space != nullptr, "parameter_importance: null space");
  HPB_REQUIRE(configs.size() == values.size(),
              "parameter_importance: size mismatch");
  HPB_REQUIRE(configs.size() >= 2, "parameter_importance: need >= 2 samples");

  const double threshold = stats::split_threshold(values, alpha);
  std::vector<space::Configuration> good_configs;
  std::vector<space::Configuration> bad_configs;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    (values[i] < threshold ? good_configs : bad_configs)
        .push_back(configs[i]);
  }
  const FactorizedDensity good(space, good_configs, density_config);
  const FactorizedDensity bad(space, bad_configs, density_config);

  std::vector<ImportanceEntry> entries;
  entries.reserve(space->num_params());
  for (std::size_t i = 0; i < space->num_params(); ++i) {
    entries.push_back({space->param(i).name(),
                       stats::js_divergence(good.marginal_probabilities(i),
                                            bad.marginal_probabilities(i))});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const ImportanceEntry& a, const ImportanceEntry& b) {
                     return a.js_divergence > b.js_divergence;
                   });
  return entries;
}

std::vector<ImportanceEntry> dataset_importance(
    const tabular::TabularObjective& dataset, double alpha,
    const DensityConfig& density_config) {
  return parameter_importance(dataset.space_ptr(), dataset.configs(),
                              dataset.values(), alpha, density_config);
}

}  // namespace hpb::core
