// TuningEngine: the batched tuning-loop driver, now a thin loop over a
// core::Session.
//
// Each round asks the session for a batch of up to `batch_size` distinct
// configurations (Session::suggest → tuner.suggest_batch), evaluates them —
// in parallel on a ThreadPool when one is supplied — and delivers the
// results back in suggestion order (Session::observe → tuner.observe_batch).
// The session owns all per-run state (journal, recorder emissions, pending
// round, best-so-far, stopping bookkeeping); the engine owns only the
// evaluation of the objective (worker pool, watchdog, retry policy) and the
// decision of when to stop driving. A run over the session split is
// bitwise-identical to the pre-split single-function driver — history,
// journal bytes, and trace spans all match (pinned by
// tests/test_session.cpp), so the paper's curves do not move. With
// batch_size == 1 the engine still reproduces the historical serial loop
// exactly (run_tuning / run_tuning_until are thin shims).
//
// Parallel evaluation requires a thread-safe objective — true for
// TabularObjective, whose evaluate() is a read-only table lookup; live
// objectives that mutate state must be driven with pool == nullptr.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <span>

#include "common/thread_pool.hpp"
#include "core/session.hpp"
#include "core/stopping.hpp"
#include "core/tuner.hpp"
#include "obs/recorder.hpp"
#include "tabular/objective.hpp"

namespace hpb::core {

class JournalWriter;

struct EngineConfig {
  /// Configurations evaluated per suggest/observe round. 1 reproduces the
  /// serial ask/tell loop exactly.
  std::size_t batch_size = 1;
  /// Worker pool for objective evaluations within a batch; nullptr (or a
  /// single worker) evaluates serially in suggestion order.
  ThreadPool* pool = nullptr;
  /// Retry policy for transient failures. Failed evaluations (after
  /// retries) count toward the budget, are delivered to the tuner via
  /// observe_failure, and never become best_value/best_config.
  FailurePolicy failure;
  /// Wall-clock watchdog: per-evaluation deadline. Each evaluation receives
  /// a CancellationToken carrying now() + eval_deadline; cooperative
  /// objectives return early, and any evaluation that comes back after its
  /// deadline is converted to kTimeout either way, flowing through the
  /// normal FailurePolicy / observe_failure path. Zero disables the
  /// watchdog, and the engine then drives the exact historical
  /// evaluate_result(c) call path.
  std::chrono::milliseconds eval_deadline{0};
  /// Write-ahead journal appended each round (round marker after
  /// suggest_batch, one record per observation after evaluation) and
  /// finalized when a run completes. nullptr disables journaling. Not
  /// owned; must outlive the run.
  JournalWriter* journal = nullptr;
  /// Graceful-shutdown flag (typically raised by a SIGINT/SIGTERM
  /// handler), checked between rounds and propagated to evaluations via
  /// their CancellationToken. run_until returns kInterrupted with the
  /// partial result; the journal is left resumable. Not owned.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Observability hooks (trace sink / metrics registry / clock), all
  /// optional and not owned. When active, the session emits one span per
  /// round, suggest, evaluation, and observe (plus an instant event per
  /// journal append) and meters evaluations/failures/retries/latencies,
  /// and the engine installs the recorder on the tuner so it can export
  /// its model internals. The all-null default performs no clock reads, no
  /// allocations, and no extra branches inside evaluations: default runs
  /// are bitwise identical to a recorder-free build of the loop.
  obs::Recorder recorder;
};

class TuningEngine {
 public:
  explicit TuningEngine(EngineConfig config = {});

  /// Run exactly `budget` evaluations (the final round shrinks to fit; a
  /// tuner returning short batches near exhaustion just triggers more
  /// rounds).
  [[nodiscard]] TuneResult run(Tuner& tuner, tabular::Objective& objective,
                               std::size_t budget) const;

  /// Resuming variant: `replayed` observations (from replay_journal, which
  /// already drove them through the tuner) are recorded into the result
  /// first and count toward `budget`; only the remainder is evaluated.
  [[nodiscard]] TuneResult run(Tuner& tuner, tabular::Objective& objective,
                               std::size_t budget,
                               std::span<const Observation> replayed) const;

  /// Run until a stopping condition fires. Stopping conditions are checked
  /// per observation — stagnation patience counts every observation,
  /// including within a batch — but when a stop triggers mid-batch the
  /// whole already-evaluated round is still drained into the returned
  /// history first: those evaluations were spent (and delivered to the
  /// tuner via observe_batch), so reported counts match actual spend. At
  /// batch_size == 1 this is exactly the serial driver's behavior.
  /// The stop flag and max_wall_time_seconds are checked between rounds.
  [[nodiscard]] StoppedTuneResult run_until(Tuner& tuner,
                                            tabular::Objective& objective,
                                            const StopConfig& config) const;

  /// Resuming variant of run_until: replayed observations pass through the
  /// same per-observation stopping bookkeeping (stagnation counters, target
  /// checks) before fresh rounds start, so a resumed session stops exactly
  /// where the uninterrupted one would have.
  [[nodiscard]] StoppedTuneResult run_until(
      Tuner& tuner, tabular::Objective& objective, const StopConfig& config,
      std::span<const Observation> replayed) const;

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  /// Session configuration mirroring this engine's config plus the
  /// stopping conditions of the current run.
  [[nodiscard]] SessionConfig session_config(StopConfig stop) const;

  /// One suggest → evaluate → observe round of at most `k` evaluations
  /// driven through the session: the engine evaluates the suggested batch
  /// (pool / watchdog / retries) and hands the results straight back.
  void drive_round(Session& session, tabular::Objective& objective,
                   std::size_t k) const;

  EngineConfig config_;
};

}  // namespace hpb::core
