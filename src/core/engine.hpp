// TuningEngine: the batched tuning-loop driver.
//
// Each round asks the tuner for a batch of up to `batch_size` distinct
// configurations (suggest_batch), evaluates them — in parallel on a
// ThreadPool when one is supplied — and delivers the results back in
// suggestion order (observe_batch). Results are reduced into the recorded
// history in suggestion order, so a run is deterministic for a fixed seed
// regardless of scheduling, and with batch_size == 1 the engine is
// bitwise-identical to the historical serial driver (run_tuning /
// run_tuning_until are now thin shims over this engine): the paper's
// curves do not move.
//
// Parallel evaluation requires a thread-safe objective — true for
// TabularObjective, whose evaluate() is a read-only table lookup; live
// objectives that mutate state must be driven with pool == nullptr.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <span>

#include "common/thread_pool.hpp"
#include "core/stopping.hpp"
#include "core/tuner.hpp"
#include "obs/recorder.hpp"
#include "tabular/objective.hpp"

namespace hpb::core {

class JournalWriter;

/// How the engine treats failed evaluations (EvalStatus != kOk).
struct FailurePolicy {
  /// Immediate re-evaluations of a configuration whose attempt came back
  /// kCrashed (the one transient status) before it is recorded as failed.
  /// Retries are extra objective calls but occupy the same budget slot.
  /// kInvalid / kTimeout are deterministic verdicts and are never retried.
  std::size_t max_retries = 1;
};

struct EngineConfig {
  /// Configurations evaluated per suggest/observe round. 1 reproduces the
  /// serial ask/tell loop exactly.
  std::size_t batch_size = 1;
  /// Worker pool for objective evaluations within a batch; nullptr (or a
  /// single worker) evaluates serially in suggestion order.
  ThreadPool* pool = nullptr;
  /// Retry policy for transient failures. Failed evaluations (after
  /// retries) count toward the budget, are delivered to the tuner via
  /// observe_failure, and never update best_value/best_config.
  FailurePolicy failure;
  /// Wall-clock watchdog: per-evaluation deadline. Each evaluation receives
  /// a CancellationToken carrying now() + eval_deadline; cooperative
  /// objectives return early, and any evaluation that comes back after its
  /// deadline is converted to kTimeout either way, flowing through the
  /// normal FailurePolicy / observe_failure path. Zero disables the
  /// watchdog, and the engine then drives the exact historical
  /// evaluate_result(c) call path.
  std::chrono::milliseconds eval_deadline{0};
  /// Write-ahead journal appended each round (round marker after
  /// suggest_batch, one record per observation after evaluation) and
  /// finalized when a run completes. nullptr disables journaling. Not
  /// owned; must outlive the run.
  JournalWriter* journal = nullptr;
  /// Graceful-shutdown flag (typically raised by a SIGINT/SIGTERM
  /// handler), checked between rounds and propagated to evaluations via
  /// their CancellationToken. run_until returns kInterrupted with the
  /// partial result; the journal is left resumable. Not owned.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Observability hooks (trace sink / metrics registry / clock), all
  /// optional and not owned. When active, the engine emits one span per
  /// round, suggest, evaluation, and observe (plus an instant event per
  /// journal append) and meters evaluations/failures/retries/latencies,
  /// and installs the recorder on the tuner so it can export its model
  /// internals. The all-null default performs no clock reads, no
  /// allocations, and no extra branches inside evaluations: default runs
  /// are bitwise identical to a recorder-free build of the loop.
  obs::Recorder recorder;
};

class TuningEngine {
 public:
  explicit TuningEngine(EngineConfig config = {});

  /// Run exactly `budget` evaluations (the final round shrinks to fit; a
  /// tuner returning short batches near exhaustion just triggers more
  /// rounds).
  [[nodiscard]] TuneResult run(Tuner& tuner, tabular::Objective& objective,
                               std::size_t budget) const;

  /// Resuming variant: `replayed` observations (from replay_journal, which
  /// already drove them through the tuner) are recorded into the result
  /// first and count toward `budget`; only the remainder is evaluated.
  [[nodiscard]] TuneResult run(Tuner& tuner, tabular::Objective& objective,
                               std::size_t budget,
                               std::span<const Observation> replayed) const;

  /// Run until a stopping condition fires. Stopping conditions are checked
  /// per observation — stagnation patience counts every observation,
  /// including within a batch — but when a stop triggers mid-batch the
  /// whole already-evaluated round is still drained into the returned
  /// history first: those evaluations were spent (and delivered to the
  /// tuner via observe_batch), so reported counts match actual spend. At
  /// batch_size == 1 this is exactly the serial driver's behavior.
  /// The stop flag and max_wall_time_seconds are checked between rounds.
  [[nodiscard]] StoppedTuneResult run_until(Tuner& tuner,
                                            tabular::Objective& objective,
                                            const StopConfig& config) const;

  /// Resuming variant of run_until: replayed observations pass through the
  /// same per-observation stopping bookkeeping (stagnation counters, target
  /// checks) before fresh rounds start, so a resumed session stops exactly
  /// where the uninterrupted one would have.
  [[nodiscard]] StoppedTuneResult run_until(
      Tuner& tuner, tabular::Objective& objective, const StopConfig& config,
      std::span<const Observation> replayed) const;

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  /// One suggest → evaluate → observe round of at most `k` evaluations.
  /// `round_index` is the engine-local round number (trace attribute).
  [[nodiscard]] std::vector<Observation> run_round(
      Tuner& tuner, tabular::Objective& objective, std::size_t k,
      std::size_t round_index) const;

  /// Append one observation to the result: successes update the best-*
  /// fields, failures only bump num_failed; both extend history and
  /// best_so_far (budget was spent either way). Updates the best-value
  /// gauge when a metrics registry is attached.
  void record(TuneResult& result, Observation o) const;

  EngineConfig config_;
};

}  // namespace hpb::core
