// TuningEngine: the batched tuning-loop driver.
//
// Each round asks the tuner for a batch of up to `batch_size` distinct
// configurations (suggest_batch), evaluates them — in parallel on a
// ThreadPool when one is supplied — and delivers the results back in
// suggestion order (observe_batch). Results are reduced into the recorded
// history in suggestion order, so a run is deterministic for a fixed seed
// regardless of scheduling, and with batch_size == 1 the engine is
// bitwise-identical to the historical serial driver (run_tuning /
// run_tuning_until are now thin shims over this engine): the paper's
// curves do not move.
//
// Parallel evaluation requires a thread-safe objective — true for
// TabularObjective, whose evaluate() is a read-only table lookup; live
// objectives that mutate state must be driven with pool == nullptr.
#pragma once

#include <cstddef>

#include "common/thread_pool.hpp"
#include "core/stopping.hpp"
#include "core/tuner.hpp"
#include "tabular/objective.hpp"

namespace hpb::core {

struct EngineConfig {
  /// Configurations evaluated per suggest/observe round. 1 reproduces the
  /// serial ask/tell loop exactly.
  std::size_t batch_size = 1;
  /// Worker pool for objective evaluations within a batch; nullptr (or a
  /// single worker) evaluates serially in suggestion order.
  ThreadPool* pool = nullptr;
};

class TuningEngine {
 public:
  explicit TuningEngine(EngineConfig config = {});

  /// Run exactly `budget` evaluations (the final round shrinks to fit; a
  /// tuner returning short batches near exhaustion just triggers more
  /// rounds).
  [[nodiscard]] TuneResult run(Tuner& tuner, tabular::Objective& objective,
                               std::size_t budget) const;

  /// Run until a stopping condition fires. When a target / stagnation stop
  /// triggers mid-batch, the remaining batch members have already been
  /// evaluated and observed by the tuner, but are not recorded in the
  /// returned history — exactly the prefix up to the stopping point is
  /// reported, matching the serial driver's semantics.
  [[nodiscard]] StoppedTuneResult run_until(Tuner& tuner,
                                            tabular::Objective& objective,
                                            const StopConfig& config) const;

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  /// One suggest → evaluate → observe round of at most `k` evaluations.
  [[nodiscard]] std::vector<Observation> run_round(
      Tuner& tuner, tabular::Objective& objective, std::size_t k) const;

  EngineConfig config_;
};

}  // namespace hpb::core
