// TPE surrogate model (§II, §III).
//
// Splits the observation history at the α-quantile threshold y(τ) into good
// and bad observations, estimates the factorized densities pg(x) and pb(x)
// (eq. 7–8), and scores candidates with the expected-improvement surrogate:
// by eq. 5, EI is monotone in pg(x)/pb(x), so the acquisition function is
// log pg(x) − log pb(x). Optionally mixes in transfer-learning priors with
// weight w (eq. 9–10).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/density.hpp"
#include "core/history.hpp"

namespace hpb::core {

/// Source-domain densities used as transfer priors (eq. 9–10).
struct TransferPrior {
  FactorizedDensity good;
  FactorizedDensity bad;
};

/// Build a TransferPrior from a fully observed source domain: split the
/// source observations at alpha and estimate good/bad densities.
[[nodiscard]] TransferPrior make_transfer_prior(
    space::SpacePtr space, std::span<const space::Configuration> configs,
    std::span<const double> values, double alpha,
    const DensityConfig& density_config = {});

class TpeSurrogate {
 public:
  /// Fit the surrogate to a history (needs >= 2 observations). When `prior`
  /// is non-null its densities are mixed in with weight `prior_weight`.
  /// `failed` configurations (crashed/invalid/timed-out evaluations, which
  /// have no finite value and therefore cannot enter the history) are
  /// appended to the bad group before the density fit: they are worse than
  /// any observed value, so they belong below the α-quantile threshold and
  /// steer pg/pb away from failure regions.
  TpeSurrogate(space::SpacePtr space, const History& history, double alpha,
               const DensityConfig& density_config = {},
               const TransferPrior* prior = nullptr,
               double prior_weight = 0.0,
               std::span<const space::Configuration> failed = {});

  /// Acquisition score: log pg(x) − log pb(x); maximizing it maximizes the
  /// expected improvement of eq. 5.
  [[nodiscard]] double acquisition(const space::Configuration& c) const;

  /// Good/bad split threshold y(τ) used for this fit.
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  [[nodiscard]] const FactorizedDensity& good() const noexcept { return good_; }
  [[nodiscard]] const FactorizedDensity& bad() const noexcept { return bad_; }

  /// Observations in the good / bad density groups of this fit (the bad
  /// count includes appended failed configurations). Exported as tuner
  /// internals by the observability layer.
  [[nodiscard]] std::size_t num_good() const noexcept { return num_good_; }
  [[nodiscard]] std::size_t num_bad() const noexcept { return num_bad_; }

  /// Mean KDE bandwidth of the good density's continuous marginals, or 0
  /// when the space is fully discrete.
  [[nodiscard]] double mean_kde_bandwidth() const;

  /// Per-parameter Jensen–Shannon divergence between the good and bad
  /// marginals (§VI): the importance score reported in Table I.
  [[nodiscard]] std::vector<double> parameter_importance() const;

 private:
  FactorizedDensity good_;
  FactorizedDensity bad_;
  double threshold_ = 0.0;
  std::size_t num_good_ = 0;
  std::size_t num_bad_ = 0;
};

}  // namespace hpb::core
