#include "core/stopping.hpp"

#include "common/error.hpp"

namespace hpb::core {

StoppedTuneResult run_tuning_until(Tuner& tuner,
                                   tabular::Objective& objective,
                                   const StopConfig& config) {
  HPB_REQUIRE(config.max_evaluations > 0,
              "run_tuning_until: max_evaluations must be positive");
  HPB_REQUIRE(config.min_relative_improvement >= 0.0,
              "run_tuning_until: min_relative_improvement must be >= 0");
  StoppedTuneResult out;
  TuneResult& result = out.result;
  result.history.reserve(config.max_evaluations);
  result.best_so_far.reserve(config.max_evaluations);

  std::size_t since_improvement = 0;
  for (std::size_t t = 0; t < config.max_evaluations; ++t) {
    space::Configuration c = tuner.suggest();
    const double y = objective.evaluate(c);
    tuner.observe(c, y);

    const bool first = result.history.empty();
    const bool improved =
        first ||
        y < result.best_value -
                config.min_relative_improvement * std::abs(result.best_value);
    if (first || y < result.best_value) {
      result.best_value = y;
      result.best_config = c;
    }
    result.history.push_back({std::move(c), y});
    result.best_so_far.push_back(result.best_value);

    if (result.best_value <= config.target_value) {
      out.reason = StopReason::kTargetReached;
      return out;
    }
    since_improvement = improved ? 0 : since_improvement + 1;
    if (config.stagnation_patience > 0 &&
        since_improvement >= config.stagnation_patience) {
      out.reason = StopReason::kStagnation;
      return out;
    }
  }
  out.reason = StopReason::kBudgetExhausted;
  return out;
}

}  // namespace hpb::core
