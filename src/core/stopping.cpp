#include "core/stopping.hpp"

#include "core/engine.hpp"

namespace hpb::core {

const char* stop_reason_name(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kBudgetExhausted:
      return "budget_exhausted";
    case StopReason::kStagnation:
      return "stagnation";
    case StopReason::kTargetReached:
      return "target_reached";
    case StopReason::kWallTime:
      return "wall_time";
    case StopReason::kInterrupted:
      return "interrupted";
  }
  return "unknown";
}

StoppedTuneResult run_tuning_until(Tuner& tuner,
                                   tabular::Objective& objective,
                                   const StopConfig& config) {
  return TuningEngine().run_until(tuner, objective, config);
}

}  // namespace hpb::core
