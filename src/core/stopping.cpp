#include "core/stopping.hpp"

#include "core/engine.hpp"

namespace hpb::core {

StoppedTuneResult run_tuning_until(Tuner& tuner,
                                   tabular::Objective& objective,
                                   const StopConfig& config) {
  return TuningEngine().run_until(tuner, objective, config);
}

}  // namespace hpb::core
