// SessionManager: thousands of named, concurrent ask/tell tuning sessions
// behind one object — the core of the tuning service.
//
// Clients create a session by name, then suggest / observe / status / close
// it; between verbs the client may disappear entirely. The registry is
// striped (hash(name) → stripe, each stripe its own mutex + map), so verbs
// on different sessions proceed in parallel while verbs on one session are
// serialized by a per-session mutex.
//
// Cold eviction: when a stripe exceeds its share of `max_resident`, its
// least-recently-used idle session is dropped from memory. Nothing is lost
// — every hosted session is backed by the write-ahead journal (one fsync'd
// record per observation, PR 3), so the on-disk state already *is* the
// session. The next verb that touches an evicted name transparently
// resumes it: the factory rebuilds the tuner, replay_journal re-drives it
// through the journaled rounds (bitwise-identical suggest sequence, proven
// by tests/test_session.cpp), and the journal re-opens in append mode. A
// session with an unobserved round in flight is pinned hot — evicting it
// would orphan its suggestions.
//
// Observability: the manager emits `session.*` spans (create / resume /
// evict / close) and `manager.*` counters into its own recorder, and gives
// every resident session a private MetricsRegistry scope so one session's
// engine.* metrics never mix with another's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "space/parameter_space.hpp"

namespace hpb::core {

/// Identity of one hosted session — everything needed to build (or
/// rebuild) its tuner. Persisted in the journal header, so an evicted or
/// crashed session resumes from its name alone.
struct SessionSpec {
  /// Registry key and journal file stem. Restricted to
  /// [A-Za-z0-9._-]{1,128} (it names a file under the journal directory).
  std::string name;
  std::string method = "hiperbot";
  std::string dataset;
  std::uint64_t seed = 42;
  std::size_t batch_size = 1;
  /// Stopping conditions applied per observation (budget / patience /
  /// target recorded in the journal header; the session reports `stopped`
  /// through status, clients decide when to stop asking).
  StopConfig stop;
  /// Round-structured (default) or token-structured asynchronous session.
  /// Recorded in the journal header (`meta mode async`), so a resumed
  /// session keeps its mode.
  SessionMode mode = SessionMode::kSync;
};

/// What the factory must provide for a spec: the tuner and the parameter
/// space it suggests over (needed for journal replay and validation).
struct SessionBackend {
  std::unique_ptr<Tuner> tuner;
  space::SpacePtr space;
};

/// Builds the backend for a spec. Called with a registry stripe locked, so
/// it should be reasonably quick and must be thread-safe across concurrent
/// calls for different sessions. Throws hpb::Error on unknown methods /
/// datasets; the error propagates to the creating verb.
using SessionFactory = std::function<SessionBackend(const SessionSpec&)>;

struct SessionManagerConfig {
  /// Directory for per-session write-ahead journals
  /// (`<journal_dir>/<name>.hpbj`). Created (mkdir -p) by the constructor.
  /// Empty disables journaling — sessions then live only in memory and are
  /// never evicted (there would be nothing to resume from).
  std::string journal_dir;
  /// Soft cap on resident (in-memory) sessions across all stripes; each
  /// stripe evicts beyond its share. 0 = unlimited (no eviction).
  std::size_t max_resident = 0;
  /// Lock stripes for the registry. More stripes, more verb parallelism.
  std::size_t num_stripes = 16;
  /// Per-session cap on outstanding async tokens (forwarded to
  /// SessionConfig::max_pending). A suggest that would exceed it is shed
  /// with hpb::OverloadError. 0 = unlimited.
  std::size_t max_pending_per_session = 0;
  /// Cold-start recovery: scan journal_dir in the constructor, adopt every
  /// resumable journal as a cold session and quarantine unreadable ones to
  /// `<name>.hpbj.corrupt` (see recovery()). Disable for tests that stage
  /// corrupt journals after construction.
  bool recover_on_start = true;
  /// Manager-level observability: `session.*` spans and `manager.*`
  /// counters. Per-session engine metrics go to each session's private
  /// registry, not here.
  obs::Recorder recorder;
};

/// What the cold-start scan of the journal directory found. A restarted
/// daemon forgets nothing: every unfinalized journal is a session a client
/// can touch (suggest/status/observe) and get the exact continuation the
/// crashed process would have produced.
struct RecoveryReport {
  /// Resumable sessions adopted cold: the next verb naming one replays its
  /// journal and continues bitwise-identically.
  std::vector<std::string> adopted;
  /// Finalized journals (finished or closed runs) left on disk; their
  /// names stay reserved.
  std::vector<std::string> finished;
  /// Unreadable journals moved aside to `<name>.hpbj.corrupt` so the name
  /// is usable again and the evidence survives for inspection.
  std::vector<std::string> quarantined;
};

/// Snapshot of the manager's survivability counters, served by the wire
/// `health` verb.
struct ManagerHealth {
  std::size_t resident = 0;
  std::size_t degraded = 0;
  std::uint64_t created = 0;
  std::uint64_t evicted = 0;
  std::uint64_t resumed = 0;
  std::uint64_t closed = 0;
  std::uint64_t adopted = 0;      // cold sessions found at startup
  std::uint64_t quarantined = 0;  // lifetime, startup scan + resume-time
};

class SessionManager {
 public:
  SessionManager(SessionFactory factory, SessionManagerConfig config = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Create a fresh session. Throws if the name is invalid, already
  /// resident, or already has a journal on disk (finished or not).
  void create(const SessionSpec& spec);

  /// Ask the named session for up to k configurations. Resumes the
  /// session from its journal when it was evicted.
  [[nodiscard]] std::vector<space::Configuration> suggest(
      const std::string& name, std::size_t k);

  /// Deliver the evaluated round (suggestion order). Returns the
  /// post-observe status snapshot.
  SessionStatus observe(const std::string& name,
                        std::vector<Observation> observations);

  /// Async sessions: ask for up to k tokenized configurations without
  /// waiting on outstanding evaluations.
  [[nodiscard]] std::vector<AsyncSuggestion> suggest_async(
      const std::string& name, std::size_t k);

  /// One suggest over either mode, dispatched on the session's own mode
  /// under a single lease (the wire layer does not know a name's mode).
  /// Sync sessions fill `configs`; async sessions fill `suggestions`.
  struct SuggestOutcome {
    bool async = false;
    std::vector<space::Configuration> configs;
    std::vector<AsyncSuggestion> suggestions;
  };
  [[nodiscard]] SuggestOutcome suggest_any(const std::string& name,
                                           std::size_t k);

  /// Async sessions: deliver completed evaluations by token, in any order
  /// and any subset. Returns the post-observe status snapshot.
  SessionStatus observe_async(const std::string& name,
                              std::span<const AsyncResult> results);

  /// Release work that will never be observed. Async sessions: abandon the
  /// given tokens (empty = every outstanding token). Sync sessions: cancel
  /// the in-flight round whole (tokens must be empty). Returns the number
  /// of suggestions released.
  std::size_t cancel(const std::string& name,
                     std::span<const std::uint64_t> tokens = {});

  [[nodiscard]] SessionStatus status(const std::string& name);

  /// Finalize the session's journal ("closed") and drop it. Throws when
  /// the name is unknown, the session already closed, or a round is in
  /// flight. A closed name cannot be re-created while its finalized
  /// journal remains on disk.
  void close(const std::string& name);

  /// Force-evict one session (test hook; production eviction is LRU).
  /// Returns false when the session is missing, busy, journal-less, or has
  /// a round in flight.
  bool evict(const std::string& name);

  /// The cold-start scan's findings (empty when recover_on_start was off
  /// or journaling is disabled).
  [[nodiscard]] const RecoveryReport& recovery() const noexcept {
    return recovery_;
  }

  /// Survivability counters for the `health` verb.
  [[nodiscard]] ManagerHealth health() const;

  /// Resident sessions currently degraded (journal append failed).
  [[nodiscard]] std::size_t degraded_count() const;

  /// Drain support: take a durability checkpoint of every resident idle
  /// session (journals are fsync'd per record, so this verifies rather
  /// than flushes) and emit a `manager.checkpoint` span per session.
  /// Returns the number of sessions checkpointed.
  std::size_t checkpoint_all();

  /// Deterministic JSON snapshot of the named session's private metrics.
  [[nodiscard]] std::string session_metrics_json(const std::string& name);

  /// Resident (in-memory) sessions right now.
  [[nodiscard]] std::size_t resident_count() const;

  /// Lifetime counters (also exported as manager.* metrics when a
  /// registry is attached).
  [[nodiscard]] std::uint64_t created_count() const noexcept;
  [[nodiscard]] std::uint64_t evicted_count() const noexcept;
  [[nodiscard]] std::uint64_t resumed_count() const noexcept;
  [[nodiscard]] std::uint64_t closed_count() const noexcept;

  [[nodiscard]] const SessionManagerConfig& config() const noexcept {
    return config_;
  }

  /// Journal path for a (valid) session name; empty when journaling is
  /// disabled.
  [[nodiscard]] std::string journal_path(const std::string& name) const;

 private:
  struct Entry {
    SessionSpec spec;
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<Session> session;
    std::mutex op;          // serializes verbs on this session
    std::size_t in_use = 0;  // guarded by the stripe mutex
    std::uint64_t tick = 0;  // LRU stamp, guarded by the stripe mutex
  };
  struct Stripe {
    mutable std::mutex m;
    std::unordered_map<std::string, std::shared_ptr<Entry>> map;
  };
  /// RAII in-use pin: releases the entry (and runs LRU eviction) on scope
  /// exit even when the verb throws.
  class Lease;

  [[nodiscard]] Stripe& stripe_for(const std::string& name);
  [[nodiscard]] const Stripe& stripe_for(const std::string& name) const;

  /// Find (or resume from journal) the entry; bumps in_use under the
  /// stripe lock. Throws for unknown / closed sessions.
  [[nodiscard]] std::shared_ptr<Entry> acquire(const std::string& name);

  /// Drop the in-use pin, stamp the LRU tick, and evict beyond capacity.
  void release(Stripe& stripe, const std::shared_ptr<Entry>& entry);

  /// Evict LRU idle sessions while the stripe exceeds its share of
  /// max_resident. Caller holds the stripe mutex.
  void evict_over_capacity(Stripe& stripe);

  /// Rebuild an evicted session from its journal. Caller holds the stripe
  /// mutex and pins (in_use) the returned entry itself.
  [[nodiscard]] std::shared_ptr<Entry> resume_from_journal(
      Stripe& stripe, const std::string& name);

  [[nodiscard]] std::shared_ptr<Entry> make_entry(const SessionSpec& spec,
                                                  SessionBackend backend,
                                                  std::unique_ptr<JournalWriter>
                                                      journal);

  void emit_span(std::string_view name, const std::string& session_name);
  void count(const char* counter);

  /// Startup scan of journal_dir: adopt / record / quarantine every
  /// `*.hpbj` entry (see RecoveryReport).
  void recover();

  /// Move an unreadable journal to `<path>.corrupt` and record it. Returns
  /// the quarantine path.
  std::string quarantine_journal(const std::string& name,
                                 const std::string& path);

  SessionFactory factory_;
  SessionManagerConfig config_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t stripe_capacity_ = 0;  // 0 = unlimited
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> resumed_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  RecoveryReport recovery_;  // written once, in the constructor
};

/// Validate a session name ([A-Za-z0-9._-]{1,128}, not "." or "..") —
/// throws hpb::Error otherwise. Exposed for the wire layer's validation.
void validate_session_name(const std::string& name);

}  // namespace hpb::core
