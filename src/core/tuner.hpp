// Batched ask/tell tuner interface shared by HiPerBOt and every baseline.
//
// A tuner proposes configurations to evaluate (§III-A: the argmax of the
// surrogate's expected improvement) and is then told the observed objective
// values. The core abstraction is *batched*: suggest_batch(k) asks for up
// to k distinct configurations so the engine (core/engine.hpp) can evaluate
// them in parallel, and observe_batch() delivers the results in suggestion
// order. The single-point suggest()/observe() pair remains the unit every
// tuner must implement; the batch entry points default to looping it, and
// tuners with a native batch strategy (HiPerBOt's top-k acquisition, the
// constant-liar fill-ins of the model-based baselines) override them.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/recorder.hpp"
#include "space/configuration.hpp"
#include "tabular/objective.hpp"

namespace hpb::core {

/// Evaluation outcome statuses, shared with the objective layer.
using tabular::EvalStatus;

/// One evaluated (configuration, objective value) pair — an element of the
/// observation history H_t. `y` is finite exactly when status == kOk; a
/// failed evaluation records NaN and the failure status instead.
struct Observation {
  space::Configuration config;
  double y = 0.0;
  EvalStatus status = EvalStatus::kOk;

  [[nodiscard]] bool ok() const noexcept { return status == EvalStatus::kOk; }
};

class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Propose the next configuration to evaluate.
  [[nodiscard]] virtual space::Configuration suggest() = 0;

  /// Record the objective value of a previously suggested configuration.
  /// Successful evaluations only — y must be finite.
  virtual void observe(const space::Configuration& config, double y) = 0;

  /// Record that a previously suggested configuration failed to evaluate
  /// (invalid / crashed / timed out). Tuners must release any pending-batch
  /// tracking for the configuration and should exclude it from future
  /// suggestions without letting it poison their model of *successful*
  /// values — HiPerBOt folds failures into its "bad" density, the
  /// model-based baselines only mark the configuration evaluated. The
  /// default ignores the event (safe for tuners without exclusion state).
  virtual void observe_failure(const space::Configuration& config,
                               EvalStatus status) {
    (void)config;
    (void)status;
  }

  /// Release a previously suggested configuration that will never be
  /// observed (the client evaluating it died, or the caller cancelled the
  /// round). Tuners with pending-batch tracking must drop the configuration
  /// from it — it becomes suggestable again, unlike an observed failure,
  /// which stays excluded. The default ignores the event (safe for tuners
  /// without pending state). Abandons are part of the deterministic verb
  /// sequence: replaying the same suggest/observe/abandon calls rebuilds the
  /// same tuner state.
  virtual void abandon(const space::Configuration& config) { (void)config; }

  /// Propose up to k configurations for parallel evaluation. May return
  /// fewer than k when the space is nearly exhausted, but never zero (the
  /// single-point path throws first). The default loops suggest(), which is
  /// exact for k == 1 but may propose within-batch duplicates for tuners
  /// whose deduplication happens in observe(); every shipped tuner
  /// overrides this with a batch-aware strategy.
  [[nodiscard]] virtual std::vector<space::Configuration> suggest_batch(
      std::size_t k) {
    HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
    std::vector<space::Configuration> batch;
    batch.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(suggest());
    }
    return batch;
  }

  /// Record the results of a previously suggested batch, in suggestion
  /// order. The default routes each member by status — observe() for
  /// successes, observe_failure() for failures; overrides may amortize
  /// model refits across the batch but must keep that routing. Engines must
  /// deliver a whole batch through this entry point (not member-by-member
  /// observe() calls) so that constant-liar overrides can retract their
  /// fill-in values.
  virtual void observe_batch(std::span<const Observation> observations) {
    for (const Observation& o : observations) {
      if (o.ok()) {
        observe(o.config, o.y);
      } else {
        observe_failure(o.config, o.status);
      }
    }
  }

  /// Short identifier used in reports ("HiPerBOt", "GEIST", "Random", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Install the observability hooks this tuner exports its internals to
  /// (model-fit spans, split sizes, acquisition scores, ...). The recorder
  /// is not owned and must outlive the tuner's suggest/observe calls; null
  /// (the default) disables all exports. Tuners only ever *read* their
  /// state when recording, so a tuner with a recorder proposes exactly the
  /// same configurations as one without.
  void set_recorder(const obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }

 protected:
  /// Observability hooks, or null. Derived tuners guard every export on
  /// this (and on the specific sink they need).
  const obs::Recorder* recorder_ = nullptr;
};

}  // namespace hpb::core
