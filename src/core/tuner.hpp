// Ask/tell tuner interface shared by HiPerBOt and every baseline.
//
// A tuner repeatedly suggests one configuration to evaluate (§III-A: the
// argmax of the surrogate's expected improvement) and is then told the
// observed objective value. Drivers in core/loop.hpp wire a Tuner to an
// Objective for a fixed evaluation budget.
#pragma once

#include <string>
#include <vector>

#include "space/configuration.hpp"

namespace hpb::core {

/// One evaluated (configuration, objective value) pair — an element of the
/// observation history H_t.
struct Observation {
  space::Configuration config;
  double y = 0.0;
};

class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Propose the next configuration to evaluate.
  [[nodiscard]] virtual space::Configuration suggest() = 0;

  /// Record the objective value of a previously suggested configuration.
  virtual void observe(const space::Configuration& config, double y) = 0;

  /// Short identifier used in reports ("HiPerBOt", "GEIST", "Random", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace hpb::core
