// Batched ask/tell tuner interface shared by HiPerBOt and every baseline.
//
// A tuner proposes configurations to evaluate (§III-A: the argmax of the
// surrogate's expected improvement) and is then told the observed objective
// values. The core abstraction is *batched*: suggest_batch(k) asks for up
// to k distinct configurations so the engine (core/engine.hpp) can evaluate
// them in parallel, and observe_batch() delivers the results in suggestion
// order. The single-point suggest()/observe() pair remains the unit every
// tuner must implement; the batch entry points default to looping it, and
// tuners with a native batch strategy (HiPerBOt's top-k acquisition, the
// constant-liar fill-ins of the model-based baselines) override them.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "space/configuration.hpp"

namespace hpb::core {

/// One evaluated (configuration, objective value) pair — an element of the
/// observation history H_t.
struct Observation {
  space::Configuration config;
  double y = 0.0;
};

class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Propose the next configuration to evaluate.
  [[nodiscard]] virtual space::Configuration suggest() = 0;

  /// Record the objective value of a previously suggested configuration.
  virtual void observe(const space::Configuration& config, double y) = 0;

  /// Propose up to k configurations for parallel evaluation. May return
  /// fewer than k when the space is nearly exhausted, but never zero (the
  /// single-point path throws first). The default loops suggest(), which is
  /// exact for k == 1 but may propose within-batch duplicates for tuners
  /// whose deduplication happens in observe(); every shipped tuner
  /// overrides this with a batch-aware strategy.
  [[nodiscard]] virtual std::vector<space::Configuration> suggest_batch(
      std::size_t k) {
    HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
    std::vector<space::Configuration> batch;
    batch.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(suggest());
    }
    return batch;
  }

  /// Record the results of a previously suggested batch, in suggestion
  /// order. The default loops observe(); overrides may amortize model
  /// refits across the batch. Engines must deliver a whole batch through
  /// this entry point (not member-by-member observe() calls) so that
  /// constant-liar overrides can retract their fill-in values.
  virtual void observe_batch(std::span<const Observation> observations) {
    for (const Observation& o : observations) {
      observe(o.config, o.y);
    }
  }

  /// Short identifier used in reports ("HiPerBOt", "GEIST", "Random", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace hpb::core
