#include "core/history_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/fsio.hpp"

namespace hpb::core {
namespace {

std::vector<std::string> split_line(const std::string& line) {
  // Manual scan rather than getline(is, field, ','): getline drops a
  // trailing empty field, which silently shifted every column left on rows
  // ending in a comma instead of failing the field-count check.
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    const std::string field =
        comma == std::string::npos ? line.substr(start)
                                   : line.substr(start, comma - start);
    const auto begin = field.find_first_not_of(" \t\r");
    const auto end = field.find_last_not_of(" \t\r");
    fields.push_back(begin == std::string::npos
                         ? std::string{}
                         : field.substr(begin, end - begin + 1));
    if (comma == std::string::npos) {
      return fields;
    }
    start = comma + 1;
  }
}

/// Shortest decimal form that parses back to exactly the same double, so
/// warm-started histories reproduce their objectives bitwise (plain
/// `out << y` truncates to 6 significant digits — a real loss on datasets
/// whose objectives differ in the 7th digit, e.g. systolic latencies).
std::string format_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  HPB_REQUIRE(ec == std::errc(), "format_double: conversion failed");
  return std::string(buf, ptr);
}

}  // namespace

void write_history_csv(std::ostream& out, const space::ParameterSpace& space,
                       std::span<const Observation> observations) {
  // The status column is only emitted when some observation failed, so
  // histories from failure-free runs keep the legacy layout readable by
  // TabularObjective and older tools.
  const bool with_status =
      std::any_of(observations.begin(), observations.end(),
                  [](const Observation& o) { return !o.ok(); });
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    out << space.param(p).name() << ',';
  }
  out << "objective";
  if (with_status) {
    out << ",status";
  }
  out << '\n';
  for (const auto& obs : observations) {
    HPB_REQUIRE(obs.config.size() == space.num_params(),
                "write_history_csv: configuration size mismatch");
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      if (space.param(p).is_discrete()) {
        out << space.param(p).level_label(obs.config.level(p));
      } else {
        out << format_double(obs.config[p]);
      }
      out << ',';
    }
    out << format_double(obs.y);
    if (with_status) {
      out << ',' << tabular::status_name(obs.status);
    }
    out << '\n';
  }
}

void write_history_csv(const std::string& path,
                       const space::ParameterSpace& space,
                       std::span<const Observation> observations) {
  // Atomic replace (tmp + fsync + rename): a crash mid-write can never
  // leave a truncated CSV where a previous complete one stood.
  std::ostringstream out;
  write_history_csv(out, space, observations);
  fs::write_file_atomic(path, out.str());
}

std::size_t warm_start_from_csv(std::istream& in,
                                const space::ParameterSpace& space,
                                Tuner& tuner) {
  std::string line;
  HPB_REQUIRE(static_cast<bool>(std::getline(in, line)),
              "warm_start_from_csv: missing header");
  const auto header = split_line(line);
  const bool with_status = !header.empty() && header.back() == "status";
  const std::size_t expected =
      space.num_params() + 1 + (with_status ? 1 : 0);
  HPB_REQUIRE(header.size() == expected,
              "warm_start_from_csv: header has " +
                  std::to_string(header.size()) + " columns, expected " +
                  std::to_string(expected));
  const std::size_t objective_col = space.num_params();
  HPB_REQUIRE(header[objective_col] == "objective",
              "warm_start_from_csv: column " +
                  std::to_string(objective_col) +
                  " must be 'objective', got '" + header[objective_col] +
                  "'");
  // Parameter columns may be reordered relative to the space; map by name.
  std::vector<std::size_t> param_of_column(objective_col);
  for (std::size_t c = 0; c < objective_col; ++c) {
    param_of_column[c] = space.index_of(header[c]);
  }

  // Label -> level index per parameter, built lazily.
  std::vector<std::unordered_map<std::string, std::size_t>> level_of(
      space.num_params());
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    if (!space.param(p).is_discrete()) {
      continue;
    }
    for (std::size_t l = 0; l < space.param(p).num_levels(); ++l) {
      level_of[p].emplace(space.param(p).level_label(l), l);
    }
  }

  std::size_t replayed = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    const auto fields = split_line(line);
    HPB_REQUIRE(fields.size() == header.size(),
                "warm_start_from_csv: bad field count on line " +
                    std::to_string(line_no));
    std::vector<double> values(space.num_params(), 0.0);
    for (std::size_t c = 0; c < objective_col; ++c) {
      const std::size_t p = param_of_column[c];
      const std::string& cell = fields[c];
      if (space.param(p).is_discrete()) {
        const auto it = level_of[p].find(cell);
        HPB_REQUIRE(it != level_of[p].end(),
                    "warm_start_from_csv: unknown level '" + cell +
                        "' for parameter " + space.param(p).name());
        values[p] = static_cast<double>(it->second);
      } else {
        double v = 0.0;
        const auto [ptr, ec] =
            std::from_chars(cell.data(), cell.data() + cell.size(), v);
        HPB_REQUIRE(ec == std::errc{} && ptr == cell.data() + cell.size(),
                    "warm_start_from_csv: bad continuous value '" + cell +
                        "'");
        values[p] = v;
      }
    }
    tabular::EvalStatus status = tabular::EvalStatus::kOk;
    if (with_status) {
      status = tabular::status_from_name(fields.back());
    }
    space::Configuration config(std::move(values));
    if (status == tabular::EvalStatus::kOk) {
      double y = 0.0;
      const std::string& y_cell = fields[objective_col];
      const auto [ptr, ec] =
          std::from_chars(y_cell.data(), y_cell.data() + y_cell.size(), y);
      HPB_REQUIRE(ec == std::errc{} && ptr == y_cell.data() + y_cell.size(),
                  "warm_start_from_csv: bad objective '" + y_cell + "'");
      tuner.observe(std::move(config), y);
    } else {
      // Failed rows carry no usable objective ("nan"); replay the verdict.
      tuner.observe_failure(std::move(config), status);
    }
    ++replayed;
  }
  return replayed;
}

std::size_t warm_start_from_csv(const std::string& path,
                                const space::ParameterSpace& space,
                                Tuner& tuner) {
  std::ifstream in(path);
  HPB_REQUIRE(in.good(), "warm_start_from_csv: cannot open '" + path + "'");
  return warm_start_from_csv(in, space, tuner);
}

}  // namespace hpb::core
