#include "core/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

#if defined(HPB_SIMD_AVX2)
#include <immintrin.h>
#endif
#if defined(HPB_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace hpb::core {
namespace {

/// Scalar reference kernel. Every vector tier below reproduces exactly
/// this per-candidate float-op sequence — two accumulators added in
/// parameter order, one subtraction — so their outputs are bitwise-equal.
void score_block_scalar(const double* log_good, const double* log_bad,
                        const std::size_t* offsets,
                        const std::uint32_t* const* cols,
                        std::size_t num_params, std::size_t begin,
                        std::size_t end, double* out) {
  for (std::size_t j = begin; j < end; ++j) {
    double lg = 0.0;
    double lb = 0.0;
    for (std::size_t i = 0; i < num_params; ++i) {
      const std::size_t at = offsets[i] + cols[i][j];
      lg += log_good[at];
      lb += log_bad[at];
    }
    out[j - begin] = lg - lb;
  }
}

#if defined(HPB_SIMD_AVX2)
/// 4 candidates per iteration: one 128-bit load of 4 uint32 indices per
/// parameter feeds two vgatherdpd gathers (good and bad tables). Each
/// lane's accumulation order is the scalar order, so lanes are
/// bitwise-identical to scalar; the tail runs the scalar kernel.
__attribute__((target("avx2")))
void score_block_avx2(const double* log_good, const double* log_bad,
                      const std::size_t* offsets,
                      const std::uint32_t* const* cols, std::size_t num_params,
                      std::size_t begin, std::size_t end, double* out) {
  std::size_t j = begin;
  for (; j + 4 <= end; j += 4) {
    __m256d lg = _mm256_setzero_pd();
    __m256d lb = _mm256_setzero_pd();
    for (std::size_t i = 0; i < num_params; ++i) {
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cols[i] + j));
      const double* good_base = log_good + offsets[i];
      const double* bad_base = log_bad + offsets[i];
      lg = _mm256_add_pd(lg, _mm256_i32gather_pd(good_base, idx, 8));
      lb = _mm256_add_pd(lb, _mm256_i32gather_pd(bad_base, idx, 8));
    }
    _mm256_storeu_pd(out + (j - begin), _mm256_sub_pd(lg, lb));
  }
  if (j < end) {
    score_block_scalar(log_good, log_bad, offsets, cols, num_params, j, end,
                       out + (j - begin));
  }
}
#endif  // HPB_SIMD_AVX2

#if defined(HPB_SIMD_NEON)
/// 2 candidates per iteration. NEON has no gather, so table entries are
/// loaded per lane and packed; the win over scalar is the paired adds and
/// the halved loop overhead. Lane order equals scalar order.
void score_block_neon(const double* log_good, const double* log_bad,
                      const std::size_t* offsets,
                      const std::uint32_t* const* cols, std::size_t num_params,
                      std::size_t begin, std::size_t end, double* out) {
  std::size_t j = begin;
  for (; j + 2 <= end; j += 2) {
    float64x2_t lg = vdupq_n_f64(0.0);
    float64x2_t lb = vdupq_n_f64(0.0);
    for (std::size_t i = 0; i < num_params; ++i) {
      const std::size_t a0 = offsets[i] + cols[i][j];
      const std::size_t a1 = offsets[i] + cols[i][j + 1];
      float64x2_t g = vld1q_dup_f64(log_good + a0);
      g = vld1q_lane_f64(log_good + a1, g, 1);
      float64x2_t b = vld1q_dup_f64(log_bad + a0);
      b = vld1q_lane_f64(log_bad + a1, b, 1);
      lg = vaddq_f64(lg, g);
      lb = vaddq_f64(lb, b);
    }
    vst1q_f64(out + (j - begin), vsubq_f64(lg, lb));
  }
  if (j < end) {
    score_block_scalar(log_good, log_bad, offsets, cols, num_params, j, end,
                       out + (j - begin));
  }
}
#endif  // HPB_SIMD_NEON

/// HPB_SIMD parse + availability check; strict like every other HPB_ env.
SimdTier resolve_active_tier() {
  const char* env = std::getenv("HPB_SIMD");
  if (env == nullptr || *env == '\0') {
    return detected_simd_tier();
  }
  const std::string value(env);
  SimdTier tier = SimdTier::kScalar;
  if (value == "off") {
    tier = SimdTier::kScalar;
  } else if (value == "avx2") {
    tier = SimdTier::kAvx2;
  } else if (value == "neon") {
    tier = SimdTier::kNeon;
  } else {
    HPB_REQUIRE(false, "HPB_SIMD must be off, avx2, or neon; got '" + value +
                           "'");
  }
  HPB_REQUIRE(simd_tier_available(tier),
              "HPB_SIMD=" + value +
                  " requests a SIMD tier this build or CPU cannot run "
                  "(detected tier: " +
                  std::string(simd_tier_name(detected_simd_tier())) + ")");
  return tier;
}

/// Cached HPB_SIMD decision; -1 = not resolved yet. Resolution is
/// idempotent, so a first-use race at worst resolves twice.
std::atomic<int> g_active_tier{-1};

}  // namespace

std::string_view simd_tier_name(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kScalar:
      break;
  }
  return "scalar";
}

bool simd_tier_available(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
#if defined(HPB_SIMD_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdTier::kNeon:
#if defined(HPB_SIMD_NEON)
      return true;  // baseline on every aarch64 CPU
#else
      return false;
#endif
  }
  return false;
}

SimdTier detected_simd_tier() noexcept {
  if (simd_tier_available(SimdTier::kAvx2)) {
    return SimdTier::kAvx2;
  }
  if (simd_tier_available(SimdTier::kNeon)) {
    return SimdTier::kNeon;
  }
  return SimdTier::kScalar;
}

SimdTier active_simd_tier() {
  const int cached = g_active_tier.load(std::memory_order_acquire);
  if (cached >= 0) {
    return static_cast<SimdTier>(cached);
  }
  const SimdTier tier = resolve_active_tier();
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
  return tier;
}

void refresh_simd_tier() {
  g_active_tier.store(-1, std::memory_order_release);
}

void score_block(SimdTier tier, const double* log_good, const double* log_bad,
                 const std::size_t* offsets, const std::uint32_t* const* cols,
                 std::size_t num_params, std::size_t begin, std::size_t end,
                 double* out) {
  if (begin >= end) {
    return;
  }
  switch (tier) {
#if defined(HPB_SIMD_AVX2)
    case SimdTier::kAvx2:
      score_block_avx2(log_good, log_bad, offsets, cols, num_params, begin,
                       end, out);
      return;
#endif
#if defined(HPB_SIMD_NEON)
    case SimdTier::kNeon:
      score_block_neon(log_good, log_bad, offsets, cols, num_params, begin,
                       end, out);
      return;
#endif
    default:
      break;
  }
  score_block_scalar(log_good, log_bad, offsets, cols, num_params, begin, end,
                     out);
}

}  // namespace hpb::core
