// FactorizedDensity: the per-parameter product density of eq. 7–8.
//
// Estimates p(x) = Π_i p_xi(x_i) from a set of configurations: smoothed
// histograms over level indices for discrete parameters (§III-B1), Gaussian
// KDE for continuous parameters (§III-B2). Supports pointwise log-density
// (the Ranking strategy scores log pg − log pb), independent per-dimension
// sampling (the Proposal strategy), and prior mixing for transfer learning
// (eq. 9–10).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "space/parameter_space.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"

namespace hpb::core {

struct DensityConfig {
  /// Laplace pseudo-count for discrete histograms.
  double histogram_smoothing = 1.0;
  /// Fixed KDE bandwidth for continuous parameters; <= 0 selects Silverman.
  double kde_bandwidth = 0.0;
  /// Grid resolution used when discretizing a KDE for JS-divergence
  /// importance analysis.
  std::size_t importance_bins = 32;
};

class FactorizedDensity {
 public:
  /// Estimate densities from the given configurations (all must belong to
  /// `space`). The configuration list may be empty: discrete marginals then
  /// fall back to uniform (pure smoothing) and continuous ones to uniform
  /// over their range.
  FactorizedDensity(space::SpacePtr space,
                    std::span<const space::Configuration> configs,
                    const DensityConfig& config = {});

  /// log Π_i p_xi(x_i) at configuration c.
  [[nodiscard]] double log_density(const space::Configuration& c) const;

  /// Density (not log) at c.
  [[nodiscard]] double density(const space::Configuration& c) const;

  /// Draw one configuration by sampling each dimension independently
  /// (§III-D Proposal strategy). Constraints of the space are NOT applied
  /// here; callers reject invalid draws.
  [[nodiscard]] space::Configuration sample(Rng& rng) const;

  /// Mix a prior density into this one with weight w (eq. 9–10):
  /// p_i ← w · prior_i + p_i, dimension by dimension.
  void mix_in(const FactorizedDensity& prior, double weight);

  /// Marginal of parameter i as a normalized probability vector: level
  /// probabilities for discrete parameters, a binned/normalized KDE for
  /// continuous ones (importance_bins cells). Used by the JS-divergence
  /// importance analysis (§VI).
  [[nodiscard]] std::vector<double> marginal_probabilities(
      std::size_t param) const;

  [[nodiscard]] const space::ParameterSpace& space() const { return *space_; }
  [[nodiscard]] std::size_t num_params() const { return marginals_.size(); }

  /// Access the underlying discrete histogram (discrete parameters only).
  [[nodiscard]] const stats::HistogramDensity& histogram(std::size_t param) const;

  /// Access the underlying KDE (continuous parameters only). Acquisition
  /// score tables read per-marginal densities through this.
  [[nodiscard]] const stats::KernelDensity& kernel(std::size_t param) const;

  /// KDE bandwidth of parameter i (fixed or Silverman-selected), or
  /// nullopt for discrete parameters. Exported as a tuner internal by the
  /// observability layer.
  [[nodiscard]] std::optional<double> kde_bandwidth(std::size_t param) const;

 private:
  using Marginal = std::variant<stats::HistogramDensity, stats::KernelDensity>;

  space::SpacePtr space_;
  DensityConfig config_;
  std::vector<Marginal> marginals_;
};

}  // namespace hpb::core
