#include "core/session_manager.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/fsio.hpp"

namespace hpb::core {

namespace {

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

SessionSpec spec_from_header(const std::string& name,
                             const JournalHeader& header) {
  SessionSpec spec;
  spec.name = name;
  spec.method = header.method;
  spec.dataset = header.dataset;
  spec.seed = header.seed;
  spec.batch_size = header.batch_size;
  spec.stop.max_evaluations = header.max_evaluations;
  spec.stop.stagnation_patience = header.stagnation_patience;
  spec.stop.target_value = header.target_value;
  spec.mode = header.async ? SessionMode::kAsync : SessionMode::kSync;
  return spec;
}

JournalHeader header_from_spec(const SessionSpec& spec,
                               std::size_t num_params) {
  JournalHeader header;
  header.method = spec.method;
  header.dataset = spec.dataset;
  header.seed = spec.seed;
  header.batch_size = spec.batch_size;
  header.num_params = num_params;
  header.max_evaluations = spec.stop.max_evaluations;
  header.stagnation_patience = spec.stop.stagnation_patience;
  header.target_value = spec.stop.target_value;
  header.async = spec.mode == SessionMode::kAsync;
  return header;
}

}  // namespace

void validate_session_name(const std::string& name) {
  HPB_REQUIRE(!name.empty() && name.size() <= 128,
              "session name must be 1..128 characters");
  HPB_REQUIRE(name != "." && name != "..",
              "session name must not be '.' or '..'");
  for (char c : name) {
    HPB_REQUIRE(name_char_ok(c),
                "session name '" + name +
                    "' contains invalid characters (allowed: letters, "
                    "digits, '.', '_', '-')");
  }
}

/// Pins an acquired entry for the duration of one verb and releases it —
/// stamping the LRU tick and running capacity eviction — on every exit
/// path, including a throwing verb.
class SessionManager::Lease {
 public:
  Lease(SessionManager& manager, std::shared_ptr<Entry> entry)
      : manager_(manager), entry_(std::move(entry)), lock_(entry_->op) {}
  ~Lease() {
    lock_.unlock();
    manager_.release(manager_.stripe_for(entry_->spec.name), entry_);
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;

  [[nodiscard]] Entry& entry() noexcept { return *entry_; }
  [[nodiscard]] Session& session() noexcept { return *entry_->session; }

 private:
  SessionManager& manager_;
  std::shared_ptr<Entry> entry_;
  std::unique_lock<std::mutex> lock_;
};

SessionManager::SessionManager(SessionFactory factory,
                               SessionManagerConfig config)
    : factory_(std::move(factory)), config_(std::move(config)) {
  HPB_REQUIRE(factory_ != nullptr,
              "SessionManager: a session factory is required");
  HPB_REQUIRE(config_.num_stripes > 0,
              "SessionManager: num_stripes must be positive");
  stripes_.reserve(config_.num_stripes);
  for (std::size_t i = 0; i < config_.num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  if (config_.max_resident > 0) {
    stripe_capacity_ =
        std::max<std::size_t>(1, config_.max_resident / config_.num_stripes);
  }
  if (!config_.journal_dir.empty()) {
    fs::ensure_dir(config_.journal_dir);
    if (config_.recover_on_start) {
      recover();
    }
  }
}

// Cold-start recovery: a restarted daemon's registry is empty, but the
// journals on disk *are* the sessions. Scanning up front (instead of
// waiting for a client to touch each name) quarantines corrupt journals
// before they can fail a verb, and lets `health` report how much state
// survived the restart.
void SessionManager::recover() {
  DIR* dir = ::opendir(config_.journal_dir.c_str());
  HPB_REQUIRE(dir != nullptr, "SessionManager: cannot scan journal dir '" +
                                  config_.journal_dir +
                                  "': " + std::strerror(errno));
  std::vector<std::string> names;
  for (const dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    const std::string file = entry->d_name;
    constexpr std::string_view kSuffix = ".hpbj";
    if (file.size() <= kSuffix.size() ||
        file.compare(file.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;  // quarantined (.corrupt), tmp, or foreign files
    }
    names.push_back(file.substr(0, file.size() - kSuffix.size()));
  }
  ::closedir(dir);
  // Deterministic report order regardless of directory iteration order.
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string path = journal_path(name);
    try {
      validate_session_name(name);
      const JournalContents contents = read_journal(path);
      if (contents.finalized) {
        recovery_.finished.push_back(name);
      } else {
        // Adoption is lazy: the journal stays the durable session and the
        // first verb naming it resumes it (resume_from_journal), exactly
        // like an LRU-evicted session. Nothing to build here.
        recovery_.adopted.push_back(name);
        emit_span("session.adopt", name);
      }
    } catch (const Error&) {
      quarantine_journal(name, path);
      recovery_.quarantined.push_back(name);
    }
  }
  if (config_.recorder.metrics != nullptr) {
    config_.recorder.metrics->counter("manager.recovered_adopted")
        .add(recovery_.adopted.size());
    config_.recorder.metrics->counter("manager.recovered_quarantined")
        .add(recovery_.quarantined.size());
  }
}

std::string SessionManager::quarantine_journal(const std::string& name,
                                               const std::string& path) {
  const std::string quarantine = path + ".corrupt";
  // rename(2) replaces an older quarantine of the same name — the newest
  // corpse is the one worth inspecting, and the session name must become
  // usable again either way.
  if (::rename(path.c_str(), quarantine.c_str()) != 0) {
    throw IoError("quarantine rename '" + path + "' -> '" + quarantine +
                      "': " + std::strerror(errno),
                  errno);
  }
  ++quarantined_;
  count("manager.quarantined");
  emit_span("session.quarantine", name);
  return quarantine;
}

// Resident sessions are dropped without finalizing their journals —
// exactly the crash contract: an unfinalized journal is what the next
// process's resume expects to find.
SessionManager::~SessionManager() = default;

SessionManager::Stripe& SessionManager::stripe_for(const std::string& name) {
  return *stripes_[std::hash<std::string>{}(name) % stripes_.size()];
}

const SessionManager::Stripe& SessionManager::stripe_for(
    const std::string& name) const {
  return *stripes_[std::hash<std::string>{}(name) % stripes_.size()];
}

std::string SessionManager::journal_path(const std::string& name) const {
  if (config_.journal_dir.empty()) {
    return {};
  }
  return config_.journal_dir + "/" + name + ".hpbj";
}

std::shared_ptr<SessionManager::Entry> SessionManager::make_entry(
    const SessionSpec& spec, SessionBackend backend,
    std::unique_ptr<JournalWriter> journal) {
  auto entry = std::make_shared<Entry>();
  entry->spec = spec;
  entry->metrics = std::make_unique<obs::MetricsRegistry>();
  SessionConfig sc;
  sc.batch_size = spec.batch_size;
  sc.stop = spec.stop;
  sc.mode = spec.mode;
  sc.max_pending = config_.max_pending_per_session;
  // Each session meters into its own registry (engine.* names never mix
  // across sessions); spans and the clock are shared manager-wide.
  sc.recorder = {.trace = config_.recorder.trace,
                 .metrics = entry->metrics.get(),
                 .clock = config_.recorder.clock};
  entry->session = std::make_unique<Session>(
      std::move(backend.tuner), std::move(sc), std::move(journal));
  entry->session->reserve(spec.stop.max_evaluations);
  entry->tick = ++tick_;
  return entry;
}

void SessionManager::emit_span(std::string_view span_name,
                               const std::string& session_name) {
  const obs::Recorder& rec = config_.recorder;
  if (!rec.tracing()) {
    return;
  }
  const std::uint64_t ts = rec.now_ns();
  const obs::TraceAttr attrs[] = {
      obs::TraceAttr::str("session", session_name)};
  rec.trace->emit({.name = span_name,
                   .id = rec.trace->next_id(),
                   .parent = 0,
                   .start_ns = ts,
                   .end_ns = ts,
                   .attrs = attrs});
}

void SessionManager::count(const char* counter) {
  if (config_.recorder.metrics != nullptr) {
    config_.recorder.metrics->counter(counter).add(1);
  }
}

void SessionManager::create(const SessionSpec& spec) {
  validate_session_name(spec.name);
  HPB_REQUIRE(spec.batch_size > 0,
              "SessionManager::create: batch_size must be positive");
  HPB_REQUIRE(spec.stop.max_evaluations > 0,
              "SessionManager::create: max_evaluations must be positive");
  Stripe& stripe = stripe_for(spec.name);
  std::lock_guard<std::mutex> lock(stripe.m);
  HPB_REQUIRE(stripe.map.find(spec.name) == stripe.map.end(),
              "session '" + spec.name + "' already exists");
  // Create-vs-adopt: a name whose journal survives on disk is an existing
  // (cold) session, not a free name — adopt it by touching it with
  // suggest/observe/status, or pick a new name. create() never silently
  // truncates a journal a crashed daemon left behind.
  const std::string path = journal_path(spec.name);
  HPB_REQUIRE(path.empty() || !file_exists(path),
              "session '" + spec.name +
                  "' already exists on disk (cold); touch it with "
                  "suggest/observe/status to adopt and resume it, or choose "
                  "another name (journal: " + path + ")");
  SessionBackend backend = factory_(spec);
  HPB_REQUIRE(backend.tuner != nullptr && backend.space != nullptr,
              "SessionManager: factory returned an incomplete backend");
  std::unique_ptr<JournalWriter> journal;
  if (!path.empty()) {
    journal = std::make_unique<JournalWriter>(JournalWriter::create(
        path, header_from_spec(spec, backend.space->num_params())));
  }
  stripe.map.emplace(spec.name,
                     make_entry(spec, std::move(backend), std::move(journal)));
  ++created_;
  count("manager.created");
  emit_span("session.create", spec.name);
  evict_over_capacity(stripe);
}

std::shared_ptr<SessionManager::Entry> SessionManager::resume_from_journal(
    Stripe& stripe, const std::string& name) {
  const std::string path = journal_path(name);
  HPB_REQUIRE(!path.empty() && file_exists(path),
              "unknown session '" + name + "'");
  JournalContents contents;
  try {
    contents = read_journal(path);
  } catch (const Error& e) {
    // The journal is unreadable (corrupt header / I/O error): move it
    // aside so the name recovers, keep the evidence, fail this one verb
    // with a structured story instead of crashing the daemon.
    const std::string quarantine = quarantine_journal(name, path);
    throw Error("session '" + name + "' had a corrupt journal (" + e.what() +
                "); it was quarantined to " + quarantine +
                " and the session no longer exists");
  }
  HPB_REQUIRE(!contents.finalized,
              "session '" + name + "' is closed (" + contents.finish_reason +
                  ")");
  const SessionSpec spec = spec_from_header(name, contents.header);
  SessionBackend backend = factory_(spec);
  HPB_REQUIRE(backend.tuner != nullptr && backend.space != nullptr,
              "SessionManager: factory returned an incomplete backend");
  // Deterministic tuners rebuild their exact state from their journaled
  // suggest/observe sequence; the resumed session's next suggestion is
  // bitwise-identical to the one the evicted instance would have made.
  std::shared_ptr<Entry> entry;
  if (contents.header.async) {
    AsyncReplayResult replayed =
        replay_journal_async(*backend.tuner, *backend.space, contents);
    auto journal =
        std::make_unique<JournalWriter>(JournalWriter::append(path, contents));
    entry = make_entry(spec, std::move(backend), std::move(journal));
    entry->session->replay_async(replayed);
  } else {
    std::vector<Observation> replayed =
        replay_journal(*backend.tuner, *backend.space, contents);
    auto journal =
        std::make_unique<JournalWriter>(JournalWriter::append(path, contents));
    entry = make_entry(spec, std::move(backend), std::move(journal));
    entry->session->replay(replayed);
  }
  stripe.map.emplace(name, entry);
  ++resumed_;
  count("manager.resumed");
  emit_span("session.resume", name);
  return entry;
}

std::shared_ptr<SessionManager::Entry> SessionManager::acquire(
    const std::string& name) {
  validate_session_name(name);
  Stripe& stripe = stripe_for(name);
  std::lock_guard<std::mutex> lock(stripe.m);
  std::shared_ptr<Entry> entry;
  const auto it = stripe.map.find(name);
  if (it != stripe.map.end()) {
    entry = it->second;
  } else {
    entry = resume_from_journal(stripe, name);
  }
  ++entry->in_use;
  entry->tick = ++tick_;
  return entry;
}

void SessionManager::release(Stripe& stripe,
                             const std::shared_ptr<Entry>& entry) {
  std::lock_guard<std::mutex> lock(stripe.m);
  --entry->in_use;
  entry->tick = ++tick_;
  evict_over_capacity(stripe);
}

void SessionManager::evict_over_capacity(Stripe& stripe) {
  if (stripe_capacity_ == 0) {
    return;
  }
  while (stripe.map.size() > stripe_capacity_) {
    // Idle entries are safe to inspect under the stripe mutex: every verb
    // bumps in_use under this mutex before touching the session, so
    // in_use == 0 here happens-after any prior verb completed.
    auto victim = stripe.map.end();
    for (auto it = stripe.map.begin(); it != stripe.map.end(); ++it) {
      Entry& e = *it->second;
      // A degraded session is pinned hot: evicting it would let the next
      // verb "resume" from its journal and mask the disk fault behind a
      // half-replayed session. It stays resident, read-only, and visible
      // in health until an operator restarts with a healthy disk.
      if (e.in_use > 0 || !e.session->journaled() ||
          e.session->round_in_flight() || e.session->degraded()) {
        continue;
      }
      if (victim == stripe.map.end() || e.tick < victim->second->tick) {
        victim = it;
      }
    }
    if (victim == stripe.map.end()) {
      return;  // everything is busy, journal-less, or mid-round: stay hot
    }
    const std::string name = victim->first;
    stripe.map.erase(victim);
    ++evicted_;
    count("manager.evicted");
    emit_span("session.evict", name);
  }
}

std::vector<space::Configuration> SessionManager::suggest(
    const std::string& name, std::size_t k) {
  Lease lease(*this, acquire(name));
  if (k == 0) {
    k = lease.entry().spec.batch_size;
  }
  return lease.session().suggest(k);
}

SessionStatus SessionManager::observe(const std::string& name,
                                      std::vector<Observation> observations) {
  Lease lease(*this, acquire(name));
  lease.session().observe(std::move(observations));
  return lease.session().status();
}

std::vector<AsyncSuggestion> SessionManager::suggest_async(
    const std::string& name, std::size_t k) {
  Lease lease(*this, acquire(name));
  if (k == 0) {
    k = lease.entry().spec.batch_size;
  }
  return lease.session().suggest_async(k);
}

SessionManager::SuggestOutcome SessionManager::suggest_any(
    const std::string& name, std::size_t k) {
  Lease lease(*this, acquire(name));
  if (k == 0) {
    k = lease.entry().spec.batch_size;
  }
  SuggestOutcome out;
  if (lease.session().config().mode == SessionMode::kAsync) {
    out.async = true;
    out.suggestions = lease.session().suggest_async(k);
  } else {
    out.configs = lease.session().suggest(k);
  }
  return out;
}

SessionStatus SessionManager::observe_async(
    const std::string& name, std::span<const AsyncResult> results) {
  Lease lease(*this, acquire(name));
  lease.session().observe_async(results);
  return lease.session().status();
}

std::size_t SessionManager::cancel(const std::string& name,
                                   std::span<const std::uint64_t> tokens) {
  Lease lease(*this, acquire(name));
  if (lease.session().config().mode == SessionMode::kAsync) {
    return lease.session().cancel_async(tokens);
  }
  HPB_REQUIRE(tokens.empty(),
              "SessionManager::cancel: synchronous sessions have no tokens; "
              "cancel releases the whole in-flight round");
  return lease.session().cancel_round();
}

SessionStatus SessionManager::status(const std::string& name) {
  Lease lease(*this, acquire(name));
  return lease.session().status();
}

void SessionManager::close(const std::string& name) {
  {
    Lease lease(*this, acquire(name));
    lease.session().close();  // throws with a round in flight
  }
  Stripe& stripe = stripe_for(name);
  std::lock_guard<std::mutex> lock(stripe.m);
  stripe.map.erase(name);
  ++closed_;
  count("manager.closed");
  emit_span("session.close", name);
}

bool SessionManager::evict(const std::string& name) {
  validate_session_name(name);
  Stripe& stripe = stripe_for(name);
  std::lock_guard<std::mutex> lock(stripe.m);
  const auto it = stripe.map.find(name);
  if (it == stripe.map.end()) {
    return false;
  }
  Entry& e = *it->second;
  if (e.in_use > 0 || !e.session->journaled() ||
      e.session->round_in_flight() || e.session->degraded()) {
    return false;
  }
  stripe.map.erase(it);
  ++evicted_;
  count("manager.evicted");
  emit_span("session.evict", name);
  return true;
}

std::string SessionManager::session_metrics_json(const std::string& name) {
  Lease lease(*this, acquire(name));
  return lease.entry().metrics->to_json();
}

ManagerHealth SessionManager::health() const {
  ManagerHealth h;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->m);
    h.resident += stripe->map.size();
    for (const auto& [name, entry] : stripe->map) {
      if (entry->session->degraded()) {
        ++h.degraded;
      }
    }
  }
  h.created = created_.load(std::memory_order_relaxed);
  h.evicted = evicted_.load(std::memory_order_relaxed);
  h.resumed = resumed_.load(std::memory_order_relaxed);
  h.closed = closed_.load(std::memory_order_relaxed);
  h.adopted = recovery_.adopted.size();
  h.quarantined = quarantined_.load(std::memory_order_relaxed);
  return h;
}

std::size_t SessionManager::degraded_count() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->m);
    for (const auto& [name, entry] : stripe->map) {
      if (entry->session->degraded()) {
        ++n;
      }
    }
  }
  return n;
}

std::size_t SessionManager::checkpoint_all() {
  std::size_t n = 0;
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    // Pin every resident entry under the stripe mutex, then checkpoint
    // outside it (op-mutex after stripe-mutex would invert the Lease
    // ordering, which releases the op mutex before re-taking the stripe).
    std::vector<std::shared_ptr<Entry>> entries;
    {
      std::lock_guard<std::mutex> lock(stripe.m);
      entries.reserve(stripe.map.size());
      for (auto& [name, entry] : stripe.map) {
        ++entry->in_use;
        entries.push_back(entry);
      }
    }
    for (auto& entry : entries) {
      {
        std::lock_guard<std::mutex> op(entry->op);
        (void)entry->session->checkpoint();
      }
      emit_span("manager.checkpoint", entry->spec.name);
      ++n;
      release(stripe, entry);
    }
  }
  count("manager.checkpoint_all");
  return n;
}

std::size_t SessionManager::resident_count() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->m);
    n += stripe->map.size();
  }
  return n;
}

std::uint64_t SessionManager::created_count() const noexcept {
  return created_.load(std::memory_order_relaxed);
}
std::uint64_t SessionManager::evicted_count() const noexcept {
  return evicted_.load(std::memory_order_relaxed);
}
std::uint64_t SessionManager::resumed_count() const noexcept {
  return resumed_.load(std::memory_order_relaxed);
}
std::uint64_t SessionManager::closed_count() const noexcept {
  return closed_.load(std::memory_order_relaxed);
}

}  // namespace hpb::core
