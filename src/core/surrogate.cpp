#include "core/surrogate.hpp"

#include "stats/divergence.hpp"
#include "stats/quantile.hpp"

namespace hpb::core {
namespace {

/// Gather the configurations at the given history indices.
std::vector<space::Configuration> gather(const History& history,
                                         std::span<const std::size_t> idx) {
  std::vector<space::Configuration> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) {
    out.push_back(history[i].config);
  }
  return out;
}

}  // namespace

TransferPrior make_transfer_prior(space::SpacePtr space,
                                  std::span<const space::Configuration> configs,
                                  std::span<const double> values, double alpha,
                                  const DensityConfig& density_config) {
  HPB_REQUIRE(space != nullptr, "make_transfer_prior: null space");
  HPB_REQUIRE(configs.size() == values.size(),
              "make_transfer_prior: size mismatch");
  HPB_REQUIRE(configs.size() >= 2, "make_transfer_prior: need >= 2 samples");
  // Rank-based split, shared with History::split via stats::rank_split, so
  // the prior partitions tied values exactly like a surrogate fit would
  // (a value-threshold split used to drop every tie into the bad group).
  // Rank splitting also guarantees both groups are non-empty for n >= 2.
  const stats::RankSplit split = stats::rank_split(values, alpha);
  auto pick = [&configs](std::span<const std::size_t> idx) {
    std::vector<space::Configuration> out;
    out.reserve(idx.size());
    for (std::size_t i : idx) {
      out.push_back(configs[i]);
    }
    return out;
  };
  return TransferPrior{
      FactorizedDensity(space, pick(split.good), density_config),
      FactorizedDensity(space, pick(split.bad), density_config)};
}

TpeSurrogate::TpeSurrogate(space::SpacePtr space, const History& history,
                           double alpha, const DensityConfig& density_config,
                           const TransferPrior* prior, double prior_weight,
                           std::span<const space::Configuration> failed)
    : good_(space, {}, density_config), bad_(space, {}, density_config) {
  const HistorySplit split = history.split(alpha);
  threshold_ = split.threshold;
  const auto good_configs = gather(history, split.good);
  auto bad_configs = gather(history, split.bad);
  // Failed evaluations are "worse than any value": they always rank bad.
  bad_configs.insert(bad_configs.end(), failed.begin(), failed.end());
  num_good_ = good_configs.size();
  num_bad_ = bad_configs.size();
  good_ = FactorizedDensity(space, good_configs, density_config);
  bad_ = FactorizedDensity(space, bad_configs, density_config);
  if (prior != nullptr && prior_weight > 0.0) {
    good_.mix_in(prior->good, prior_weight);
    bad_.mix_in(prior->bad, prior_weight);
  }
}

double TpeSurrogate::acquisition(const space::Configuration& c) const {
  return good_.log_density(c) - bad_.log_density(c);
}

double TpeSurrogate::mean_kde_bandwidth() const {
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < good_.num_params(); ++i) {
    if (const auto bw = good_.kde_bandwidth(i)) {
      total += *bw;
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

std::vector<double> TpeSurrogate::parameter_importance() const {
  std::vector<double> importance(good_.num_params(), 0.0);
  for (std::size_t i = 0; i < importance.size(); ++i) {
    importance[i] = stats::js_divergence(good_.marginal_probabilities(i),
                                         bad_.marginal_probabilities(i));
  }
  return importance;
}

}  // namespace hpb::core
