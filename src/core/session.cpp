#include "core/session.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace hpb::core {

namespace {

void validate_config(const SessionConfig& config) {
  HPB_REQUIRE(config.batch_size > 0, "Session: batch_size must be positive");
  HPB_REQUIRE(config.eval_deadline.count() >= 0,
              "Session: eval_deadline must be >= 0");
  HPB_REQUIRE(config.stop.min_relative_improvement >= 0.0,
              "Session: min_relative_improvement must be >= 0");
}

}  // namespace

Session::Session(Tuner& tuner, SessionConfig config, JournalWriter* journal)
    : config_(std::move(config)), tuner_(&tuner), journal_(journal) {
  validate_config(config_);
}

Session::Session(std::unique_ptr<Tuner> tuner, SessionConfig config,
                 std::unique_ptr<JournalWriter> journal)
    : config_(std::move(config)),
      tuner_(tuner.get()),
      journal_(journal.get()),
      owned_tuner_(std::move(tuner)),
      owned_journal_(std::move(journal)) {
  HPB_REQUIRE(tuner_ != nullptr, "Session: tuner must not be null");
  validate_config(config_);
  // An owned tuner lives exactly as long as the session, so the recorder
  // pointer (into config_) can never dangle for it.
  if (config_.recorder.active()) {
    tuner_->set_recorder(&config_.recorder);
  }
}

void Session::require_open(const char* verb) const {
  HPB_REQUIRE(!finished_, std::string("Session::") + verb +
                              ": session is closed");
  // Degraded = the journal can no longer be appended (disk fault), so any
  // further mutation would silently diverge from the durable state. The
  // session stays readable (status/checkpoint) and resumable after a
  // restart; only mutations are refused.
  HPB_REQUIRE(!degraded_,
              std::string("Session::") + verb +
                  ": session is degraded (journal append failed: " +
                  degraded_reason_ +
                  "); status and checkpoint remain available, restart the "
                  "daemon with a healthy disk to resume from the journal");
}

template <typename F>
void Session::journal_op(const char* what, F&& op) {
  try {
    op();
  } catch (const IoError& e) {
    degraded_ = true;
    degraded_reason_ = e.what();
    throw Error(std::string("session journal ") + what + " failed: " +
                e.what() + "; the session is now degraded (read-only) — "
                "its durable journal prefix is still valid for resume");
  }
}

void Session::require_mode(SessionMode mode, const char* verb) const {
  HPB_REQUIRE(config_.mode == mode,
              std::string("Session::") + verb +
                  (mode == SessionMode::kAsync
                       ? ": this is a synchronous session (use the round "
                         "verbs suggest/observe)"
                       : ": this is an asynchronous session (use the token "
                         "verbs suggest_async/observe_async/cancel_async)"));
}

void Session::reserve(std::size_t n) {
  result_.history.reserve(n);
  result_.best_so_far.reserve(n);
}

std::vector<space::Configuration> Session::suggest(std::size_t k) {
  require_open("suggest");
  require_mode(SessionMode::kSync, "suggest");
  HPB_REQUIRE(k > 0, "Session::suggest: k must be positive");
  HPB_REQUIRE(!round_in_flight_,
              "Session::suggest: a round of " +
                  std::to_string(pending_.size()) +
                  " suggestions is already in flight; observe it first");
  const obs::Recorder& rec = config_.recorder;
  const bool tracing = rec.tracing();
  // The round span id is allocated before any child span so children can
  // point at it; the span record itself is emitted from observe(), when
  // its duration is known.
  round_id_ = 0;
  round_start_ = 0;
  if (tracing) {
    round_id_ = rec.trace->next_id();
    round_start_ = rec.now_ns();
  }
  const std::uint64_t suggest_start = tracing ? rec.now_ns() : 0;
  std::vector<space::Configuration> batch = tuner_->suggest_batch(k);
  HPB_REQUIRE(!batch.empty(), "Session: tuner returned an empty batch");
  HPB_REQUIRE(batch.size() <= k,
              "Session: tuner returned more configurations than asked");
  if (tracing) {
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::uint("requested", k),
        obs::TraceAttr::uint("actual", batch.size())};
    rec.trace->emit({.name = "suggest",
                     .id = rec.trace->next_id(),
                     .parent = round_id_,
                     .start_ns = suggest_start,
                     .end_ns = rec.now_ns(),
                     .attrs = attrs});
  }
  // The round marker goes out before evaluation starts: a crash mid-round
  // leaves an incomplete round the reader drops and re-evaluates.
  if (journal_ != nullptr) {
    journal_op("begin_round",
               [&] { journal_->begin_round(k, batch.size()); });
  }
  pending_ = batch;
  round_requested_ = k;
  round_in_flight_ = true;
  return batch;
}

void Session::observe(std::vector<Observation> observations,
                      std::span<const EvalMeter> meters) {
  require_open("observe");
  require_mode(SessionMode::kSync, "observe");
  HPB_REQUIRE(round_in_flight_,
              "Session::observe: no round is in flight; call suggest first");
  HPB_REQUIRE(observations.size() == pending_.size(),
              "Session::observe: the in-flight round has " +
                  std::to_string(pending_.size()) + " suggestions but " +
                  std::to_string(observations.size()) +
                  " results were delivered");
  HPB_REQUIRE(meters.empty() || meters.size() == observations.size(),
              "Session::observe: meters must be absent or one per result");
  for (std::size_t i = 0; i < observations.size(); ++i) {
    HPB_REQUIRE(
        observations[i].config.values() == pending_[i].values(),
        "Session::observe: result " + std::to_string(i) +
            " does not match the suggested configuration (results must be "
            "delivered in suggestion order; was this configuration ever "
            "suggested?)");
    HPB_REQUIRE(!observations[i].ok() || std::isfinite(observations[i].y),
                "Session::observe: a successful observation must carry a "
                "finite value");
  }

  const obs::Recorder& rec = config_.recorder;
  const bool tracing = rec.tracing();
  // Evaluation spans and meters are reduced in suggestion order on the
  // caller's thread: trace files stay deterministic under a fake clock
  // even though the evaluations themselves may have run on pool workers.
  std::size_t failed = 0;
  std::uint64_t retries = 0;
  for (std::size_t i = 0; i < observations.size(); ++i) {
    if (!observations[i].ok()) {
      ++failed;
    }
    if (!meters.empty()) {
      retries += meters[i].attempts - 1;
    }
    // Evaluate spans describe *local* evaluations; a remote client that
    // evaluated elsewhere delivers no meters and gets no evaluate spans.
    if (tracing && !meters.empty()) {
      std::vector<obs::TraceAttr> attrs;
      attrs.reserve(4);
      attrs.push_back(obs::TraceAttr::uint("index", i));
      attrs.push_back(obs::TraceAttr::str(
          "status", tabular::status_name(observations[i].status)));
      if (observations[i].ok()) {
        attrs.push_back(obs::TraceAttr::num("value", observations[i].y));
      }
      attrs.push_back(obs::TraceAttr::uint("attempts", meters[i].attempts));
      rec.trace->emit({.name = "evaluate",
                       .id = rec.trace->next_id(),
                       .parent = round_id_,
                       .start_ns = meters[i].start_ns,
                       .end_ns = meters[i].end_ns,
                       .attrs = attrs});
    }
  }
  if (rec.metrics != nullptr) {
    rec.metrics->counter("engine.rounds").add(1);
    rec.metrics->counter("engine.evaluations").add(observations.size());
    rec.metrics->counter("engine.failures").add(failed);
    rec.metrics->counter("engine.eval_retries").add(retries);
    obs::Histogram& eval_ms = rec.metrics->histogram(
        "engine.eval_ms", obs::default_latency_buckets_ms());
    for (const EvalMeter& m : meters) {
      eval_ms.record(static_cast<double>(m.end_ns - m.start_ns) * 1e-6);
    }
  }
  // Records hit the disk before the tuner sees them: on-disk state always
  // leads in-memory state, so replay can reconstruct the tuner exactly.
  if (journal_ != nullptr) {
    for (std::size_t i = 0; i < observations.size(); ++i) {
      journal_op("append_observation",
                 [&] { journal_->append_observation(observations[i]); });
      if (tracing) {
        const std::uint64_t ts = rec.now_ns();
        const obs::TraceAttr attrs[] = {obs::TraceAttr::uint("index", i)};
        rec.trace->emit({.name = "journal.append",
                         .id = rec.trace->next_id(),
                         .parent = round_id_,
                         .start_ns = ts,
                         .end_ns = ts,
                         .attrs = attrs});
      }
    }
  }
  const std::uint64_t observe_start = tracing ? rec.now_ns() : 0;
  tuner_->observe_batch(observations);
  if (tracing) {
    rec.trace->emit({.name = "observe",
                     .id = rec.trace->next_id(),
                     .parent = round_id_,
                     .start_ns = observe_start,
                     .end_ns = rec.now_ns(),
                     .attrs = {}});
    const std::uint64_t round_end = rec.now_ns();
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::uint("round", round_index_),
        obs::TraceAttr::uint("requested", round_requested_),
        obs::TraceAttr::uint("actual", observations.size()),
        obs::TraceAttr::uint("failed", failed)};
    rec.trace->emit({.name = "round",
                     .id = round_id_,
                     .parent = 0,
                     .start_ns = round_start_,
                     .end_ns = round_end,
                     .attrs = attrs});
  }
  if (rec.metrics != nullptr && !meters.empty()) {
    // Round wall time: the traced span when available, else the envelope
    // of the evaluation meters (metrics-only runs make no round-level
    // clock reads).
    std::uint64_t start = meters.front().start_ns;
    std::uint64_t end = meters.front().end_ns;
    for (const EvalMeter& m : meters) {
      start = std::min(start, m.start_ns);
      end = std::max(end, m.end_ns);
    }
    if (tracing) {
      start = round_start_;
      end = rec.now_ns();
    }
    rec.metrics
        ->histogram("engine.round_ms", obs::default_latency_buckets_ms())
        .record(static_cast<double>(end - start) * 1e-6);
  }
  for (Observation& o : observations) {
    apply(std::move(o));
  }
  round_in_flight_ = false;
  pending_.clear();
  ++round_index_;
}

std::size_t Session::cancel_round() {
  require_open("cancel");
  require_mode(SessionMode::kSync, "cancel");
  HPB_REQUIRE(round_in_flight_,
              "Session::cancel: no round is in flight; nothing to cancel");
  // Marker first: once the abandon line is durable, a crash between here
  // and the tuner updates replays to the same released state.
  if (journal_ != nullptr) {
    journal_op("abandon_round", [&] { journal_->abandon_round(); });
  }
  const std::size_t released = pending_.size();
  for (const space::Configuration& c : pending_) {
    tuner_->abandon(c);
  }
  const obs::Recorder& rec = config_.recorder;
  if (rec.tracing()) {
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::uint("round", round_index_),
        obs::TraceAttr::uint("released", released)};
    rec.trace->emit({.name = "cancel_round",
                     .id = rec.trace->next_id(),
                     .parent = round_id_,
                     .start_ns = round_start_,
                     .end_ns = rec.now_ns(),
                     .attrs = attrs});
  }
  if (rec.metrics != nullptr) {
    rec.metrics->counter("engine.cancelled_rounds").add(1);
  }
  round_in_flight_ = false;
  pending_.clear();
  ++round_index_;
  return released;
}

std::vector<AsyncSuggestion> Session::suggest_async(std::size_t k) {
  require_open("suggest");
  require_mode(SessionMode::kAsync, "suggest_async");
  HPB_REQUIRE(k > 0, "Session::suggest_async: k must be positive");
  // Shed before any state changes: an unbounded outstanding set is how a
  // confused client (suggest in a loop, observe never) runs the daemon
  // out of memory and the TPE fit out of usefulness.
  if (config_.max_pending > 0 &&
      outstanding_.size() + k > config_.max_pending) {
    throw OverloadError(
        "Session::suggest_async: " + std::to_string(outstanding_.size()) +
        " tokens are already outstanding and " + std::to_string(k) +
        " more would exceed the per-session pending cap of " +
        std::to_string(config_.max_pending) +
        "; observe or cancel outstanding tokens first");
  }
  const obs::Recorder& rec = config_.recorder;
  const bool tracing = rec.tracing();
  const std::uint64_t start = tracing ? rec.now_ns() : 0;
  std::vector<space::Configuration> batch = tuner_->suggest_batch(k);
  HPB_REQUIRE(!batch.empty(), "Session: tuner returned an empty batch");
  HPB_REQUIRE(batch.size() <= k,
              "Session: tuner returned more configurations than asked");
  // Write-ahead: the ask line (tokens + configurations) is durable before
  // any token escapes to a client, so the journal's outstanding set always
  // covers every token a client could hold.
  if (journal_ != nullptr) {
    journal_op("begin_ask",
               [&] { journal_->begin_ask(k, next_token_, batch); });
  }
  std::vector<AsyncSuggestion> suggestions;
  suggestions.reserve(batch.size());
  for (space::Configuration& c : batch) {
    outstanding_.emplace(next_token_, c);
    suggestions.push_back({next_token_, std::move(c)});
    ++next_token_;
  }
  if (tracing) {
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::uint("requested", k),
        obs::TraceAttr::uint("actual", suggestions.size()),
        obs::TraceAttr::uint("first_token", suggestions.front().token),
        obs::TraceAttr::uint("outstanding", outstanding_.size())};
    rec.trace->emit({.name = "ask",
                     .id = rec.trace->next_id(),
                     .parent = 0,
                     .start_ns = start,
                     .end_ns = rec.now_ns(),
                     .attrs = attrs});
  }
  if (rec.metrics != nullptr) {
    rec.metrics->counter("engine.asks").add(1);
    rec.metrics->gauge("engine.outstanding")
        .set(static_cast<double>(outstanding_.size()));
  }
  ++round_index_;
  return suggestions;
}

void Session::observe_async(std::span<const AsyncResult> results) {
  require_open("observe");
  require_mode(SessionMode::kAsync, "observe_async");
  HPB_REQUIRE(!results.empty(),
              "Session::observe_async: no results delivered");
  // Validate everything before touching any state: a bad call (foreign or
  // duplicate token, non-finite value) leaves the session unchanged.
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AsyncResult& r = results[i];
    HPB_REQUIRE(outstanding_.contains(r.token),
                "Session::observe_async: token " + std::to_string(r.token) +
                    " is not outstanding (already resolved, cancelled, or "
                    "never issued)");
    for (std::size_t j = 0; j < i; ++j) {
      HPB_REQUIRE(results[j].token != r.token,
                  "Session::observe_async: token " +
                      std::to_string(r.token) +
                      " appears twice in one delivery");
    }
    HPB_REQUIRE(r.status != tabular::EvalStatus::kOk || std::isfinite(r.y),
                "Session::observe_async: a successful observation must "
                "carry a finite value");
  }
  const obs::Recorder& rec = config_.recorder;
  const bool tracing = rec.tracing();
  std::size_t failed = 0;
  for (const AsyncResult& r : results) {
    const auto it = outstanding_.find(r.token);
    Observation o;
    o.config = it->second;
    o.status = r.status;
    o.y = r.ok() ? r.y : std::numeric_limits<double>::quiet_NaN();
    // Disk before tuner, per token: replay re-applies completions in the
    // exact journaled order.
    if (journal_ != nullptr) {
      journal_op("append_async_observation",
                 [&] { journal_->append_async_observation(r.token, o); });
    }
    const std::uint64_t start = tracing ? rec.now_ns() : 0;
    if (o.ok()) {
      tuner_->observe(o.config, o.y);
    } else {
      ++failed;
      tuner_->observe_failure(o.config, o.status);
    }
    if (tracing) {
      const obs::TraceAttr attrs[] = {
          obs::TraceAttr::uint("token", r.token),
          obs::TraceAttr::str("status", tabular::status_name(o.status))};
      rec.trace->emit({.name = "observe_async",
                       .id = rec.trace->next_id(),
                       .parent = 0,
                       .start_ns = start,
                       .end_ns = rec.now_ns(),
                       .attrs = attrs});
    }
    outstanding_.erase(it);
    apply(std::move(o));
  }
  if (rec.metrics != nullptr) {
    rec.metrics->counter("engine.evaluations").add(results.size());
    rec.metrics->counter("engine.failures").add(failed);
    rec.metrics->gauge("engine.outstanding")
        .set(static_cast<double>(outstanding_.size()));
  }
}

std::size_t Session::cancel_async(std::span<const std::uint64_t> tokens) {
  require_open("cancel");
  require_mode(SessionMode::kAsync, "cancel_async");
  std::vector<std::uint64_t> to_cancel;
  if (tokens.empty()) {
    // Cancel-all: the un-wedge verb for a client that lost track of its
    // tokens (or an operator releasing a dead client's work).
    to_cancel.reserve(outstanding_.size());
    for (const auto& [token, config] : outstanding_) {
      to_cancel.push_back(token);
    }
  } else {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      HPB_REQUIRE(outstanding_.contains(tokens[i]),
                  "Session::cancel_async: token " +
                      std::to_string(tokens[i]) +
                      " is not outstanding (already resolved, cancelled, or "
                      "never issued)");
      for (std::size_t j = 0; j < i; ++j) {
        HPB_REQUIRE(tokens[j] != tokens[i],
                    "Session::cancel_async: token " +
                        std::to_string(tokens[i]) +
                        " appears twice in one cancellation");
      }
    }
    to_cancel.assign(tokens.begin(), tokens.end());
  }
  for (const std::uint64_t token : to_cancel) {
    const auto it = outstanding_.find(token);
    if (journal_ != nullptr) {
      journal_op("append_cancel", [&] { journal_->append_cancel(token); });
    }
    tuner_->abandon(it->second);
    outstanding_.erase(it);
  }
  const obs::Recorder& rec = config_.recorder;
  if (rec.metrics != nullptr && !to_cancel.empty()) {
    rec.metrics->counter("engine.cancelled_tokens").add(to_cancel.size());
    rec.metrics->gauge("engine.outstanding")
        .set(static_cast<double>(outstanding_.size()));
  }
  return to_cancel.size();
}

void Session::replay(std::span<const Observation> replayed) {
  require_open("replay");
  HPB_REQUIRE(!round_in_flight_,
              "Session::replay: a round is in flight; replay only precedes "
              "fresh rounds");
  for (const Observation& o : replayed) {
    apply(o);
  }
}

void Session::replay_async(const AsyncReplayResult& replayed) {
  require_open("replay");
  require_mode(SessionMode::kAsync, "replay_async");
  HPB_REQUIRE(outstanding_.empty() && next_token_ == 1,
              "Session::replay_async: replay only precedes fresh asks");
  for (const Observation& o : replayed.observations) {
    apply(o);
  }
  for (const auto& [token, config] : replayed.outstanding) {
    outstanding_.emplace(token, config);
  }
  next_token_ = replayed.next_token;
}

void Session::apply(Observation o) {
  // A failed evaluation never improves and can never hit the target; a
  // first success "improves" by definition.
  const bool first_success =
      o.ok() && result_.history.size() == result_.num_failed;
  const bool improved =
      o.ok() && (first_success ||
                 o.y < result_.best_value -
                           config_.stop.min_relative_improvement *
                               std::abs(result_.best_value));
  if (o.ok()) {
    if (first_success || o.y < result_.best_value) {
      result_.best_value = o.y;
      result_.best_config = o.config;
    }
  } else {
    ++result_.num_failed;
  }
  result_.history.push_back(std::move(o));
  result_.best_so_far.push_back(result_.best_value);
  if (config_.recorder.metrics != nullptr &&
      result_.best_value != std::numeric_limits<double>::infinity()) {
    config_.recorder.metrics->gauge("engine.best_value")
        .set(result_.best_value);
  }

  // Stopping conditions are evaluated per observation (stagnation patience
  // counts within a batch too); once a condition fires the rest of the
  // round is still recorded above — those evaluations already happened.
  if (stopped_) {
    return;
  }
  if (result_.best_value <= config_.stop.target_value) {
    reason_ = StopReason::kTargetReached;
    stopped_ = true;
    return;
  }
  since_improvement_ = improved ? 0 : since_improvement_ + 1;
  if (config_.stop.stagnation_patience > 0 &&
      since_improvement_ >= config_.stop.stagnation_patience) {
    reason_ = StopReason::kStagnation;
    stopped_ = true;
  }
}

SessionStatus Session::status() const {
  SessionStatus s;
  s.evaluations = result_.history.size();
  s.num_failed = result_.num_failed;
  s.rounds = round_index_;
  if (config_.mode == SessionMode::kAsync) {
    s.async = true;
    s.pending = outstanding_.size();
    s.pending_tokens.reserve(outstanding_.size());
    for (const auto& [token, config] : outstanding_) {
      s.pending_tokens.push_back(token);
    }
  } else {
    s.pending = round_in_flight_ ? pending_.size() : 0;
  }
  s.best_value = result_.best_value;
  s.best_config = result_.best_config.values();
  s.stopped = stopped_;
  s.reason = reason_;
  s.finished = finished_;
  s.degraded = degraded_;
  s.degraded_reason = degraded_reason_;
  return s;
}

SessionCheckpoint Session::checkpoint() const {
  SessionCheckpoint c;
  c.journaled = journal_ != nullptr;
  if (journal_ != nullptr) {
    c.journal_path = journal_->path();
  }
  c.rounds = round_index_;
  c.observations = result_.history.size();
  c.round_in_flight = round_in_flight_;
  return c;
}

void Session::finish(StopReason reason) {
  require_open("finish");
  // kInterrupted deliberately leaves the journal unfinalized: an
  // interrupted session is exactly what --resume expects to find.
  if (journal_ != nullptr && reason != StopReason::kInterrupted) {
    journal_op("finalize",
               [&] { journal_->finalize(stop_reason_name(reason)); });
  }
  stopped_ = true;
  reason_ = reason;
  finished_ = reason != StopReason::kInterrupted;
}

void Session::close() {
  require_open("close");
  HPB_REQUIRE(!round_in_flight_,
              "Session::close: a round of " + std::to_string(pending_.size()) +
                  " suggestions is in flight; observe it (or cancel it) "
                  "before closing");
  HPB_REQUIRE(outstanding_.empty(),
              "Session::close: " + std::to_string(outstanding_.size()) +
                  " tokens are outstanding; observe or cancel them before "
                  "closing");
  if (journal_ != nullptr) {
    journal_op("finalize", [&] { journal_->finalize("closed"); });
  }
  finished_ = true;
}

}  // namespace hpb::core
