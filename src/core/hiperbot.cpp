#include "core/hiperbot.hpp"

#include <algorithm>

#include "space/sampling.hpp"

namespace hpb::core {
namespace {

constexpr std::uint64_t kMaxEagerEnumeration = 1ULL << 24;

std::shared_ptr<const std::vector<space::Configuration>> enumerate_pool(
    const space::SpacePtr& space, const HiPerBOtConfig& config) {
  if (config.sweep_source == SweepSource::kStreamed || !space->is_finite() ||
      space->cross_product_exceeds(kMaxEagerEnumeration)) {
    return nullptr;
  }
  return std::make_shared<const std::vector<space::Configuration>>(
      space->enumerate());
}

}  // namespace

HiPerBOt::HiPerBOt(space::SpacePtr space, HiPerBOtConfig config,
                   std::uint64_t seed)
    : HiPerBOt(space, config, seed, enumerate_pool(space, config)) {}

HiPerBOt::HiPerBOt(
    space::SpacePtr space, HiPerBOtConfig config, std::uint64_t seed,
    std::shared_ptr<const std::vector<space::Configuration>> pool)
    : space_(std::move(space)),
      config_(config),
      rng_(seed),
      pool_(std::move(pool)) {
  HPB_REQUIRE(space_ != nullptr, "HiPerBOt: null space");
  HPB_REQUIRE(config_.initial_samples >= 2,
              "HiPerBOt: need at least 2 initial samples");
  HPB_REQUIRE(config_.quantile > 0.0 && config_.quantile < 1.0,
              "HiPerBOt: quantile must be in (0,1)");
  if (config_.strategy == SelectionStrategy::kRanking) {
    const bool want_stream =
        config_.sweep_source == SweepSource::kStreamed ||
        (config_.sweep_source == SweepSource::kAuto && pool_ == nullptr &&
         space_->is_finite());
    if (want_stream) {
      HPB_REQUIRE(space_->is_finite(),
                  "HiPerBOt: streamed sweeps require a finite space");
      pool_ = nullptr;  // streamed mode never touches a pool
      stream_.emplace(space_, seed, config_.stream);
    } else {
      HPB_REQUIRE(pool_ != nullptr,
                  "HiPerBOt: Ranking strategy needs a finite candidate pool "
                  "or a streamed sweep source");
      HPB_REQUIRE(!pool_->empty(), "HiPerBOt: empty candidate pool");
    }
  }
}

void HiPerBOt::set_transfer_prior(TransferPrior prior) {
  prior_ = std::move(prior);
}

bool HiPerBOt::is_evaluated(const space::Configuration& c) const {
  if (!space_->is_finite()) {
    return false;  // continuous spaces: duplicates have measure zero
  }
  return evaluated_.contains(space_->ordinal_of(c));
}

bool HiPerBOt::is_excluded(const space::Configuration& c) const {
  if (!space_->is_finite()) {
    return false;
  }
  const std::uint64_t ordinal = space_->ordinal_of(c);
  return evaluated_.contains(ordinal) || pending_.contains(ordinal);
}

space::Configuration HiPerBOt::random_unevaluated() {
  if (pool_ != nullptr) {
    const std::size_t excluded = evaluated_.size() + pending_.size();
    HPB_REQUIRE(excluded < pool_->size(),
                "HiPerBOt: candidate pool exhausted");
    // Rejection sampling needs ~pool/(pool-excluded) draws in expectation;
    // once half the pool is excluded that blows up (a 2^24-entry pool
    // evaluated down to a few free slots would spin for millions of
    // iterations), so pick uniformly among the unexcluded entries with one
    // linear scan instead.
    if (excluded >= pool_->size() / 2) {
      std::size_t r = rng_.index(pool_->size() - excluded);
      for (const auto& c : *pool_) {
        if (is_excluded(c)) {
          continue;
        }
        if (r == 0) {
          return c;
        }
        --r;
      }
      // Unreachable while evaluated_/pending_ only ever hold pool members.
      HPB_REQUIRE(false, "HiPerBOt: exclusion bookkeeping out of sync");
    }
    for (;;) {
      const auto& c = (*pool_)[rng_.index(pool_->size())];
      if (!is_excluded(c)) {
        return c;
      }
    }
  }
  if (stream_) {
    // Streamed mode: draw ordinals uniformly over the cross product and
    // reject invalid or excluded decodes. On a flat unconstrained space the
    // pool above would be the cross product in ordinal order, so this
    // consumes the RNG identically to the pooled rejection loop and the
    // initial phase stays bitwise-identical to the pooled path.
    const std::uint64_t raw = space_->cross_product_size();
    for (int attempt = 0; attempt < 100000; ++attempt) {
      const auto ordinal =
          static_cast<std::uint64_t>(rng_.index(static_cast<std::size_t>(raw)));
      space::Configuration c = space_->configuration_at(ordinal);
      if (space_->satisfies(c) && !is_excluded(c)) {
        return c;
      }
    }
    HPB_REQUIRE(false,
                "HiPerBOt: could not sample an unevaluated valid "
                "configuration (constraints too tight or space exhausted)");
  }
  for (int attempt = 0; attempt < 10000; ++attempt) {
    space::Configuration c = space_->sample_uniform(rng_);
    if (!is_excluded(c)) {
      return c;
    }
  }
  HPB_REQUIRE(false, "HiPerBOt: could not sample an unevaluated config");
  return {};  // unreachable
}

void HiPerBOt::ensure_columns() {
  if (!columns_) {
    columns_.emplace(*space_, *pool_);
  }
}

std::vector<SweepHit> HiPerBOt::ranked_topk(const TpeSurrogate& s,
                                            std::size_t k) {
  const bool tracing = recorder_ != nullptr && recorder_->tracing();
  const std::uint64_t sweep_start = tracing ? recorder_->now_ns() : 0;
  std::uint64_t table_built = sweep_start;
  std::vector<SweepHit> hits;
  if (config_.acquisition == AcquisitionMode::kDirect) {
    const std::vector<space::Configuration>& pool = *pool_;
    hits = acquisition_topk(
        pool.size(), k, nullptr,
        [&](std::size_t j) { return s.acquisition(pool[j]); },
        [&](std::size_t j) { return is_excluded(pool[j]); });
  } else {
    ensure_columns();
    // Rebuild only the table columns whose marginals changed since the
    // previous fit (bitwise-identical scores either way); the fresh table
    // replaces the cache for the next fit's diff.
    table_cache_.emplace(
        AcquisitionTable(s, *columns_,
                         table_cache_ ? &*table_cache_ : nullptr));
    const AcquisitionTable& table = *table_cache_;
    if (tracing) {
      table_built = recorder_->now_ns();
    }
    const PoolColumns& columns = *columns_;
    const std::span<const std::uint64_t> ordinals = columns.ordinals();
    const bool finite = !ordinals.empty();
    // Streaming block sweep: per-chunk vectorized score_block under the
    // runtime SIMD tier + bounded top-k reduction. Bitwise-identical to
    // the per-candidate table.score() sweep for every tier/thread count.
    hits = acquisition_topk_table(
        table, columns, k, sweep_pool_,
        [&](std::size_t j) {
          if (!finite) {
            return false;  // continuous spaces: no ordinal bookkeeping
          }
          const std::uint64_t ordinal = ordinals[j];
          return evaluated_.contains(ordinal) || pending_.contains(ordinal);
        });
  }
  if (recorder_ != nullptr && recorder_->metrics != nullptr) {
    recorder_->metrics->counter("hiperbot.sweeps").add(1);
  }
  if (tracing) {
    const std::uint64_t sweep_end = recorder_->now_ns();
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::str("mode",
                            config_.acquisition == AcquisitionMode::kDirect
                                ? "direct"
                                : "table"),
        obs::TraceAttr::str("simd",
                            config_.acquisition == AcquisitionMode::kDirect
                                ? "scalar"
                                : simd_tier_name(active_simd_tier())),
        obs::TraceAttr::uint("pool", pool_->size()),
        obs::TraceAttr::uint("k", k),
        obs::TraceAttr::uint("excluded", evaluated_.size() + pending_.size()),
        obs::TraceAttr::uint("threads",
                             sweep_pool_ != nullptr ? sweep_pool_->size() : 1),
        obs::TraceAttr::uint("table_build_ns", table_built - sweep_start),
        obs::TraceAttr::uint("sweep_ns", sweep_end - table_built),
        obs::TraceAttr::uint("reused_columns",
                             table_cache_ ? table_cache_->reused_columns()
                                          : 0),
    };
    recorder_->trace->emit({.name = "hiperbot.sweep",
                            .id = recorder_->trace->next_id(),
                            .parent = 0,
                            .start_ns = sweep_start,
                            .end_ns = sweep_end,
                            .attrs = attrs});
  }
  return hits;
}

std::vector<StreamHit> HiPerBOt::streamed_topk(const TpeSurrogate& s,
                                               std::size_t k) {
  const bool tracing = recorder_ != nullptr && recorder_->tracing();
  const std::uint64_t sweep_start = tracing ? recorder_->now_ns() : 0;
  std::uint64_t table_built = sweep_start;
  // Space-keyed score table (streamed spaces are all-discrete): identical
  // doubles to the pooled table, diffed against the previous fit's columns.
  table_cache_.emplace(
      AcquisitionTable(s, *space_, table_cache_ ? &*table_cache_ : nullptr));
  const AcquisitionTable& table = *table_cache_;
  if (tracing) {
    table_built = recorder_->now_ns();
  }
  const std::uint64_t pass = stream_pass_++;
  // Each chunk's freshly generated candidates are transposed into level
  // columns and scored through the same vectorized kernel as the pooled
  // sweep (bitwise-identical to score_config per candidate).
  std::vector<StreamHit> hits = acquisition_topk_stream_table(
      *stream_, pass, k, sweep_pool_, table,
      [&](const space::CandidateStream::Candidate& candidate) {
        return evaluated_.contains(candidate.ordinal) ||
               pending_.contains(candidate.ordinal);
      });
  if (recorder_ != nullptr && recorder_->metrics != nullptr) {
    recorder_->metrics->counter("hiperbot.sweeps").add(1);
  }
  if (tracing) {
    const std::uint64_t sweep_end = recorder_->now_ns();
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::str("mode", "stream"),
        obs::TraceAttr::str("simd", simd_tier_name(active_simd_tier())),
        obs::TraceAttr::uint("pass", pass),
        obs::TraceAttr::uint("pass_length", stream_->pass_length()),
        obs::TraceAttr::uint("k", k),
        obs::TraceAttr::uint("excluded", evaluated_.size() + pending_.size()),
        obs::TraceAttr::uint("threads",
                             sweep_pool_ != nullptr ? sweep_pool_->size() : 1),
        obs::TraceAttr::uint("table_build_ns", table_built - sweep_start),
        obs::TraceAttr::uint("sweep_ns", sweep_end - table_built),
        obs::TraceAttr::uint("reused_columns",
                             table_cache_ ? table_cache_->reused_columns()
                                          : 0),
    };
    recorder_->trace->emit({.name = "hiperbot.sweep",
                            .id = recorder_->trace->next_id(),
                            .parent = 0,
                            .start_ns = sweep_start,
                            .end_ns = sweep_end,
                            .attrs = attrs});
  }
  return hits;
}

space::Configuration HiPerBOt::suggest_ranking(const TpeSurrogate& s) {
  if (stream_) {
    std::vector<StreamHit> hits = streamed_topk(s, 1);
    if (hits.empty()) {
      // A sampled pass can come back empty (tight constraints, or every
      // candidate it produced is already excluded) without the space being
      // exhausted — fall back to exploration instead of failing.
      return random_unevaluated();
    }
    return std::move(hits.front().config);
  }
  const std::vector<SweepHit> hits = ranked_topk(s, 1);
  HPB_REQUIRE(!hits.empty(), "HiPerBOt: candidate pool exhausted");
  return (*pool_)[hits.front().index];
}

space::Configuration HiPerBOt::suggest_proposal(const TpeSurrogate& s) {
  std::optional<space::Configuration> best;
  double best_score = 0.0;
  for (std::size_t k = 0; k < config_.proposal_candidates; ++k) {
    space::Configuration c = s.good().sample(rng_);
    if (!space_->satisfies(c) || is_excluded(c)) {
      continue;
    }
    const double score = s.acquisition(c);
    if (!best || score > best_score) {
      best = std::move(c);
      best_score = score;
    }
  }
  if (!best) {
    // All proposals were invalid or duplicates — fall back to exploration.
    return random_unevaluated();
  }
  return *best;
}

space::Configuration HiPerBOt::initial_suggestion() {
  if (config_.initial_design == InitialDesign::kLatinHypercube) {
    if (initial_queue_.empty() && history_.empty()) {
      initial_queue_ = space::latin_hypercube(
          *space_, config_.initial_samples, rng_);
    }
    while (!initial_queue_.empty()) {
      space::Configuration c = std::move(initial_queue_.back());
      initial_queue_.pop_back();
      if (!is_excluded(c)) {
        return c;
      }
    }
  }
  return random_unevaluated();
}

space::Configuration HiPerBOt::suggest() {
  space::Configuration chosen;
  if (history_.size() < config_.initial_samples) {
    chosen = initial_suggestion();
  } else {
    const TpeSurrogate surrogate = fit_surrogate();
    chosen = config_.strategy == SelectionStrategy::kRanking
                 ? suggest_ranking(surrogate)
                 : suggest_proposal(surrogate);
    if (recorder_ != nullptr && recorder_->active()) {
      export_fit(surrogate, surrogate.acquisition(chosen));
    }
  }
  // A serial suggestion is outstanding until observed, exactly like a batch
  // member: without this, two suggest() calls with no intervening observe()
  // return the same configuration, and a later suggest_batch can duplicate
  // the outstanding one. observe()/observe_failure() release the ordinal.
  if (space_->is_finite()) {
    pending_.insert(space_->ordinal_of(chosen));
  }
  pending_configs_.push_back(chosen);
  return chosen;
}

std::vector<space::Configuration> HiPerBOt::suggest_batch(std::size_t k) {
  HPB_REQUIRE(k > 0, "suggest_batch: k must be positive");
  std::vector<space::Configuration> batch;
  batch.reserve(k);
  // Members enter pending_ as they are taken, so is_excluded() handles both
  // within-batch deduplication and configurations still outstanding from an
  // earlier, partially observed batch.
  auto take = [&](space::Configuration c) {
    if (space_->is_finite()) {
      pending_.insert(space_->ordinal_of(c));
    }
    pending_configs_.push_back(c);
    batch.push_back(std::move(c));
  };
  auto pool_exhausted = [&] {
    return pool_ != nullptr &&
           evaluated_.size() + pending_.size() >= pool_->size();
  };

  if (history_.size() < config_.initial_samples) {
    while (batch.size() < k && !pool_exhausted()) {
      take(initial_suggestion());
    }
    return batch;
  }

  const TpeSurrogate surrogate = fit_surrogate();
  if (config_.strategy == SelectionStrategy::kRanking) {
    if (stream_) {
      // Top-k of the next stream pass (ties toward the lowest in-pass
      // index, matching the serial argmax). An empty pass falls back to
      // one exploration draw so the caller always makes progress.
      for (StreamHit& hit : streamed_topk(surrogate, k)) {
        take(std::move(hit.config));
      }
      if (batch.empty()) {
        take(random_unevaluated());
      }
    } else {
      // Top-k available candidates by acquisition (ties toward the lowest
      // pool index, matching the serial argmax).
      for (const SweepHit& hit : ranked_topk(surrogate, k)) {
        take((*pool_)[hit.index]);
      }
    }
    if (recorder_ != nullptr && recorder_->active() && !batch.empty()) {
      export_fit(surrogate, surrogate.acquisition(batch.front()));
    }
    return batch;
  }

  // Proposal: oversample candidates, keep the k best distinct ones.
  std::vector<std::pair<double, space::Configuration>> scored;
  std::unordered_set<std::uint64_t> seen;  // dedup among the proposals
  for (std::size_t i = 0; i < config_.proposal_candidates * k; ++i) {
    space::Configuration c = surrogate.good().sample(rng_);
    if (!space_->satisfies(c) || is_excluded(c)) {
      continue;
    }
    if (space_->is_finite() && !seen.insert(space_->ordinal_of(c)).second) {
      continue;
    }
    scored.emplace_back(surrogate.acquisition(c), std::move(c));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (auto& [score, c] : scored) {
    if (batch.size() >= k) {
      break;
    }
    take(std::move(c));
  }
  while (batch.size() < k && !pool_exhausted()) {
    take(random_unevaluated());
  }
  if (recorder_ != nullptr && recorder_->active() && !batch.empty()) {
    export_fit(surrogate, surrogate.acquisition(batch.front()));
  }
  return batch;
}

void HiPerBOt::observe(const space::Configuration& config, double y) {
  HPB_REQUIRE(config.size() == space_->num_params(),
              "HiPerBOt::observe: configuration size mismatch");
  if (space_->is_finite()) {
    const std::uint64_t ordinal = space_->ordinal_of(config);
    pending_.erase(ordinal);
    evaluated_.insert(ordinal);
  }
  erase_pending_config(config);
  history_.add(config, y);
}

void HiPerBOt::observe_failure(const space::Configuration& config,
                               EvalStatus status) {
  HPB_REQUIRE(config.size() == space_->num_params(),
              "HiPerBOt::observe_failure: configuration size mismatch");
  HPB_REQUIRE(status != EvalStatus::kOk,
              "HiPerBOt::observe_failure: status must be a failure");
  if (space_->is_finite()) {
    const std::uint64_t ordinal = space_->ordinal_of(config);
    pending_.erase(ordinal);
    evaluated_.insert(ordinal);  // never re-propose a failed configuration
  }
  erase_pending_config(config);
  failed_.push_back(config);  // joins the bad density group on the next fit
}

void HiPerBOt::abandon(const space::Configuration& config) {
  HPB_REQUIRE(config.size() == space_->num_params(),
              "HiPerBOt::abandon: configuration size mismatch");
  if (space_->is_finite()) {
    pending_.erase(space_->ordinal_of(config));
  }
  erase_pending_config(config);
}

void HiPerBOt::erase_pending_config(const space::Configuration& config) {
  for (auto it = pending_configs_.begin(); it != pending_configs_.end();
       ++it) {
    if (it->values() == config.values()) {
      pending_configs_.erase(it);
      return;
    }
  }
}

void HiPerBOt::export_fit(const TpeSurrogate& s, double chosen_score) const {
  const obs::Recorder& rec = *recorder_;
  const std::uint64_t excluded = evaluated_.size() + pending_.size();
  if (rec.metrics != nullptr) {
    rec.metrics->counter("hiperbot.fits").add(1);
    rec.metrics->gauge("hiperbot.good_size")
        .set(static_cast<double>(s.num_good()));
    rec.metrics->gauge("hiperbot.bad_size")
        .set(static_cast<double>(s.num_bad()));
    rec.metrics->gauge("hiperbot.threshold").set(s.threshold());
    rec.metrics->gauge("hiperbot.kde_bandwidth").set(s.mean_kde_bandwidth());
    rec.metrics->gauge("hiperbot.excluded").set(static_cast<double>(excluded));
    rec.metrics->gauge("hiperbot.acquisition_best").set(chosen_score);
  }
  if (rec.trace != nullptr) {
    const std::uint64_t now = rec.now_ns();
    const obs::TraceAttr attrs[] = {
        obs::TraceAttr::str("strategy",
                            config_.strategy == SelectionStrategy::kRanking
                                ? "ranking"
                                : "proposal"),
        obs::TraceAttr::uint("history", history_.size()),
        obs::TraceAttr::uint("good", s.num_good()),
        obs::TraceAttr::uint("bad", s.num_bad()),
        obs::TraceAttr::uint("excluded", excluded),
        obs::TraceAttr::num("threshold", s.threshold()),
        obs::TraceAttr::num("kde_bandwidth", s.mean_kde_bandwidth()),
        obs::TraceAttr::num("acquisition_best", chosen_score),
    };
    rec.trace->emit({.name = "hiperbot.fit",
                     .id = rec.trace->next_id(),
                     .parent = 0,
                     .start_ns = now,
                     .end_ns = now,
                     .attrs = attrs});
  }
}

TpeSurrogate HiPerBOt::fit_surrogate() const {
  // Constant-liar mass: outstanding suggestions join the failed
  // configurations in the bad density group, steering the next acquisition
  // away from configurations already being evaluated elsewhere. Synchronous
  // drivers fit with nothing outstanding, so this branch never fires for
  // them and their fits are bitwise-unchanged.
  if (config_.pending_liar && !pending_configs_.empty()) {
    std::vector<space::Configuration> bad_mass;
    bad_mass.reserve(failed_.size() + pending_configs_.size());
    bad_mass.insert(bad_mass.end(), failed_.begin(), failed_.end());
    bad_mass.insert(bad_mass.end(), pending_configs_.begin(),
                    pending_configs_.end());
    return TpeSurrogate(space_, history_, config_.quantile, config_.density,
                        prior_ ? &*prior_ : nullptr,
                        prior_ ? config_.transfer_weight : 0.0, bad_mass);
  }
  return TpeSurrogate(space_, history_, config_.quantile, config_.density,
                      prior_ ? &*prior_ : nullptr,
                      prior_ ? config_.transfer_weight : 0.0, failed_);
}

std::vector<double> HiPerBOt::parameter_importance() const {
  return fit_surrogate().parameter_importance();
}

}  // namespace hpb::core
