// Fast acquisition engine for the Ranking strategy's candidate sweep.
//
// The Ranking strategy (§III-D, the configuration used for every figure in
// the paper) rescores the entire candidate pool on every suggest. The
// direct path — TpeSurrogate::acquisition per candidate — walks every
// marginal through variant dispatch and computes two log() calls per
// parameter per candidate; with pools up to 2^24 that sweep dominates a
// tuning session's wall-clock. This module makes the sweep a streaming
// table scan instead:
//
//   - PoolColumns: a structure-of-arrays mirror of the candidate pool.
//     One contiguous per-parameter column of small indices (the level for
//     discrete parameters, the rank of the candidate's value among the
//     pool's distinct values for continuous ones), built once per pool, so
//     the sweep streams through cache instead of chasing heap-allocated
//     Configuration vectors.
//   - AcquisitionTable: per-fit score tables. For every discrete parameter
//     a `level -> (log pg, log pb)` table computed once per surrogate fit;
//     for every continuous parameter the same memo over the pool's
//     distinct values. Scoring a candidate becomes num_params table
//     lookups per accumulator, added in the same order as
//     FactorizedDensity::log_density — the resulting doubles are
//     bitwise-identical to the direct path's. score_block() runs the same
//     gathers through the runtime-dispatched SIMD kernel (core/simd.hpp):
//     lane-per-candidate, so vectorized scores are also bitwise-identical.
//   - acquisition_topk / acquisition_topk_table: deterministic chunked
//     argmax/top-k over the shared common::ThreadPool. Chunk boundaries
//     are fixed (independent of worker count) and ties break toward the
//     lowest candidate index, so the result is identical for any thread
//     count. The table variants are streaming: each chunk scores through
//     score_block() into a chunk-local buffer of at most kSweepChunk
//     doubles and reduces immediately to a sorted list of at most k hits —
//     a full pool-sized score vector is never materialized, so the sweep's
//     working set is O(threads * kSweepChunk + num_chunks * k) regardless
//     of pool size.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/simd.hpp"
#include "core/surrogate.hpp"
#include "space/candidate_stream.hpp"
#include "space/parameter_space.hpp"

namespace hpb::core {

/// Structure-of-arrays mirror of a candidate pool (built once per pool).
class PoolColumns {
 public:
  PoolColumns(const space::ParameterSpace& space,
              std::span<const space::Configuration> pool);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t num_params() const noexcept {
    return columns_.size();
  }

  /// Per-candidate index column of parameter i: the level index for
  /// discrete parameters, the distinct-value rank for continuous ones.
  [[nodiscard]] std::span<const std::uint32_t> column(
      std::size_t param) const {
    return columns_[param];
  }

  /// Per-parameter column base pointers (the layout score_block consumes).
  [[nodiscard]] std::span<const std::uint32_t* const> column_data()
      const noexcept {
    return column_ptrs_;
  }

  /// Sorted distinct values of a continuous parameter's column (empty for
  /// discrete parameters). column(i)[j] indexes into this.
  [[nodiscard]] std::span<const double> distinct_values(
      std::size_t param) const {
    return distinct_[param];
  }

  /// Rows of the score table for parameter i: the level count for discrete
  /// parameters, the distinct-value count for continuous ones.
  [[nodiscard]] std::size_t table_size(std::size_t param) const {
    return table_sizes_[param];
  }

  [[nodiscard]] bool is_continuous(std::size_t param) const {
    return continuous_[param] != 0;
  }

  /// Per-candidate space ordinals (exclusion checks); empty unless the
  /// space is finite.
  [[nodiscard]] std::span<const std::uint64_t> ordinals() const noexcept {
    return ordinals_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::vector<std::uint32_t>> columns_;
  std::vector<const std::uint32_t*> column_ptrs_;  // columns_[i].data()
  std::vector<std::vector<double>> distinct_;  // continuous params only
  std::vector<std::size_t> table_sizes_;
  std::vector<char> continuous_;  // per-param kind (char: vector<bool> races)
  std::vector<std::uint64_t> ordinals_;
};

/// Per-fit `index -> (log pg, log pb)` tables over a PoolColumns layout.
///
/// Consecutive fits usually change only a few marginals — the good group in
/// particular is identical between fits whenever the new observations all
/// land below the α-quantile. Passing the previous fit's table as `prev`
/// rebuilds only the columns whose marginal actually changed: each column is
/// keyed by the bitwise state of the marginal density that produced it
/// (histogram counts + smoothing, or KDE centers + weights + bandwidth +
/// support), and an unchanged key means the recomputation would be
/// bitwise-identical, so the old column is memcpy'd straight into the flat
/// table instead (no temporaries — the reuse path must beat a recompute at
/// every size, which a copy-through-vector did not; see
/// BENCH_acquisition.json's refit_results). Scores are therefore
/// bitwise-identical with or without `prev`. A `prev` whose pool layout
/// differs is ignored entirely — the automatic fallback to a full build.
class AcquisitionTable {
 public:
  AcquisitionTable(const TpeSurrogate& surrogate, const PoolColumns& columns,
                   const AcquisitionTable* prev = nullptr);

  /// Pool-independent table over a finite (all-discrete) space, for
  /// streamed sweeps whose candidates are generated on the fly and never
  /// live in a pool. Each column is the histogram's log_pmf_table() — the
  /// exact doubles the pooled constructor stores for a discrete parameter —
  /// so a streamed score equals the pooled (and direct) score bit for bit.
  AcquisitionTable(const TpeSurrogate& surrogate,
                   const space::ParameterSpace& space,
                   const AcquisitionTable* prev = nullptr);

  [[nodiscard]] std::size_t num_params() const noexcept {
    return offsets_.size();
  }

  /// Acquisition score of pool candidate j: bitwise-identical to
  /// surrogate.acquisition(pool[j]) — both log-density accumulators add
  /// the per-parameter terms in parameter order before subtracting.
  [[nodiscard]] double score(const PoolColumns& columns,
                             std::size_t j) const {
    double log_good = 0.0;
    double log_bad = 0.0;
    for (std::size_t i = 0; i < offsets_.size(); ++i) {
      const std::size_t at = offsets_[i] + columns.column(i)[j];
      log_good += log_good_[at];
      log_bad += log_bad_[at];
    }
    return log_good - log_bad;
  }

  /// Acquisition score of an arbitrary configuration, by level lookup (so
  /// every parameter must be discrete — true for any table built by the
  /// space constructor, and for pooled tables over all-discrete spaces).
  /// Accumulates per-parameter terms in the same order as score().
  [[nodiscard]] double score_config(const space::Configuration& c) const {
    double log_good = 0.0;
    double log_bad = 0.0;
    for (std::size_t i = 0; i < offsets_.size(); ++i) {
      const std::size_t at = offsets_[i] + c.level(i);
      log_good += log_good_[at];
      log_bad += log_bad_[at];
    }
    return log_good - log_bad;
  }

  /// Scores pool candidates [begin, end) into out[0 .. end-begin) through
  /// the runtime-dispatched SIMD kernel. Every tier's output is
  /// bitwise-identical to calling score() per candidate.
  void score_block(const PoolColumns& columns, std::size_t begin,
                   std::size_t end, double* out,
                   SimdTier tier = active_simd_tier()) const;

  /// Same kernel over caller-built index columns (cols[i][0 .. count) for
  /// each of num_params() parameters) — the streamed sweep scores each
  /// chunk's freshly generated candidates through this.
  void score_block_cols(const std::uint32_t* const* cols, std::size_t count,
                        double* out,
                        SimdTier tier = active_simd_tier()) const;

  /// Per-side columns copied from `prev` instead of recomputed (0..2 per
  /// parameter). Exposed for the sweep span and the incremental bench.
  [[nodiscard]] std::size_t reused_columns() const noexcept {
    return reused_columns_;
  }

 private:
  /// Bitwise fingerprint of the marginal density behind one table column.
  struct MarginalKey {
    bool continuous = false;
    double smoothing = 0.0;  // histogram
    double bandwidth = 0.0;  // KDE
    double lo = 0.0;
    double hi = 0.0;
    std::vector<double> values;   // histogram counts / KDE centers
    std::vector<double> weights;  // KDE per-center weights

    [[nodiscard]] bool matches(const MarginalKey& other) const noexcept;
  };

  /// Fill parameter i's rows of both flat tables in place: memcpy from
  /// `prev` when the marginal key is unchanged, recompute via `rebuild`
  /// otherwise. Shared by both constructors.
  template <class RebuildGood, class RebuildBad>
  void fill_column(std::size_t i, std::size_t rows,
                   const AcquisitionTable* prev, const RebuildGood& good,
                   const RebuildBad& bad);

  std::vector<std::size_t> offsets_;  // per-param start into the flat tables
  std::vector<double> log_good_;
  std::vector<double> log_bad_;
  std::vector<MarginalKey> good_keys_;  // per-param, for the next fit's diff
  std::vector<MarginalKey> bad_keys_;
  std::size_t reused_columns_ = 0;
};

/// One sweep result: a candidate index and its acquisition score.
struct SweepHit {
  std::size_t index = 0;
  double score = 0.0;
};

/// Strict ordering of the sweep: descending score, ties broken by lowest
/// candidate index (indices are unique, so this is a total order).
[[nodiscard]] inline bool sweep_better(const SweepHit& a,
                                       const SweepHit& b) noexcept {
  return a.score > b.score || (a.score == b.score && a.index < b.index);
}

/// Fixed sweep chunk size. Chunk boundaries depend only on the pool size,
/// never on the worker count, so chunk-local results — and therefore the
/// final reduction — are identical for any thread count.
inline constexpr std::size_t kSweepChunk = 8192;

namespace detail {

/// Insert `hit` into the sorted bounded list `best` (capacity k) under the
/// strict total order `better`. The caller pre-checks the reject case
/// (full list, hit not better than the tail) so StreamHit insertions can
/// defer moving their Configuration until the hit is known to survive.
template <class Hit, class Better>
inline void bounded_sorted_insert(std::vector<Hit>& best, Hit&& hit,
                                  std::size_t k, const Better& better) {
  std::size_t pos = best.size();
  while (pos > 0 && better(hit, best[pos - 1])) {
    --pos;
  }
  best.insert(best.begin() + static_cast<std::ptrdiff_t>(pos),
              std::move(hit));
  if (best.size() > k) {
    best.pop_back();
  }
}

/// Merge one chunk's sorted hit list into the running bounded top-k.
/// Chunk lists are sorted under the same total order, so the first hit
/// that cannot enter a full merged list ends the chunk — the merge never
/// concatenates, keeping the reduction's working set at k+1 hits. Called
/// serially in chunk order, so the result is scheduling-independent and
/// equals a global sort of all chunk hits truncated to k.
template <class Hit, class Better>
inline void merge_sorted_bounded(std::vector<Hit>& merged,
                                 std::vector<Hit>& chunk, std::size_t k,
                                 const Better& better) {
  for (Hit& hit : chunk) {
    if (merged.size() == k && !better(hit, merged.back())) {
      break;
    }
    bounded_sorted_insert(merged, std::move(hit), k, better);
  }
}

}  // namespace detail

/// Deterministic chunked top-k sweep over candidates 0..n-1. `score(j)`
/// must be a pure function of j; `excluded(j)` hides a candidate from the
/// result. Chunks run on `pool` (serial when null or single-threaded); the
/// per-chunk winners are reduced serially in chunk order under
/// sweep_better, so the result is independent of scheduling. Returns at
/// most k hits, best first; fewer when the unexcluded pool is smaller.
/// This generic form scores through a per-candidate callback (the direct
/// path's reference sweep); table sweeps use acquisition_topk_table.
template <class ScoreFn, class ExcludedFn>
[[nodiscard]] std::vector<SweepHit> acquisition_topk(std::size_t n,
                                                     std::size_t k,
                                                     ThreadPool* pool,
                                                     const ScoreFn& score,
                                                     const ExcludedFn& excluded) {
  if (n == 0 || k == 0) {
    return {};
  }
  const std::size_t num_chunks = (n + kSweepChunk - 1) / kSweepChunk;
  std::vector<std::vector<SweepHit>> chunk_best(num_chunks);
  parallel_for_indexed(pool, num_chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * kSweepChunk;
    const std::size_t end = std::min(begin + kSweepChunk, n);
    std::vector<SweepHit>& best = chunk_best[chunk];
    best.reserve(std::min(k, end - begin));
    for (std::size_t j = begin; j < end; ++j) {
      if (excluded(j)) {
        continue;
      }
      const SweepHit hit{j, score(j)};
      if (best.size() == k && !sweep_better(hit, best.back())) {
        continue;
      }
      detail::bounded_sorted_insert(best, SweepHit{hit}, k, sweep_better);
    }
  });
  std::vector<SweepHit> merged;
  merged.reserve(k + 1);
  for (auto& best : chunk_best) {
    detail::merge_sorted_bounded(merged, best, k, sweep_better);
  }
  return merged;
}

/// Streaming table top-k over a column-mirrored pool: each chunk is scored
/// in one score_block() call (vectorized under the active SIMD tier) into
/// a chunk-local buffer, reduced to at most k hits immediately, and the
/// buffer is reused for the next chunk — the full score vector never
/// exists. Result is bitwise-identical to the generic acquisition_topk
/// over table.score(), for any thread count and any SIMD tier.
template <class ExcludedFn>
[[nodiscard]] std::vector<SweepHit> acquisition_topk_table(
    const AcquisitionTable& table, const PoolColumns& columns, std::size_t k,
    ThreadPool* pool, const ExcludedFn& excluded,
    SimdTier tier = active_simd_tier()) {
  const std::size_t n = columns.size();
  if (n == 0 || k == 0) {
    return {};
  }
  const std::size_t num_chunks = (n + kSweepChunk - 1) / kSweepChunk;
  std::vector<std::vector<SweepHit>> chunk_best(num_chunks);
  parallel_for_indexed(pool, num_chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * kSweepChunk;
    const std::size_t end = std::min(begin + kSweepChunk, n);
    std::vector<double> scores(end - begin);
    table.score_block(columns, begin, end, scores.data(), tier);
    std::vector<SweepHit>& best = chunk_best[chunk];
    best.reserve(std::min(k, end - begin));
    for (std::size_t j = begin; j < end; ++j) {
      // Cheap cut first: a hit enters iff it is unexcluded AND beats the
      // tail, so testing the (almost always false) tail compare before the
      // exclusion probe keeps the hot loop branch-predictable without
      // changing the result.
      const SweepHit hit{j, scores[j - begin]};
      if (best.size() == k && !sweep_better(hit, best.back())) {
        continue;
      }
      if (excluded(j)) {
        continue;
      }
      detail::bounded_sorted_insert(best, SweepHit{hit}, k, sweep_better);
    }
  });
  std::vector<SweepHit> merged;
  merged.reserve(k + 1);
  for (auto& best : chunk_best) {
    detail::merge_sorted_bounded(merged, best, k, sweep_better);
  }
  return merged;
}

/// One streamed-sweep result. Streamed candidates have no pool to index
/// back into, so the hit carries the configuration itself, plus its raw
/// in-pass position (the deterministic tie-break key) and its cross-product
/// ordinal (the dedup identity).
struct StreamHit {
  space::Configuration config;
  double score = 0.0;
  std::uint64_t pass_index = 0;
  std::uint64_t ordinal = 0;
};

/// Strict ordering of a streamed sweep: descending score, ties broken by
/// lowest in-pass index (unique within a pass, so this is a total order).
/// On a flat unconstrained space swept exhaustively, pass indices equal
/// pool indices, so this matches sweep_better's tie-break exactly.
[[nodiscard]] inline bool stream_better(const StreamHit& a,
                                        const StreamHit& b) noexcept {
  return a.score > b.score ||
         (a.score == b.score && a.pass_index < b.pass_index);
}

/// Deterministic chunked top-k sweep over one pass of a CandidateStream —
/// the streamed counterpart of acquisition_topk. `score(config)` must be a
/// pure function of the configuration; `excluded(candidate)` hides a
/// candidate (typically by ordinal). Chunks are generated and reduced
/// locally on `pool` (serial when null), then merged serially in chunk
/// order under stream_better, so the result is identical for any thread
/// count. With stream.config().chunk == kSweepChunk and an exhaustive
/// identity pass over a flat unconstrained space, the winning candidates
/// are bitwise-identical to acquisition_topk over the materialized pool.
template <class ScoreFn, class ExcludedFn>
[[nodiscard]] std::vector<StreamHit> acquisition_topk_stream(
    const space::CandidateStream& stream, std::uint64_t pass, std::size_t k,
    ThreadPool* pool, const ScoreFn& score, const ExcludedFn& excluded) {
  const std::size_t num_chunks = stream.num_chunks();
  if (num_chunks == 0 || k == 0) {
    return {};
  }
  std::vector<std::vector<StreamHit>> chunk_best(num_chunks);
  parallel_for_indexed(pool, num_chunks, [&](std::size_t chunk) {
    std::vector<space::CandidateStream::Candidate> candidates;
    stream.chunk_candidates(pass, chunk, candidates);
    std::vector<StreamHit>& best = chunk_best[chunk];
    best.reserve(std::min(k, candidates.size()));
    for (auto& candidate : candidates) {
      if (excluded(candidate)) {
        continue;
      }
      StreamHit hit{space::Configuration{}, score(candidate.config),
                    candidate.pass_index, candidate.ordinal};
      if (best.size() == k && !stream_better(hit, best.back())) {
        continue;
      }
      hit.config = std::move(candidate.config);
      detail::bounded_sorted_insert(best, std::move(hit), k, stream_better);
    }
  });
  std::vector<StreamHit> merged;
  merged.reserve(k + 1);
  for (auto& best : chunk_best) {
    detail::merge_sorted_bounded(merged, best, k, stream_better);
  }
  return merged;
}

/// Streamed top-k through the vectorized table kernel: each chunk's
/// freshly generated candidates are transposed into per-parameter level
/// columns (streamed spaces are all-discrete) and scored in one
/// score_block_cols() call, then reduced exactly like
/// acquisition_topk_stream. Bitwise-identical to the score_config()
/// streamed sweep for any thread count and SIMD tier; the per-chunk
/// working set stays O(kSweepChunk * num_params).
template <class ExcludedFn>
[[nodiscard]] std::vector<StreamHit> acquisition_topk_stream_table(
    const space::CandidateStream& stream, std::uint64_t pass, std::size_t k,
    ThreadPool* pool, const AcquisitionTable& table,
    const ExcludedFn& excluded, SimdTier tier = active_simd_tier()) {
  const std::size_t num_chunks = stream.num_chunks();
  if (num_chunks == 0 || k == 0) {
    return {};
  }
  const std::size_t n_params = table.num_params();
  std::vector<std::vector<StreamHit>> chunk_best(num_chunks);
  parallel_for_indexed(pool, num_chunks, [&](std::size_t chunk) {
    std::vector<space::CandidateStream::Candidate> candidates;
    stream.chunk_candidates(pass, chunk, candidates);
    const std::size_t m = candidates.size();
    std::vector<StreamHit>& best = chunk_best[chunk];
    if (m == 0) {
      return;
    }
    // Transpose the chunk's configurations into contiguous level columns —
    // the same memory layout PoolColumns gives a materialized pool.
    std::vector<std::uint32_t> flat(n_params * m);
    std::vector<const std::uint32_t*> cols(n_params);
    for (std::size_t i = 0; i < n_params; ++i) {
      std::uint32_t* col = flat.data() + i * m;
      cols[i] = col;
      for (std::size_t t = 0; t < m; ++t) {
        col[t] = static_cast<std::uint32_t>(candidates[t].config.level(i));
      }
    }
    std::vector<double> scores(m);
    table.score_block_cols(cols.data(), m, scores.data(), tier);
    best.reserve(std::min(k, m));
    for (std::size_t t = 0; t < m; ++t) {
      auto& candidate = candidates[t];
      // Same cheap-cut ordering as acquisition_topk_table: tail compare
      // before the exclusion probe, identical result either way.
      StreamHit hit{space::Configuration{}, scores[t], candidate.pass_index,
                    candidate.ordinal};
      if (best.size() == k && !stream_better(hit, best.back())) {
        continue;
      }
      if (excluded(candidate)) {
        continue;
      }
      hit.config = std::move(candidate.config);
      detail::bounded_sorted_insert(best, std::move(hit), k, stream_better);
    }
  });
  std::vector<StreamHit> merged;
  merged.reserve(k + 1);
  for (auto& best : chunk_best) {
    detail::merge_sorted_bounded(merged, best, k, stream_better);
  }
  return merged;
}

}  // namespace hpb::core
