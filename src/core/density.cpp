#include "core/density.hpp"

#include <algorithm>
#include <cmath>

namespace hpb::core {

FactorizedDensity::FactorizedDensity(
    space::SpacePtr space, std::span<const space::Configuration> configs,
    const DensityConfig& config)
    : space_(std::move(space)), config_(config) {
  HPB_REQUIRE(space_ != nullptr, "FactorizedDensity: null space");
  const std::size_t n_params = space_->num_params();
  marginals_.reserve(n_params);
  for (std::size_t i = 0; i < n_params; ++i) {
    const auto& p = space_->param(i);
    if (p.is_discrete()) {
      stats::HistogramDensity hist(p.num_levels(), config_.histogram_smoothing);
      for (const auto& c : configs) {
        hist.add(c.level(i));
      }
      marginals_.emplace_back(std::move(hist));
    } else {
      std::vector<double> samples;
      samples.reserve(configs.size());
      for (const auto& c : configs) {
        samples.push_back(c[i]);
      }
      marginals_.emplace_back(stats::KernelDensity(
          samples, p.lo(), p.hi(), config_.kde_bandwidth));
    }
  }
}

double FactorizedDensity::log_density(const space::Configuration& c) const {
  HPB_REQUIRE(c.size() == marginals_.size(), "log_density: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < marginals_.size(); ++i) {
    if (const auto* hist = std::get_if<stats::HistogramDensity>(&marginals_[i])) {
      acc += hist->log_pmf(c.level(i));
    } else {
      acc += std::get<stats::KernelDensity>(marginals_[i]).log_pdf(c[i]);
    }
  }
  return acc;
}

double FactorizedDensity::density(const space::Configuration& c) const {
  return std::exp(log_density(c));
}

space::Configuration FactorizedDensity::sample(Rng& rng) const {
  std::vector<double> values(marginals_.size(), 0.0);
  for (std::size_t i = 0; i < marginals_.size(); ++i) {
    if (const auto* hist = std::get_if<stats::HistogramDensity>(&marginals_[i])) {
      values[i] = static_cast<double>(rng.categorical(hist->probabilities()));
    } else {
      values[i] = std::get<stats::KernelDensity>(marginals_[i]).sample(rng);
    }
  }
  return space::Configuration(std::move(values));
}

void FactorizedDensity::mix_in(const FactorizedDensity& prior, double weight) {
  HPB_REQUIRE(prior.marginals_.size() == marginals_.size(),
              "mix_in: parameter count mismatch");
  HPB_REQUIRE(weight >= 0.0, "mix_in: negative weight");
  for (std::size_t i = 0; i < marginals_.size(); ++i) {
    if (auto* hist = std::get_if<stats::HistogramDensity>(&marginals_[i])) {
      const auto* prior_hist =
          std::get_if<stats::HistogramDensity>(&prior.marginals_[i]);
      HPB_REQUIRE(prior_hist != nullptr, "mix_in: marginal kind mismatch");
      hist->mix_in(*prior_hist, weight);
    } else {
      auto& kde = std::get<stats::KernelDensity>(marginals_[i]);
      const auto* prior_kde =
          std::get_if<stats::KernelDensity>(&prior.marginals_[i]);
      HPB_REQUIRE(prior_kde != nullptr, "mix_in: marginal kind mismatch");
      kde.mix_in(*prior_kde, weight);
    }
  }
}

std::vector<double> FactorizedDensity::marginal_probabilities(
    std::size_t param) const {
  HPB_REQUIRE(param < marginals_.size(),
              "marginal_probabilities: index out of range");
  if (const auto* hist =
          std::get_if<stats::HistogramDensity>(&marginals_[param])) {
    return hist->probabilities();
  }
  const auto& kde = std::get<stats::KernelDensity>(marginals_[param]);
  const std::size_t bins = std::max<std::size_t>(2, config_.importance_bins);
  std::vector<double> probs(bins, 0.0);
  const double width = (kde.hi() - kde.lo()) / static_cast<double>(bins);
  double total = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double mid = kde.lo() + (static_cast<double>(b) + 0.5) * width;
    probs[b] = kde.pdf(mid) * width;
    total += probs[b];
  }
  // Degenerate KDE: a very tight bandwidth with samples at the domain edge
  // can put ~zero pdf mass on every bin midpoint. That is a legitimate
  // (if extreme) fit — exporting parameter importance must not kill the
  // run, so fall back to the uniform distribution instead of aborting.
  if (!(total > 0.0) || !std::isfinite(total)) {
    std::fill(probs.begin(), probs.end(),
              1.0 / static_cast<double>(bins));
    return probs;
  }
  for (double& p : probs) {
    p /= total;
  }
  return probs;
}

const stats::HistogramDensity& FactorizedDensity::histogram(
    std::size_t param) const {
  HPB_REQUIRE(param < marginals_.size(), "histogram: index out of range");
  const auto* hist = std::get_if<stats::HistogramDensity>(&marginals_[param]);
  HPB_REQUIRE(hist != nullptr, "histogram: parameter is continuous");
  return *hist;
}

const stats::KernelDensity& FactorizedDensity::kernel(std::size_t param) const {
  HPB_REQUIRE(param < marginals_.size(), "kernel: index out of range");
  const auto* kde = std::get_if<stats::KernelDensity>(&marginals_[param]);
  HPB_REQUIRE(kde != nullptr, "kernel: parameter is discrete");
  return *kde;
}

std::optional<double> FactorizedDensity::kde_bandwidth(
    std::size_t param) const {
  HPB_REQUIRE(param < marginals_.size(), "kde_bandwidth: index out of range");
  if (const auto* kde =
          std::get_if<stats::KernelDensity>(&marginals_[param])) {
    return kde->bandwidth();
  }
  return std::nullopt;
}

}  // namespace hpb::core
