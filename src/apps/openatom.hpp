// Simulated OpenAtom dataset (§IV-A, §V-D).
//
// OpenAtom is a Charm++ ab-initio molecular-dynamics code; the paper tunes
// the over-decomposition grain sizes and density/pair-calculator options
// (8 parameters, ~8928 configurations). Table I parameter names: sgrain,
// rhorx, rhory, rhohx, rhohy, gratio, rhoratio, ortho. Anchors from §V-D:
// expert symmetric decomposition = 1.6 s, best = 1.24 s.
#pragma once

#include <cstdint>

#include "space/parameter_space.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::apps {

inline constexpr std::uint64_t kOpenAtomSeed = 0xC0FFEE04;

/// sgrain (8) × rhorx (4) × rhory (4) × rhohx (3) × rhohy (3) × gratio (2)
/// × rhoratio (2) × ortho (2) = 9216 configurations (paper: 8928).
[[nodiscard]] space::SpacePtr openatom_space();

/// The dataset, calibrated to best = 1.24 s and the expert symmetric
/// decomposition = 1.6 s.
[[nodiscard]] tabular::TabularObjective make_openatom(
    std::uint64_t seed = kOpenAtomSeed);

/// Expert choice of §V-D: symmetric decomposition (equal grains in x/y).
[[nodiscard]] space::Configuration openatom_expert(
    const space::ParameterSpace& space);

}  // namespace hpb::apps
