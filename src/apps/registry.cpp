#include "apps/registry.hpp"

#include "apps/hypre.hpp"
#include "apps/kripke.hpp"
#include "apps/lulesh.hpp"
#include "apps/openatom.hpp"
#include "apps/systolic.hpp"
#include "common/error.hpp"

namespace hpb::apps {

const std::vector<DatasetInfo>& dataset_registry() {
  static const std::vector<DatasetInfo> registry = {
      {"kripke", [] { return make_kripke_exec(); }, 15.2, "expert"},
      {"kripke_energy", [] { return make_kripke_energy(); }, 4742.0,
       "expert"},
      {"hypre", [] { return make_hypre(); }, std::nullopt, ""},
      {"lulesh", [] { return make_lulesh(); }, 6.02, "-O3"},
      {"openAtom", [] { return make_openatom(); }, 1.6, "expert"},
      {"systolic_small", [] { return make_systolic_small(); }, std::nullopt,
       ""},
  };
  return registry;
}

const DatasetInfo& dataset_by_name(const std::string& name) {
  for (const auto& info : dataset_registry()) {
    if (info.name == name) {
      return info;
    }
  }
  HPB_REQUIRE(false, "dataset_by_name: unknown dataset '" + name + "'");
  return dataset_registry().front();  // unreachable
}

}  // namespace hpb::apps
