#include "apps/hypre.hpp"

#include "surface/surface.hpp"

namespace hpb::apps {
namespace {

using space::Parameter;
using space::ParameterSpace;

}  // namespace

space::SpacePtr hypre_space() {
  auto s = std::make_shared<ParameterSpace>();
  s->add(Parameter::categorical("Solver",
                                {"AMG", "AMG-PCG", "AMG-GMRES", "AMG-BiCGSTAB"}));
  s->add(Parameter::categorical("Smoother", {"Jacobi", "GS-forward",
                                             "GS-backward", "Hybrid-SGS",
                                             "L1-GS", "Chebyshev"}));
  s->add(Parameter::categorical_numeric("Ranks", {1, 2, 4, 8, 16, 32}));
  s->add(Parameter::categorical_numeric("OMP", {1, 2, 4, 8}));
  s->add(Parameter::categorical_numeric("MU", {0, 1, 2, 3}));
  s->add(Parameter::categorical_numeric("PMX", {4, 8}));
  return s;
}

tabular::TabularObjective make_hypre(std::uint64_t seed) {
  auto sp = hypre_space();
  surface::SurfaceBuilder b(sp, seed);
  // Strengths follow Table I's full-dataset ranking:
  // Ranks (0.49) > OMP (0.32) > Solver (0.26) >> Smoother, MU, PMX (~0).
  b.base(1.0)
      .random_main_effect("Ranks", 0.55)
      .random_main_effect("OMP", 0.38)
      .random_main_effect("Solver", 0.30)
      .random_main_effect("Smoother", 0.04)
      .random_main_effect("MU", 0.02)
      .random_main_effect("PMX", 0.015)
      .random_interaction("Ranks", "OMP", 0.12)
      .random_interaction("Solver", "Smoother", 0.05)
      .noise(0.03);
  // Quantile anchoring (median → 6.9 s) keeps the bulk of the lognormal
  // distribution well away from the 3.45 s optimum, reproducing the
  // "few samples close to the best performing bins" shape of §V-B.
  return surface::calibrate_to_quantile("hypre", b.build(), 3.45, 0.5, 6.9);
}

space::SpacePtr hypre_transfer_space() {
  auto s = std::make_shared<ParameterSpace>();
  s->add(Parameter::categorical("Solver",
                                {"AMG", "AMG-PCG", "AMG-GMRES", "AMG-BiCGSTAB"}));
  s->add(Parameter::categorical("Smoother", {"Jacobi", "GS-forward",
                                             "GS-backward", "Hybrid-SGS",
                                             "L1-GS", "Chebyshev", "FCF-Jacobi",
                                             "Polynomial"}));
  s->add(Parameter::categorical_numeric("Ranks", {1, 2, 4, 8, 16, 32}));
  s->add(Parameter::categorical_numeric("OMP", {1, 2, 4, 8, 16}));
  s->add(Parameter::categorical_numeric("MU", {0, 1, 2, 3}));
  s->add(Parameter::categorical_numeric("PMX", {4, 6, 8}));
  s->add(Parameter::categorical("Coarsen",
                                {"Falgout", "HMIS", "PMIS", "Ruge-Stueben",
                                 "CLJP"}));
  return s;
}

}  // namespace hpb::apps
