#include "apps/minisolver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace hpb::apps {
namespace {

using space::Parameter;

// Solver levels (must match the categorical order below).
enum Solver : std::size_t {
  kJacobi = 0,
  kGaussSeidel,
  kSor,
  kCg,
  kPcgJacobi,
  kPcgSsor,
  kMultigrid,
};

space::SpacePtr make_solver_space() {
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(Parameter::categorical(
      "Solver", {"Jacobi", "GaussSeidel", "SOR", "CG", "PCG-Jacobi",
                 "PCG-SSOR", "MG"}));
  s->add(Parameter::categorical_numeric("Omega",
                                        {0.8, 1.0, 1.2, 1.4, 1.6, 1.8}));
  s->add(Parameter::categorical_numeric("Sweeps", {1, 2, 3}));
  return s;
}

double norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) {
    acc += x * x;
  }
  return std::sqrt(acc);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

}  // namespace

MiniSolverObjective::MiniSolverObjective(MiniSolverWorkload workload)
    : workload_(workload), space_(make_solver_space()) {
  HPB_REQUIRE(workload_.grid >= 8 && workload_.grid % 2 == 0,
              "MiniSolver: grid must be even and >= 8");
  HPB_REQUIRE(workload_.tolerance > 0.0, "MiniSolver: tolerance must be > 0");
  HPB_REQUIRE(workload_.max_iters >= 1 && workload_.repeats >= 1,
              "MiniSolver: iters and repeats must be >= 1");
  const std::size_t n = workload_.grid;
  rhs_.resize(n * n);
  for (std::size_t i = 0; i < rhs_.size(); ++i) {
    rhs_[i] = hash_to_unit(splitmix64(0x5017E6 + i)) - 0.25;
  }
  rhs_norm_ = norm(rhs_);
}

void MiniSolverObjective::apply(const std::vector<double>& x,
                                std::vector<double>& y) const {
  const std::size_t n = workload_.grid;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = j * n + i;
      double acc = 4.0 * x[k];
      if (i > 0) acc -= x[k - 1];
      if (i + 1 < n) acc -= x[k + 1];
      if (j > 0) acc -= x[k - n];
      if (j + 1 < n) acc -= x[k + n];
      y[k] = acc;
    }
  }
}

void MiniSolverObjective::jacobi_pass(std::vector<double>& x,
                                      const std::vector<double>& b,
                                      double omega) const {
  const std::size_t n = workload_.grid;
  static thread_local std::vector<double> ax;
  ax.resize(n * n);
  apply(x, ax);
  for (std::size_t k = 0; k < x.size(); ++k) {
    x[k] += omega * (b[k] - ax[k]) / 4.0;
  }
}

void MiniSolverObjective::sor_pass(std::vector<double>& x,
                                   const std::vector<double>& b, double omega,
                                   bool forward) const {
  const std::size_t n = workload_.grid;
  auto relax = [&](std::size_t i, std::size_t j) {
    const std::size_t k = j * n + i;
    double acc = b[k];
    if (i > 0) acc += x[k - 1];
    if (i + 1 < n) acc += x[k + 1];
    if (j > 0) acc += x[k - n];
    if (j + 1 < n) acc += x[k + n];
    x[k] += omega * (acc / 4.0 - x[k]);
  };
  if (forward) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        relax(i, j);
      }
    }
  } else {
    for (std::size_t jj = n; jj-- > 0;) {
      for (std::size_t ii = n; ii-- > 0;) {
        relax(ii, jj);
      }
    }
  }
}

void MiniSolverObjective::vcycle(std::vector<double>& x,
                                 const std::vector<double>& b,
                                 double omega) const {
  const std::size_t n = workload_.grid;
  const std::size_t nc = n / 2;

  // Pre-smooth.
  sor_pass(x, b, omega, /*forward=*/true);

  // Residual and full-block restriction (average of each 2×2 block).
  std::vector<double> r(n * n);
  apply(x, r);
  for (std::size_t k = 0; k < r.size(); ++k) {
    r[k] = b[k] - r[k];
  }
  std::vector<double> rc(nc * nc, 0.0);
  for (std::size_t J = 0; J < nc; ++J) {
    for (std::size_t I = 0; I < nc; ++I) {
      const std::size_t i = 2 * I, j = 2 * J;
      rc[J * nc + I] = 0.25 * (r[j * n + i] + r[j * n + i + 1] +
                               r[(j + 1) * n + i] + r[(j + 1) * n + i + 1]);
    }
  }

  // Approximate coarse solve: SOR sweeps on the rediscretized operator.
  // (The coarse 5-point operator on the half grid plays the role of the
  // Galerkin product; 4·h-scaling folds into the correction below.)
  std::vector<double> ec(nc * nc, 0.0);
  auto coarse_sor = [&]() {
    for (std::size_t J = 0; J < nc; ++J) {
      for (std::size_t I = 0; I < nc; ++I) {
        const std::size_t k = J * nc + I;
        double acc = rc[k];
        if (I > 0) acc += ec[k - 1];
        if (I + 1 < nc) acc += ec[k + 1];
        if (J > 0) acc += ec[k - nc];
        if (J + 1 < nc) acc += ec[k + nc];
        ec[k] += 1.2 * (acc / 4.0 - ec[k]);
      }
    }
  };
  for (int s = 0; s < 30; ++s) {
    coarse_sor();
  }

  // Piecewise-constant prolongation with the matching 1/4 scaling.
  for (std::size_t J = 0; J < nc; ++J) {
    for (std::size_t I = 0; I < nc; ++I) {
      const double e = ec[J * nc + I];
      const std::size_t i = 2 * I, j = 2 * J;
      x[j * n + i] += e;
      x[j * n + i + 1] += e;
      x[(j + 1) * n + i] += e;
      x[(j + 1) * n + i + 1] += e;
    }
  }

  // Post-smooth (reverse order keeps the cycle roughly symmetric).
  sor_pass(x, b, omega, /*forward=*/false);
}

void MiniSolverObjective::precondition(std::size_t kind, double omega,
                                       const std::vector<double>& r,
                                       std::vector<double>& z) const {
  switch (kind) {
    case kPcgJacobi:
      for (std::size_t k = 0; k < r.size(); ++k) {
        z[k] = r[k] / 4.0;
      }
      return;
    case kPcgSsor: {
      std::fill(z.begin(), z.end(), 0.0);
      sor_pass(z, r, omega, /*forward=*/true);
      sor_pass(z, r, omega, /*forward=*/false);
      return;
    }
    default:  // plain CG: identity
      z = r;
      return;
  }
}

double MiniSolverObjective::evaluate(const space::Configuration& c) {
  const std::size_t kind = c.level(0);
  const double omega = space_->param(1).level_value(c.level(1));
  const auto sweeps =
      static_cast<std::size_t>(space_->param(2).level_value(c.level(2)));
  const std::size_t unknowns = workload_.grid * workload_.grid;
  const double target = workload_.tolerance * rhs_norm_;

  double best = 0.0;
  for (std::size_t rep = 0; rep < workload_.repeats; ++rep) {
    std::vector<double> x(unknowns, 0.0);
    const auto start = std::chrono::steady_clock::now();
    iterations_ = 0;
    converged_ = false;

    if (kind == kCg || kind == kPcgJacobi || kind == kPcgSsor) {
      // (Preconditioned) conjugate gradients.
      std::vector<double> r = rhs_;  // x0 = 0
      std::vector<double> z(unknowns), p(unknowns), ap(unknowns);
      precondition(kind, omega, r, z);
      p = z;
      double rz = dot(r, z);
      for (std::size_t it = 0; it < workload_.max_iters; ++it) {
        ++iterations_;
        apply(p, ap);
        const double alpha = rz / dot(p, ap);
        for (std::size_t k = 0; k < unknowns; ++k) {
          x[k] += alpha * p[k];
          r[k] -= alpha * ap[k];
        }
        if (norm(r) < target) {
          converged_ = true;
          break;
        }
        precondition(kind, omega, r, z);
        const double rz_next = dot(r, z);
        const double beta = rz_next / rz;
        rz = rz_next;
        for (std::size_t k = 0; k < unknowns; ++k) {
          p[k] = z[k] + beta * p[k];
        }
      }
    } else {
      // Stationary iterations (Jacobi / GS / SOR / two-grid MG), with the
      // Sweeps parameter controlling passes per convergence check.
      std::vector<double> r(unknowns);
      for (std::size_t it = 0; it < workload_.max_iters; ++it) {
        ++iterations_;
        for (std::size_t s = 0; s < sweeps; ++s) {
          switch (kind) {
            case kJacobi:
              jacobi_pass(x, rhs_, std::min(omega, 1.0));  // ω>1 diverges
              break;
            case kGaussSeidel:
              sor_pass(x, rhs_, 1.0, true);
              break;
            case kSor:
              sor_pass(x, rhs_, omega, true);
              break;
            default:  // kMultigrid
              vcycle(x, rhs_, omega);
              break;
          }
        }
        apply(x, r);
        double rn = 0.0;
        for (std::size_t k = 0; k < unknowns; ++k) {
          const double d = rhs_[k] - r[k];
          rn += d * d;
        }
        if (std::sqrt(rn) < target) {
          converged_ = true;
          break;
        }
      }
    }

    const auto stop = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(stop - start).count();
    best = (rep == 0) ? elapsed : std::min(best, elapsed);

    std::vector<double> r(unknowns);
    apply(x, r);
    double rn = 0.0;
    for (std::size_t k = 0; k < unknowns; ++k) {
      const double d = rhs_[k] - r[k];
      rn += d * d;
    }
    residual_ = std::sqrt(rn) / rhs_norm_;
    checksum_ = 0.0;
    for (double v : x) {
      checksum_ += v;
    }
  }
  return best;
}

}  // namespace hpb::apps
