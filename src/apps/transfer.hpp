// Source/target dataset pairs for the transfer-learning study (§III-E,
// §VII).
//
// The paper's source domain is the same application run at smaller scale
// (16 nodes instead of 64) on a smaller problem; it "shares run-time
// characteristics" with the target without matching it exactly. We model
// this with two surfaces: a *shared* structure surface and a *private*
// target-only surface, blended in log space —
//
//   log f_target(x) = ρ · log f_shared(x) + (1 − ρ) · log f_private(x)
//
// so ρ (the source→target correlation) is an explicit, ablatable knob
// (bench/ablation_transfer_weight sweeps it). The source dataset is the
// shared surface alone at small-scale calibration anchors.
#pragma once

#include <cstdint>

#include "tabular/tabular_objective.hpp"

namespace hpb::apps {

struct TransferPair {
  tabular::TabularObjective source;
  tabular::TabularObjective target;
};

inline constexpr std::uint64_t kTransferSeed = 0xC0FFEE05;

/// Kripke at 16 nodes (source) → 64 nodes (target) over the power-capped
/// space (paper: 17815 source / 17385 target configurations; ours: 18480
/// each). correlation = ρ above.
[[nodiscard]] TransferPair make_kripke_transfer(
    double correlation = 0.9, std::uint64_t seed = kTransferSeed);

/// HYPRE new_ij over the extended 7-parameter space (paper: 57313 source /
/// 50395 target configurations; ours: 57600 each).
[[nodiscard]] TransferPair make_hypre_transfer(
    double correlation = 0.9, std::uint64_t seed = kTransferSeed + 1);

}  // namespace hpb::apps
