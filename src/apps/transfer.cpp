#include "apps/transfer.hpp"

#include <cmath>

#include "apps/hypre.hpp"
#include "apps/kripke.hpp"
#include "surface/surface.hpp"

namespace hpb::apps {
namespace {

/// Build the target dataset as the log-space blend of the shared and
/// private surfaces, then calibrate to [best, worst].
tabular::TabularObjective blend_and_calibrate(
    std::string name, const surface::Surface& shared,
    const surface::Surface& private_surface, double correlation, double best,
    double worst) {
  HPB_REQUIRE(correlation >= 0.0 && correlation <= 1.0,
              "transfer: correlation must be in [0,1]");
  auto raw = [&](const space::Configuration& c) {
    return std::exp(correlation * std::log(shared.raw(c)) +
                    (1.0 - correlation) * std::log(private_surface.raw(c)));
  };
  // Two-pass affine calibration identical to calibrate_to_range but over
  // the blended values.
  double raw_min = 0.0, raw_max = 0.0;
  bool first = true;
  for (const auto& c : shared.space().enumerate()) {
    const double v = raw(c);
    raw_min = first ? v : std::min(raw_min, v);
    raw_max = first ? v : std::max(raw_max, v);
    first = false;
  }
  const double scale = (worst - best) / (raw_max - raw_min);
  const double offset = best - scale * raw_min;
  return tabular::TabularObjective::from_function(
      std::move(name), shared.space_ptr(),
      [&raw, scale, offset](const space::Configuration& c) {
        return offset + scale * raw(c);
      });
}

/// Kripke-at-scale surface structure; `seed` controls all random effects so
/// shared/private variants come from different seeds.
surface::Surface kripke_scale_surface(space::SpacePtr sp, std::uint64_t seed) {
  surface::SurfaceBuilder b(sp, seed);
  b.base(1.0)
      .random_main_effect("Ranks", 0.38)
      .random_main_effect("OMP", 0.24)
      .random_main_effect("Dset", 0.18)
      .random_main_effect("Gset", 0.16)
      .random_main_effect("Nesting", 0.14)
      .random_main_effect("PKG_LIMIT", 0.10)
      .random_interaction("Ranks", "OMP", 0.10)
      .random_interaction("Gset", "Dset", 0.07)
      .random_interaction("PKG_LIMIT", "OMP", 0.05)
      .noise(0.025);
  return b.build();
}

surface::Surface hypre_scale_surface(space::SpacePtr sp, std::uint64_t seed) {
  surface::SurfaceBuilder b(sp, seed);
  b.base(1.0)
      .random_main_effect("Ranks", 0.50)
      .random_main_effect("OMP", 0.34)
      .random_main_effect("Solver", 0.28)
      .random_main_effect("Coarsen", 0.10)
      .random_main_effect("Smoother", 0.05)
      .random_main_effect("MU", 0.02)
      .random_main_effect("PMX", 0.02)
      .random_interaction("Ranks", "OMP", 0.12)
      .random_interaction("Solver", "Coarsen", 0.06)
      .noise(0.025);
  return b.build();
}

}  // namespace

TransferPair make_kripke_transfer(double correlation, std::uint64_t seed) {
  auto sp = kripke_energy_space();
  const surface::Surface shared = kripke_scale_surface(sp, seed);
  const surface::Surface priv = kripke_scale_surface(sp, splitmix64(seed));
  // Source: 16-node small problem (fast runs, cheap to collect). The wide
  // worst/best ratio mirrors the measured datasets: a badly configured
  // transport run at scale is tens of times slower than the best one, which
  // is what makes the paper's "good case" counts (2-18 configurations of
  // ~17k within 5-20%% of the best, Fig. 8a) so small.
  tabular::TabularObjective source =
      surface::calibrate_to_range("kripke_src16", shared, 5.0, 120.0);
  // Target: 64-node production problem.
  tabular::TabularObjective target = blend_and_calibrate(
      "kripke_tgt64", shared, priv, correlation, 20.0, 500.0);
  return {std::move(source), std::move(target)};
}

TransferPair make_hypre_transfer(double correlation, std::uint64_t seed) {
  auto sp = hypre_transfer_space();
  const surface::Surface shared = hypre_scale_surface(sp, seed);
  const surface::Surface priv = hypre_scale_surface(sp, splitmix64(seed));
  // HYPRE's good-case counts in Fig. 8b (8-190 of ~50k) imply a slightly
  // denser near-optimal region than Kripke's; the narrower ratio here
  // reproduces that.
  tabular::TabularObjective source =
      surface::calibrate_to_range("hypre_src16", shared, 1.2, 90.0);
  tabular::TabularObjective target = blend_and_calibrate(
      "hypre_tgt64", shared, priv, correlation, 4.4, 330.0);
  return {std::move(source), std::move(target)};
}

}  // namespace hpb::apps
