// Simulated LULESH compiler-flag dataset (§IV-A, §V-C).
//
// LULESH is the LLNL shock-hydrodynamics proxy app; the paper tunes eleven
// compiler-flag options (~4800 configurations). Users default to -O3, which
// the paper reports at 6.02 s versus a best of 2.72 s — both are used as
// calibration anchors here. Flag names follow Table I (level, malloc,
// force, builtin, unroll, noipo, strategy, functions) plus three extra
// binary flags to reach the paper's eleven.
#pragma once

#include <cstdint>

#include "space/parameter_space.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::apps {

inline constexpr std::uint64_t kLuleshSeed = 0xC0FFEE03;

/// 11 flags: level (4) × unroll (3) × 9 binary flags, constrained so that
/// aggressive unrolling requires at least -O2 → 5632 configurations
/// (paper: 4800).
[[nodiscard]] space::SpacePtr lulesh_space();

/// The dataset, calibrated to best = 2.72 s and -O3 defaults = 6.02 s.
[[nodiscard]] tabular::TabularObjective make_lulesh(
    std::uint64_t seed = kLuleshSeed);

/// The "-O3 with default flags" configuration quoted in §V-C.
[[nodiscard]] space::Configuration lulesh_default_o3(
    const space::ParameterSpace& space);

}  // namespace hpb::apps
