#include "apps/minisweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace hpb::apps {
namespace {

using space::Parameter;

space::SpacePtr make_sweep_space(const MiniSweepWorkload& w) {
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(Parameter::categorical(
      "Nesting", {"DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"}));
  // Block sizes must divide the group/direction counts.
  std::vector<double> gsets, dsets;
  for (std::size_t b = 1; b <= w.groups; b *= 2) {
    if (w.groups % b == 0) {
      gsets.push_back(static_cast<double>(w.groups / b));
    }
  }
  for (std::size_t b = 1; b <= w.directions; b *= 2) {
    if (w.directions % b == 0) {
      dsets.push_back(static_cast<double>(w.directions / b));
    }
  }
  s->add(Parameter::categorical_numeric("Gset", gsets));
  s->add(Parameter::categorical_numeric("Dset", dsets));
#ifdef _OPENMP
  s->add(Parameter::categorical_numeric(
      "Threads",
      {1.0, 2.0, static_cast<double>(std::min(4, omp_get_max_threads()))}));
#else
  s->add(Parameter::categorical_numeric("Threads", {1.0}));
#endif
  return s;
}

/// Storage strides of psi for one of the six (D, G, Z)-nesting layouts:
/// index(z, g, d) = z·sz + g·sg + d·sd. The first letter is the slowest
/// (outermost) storage dimension.
struct Strides {
  std::size_t sz, sg, sd;
};

Strides layout_strides(std::size_t nesting, std::size_t nz, std::size_t ng,
                       std::size_t nd) {
  switch (nesting) {
    case 0:  // DGZ: d slowest, then g, z fastest
      return {1, nz, ng * nz};
    case 1:  // DZG
      return {ng, 1, nz * ng};
    case 2:  // GDZ
      return {1, nd * nz, nz};
    case 3:  // GZD
      return {nd, nz * nd, 1};
    case 4:  // ZDG
      return {nd * ng, 1, ng};
    default:  // ZGD
      return {ng * nd, nd, 1};
  }
}

}  // namespace

MiniSweepObjective::MiniSweepObjective(MiniSweepWorkload workload)
    : workload_(workload), space_(make_sweep_space(workload)) {
  HPB_REQUIRE(workload_.zones >= 4, "MiniSweep: grid too small");
  HPB_REQUIRE(workload_.groups >= 1 && workload_.directions >= 1,
              "MiniSweep: need groups and directions");
  HPB_REQUIRE(workload_.sweeps >= 1 && workload_.repeats >= 1,
              "MiniSweep: sweeps and repeats must be >= 1");
  const std::size_t nz = workload_.zones * workload_.zones;
  psi_.resize(nz * workload_.groups * workload_.directions);
  phi_.resize(nz * workload_.groups);
  sigma_.resize(nz * workload_.groups);
  source_.resize(nz * workload_.groups);
  // Deterministic heterogeneous material: cross sections and sources from
  // hash noise (same for every configuration).
  for (std::size_t i = 0; i < sigma_.size(); ++i) {
    sigma_[i] = 1.0 + 0.5 * hash_to_unit(splitmix64(0x51634A + i));
    source_[i] = 0.5 + hash_to_unit(splitmix64(0x50136CE + i));
  }
}

double MiniSweepObjective::evaluate(const space::Configuration& c) {
  const std::size_t n = workload_.zones;
  const std::size_t ng = workload_.groups;
  const std::size_t nd = workload_.directions;
  const std::size_t nz = n * n;

  const std::size_t nesting = c.level(0);
  const auto gset = static_cast<std::size_t>(
      space_->param(1).level_value(c.level(1)));
  const auto dset = static_cast<std::size_t>(
      space_->param(2).level_value(c.level(2)));
  const int threads =
      static_cast<int>(space_->param(3).level_value(c.level(3)));
#ifndef _OPENMP
  (void)threads;
#endif
  const Strides st = layout_strides(nesting, nz, ng, nd);

  // Ordinates: mu_d, eta_d > 0 (one quadrant), equal weights.
  std::vector<double> mu(nd), eta(nd), weight(nd, 1.0 / static_cast<double>(nd));
  for (std::size_t d = 0; d < nd; ++d) {
    const double angle =
        (static_cast<double>(d) + 0.5) / static_cast<double>(nd) *
        1.5707963267948966;  // (0, pi/2)
    mu[d] = std::cos(angle);
    eta[d] = std::sin(angle);
  }
  const double dx = 1.0 / static_cast<double>(n);

  // Upwind edge fluxes: left[(g,d)] for the current row position, and
  // bottom[(i,g,d)] persisting across rows. Works for every loop nesting
  // because left is reset whenever a (g,d) pair starts a row (i == 0) and
  // bottom cells are written exactly once per row before the next row
  // reads them.
  std::vector<double> left(ng * nd);
  std::vector<double> bottom(n * ng * nd);

  double best = 0.0;
  for (std::size_t rep = 0; rep < workload_.repeats; ++rep) {
    std::fill(phi_.begin(), phi_.end(), 0.0);
    const auto start = std::chrono::steady_clock::now();

    for (std::size_t sweep = 0; sweep < workload_.sweeps; ++sweep) {
      std::fill(bottom.begin(), bottom.end(), 1.0);  // boundary flux

      // One diamond-difference cell update; psi is stored in the layout
      // order so the Nesting choice changes the store/load stride pattern.
      auto update_cell =
          [&](std::size_t i, std::size_t j, std::size_t g, std::size_t d) {
            if (i == 0) {
              left[g * nd + d] = 1.0;  // boundary flux at row start
            }
            const std::size_t z = j * n + i;
            const double psi_l = left[g * nd + d];
            const double psi_b = bottom[(i * ng + g) * nd + d];
            const double cm = 2.0 * mu[d] / dx;
            const double ce = 2.0 * eta[d] / dx;
            const double q = source_[z * ng + g] +
                             0.3 * phi_[z * ng + g];  // scattering feedback
            const double psi =
                (q + cm * psi_l + ce * psi_b) /
                (sigma_[z * ng + g] + cm + ce);
            psi_[z * st.sz + g * st.sg + d * st.sd] = psi;
            left[g * nd + d] = std::max(2.0 * psi - psi_l, 0.0);
            bottom[(i * ng + g) * nd + d] = std::max(2.0 * psi - psi_b, 0.0);
          };

      // Blocked loops over group-sets and direction-sets; within a block
      // the Nesting decides the loop order (zone traversal is always
      // j-then-i to honor the wavefront dependency). Blocks partition the
      // (group, direction) plane and touch disjoint psi/left/bottom
      // slices, so the block grid parallelizes safely for every nesting.
      const std::size_t n_gblocks = (ng + gset - 1) / gset;
      const std::size_t n_dblocks = (nd + dset - 1) / dset;
      const std::size_t n_blocks = n_gblocks * n_dblocks;
#ifdef _OPENMP
#pragma omp parallel for num_threads(threads) schedule(static)
#endif
      for (std::size_t block = 0; block < n_blocks; ++block) {
        const std::size_t g0 = (block / n_dblocks) * gset;
        {
          const std::size_t d0 = (block % n_dblocks) * dset;
          const std::size_t g1 = std::min(g0 + gset, ng);
          const std::size_t d1 = std::min(d0 + dset, nd);
          switch (nesting) {
            case 0:  // DGZ
              for (std::size_t d = d0; d < d1; ++d)
                for (std::size_t g = g0; g < g1; ++g)
                  for (std::size_t j = 0; j < n; ++j)
                    for (std::size_t i = 0; i < n; ++i)
                      update_cell(i, j, g, d);
              break;
            case 1:  // DZG
              for (std::size_t d = d0; d < d1; ++d)
                for (std::size_t j = 0; j < n; ++j)
                  for (std::size_t i = 0; i < n; ++i)
                    for (std::size_t g = g0; g < g1; ++g)
                      update_cell(i, j, g, d);
              break;
            case 2:  // GDZ
              for (std::size_t g = g0; g < g1; ++g)
                for (std::size_t d = d0; d < d1; ++d)
                  for (std::size_t j = 0; j < n; ++j)
                    for (std::size_t i = 0; i < n; ++i)
                      update_cell(i, j, g, d);
              break;
            case 3:  // GZD
              for (std::size_t g = g0; g < g1; ++g)
                for (std::size_t j = 0; j < n; ++j)
                  for (std::size_t i = 0; i < n; ++i)
                    for (std::size_t d = d0; d < d1; ++d)
                      update_cell(i, j, g, d);
              break;
            case 4:  // ZDG
              for (std::size_t j = 0; j < n; ++j)
                for (std::size_t i = 0; i < n; ++i)
                  for (std::size_t d = d0; d < d1; ++d)
                    for (std::size_t g = g0; g < g1; ++g)
                      update_cell(i, j, g, d);
              break;
            default:  // ZGD
              for (std::size_t j = 0; j < n; ++j)
                for (std::size_t i = 0; i < n; ++i)
                  for (std::size_t g = g0; g < g1; ++g)
                    for (std::size_t d = d0; d < d1; ++d)
                      update_cell(i, j, g, d);
              break;
          }
        }
      }

      // Scalar flux moment: phi(z, g) = Σ_d w_d ψ(z, g, d).
      std::fill(phi_.begin(), phi_.end(), 0.0);
      for (std::size_t z = 0; z < nz; ++z) {
        for (std::size_t g = 0; g < ng; ++g) {
          double acc = 0.0;
          for (std::size_t d = 0; d < nd; ++d) {
            acc += weight[d] * psi_[z * st.sz + g * st.sg + d * st.sd];
          }
          phi_[z * ng + g] = acc;
        }
      }
    }

    const auto stop = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(stop - start).count();
    best = (rep == 0) ? elapsed : std::min(best, elapsed);
  }

  checksum_ = 0.0;
  for (double v : phi_) {
    checksum_ += v;
  }
  return best;
}

}  // namespace hpb::apps
