// Simulated Kripke datasets (§IV-A, §V-A).
//
// Kripke is LLNL's discrete-ordinates SN transport proxy app. The paper
// tunes data-layout nesting, group/direction set counts, OpenMP threads and
// MPI ranks (execution-time study, ~1609 configurations) and additionally a
// hardware power cap (energy study, ~17815 configurations).
//
// Parameter names and the relative importance ordering follow Table I;
// best/expert anchors follow §V-A: best execution time 8.43 s vs. expert
// choice 15.2 s; expert energy 4742 J at the 2nd-highest power level.
#pragma once

#include <cstdint>

#include "space/parameter_space.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::apps {

inline constexpr std::uint64_t kKripkeSeed = 0xC0FFEE01;

/// Parameter space of the execution-time study: Nesting (6 layouts),
/// Gset {1,2,4,8,16}, Dset {1,2,4,8}, OMP {1,2,4,8}, Ranks {1,2,4,8,16},
/// constrained to full-node occupancy 8 <= Ranks × OMP <= 32.
[[nodiscard]] space::SpacePtr kripke_exec_space();

/// The execution-time dataset, calibrated to best = 8.43 s and the expert
/// configuration (best nesting at default sets/threads) = 15.2 s.
[[nodiscard]] tabular::TabularObjective make_kripke_exec(
    std::uint64_t seed = kKripkeSeed);

/// Expert choice of §V-A: manually picked loop ordering with default
/// group/direction sets (objective value 15.2 s after calibration).
[[nodiscard]] space::Configuration kripke_exec_expert(
    const space::ParameterSpace& space);

/// Parameter space of the energy study: the execution-time parameters plus
/// an 11-level package power cap PKG_LIMIT {50..150 W}.
[[nodiscard]] space::SpacePtr kripke_energy_space();

/// The energy dataset, calibrated to best = 2447 J and the expert choice
/// (2nd-highest power level, default layout) = 4742 J.
[[nodiscard]] tabular::TabularObjective make_kripke_energy(
    std::uint64_t seed = kKripkeSeed + 1);

[[nodiscard]] space::Configuration kripke_energy_expert(
    const space::ParameterSpace& space);

/// Bi-objective Kripke: execution time AND energy over the same
/// power-capped space, from one coupled surface family — capping the
/// package power slows the run (time up) while cutting draw (energy down
/// until the runtime stretch dominates), so the two objectives genuinely
/// trade off along the PKG_LIMIT axis. Used by bench/pareto_kripke.
struct KripkeTimeEnergy {
  tabular::TabularObjective time;    // seconds
  tabular::TabularObjective energy;  // joules
};

[[nodiscard]] KripkeTimeEnergy make_kripke_time_energy(
    std::uint64_t seed = kKripkeSeed + 2);

}  // namespace hpb::apps
