#include "apps/lulesh.hpp"

#include "surface/surface.hpp"

namespace hpb::apps {
namespace {

using space::Configuration;
using space::Parameter;
using space::ParameterSpace;

}  // namespace

space::SpacePtr lulesh_space() {
  auto s = std::make_shared<ParameterSpace>();
  s->add(Parameter::categorical("level", {"O1", "O2", "O3", "Ofast"}));
  s->add(Parameter::categorical("unroll", {"none", "enable", "aggressive"}));
  s->add(Parameter::categorical("malloc", {"default", "optimized"}));
  s->add(Parameter::categorical("builtin", {"off", "on"}));
  s->add(Parameter::categorical("force", {"off", "on"}));
  s->add(Parameter::categorical("noipo", {"off", "on"}));
  s->add(Parameter::categorical("strategy", {"basic", "aggressive"}));
  s->add(Parameter::categorical("functions", {"default", "expanded"}));
  s->add(Parameter::categorical("fpmodel", {"precise", "fast"}));
  s->add(Parameter::categorical("prefetch", {"off", "on"}));
  s->add(Parameter::categorical("simd", {"off", "on"}));
  // Aggressive unrolling is only accepted at -O2 and above.
  s->add_constraint(
      [](const ParameterSpace& sp, const Configuration& c) {
        const std::size_t level = c.level(sp.index_of("level"));
        const std::size_t unroll = c.level(sp.index_of("unroll"));
        return !(level == 0 && unroll == 2);
      },
      "unroll=aggressive requires -O2 or higher");
  return s;
}

Configuration lulesh_default_o3(const ParameterSpace& space) {
  Configuration c(std::vector<double>(space.num_params(), 0.0));
  c.set_level(space.index_of("level"), 2);  // -O3, every other flag default
  return c;
}

tabular::TabularObjective make_lulesh(std::uint64_t seed) {
  auto sp = lulesh_space();
  surface::SurfaceBuilder b(sp, seed);
  // Effect sizes follow Table I's full-dataset ranking: builtin (0.21) >
  // malloc (0.17) > unroll (0.13) > level (0.04) > force (0.03) >
  // noipo (0.01) > strategy, functions (~0). Explicit tables rather than
  // seed-derived draws pin the ranking exactly; the -O3-default anchor of
  // 6.02 s vs best 2.72 s emerges from the product of the "good flag"
  // speedups (builtin·malloc·unroll·force·fpmodel·simd ≈ 0.40).
  b.base(1.0)
      .main_effect("builtin", {1.00, 0.70})
      .main_effect("malloc", {1.00, 0.75})
      .main_effect("unroll", {1.00, 0.88, 0.81})
      .main_effect("level", {1.09, 1.03, 1.00, 0.99})
      .main_effect("force", {1.00, 0.95})
      .main_effect("noipo", {1.00, 1.025})
      .main_effect("strategy", {1.00, 1.006})
      .main_effect("functions", {1.00, 1.004})
      .main_effect("fpmodel", {1.00, 0.965})
      .main_effect("prefetch", {1.00, 0.985})
      .main_effect("simd", {1.00, 0.96})
      .random_interaction("builtin", "unroll", 0.04)
      .random_interaction("malloc", "level", 0.03)
      .noise(0.02);
  const surface::Surface surf = b.build();
  return surface::calibrate_to_anchor("lulesh", surf, 2.72,
                                      lulesh_default_o3(*sp), 6.02);
}

}  // namespace hpb::apps
