// Simulated HYPRE new_ij datasets (§IV-A, §V-B, §VII-B).
//
// HYPRE's new_ij benchmark exercises the BoomerAMG solver stack. The paper
// tunes solver, smoother, MPI ranks, OpenMP threads, and the AMG cycle
// parameters MU (cycle type) and PMX (interpolation max elements) — the
// Table I parameter set — over ~4589 configurations; the transfer-learning
// study uses a larger space (~57313 source / ~50395 target configurations).
#pragma once

#include <cstdint>

#include "space/parameter_space.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::apps {

inline constexpr std::uint64_t kHypreSeed = 0xC0FFEE02;

/// Configuration-selection space: Solver (4) × Smoother (6) × Ranks (6) ×
/// OMP (4) × MU (4) × PMX (2) = 4608 configurations (paper: 4589).
[[nodiscard]] space::SpacePtr hypre_space();

/// The configuration-selection dataset; best calibrated to 3.45 s (Fig. 4a's
/// exhaustive-best line) with a heavy right tail up to ~12 s.
[[nodiscard]] tabular::TabularObjective make_hypre(
    std::uint64_t seed = kHypreSeed);

/// Extended space for the transfer study: Solver (4) × Smoother (8) ×
/// Ranks (6) × OMP (5) × MU (4) × PMX (3) × Coarsen (5) = 57600
/// configurations (paper: 57313 source / 50395 target).
[[nodiscard]] space::SpacePtr hypre_transfer_space();

}  // namespace hpb::apps
