#include "apps/openatom.hpp"

#include "surface/surface.hpp"

namespace hpb::apps {
namespace {

using space::Configuration;
using space::Parameter;
using space::ParameterSpace;

}  // namespace

space::SpacePtr openatom_space() {
  auto s = std::make_shared<ParameterSpace>();
  s->add(Parameter::categorical_numeric("sgrain",
                                        {16, 32, 64, 96, 128, 192, 256, 384}));
  s->add(Parameter::categorical_numeric("rhorx", {1, 2, 4, 8}));
  s->add(Parameter::categorical_numeric("rhory", {1, 2, 4, 8}));
  s->add(Parameter::categorical_numeric("rhohx", {1, 2, 4}));
  s->add(Parameter::categorical_numeric("rhohy", {1, 2, 4}));
  s->add(Parameter::categorical_numeric("gratio", {1, 2}));
  s->add(Parameter::categorical_numeric("rhoratio", {1, 2}));
  s->add(Parameter::categorical("ortho", {"sym", "asym"}));
  return s;
}

Configuration openatom_expert(const ParameterSpace& space) {
  Configuration c(std::vector<double>(space.num_params(), 0.0));
  c.set_level(space.index_of("sgrain"), 4);    // 128: balanced grain
  c.set_level(space.index_of("rhorx"), 1);     // symmetric 2 × 2
  c.set_level(space.index_of("rhory"), 1);
  c.set_level(space.index_of("rhohx"), 1);     // symmetric 2 × 2
  c.set_level(space.index_of("rhohy"), 1);
  c.set_level(space.index_of("gratio"), 0);
  c.set_level(space.index_of("rhoratio"), 0);
  c.set_level(space.index_of("ortho"), 0);     // symmetric decomposition
  return c;
}

tabular::TabularObjective make_openatom(std::uint64_t seed) {
  auto sp = openatom_space();
  surface::SurfaceBuilder b(sp, seed);
  // Table I full-dataset ranking: sgrain (0.26) >> rhory ~ gratio (0.08) >
  // rhohx (0.04) > rhohy (0.03) > rhorx (0.02) > rhoratio, ortho (~0).
  // The over-decomposition tradeoff of §IV-A — too coarse starves the
  // scheduler, too fine pays overhead — shows up as a U-shaped sgrain
  // effect with interactions against the density-grid splits.
  b.base(1.0)
      .main_effect("sgrain", {1.42, 1.18, 1.03, 0.98, 1.00, 1.06, 1.16, 1.30})
      .random_main_effect("rhory", 0.12)
      .random_main_effect("gratio", 0.12)
      .random_main_effect("rhohx", 0.06)
      .random_main_effect("rhohy", 0.05)
      .random_main_effect("rhorx", 0.03)
      .random_main_effect("rhoratio", 0.015)
      .random_main_effect("ortho", 0.01)
      .random_interaction("sgrain", "rhory", 0.05)
      .random_interaction("rhorx", "rhory", 0.04)
      .noise(0.025);
  const surface::Surface surf = b.build();
  return surface::calibrate_to_anchor("openAtom", surf, 1.24,
                                      openatom_expert(*sp), 1.6);
}

}  // namespace hpb::apps
