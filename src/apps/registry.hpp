// Name-indexed access to all simulated datasets, used by the benchmark
// harnesses (fig7_sensitivity and table1_importance iterate over every
// application) and by tests.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "tabular/tabular_objective.hpp"

namespace hpb::apps {

struct DatasetInfo {
  std::string name;  // "kripke", "kripke_energy", "hypre", "lulesh",
                     // "openAtom", "systolic_small"
  std::function<tabular::TabularObjective()> make;
  /// The paper's quoted reference value for a hand-tuned/default choice
  /// (expert choice or -O3), if §V quotes one.
  std::optional<double> reference_value;
  std::string reference_label;  // "expert", "-O3", ...
};

/// The five configuration-selection datasets of §V in paper order, plus the
/// conditional systolic-array design space ("systolic_small").
[[nodiscard]] const std::vector<DatasetInfo>& dataset_registry();

/// Look up a dataset factory by name; throws on unknown names.
[[nodiscard]] const DatasetInfo& dataset_by_name(const std::string& name);

}  // namespace hpb::apps
