#include "apps/stencil.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace hpb::apps {
namespace {

using space::Parameter;

space::SpacePtr make_stencil_space() {
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(Parameter::categorical_numeric("tile_i", {8, 16, 32, 64, 128}));
  s->add(Parameter::categorical_numeric("tile_j", {16, 32, 64, 128, 256}));
  s->add(Parameter::categorical_numeric("unroll", {1, 2, 4}));
#ifdef _OPENMP
  s->add(Parameter::categorical_numeric(
      "threads",
      {1.0, 2.0, static_cast<double>(std::min(4, omp_get_max_threads()))}));
#else
  s->add(Parameter::categorical_numeric("threads", {1}));
#endif
  return s;
}

/// One tiled Jacobi sweep src -> dst on an n×n grid (interior points only).
void sweep(const double* src, double* dst, std::size_t n, std::size_t tile_i,
           std::size_t tile_j, std::size_t unroll, int threads) {
#ifndef _OPENMP
  (void)threads;
#endif
#ifdef _OPENMP
#pragma omp parallel for num_threads(threads) schedule(static)
#endif
  for (std::ptrdiff_t bi = 1; bi < static_cast<std::ptrdiff_t>(n) - 1;
       bi += static_cast<std::ptrdiff_t>(tile_i)) {
    for (std::size_t bj = 1; bj + 1 < n; bj += tile_j) {
      const std::size_t i_end =
          std::min<std::size_t>(static_cast<std::size_t>(bi) + tile_i, n - 1);
      const std::size_t j_end = std::min<std::size_t>(bj + tile_j, n - 1);
      for (std::size_t i = static_cast<std::size_t>(bi); i < i_end; ++i) {
        const double* up = src + (i - 1) * n;
        const double* mid = src + i * n;
        const double* down = src + (i + 1) * n;
        double* out = dst + i * n;
        std::size_t j = bj;
        // Unrolled inner loop; the remainder falls through to the scalar
        // loop below.
        for (; j + unroll <= j_end; j += unroll) {
          for (std::size_t u = 0; u < unroll; ++u) {
            const std::size_t jj = j + u;
            out[jj] = 0.25 * (up[jj] + down[jj] + mid[jj - 1] + mid[jj + 1]);
          }
        }
        for (; j < j_end; ++j) {
          out[j] = 0.25 * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
        }
      }
    }
  }
}

}  // namespace

StencilObjective::StencilObjective(StencilWorkload workload)
    : workload_(workload), space_(make_stencil_space()) {
  HPB_REQUIRE(workload_.grid >= 8, "StencilObjective: grid too small");
  HPB_REQUIRE(workload_.sweeps >= 1, "StencilObjective: need >= 1 sweep");
  HPB_REQUIRE(workload_.repeats >= 1, "StencilObjective: need >= 1 repeat");
}

double StencilObjective::evaluate(const space::Configuration& c) {
  const std::size_t n = workload_.grid;
  const auto tile_i = static_cast<std::size_t>(
      space_->param(0).level_value(c.level(0)));
  const auto tile_j = static_cast<std::size_t>(
      space_->param(1).level_value(c.level(1)));
  const auto unroll = static_cast<std::size_t>(
      space_->param(2).level_value(c.level(2)));
  const int threads =
      static_cast<int>(space_->param(3).level_value(c.level(3)));

  double best = 0.0;
  for (std::size_t rep = 0; rep < workload_.repeats; ++rep) {
    // Deterministic initial condition: hot boundary, cold interior.
    grid_a_.assign(n * n, 0.0);
    grid_b_.assign(n * n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      grid_a_[j] = grid_b_[j] = 1.0;
      grid_a_[(n - 1) * n + j] = grid_b_[(n - 1) * n + j] = 1.0;
    }
    const auto start = std::chrono::steady_clock::now();
    double* src = grid_a_.data();
    double* dst = grid_b_.data();
    for (std::size_t s = 0; s < workload_.sweeps; ++s) {
      sweep(src, dst, n, tile_i, tile_j, unroll, threads);
      std::swap(src, dst);
    }
    const auto stop = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(stop - start).count();
    best = (rep == 0) ? elapsed : std::min(best, elapsed);
    checksum_ = 0.0;
    for (std::size_t i = 0; i < n * n; ++i) {
      checksum_ += src[i];
    }
  }
  return best;
}

}  // namespace hpb::apps
