// MiniSweep: a real (live) miniature of Kripke's discrete-ordinates
// transport sweep, with the same headline tunable — the data-layout
// *Nesting* — actually changing the memory layout and loop order of the
// kernel.
//
// The kernel solves one source-iteration sweep of 2-D SN transport on an
// N×N grid with G energy groups and D ordinate directions per quadrant:
// for each direction, cells are visited in wavefront order and the angular
// flux is updated from the upwind fluxes (diamond-difference closure).
// The psi array holds N·N·G·D values whose storage order is one of the six
// permutations of (Direction, Group, Zone) — Kripke's DGZ...ZGD layouts.
// Group-set and direction-set blocking tile the G and D loops, as in
// Kripke's Gset/Dset parameters; with OpenMP enabled, a Threads parameter
// parallelizes across (group-set, direction-set) blocks — distinct blocks
// touch disjoint angular-flux and edge-flux slices, so this is safe for
// every nesting, and the available parallelism genuinely depends on the
// blocking choice (one big block = no parallelism), as on the real code.
//
// Because only the iteration order and layout change, every configuration
// computes the same fluxes — evaluate() returns measured seconds and
// last_checksum() lets tests verify bitwise-stable physics.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "space/parameter_space.hpp"
#include "tabular/objective.hpp"

namespace hpb::apps {

struct MiniSweepWorkload {
  std::size_t zones = 48;      // grid is zones × zones
  std::size_t groups = 16;     // energy groups
  std::size_t directions = 8;  // ordinate directions per quadrant
  std::size_t sweeps = 2;      // source iterations per evaluation
  std::size_t repeats = 2;     // timed repetitions; minimum taken
};

class MiniSweepObjective final : public tabular::Objective {
 public:
  explicit MiniSweepObjective(MiniSweepWorkload workload = {});

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return *space_;
  }
  [[nodiscard]] space::SpacePtr space_ptr() const { return space_; }

  /// Runs the sweep with the configuration's layout/blocking and returns
  /// the best wall-clock seconds over `repeats` runs.
  [[nodiscard]] double evaluate(const space::Configuration& c) override;

  [[nodiscard]] std::string name() const override { return "minisweep"; }

  /// Sum of the scalar flux after the last evaluation; identical for every
  /// configuration (layout must not change the physics).
  [[nodiscard]] double last_checksum() const noexcept { return checksum_; }

 private:
  MiniSweepWorkload workload_;
  space::SpacePtr space_;
  std::vector<double> psi_;     // angular flux, laid out per Nesting
  std::vector<double> phi_;     // scalar flux accumulator (zone, group)
  std::vector<double> sigma_;   // total cross section per zone/group
  std::vector<double> source_;  // external source per zone/group
  double checksum_ = 0.0;
};

}  // namespace hpb::apps
