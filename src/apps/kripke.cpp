#include "apps/kripke.hpp"

#include "surface/surface.hpp"

namespace hpb::apps {
namespace {

using space::Configuration;
using space::Parameter;
using space::ParameterSpace;

void add_exec_params(ParameterSpace& s) {
  s.add(Parameter::categorical(
      "Nesting", {"DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"}));
  s.add(Parameter::categorical_numeric("Gset", {1, 2, 4, 8, 16}));
  s.add(Parameter::categorical_numeric("Dset", {1, 2, 4, 8}));
  s.add(Parameter::categorical_numeric("OMP", {1, 2, 4, 8}));
  s.add(Parameter::categorical_numeric("Ranks", {1, 2, 4, 8, 16}));
  // Full-node occupancy: the study ran on fixed 32-core nodes; configs must
  // populate at least a quarter of a node and may not oversubscribe it.
  s.add_constraint(
      [](const ParameterSpace& sp, const Configuration& c) {
        const double omp = sp.param(sp.index_of("OMP")).level_value(
            c.level(sp.index_of("OMP")));
        const double ranks = sp.param(sp.index_of("Ranks")).level_value(
            c.level(sp.index_of("Ranks")));
        const double total = omp * ranks;
        return total >= 8.0 && total <= 32.0;
      },
      "8 <= Ranks * OMP <= 32 (full-node occupancy)");
}

/// Shared multiplicative structure of the Kripke runtime. Strengths are
/// tuned so the full-dataset JS-divergence ranking reproduces Table I
/// (exec: Ranks > OMP > Dset ~ Gset > Nesting).
surface::SurfaceBuilder exec_surface_builder(space::SpacePtr sp,
                                             std::uint64_t seed) {
  surface::SurfaceBuilder b(std::move(sp), seed);
  b.base(1.0)
      .random_main_effect("Ranks", 0.40)
      .random_main_effect("OMP", 0.25)
      .random_main_effect("Dset", 0.18)
      .random_main_effect("Gset", 0.17)
      .random_main_effect("Nesting", 0.12)
      .random_interaction("Nesting", "OMP", 0.06)
      .random_interaction("Gset", "Dset", 0.08)
      .random_interaction("Ranks", "OMP", 0.10)
      .noise(0.03);
  return b;
}

}  // namespace

space::SpacePtr kripke_exec_space() {
  auto s = std::make_shared<ParameterSpace>();
  add_exec_params(*s);
  return s;
}

Configuration kripke_exec_expert(const ParameterSpace& space) {
  // The §V-A expert tests each loop ordering with a few group/energy sets:
  // they find a good Nesting but keep conventional set/threads choices.
  Configuration c(std::vector<double>(space.num_params(), 0.0));
  c.set_level(space.index_of("Nesting"), 0);  // DGZ (production default)
  c.set_level(space.index_of("Gset"), 2);     // 4 group sets
  c.set_level(space.index_of("Dset"), 2);     // 4 direction sets
  c.set_level(space.index_of("OMP"), 2);      // 4 threads
  c.set_level(space.index_of("Ranks"), 3);    // 8 ranks (8*4 = full node)
  return c;
}

tabular::TabularObjective make_kripke_exec(std::uint64_t seed) {
  auto sp = kripke_exec_space();
  const surface::Surface surf = exec_surface_builder(sp, seed).build();
  return surface::calibrate_to_anchor("kripke", surf, 8.43,
                                      kripke_exec_expert(*sp), 15.2);
}

space::SpacePtr kripke_energy_space() {
  auto s = std::make_shared<ParameterSpace>();
  add_exec_params(*s);
  s->add(Parameter::categorical_numeric(
      "PKG_LIMIT", {50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150}));
  return s;
}

Configuration kripke_energy_expert(const ParameterSpace& space) {
  Configuration c(std::vector<double>(space.num_params(), 0.0));
  c.set_level(space.index_of("Nesting"), 0);
  c.set_level(space.index_of("Gset"), 2);
  c.set_level(space.index_of("Dset"), 2);
  c.set_level(space.index_of("OMP"), 2);
  c.set_level(space.index_of("Ranks"), 3);
  // §V-A: the expert choice for energy is the 2nd-highest power level.
  c.set_level(space.index_of("PKG_LIMIT"), 9);  // 140 W
  return c;
}

tabular::TabularObjective make_kripke_energy(std::uint64_t seed) {
  auto sp = kripke_energy_space();
  surface::SurfaceBuilder b = exec_surface_builder(sp, seed);
  // Energy = power × time: capping power reduces draw but slows the run.
  // The U-shaped energy-vs-cap curve makes mid-range caps optimal, and the
  // cap interacts with thread count (more threads → higher package draw).
  b.main_effect("PKG_LIMIT", {1.30, 1.12, 1.00, 0.92, 0.88, 0.87, 0.90, 0.96,
                              1.04, 1.14, 1.25})
      .random_interaction("PKG_LIMIT", "OMP", 0.08)
      .random_interaction("PKG_LIMIT", "Nesting", 0.10);
  const surface::Surface surf = b.build();
  return surface::calibrate_to_anchor("kripke_energy", surf, 2447.0,
                                      kripke_energy_expert(*sp), 4742.0);
}

KripkeTimeEnergy make_kripke_time_energy(std::uint64_t seed) {
  auto sp = kripke_energy_space();

  // Time: the exec-surface structure plus the power-cap slowdown — capping
  // from 150 W down to 50 W stretches the runtime by up to ~60%.
  surface::SurfaceBuilder time_builder = exec_surface_builder(sp, seed);
  time_builder.main_effect(
      "PKG_LIMIT",
      {1.60, 1.42, 1.28, 1.18, 1.11, 1.06, 1.03, 1.01, 1.00, 1.00, 1.00});
  const surface::Surface time_surface = time_builder.build();

  // Energy ≈ average power × time: the power term grows with the cap, so
  // the product is low at mid/low caps where the slowdown has not yet
  // eaten the savings.
  const surface::Surface energy_surface = [&] {
    surface::SurfaceBuilder b = exec_surface_builder(sp, seed);
    b.main_effect("PKG_LIMIT", {1.60 * 0.45, 1.42 * 0.50, 1.28 * 0.56,
                                1.18 * 0.62, 1.11 * 0.69, 1.06 * 0.76,
                                1.03 * 0.83, 1.01 * 0.89, 1.00 * 0.94,
                                1.00 * 0.97, 1.00 * 1.00})
        .random_interaction("PKG_LIMIT", "OMP", 0.06);
    return b.build();
  }();

  return {surface::calibrate_to_range("kripke_time", time_surface, 8.43,
                                      38.0),
          surface::calibrate_to_range("kripke_joules", energy_surface, 2447.0,
                                      11200.0)};
}

}  // namespace hpb::apps
