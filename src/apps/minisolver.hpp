// MiniSolver: a real (live) miniature of HYPRE's new_ij benchmark — a
// from-scratch sparse linear-solver suite on a 2-D Poisson problem, with
// HYPRE-like tunables:
//
//   Solver   {Jacobi-iter, GS-iter, SOR-iter, CG, PCG-Jacobi, PCG-SSOR}
//   Smoother relaxation weight ω for the SOR/SSOR variants
//   MaxLevel two-grid (multigrid-lite) preconditioning depth {0, 1}
//
// evaluate() assembles the 5-point Laplacian, runs the configured solver
// to a fixed residual tolerance, and returns measured wall-clock seconds
// (divergent/over-budget configurations return their full elapsed time —
// slow configurations are simply bad, as on the real machine).
// last_residual()/iterations() expose convergence for tests, and every
// converging configuration reaches the same solution (checksummed).
#pragma once

#include <cstddef>
#include <vector>

#include "space/parameter_space.hpp"
#include "tabular/objective.hpp"

namespace hpb::apps {

struct MiniSolverWorkload {
  std::size_t grid = 64;       // unknowns: grid × grid interior points
  double tolerance = 1e-8;     // relative residual target
  std::size_t max_iters = 4000;
  std::size_t repeats = 1;     // timed repetitions; minimum taken
};

class MiniSolverObjective final : public tabular::Objective {
 public:
  explicit MiniSolverObjective(MiniSolverWorkload workload = {});

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return *space_;
  }
  [[nodiscard]] space::SpacePtr space_ptr() const { return space_; }

  [[nodiscard]] double evaluate(const space::Configuration& c) override;

  [[nodiscard]] std::string name() const override { return "minisolver"; }

  // Introspection for tests --------------------------------------------
  [[nodiscard]] double last_residual() const noexcept { return residual_; }
  [[nodiscard]] std::size_t last_iterations() const noexcept {
    return iterations_;
  }
  [[nodiscard]] bool last_converged() const noexcept { return converged_; }
  /// Sum of the solution vector (identical across converging configs).
  [[nodiscard]] double last_checksum() const noexcept { return checksum_; }

 private:
  // 5-point Laplacian matvec on the grid: y = A x.
  void apply(const std::vector<double>& x, std::vector<double>& y) const;
  // One weighted-Jacobi / SOR forward / SOR backward pass on A x = b.
  void jacobi_pass(std::vector<double>& x, const std::vector<double>& b,
                   double omega) const;
  void sor_pass(std::vector<double>& x, const std::vector<double>& b,
                double omega, bool forward) const;
  // Two-grid V-cycle (full-weighting restriction, bilinear prolongation,
  // SOR smoothing) used as the "MG" preconditioner.
  void vcycle(std::vector<double>& x, const std::vector<double>& b,
              double omega) const;
  // Preconditioner application z = M⁻¹ r, per the configuration.
  void precondition(std::size_t kind, double omega,
                    const std::vector<double>& r, std::vector<double>& z) const;

  MiniSolverWorkload workload_;
  space::SpacePtr space_;
  std::vector<double> rhs_;
  double rhs_norm_ = 1.0;
  double residual_ = 0.0;
  std::size_t iterations_ = 0;
  bool converged_ = false;
  double checksum_ = 0.0;
};

}  // namespace hpb::apps
