// Live (non-tabular) tuning objective: a real 2-D Jacobi stencil kernel
// whose cache blocking, inner-loop unrolling, and (when OpenMP is enabled)
// thread count are tunable. Unlike the frozen app datasets, evaluate()
// actually runs the kernel and returns measured wall-clock seconds —
// demonstrating the tuner on the paper's primary use case: tuning a code
// you can execute, not a table you can index.
#pragma once

#include <cstddef>
#include <vector>

#include "space/parameter_space.hpp"
#include "tabular/objective.hpp"

namespace hpb::apps {

struct StencilWorkload {
  std::size_t grid = 384;     // grid is grid×grid points
  std::size_t sweeps = 12;    // Jacobi sweeps per evaluation
  std::size_t repeats = 3;    // timed repetitions; minimum taken
};

class StencilObjective final : public tabular::Objective {
 public:
  explicit StencilObjective(StencilWorkload workload = {});

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return *space_;
  }
  [[nodiscard]] space::SpacePtr space_ptr() const { return space_; }

  /// Runs the stencil with the configuration's blocking/unroll/threads and
  /// returns the best wall-clock time over `repeats` runs, in seconds.
  [[nodiscard]] double evaluate(const space::Configuration& c) override;

  [[nodiscard]] std::string name() const override { return "stencil"; }

  /// Checksum of the last run's grid (guards against dead-code elimination
  /// and lets tests verify all configurations compute the same result).
  [[nodiscard]] double last_checksum() const noexcept { return checksum_; }

 private:
  StencilWorkload workload_;
  space::SpacePtr space_;
  std::vector<double> grid_a_;
  std::vector<double> grid_b_;
  double checksum_ = 0.0;
};

}  // namespace hpb::apps
